// Quickstart: open a store, write, read, scan, and inspect the compaction
// statistics that this library exists to improve.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcplsm"
)

func main() {
	// An in-memory store with default settings: PCP compaction, 4 MiB
	// memtable, 2 MiB tables, 4 KiB blocks, snappy — the paper's setup.
	db, err := pcplsm.Open(pcplsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Single writes.
	if err := db.Put([]byte("greeting"), []byte("hello, LSM")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %s\n", v)

	// Atomic batches.
	var b pcplsm.Batch
	for i := 0; i < 5; i++ {
		b.Put([]byte(fmt.Sprintf("user%02d", i)), []byte(fmt.Sprintf("profile-%d", i)))
	}
	b.Delete([]byte("user03"))
	if err := db.Write(&b); err != nil {
		log.Fatal(err)
	}

	// Deletes hide keys.
	if _, err := db.Get([]byte("user03")); pcplsm.IsNotFound(err) {
		fmt.Println("user03 deleted, as requested")
	}

	// Ordered scans over a snapshot.
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	fmt.Println("scan user*:")
	for ok := it.Seek([]byte("user")); ok; ok = it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}

	// Force the memtable down to disk tables and show the tree.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables per level: %v\n", db.Levels())
	fmt.Printf("stats: %v\n", db.Stats())
}
