// YCSB-style mixed workload: a zipfian read/update/scan mix running against
// a store that is simultaneously absorbing a heavy insert stream — the
// "massive Internet services" scenario from the paper's introduction. It
// reports foreground latency percentiles, showing how background compaction
// pressure (and the choice of SCP vs PCP) leaks into user-visible latency.
//
// Run with:
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"pcplsm"
	"pcplsm/internal/metrics"
	"pcplsm/internal/workload"
)

const (
	preload   = 30_000
	inserts   = 30_000
	frontOps  = 20_000
	keySpace  = 60_000
	valueSize = 100
)

func main() {
	for _, mode := range []string{"scp", "pcp"} {
		run(mode)
	}
}

func run(mode string) {
	db, err := pcplsm.Open(pcplsm.Options{
		Simulate:      &pcplsm.SimulatedStorage{Device: "ssd", TimeScale: 1.0},
		MemtableBytes: 512 << 10,
		TableBytes:    512 << 10,
		Compaction:    pcplsm.Compaction{Mode: mode, SubtaskBytes: 256 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Preload a base data set.
	gen := workload.New(workload.Config{Entries: preload, ValueSize: valueSize, KeySpace: keySpace, Seed: 1})
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}

	// Background insert pressure (drives flushes and compactions) while a
	// foreground client issues a zipfian 70/20/10 read/update/scan mix.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := workload.New(workload.Config{Entries: inserts, ValueSize: valueSize, KeySpace: keySpace, Seed: 2})
		for {
			k, v, ok := g.Next()
			if !ok {
				return
			}
			if err := db.Put(k, v); err != nil {
				log.Printf("insert: %v", err)
				return
			}
		}
	}()

	var reads, updates, scans metrics.Histogram
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.1, 1, keySpace-1)
	val := make([]byte, valueSize)
	for i := 0; i < frontOps; i++ {
		key := []byte(fmt.Sprintf("user%012d", zipf.Uint64()))
		start := time.Now()
		switch r := rng.Intn(10); {
		case r < 7: // read
			if _, err := db.Get(key); err != nil && !pcplsm.IsNotFound(err) {
				log.Fatal(err)
			}
			reads.Observe(time.Since(start))
		case r < 9: // update
			rng.Read(val[:valueSize/2])
			if err := db.Put(key, val); err != nil {
				log.Fatal(err)
			}
			updates.Observe(time.Since(start))
		default: // short scan
			it, err := db.NewIterator()
			if err != nil {
				log.Fatal(err)
			}
			n := 0
			for ok := it.Seek(key); ok && n < 20; ok = it.Next() {
				n++
			}
			it.Close()
			scans.Observe(time.Since(start))
		}
	}
	wg.Wait()
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("%s:\n", mode)
	fmt.Printf("  reads   %v\n", reads.String())
	fmt.Printf("  updates %v\n", updates.String())
	fmt.Printf("  scans   %v\n", scans.String())
	fmt.Printf("  stalls  %d (%v total); compaction %.1f MiB/s\n\n",
		st.StallCount, st.StallTime.Round(time.Millisecond), st.CompactionBandwidth()/(1<<20))
}
