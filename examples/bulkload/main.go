// Bulkload reproduces the paper's headline scenario end to end: an
// insert-only workload on a simulated SSD, run once under the conventional
// Sequential Compaction Procedure and once under the Pipelined Compaction
// Procedure, printing insert throughput and compaction bandwidth for both.
//
// Run with:
//
//	go run ./examples/bulkload              # default: 60k entries, ssd
//	go run ./examples/bulkload -n 200000 -device hdd
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pcplsm"
	"pcplsm/internal/workload"
)

func main() {
	n := flag.Int("n", 60_000, "entries to insert")
	device := flag.String("device", "ssd", "simulated device: hdd, ssd, nvme")
	flag.Parse()

	for _, mode := range []string{"scp", "pcp"} {
		iops, cbw, stats := runLoad(*n, *device, mode)
		fmt.Printf("%s: %8.0f inserts/s   compaction %6.1f MiB/s   (%d compactions, breakdown %v)\n",
			mode, iops, cbw/(1<<20), stats.Compactions, stats.CompactionSteps.Breakdown())
	}
	fmt.Println("\nThe pipelined procedure overlaps the read, compute and write steps of")
	fmt.Println("independent sub-key-ranges, so the same hardware compacts faster and")
	fmt.Println("stalls foreground writes less — the paper's Figure 10.")
}

// runLoad loads n entries into a fresh simulated store and returns insert
// throughput, compaction bandwidth, and the final stats.
func runLoad(n int, device, mode string) (iops, cbw float64, st pcplsm.Stats) {
	db, err := pcplsm.Open(pcplsm.Options{
		Simulate: &pcplsm.SimulatedStorage{Device: device, TimeScale: 1.0},
		// Scaled-down geometry so a laptop-sized run sees many compactions.
		MemtableBytes: 512 << 10,
		TableBytes:    512 << 10,
		Compaction:    pcplsm.Compaction{Mode: mode, SubtaskBytes: 256 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.New(workload.Config{Entries: n, ValueSize: 100, Seed: 42})
	start := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st = db.Stats()
	return float64(n) / elapsed.Seconds(), st.CompactionBandwidth(), st
}
