// Tuning demonstrates the paper's §IV-C parameter study on your own
// machine: it sweeps the pipeline's sub-task size and its parallelism knobs
// over one fixed workload and prints where the sweet spots fall, together
// with what the analytical model (Equations 1–7) predicts.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"pcplsm"
	"pcplsm/internal/workload"
)

const entries = 40_000

func main() {
	fmt.Println("sweeping sub-task size (ssd, pcp):")
	fmt.Println("  subtask   inserts/s   compaction MiB/s")
	for _, sub := range []int{64 << 10, 256 << 10, 512 << 10, 2 << 20} {
		iops, cbw := run(pcplsm.Compaction{Mode: "pcp", SubtaskBytes: sub}, "ssd")
		fmt.Printf("  %6dKB   %9.0f   %8.1f\n", sub>>10, iops, cbw/(1<<20))
	}

	fmt.Println("\nsweeping compute workers (ssd, C-PPCP):")
	fmt.Println("  workers   inserts/s   compaction MiB/s")
	for _, k := range []int{1, 2, 4} {
		iops, cbw := run(pcplsm.Compaction{Mode: "pcp", SubtaskBytes: 256 << 10, ComputeWorkers: k}, "ssd")
		fmt.Printf("  %7d   %9.0f   %8.1f\n", k, iops, cbw/(1<<20))
	}

	fmt.Println("\nsweeping I/O workers over 4 disks (hdd RAID0, S-PPCP):")
	fmt.Println("  workers   inserts/s   compaction MiB/s")
	for _, k := range []int{1, 2, 4} {
		iops, cbw := runDisks(pcplsm.Compaction{Mode: "pcp", SubtaskBytes: 256 << 10, IOWorkers: k}, 4)
		fmt.Printf("  %7d   %9.0f   %8.1f\n", k, iops, cbw/(1<<20))
	}

	fmt.Println("\nToo-small sub-tasks waste I/O efficiency; too-large ones starve the")
	fmt.Println("pipeline (paper Figure 11). Extra workers help only until the other")
	fmt.Println("resource becomes the bottleneck (paper Figure 12, Equations 4-7).")
}

func run(c pcplsm.Compaction, device string) (iops, cbw float64) {
	return runWith(c, device, 1)
}

func runDisks(c pcplsm.Compaction, disks int) (iops, cbw float64) {
	return runWith(c, "hdd", disks)
}

func runWith(c pcplsm.Compaction, device string, disks int) (iops, cbw float64) {
	db, err := pcplsm.Open(pcplsm.Options{
		Simulate:      &pcplsm.SimulatedStorage{Device: device, Disks: disks, RAID0: disks > 1, TimeScale: 1.0},
		MemtableBytes: 512 << 10,
		TableBytes:    512 << 10,
		Compaction:    c,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	gen := workload.New(workload.Config{Entries: entries, ValueSize: 100, Seed: 7})
	start := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}
	return float64(entries) / time.Since(start).Seconds(), db.Stats().CompactionBandwidth()
}
