module pcplsm

go 1.22
