package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(t testing.TB, interval int, kvs [][2]string) []byte {
	t.Helper()
	b := NewBuilder(interval, nil)
	for _, kv := range kvs {
		b.Add([]byte(kv[0]), []byte(kv[1]))
	}
	out := b.Finish()
	cp := make([]byte, len(out))
	copy(cp, out)
	return cp
}

func sortedKVs(n int, seed int64) [][2]string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var kvs [][2]string
	for len(kvs) < n {
		k := fmt.Sprintf("user%08d", rng.Intn(10*n+1))
		if seen[k] {
			continue
		}
		seen[k] = true
		kvs = append(kvs, [2]string{k, fmt.Sprintf("value-%d", rng.Int63())})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i][0] < kvs[j][0] })
	return kvs
}

func TestBuildAndScan(t *testing.T) {
	for _, interval := range []int{1, 2, 16, 100} {
		kvs := sortedKVs(200, int64(interval))
		data := buildBlock(t, interval, kvs)
		it, err := NewIter(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key()) != kvs[i][0] || string(it.Value()) != kvs[i][1] {
				t.Fatalf("interval %d entry %d: got %q=%q want %q=%q",
					interval, i, it.Key(), it.Value(), kvs[i][0], kvs[i][1])
			}
			i++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if i != len(kvs) {
			t.Fatalf("interval %d: scanned %d entries, want %d", interval, i, len(kvs))
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	b := NewBuilder(16, nil)
	data := b.Finish()
	it, err := NewIter(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.First() {
		t.Fatal("empty block yielded an entry")
	}
	if n, err := Count(data); err != nil || n != 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestSingleEntry(t *testing.T) {
	data := buildBlock(t, 16, [][2]string{{"k", "v"}})
	it, _ := NewIter(data, nil)
	if !it.First() || string(it.Key()) != "k" || string(it.Value()) != "v" {
		t.Fatal("single entry not found")
	}
	if it.Next() {
		t.Fatal("expected end after one entry")
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	b := NewBuilder(16, nil)
	b.Add([]byte(""), []byte(""))
	b.Add([]byte("a"), []byte(""))
	b.Add([]byte("b"), []byte("x"))
	it, err := NewIter(append([]byte{}, b.Finish()...), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"", ""}, {"a", ""}, {"b", "x"}}
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Key()) != want[i][0] || string(it.Value()) != want[i][1] {
			t.Fatalf("entry %d: %q=%q", i, it.Key(), it.Value())
		}
		i++
	}
	if i != 3 {
		t.Fatalf("got %d entries", i)
	}
}

func TestSeek(t *testing.T) {
	kvs := sortedKVs(500, 99)
	data := buildBlock(t, 16, kvs)
	it, err := NewIter(data, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seek to every existing key.
	for _, kv := range kvs {
		if !it.Seek([]byte(kv[0])) {
			t.Fatalf("Seek(%q) found nothing", kv[0])
		}
		if string(it.Key()) != kv[0] {
			t.Fatalf("Seek(%q) landed on %q", kv[0], it.Key())
		}
	}

	// Seek to keys between entries: should land on the successor.
	for i := 0; i+1 < len(kvs); i += 7 {
		target := kvs[i][0] + "~" // after kvs[i], before kvs[i+1] (since '~' > digits)
		if target >= kvs[i+1][0] {
			continue
		}
		if !it.Seek([]byte(target)) {
			t.Fatalf("Seek(%q) found nothing", target)
		}
		if string(it.Key()) != kvs[i+1][0] {
			t.Fatalf("Seek(%q) = %q, want %q", target, it.Key(), kvs[i+1][0])
		}
	}

	// Before the first key.
	if !it.Seek([]byte("")) || string(it.Key()) != kvs[0][0] {
		t.Fatal("Seek to start failed")
	}
	// Past the last key.
	if it.Seek([]byte("zzzzzzzz")) {
		t.Fatal("Seek past end should fail")
	}
}

func TestSeekThenNextScansRemainder(t *testing.T) {
	kvs := sortedKVs(100, 3)
	data := buildBlock(t, 4, kvs)
	it, _ := NewIter(data, nil)
	mid := len(kvs) / 2
	if !it.Seek([]byte(kvs[mid][0])) {
		t.Fatal("seek failed")
	}
	for i := mid; i < len(kvs); i++ {
		if string(it.Key()) != kvs[i][0] {
			t.Fatalf("entry %d: got %q want %q", i, it.Key(), kvs[i][0])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator should be exhausted")
	}
}

func TestAddOutOfOrderPanics(t *testing.T) {
	b := NewBuilder(16, nil)
	b.Add([]byte("b"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order key")
		}
	}()
	b.Add([]byte("a"), nil)
}

func TestAddDuplicatePanics(t *testing.T) {
	b := NewBuilder(16, nil)
	b.Add([]byte("a"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate key")
		}
	}()
	b.Add([]byte("a"), nil)
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(16, nil)
	b.Add([]byte("a"), []byte("1"))
	_ = b.Finish()
	b.Reset()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("Reset did not clear builder")
	}
	b.Add([]byte("a"), []byte("2")) // would panic if lastKey survived Reset with order check against "a"... it is equal, so:
	data := append([]byte{}, b.Finish()...)
	it, _ := NewIter(data, nil)
	if !it.First() || string(it.Value()) != "2" {
		t.Fatal("reused builder produced wrong block")
	}
}

func TestSizeEstimate(t *testing.T) {
	b := NewBuilder(16, nil)
	prev := b.SizeEstimate()
	if prev != 4 {
		t.Fatalf("empty estimate = %d, want 4", prev)
	}
	for i := 0; i < 100; i++ {
		b.Add([]byte(fmt.Sprintf("key%04d", i)), bytes.Repeat([]byte{'v'}, 10))
		if est := b.SizeEstimate(); est <= prev {
			t.Fatalf("estimate did not grow at entry %d", i)
		} else {
			prev = est
		}
	}
	data := b.Finish()
	if len(data) != prev {
		t.Fatalf("final size %d != estimate %d", len(data), prev)
	}
}

func TestPrefixCompressionShrinksBlock(t *testing.T) {
	longPrefix := bytes.Repeat([]byte("p"), 64)
	var kvs [][2]string
	for i := 0; i < 64; i++ {
		kvs = append(kvs, [2]string{string(longPrefix) + fmt.Sprintf("%04d", i), "v"})
	}
	compressed := buildBlock(t, 16, kvs)
	uncompressed := buildBlock(t, 1, kvs) // restart every entry = full keys
	if len(compressed) >= len(uncompressed) {
		t.Fatalf("prefix compression ineffective: %d >= %d", len(compressed), len(uncompressed))
	}
}

func TestCorruptTrailer(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, {1, 2, 3}, {0xff, 0xff, 0xff, 0xff}} {
		if _, err := NewIter(data, nil); err == nil {
			t.Errorf("NewIter(%v) should fail", data)
		}
	}
}

func TestCorruptEntriesDetected(t *testing.T) {
	kvs := sortedKVs(50, 5)
	data := buildBlock(t, 8, kvs)
	// Truncate the entry region by rebuilding the trailer over a shorter body.
	// Simpler: flip bytes in the entry area and require scan to either error
	// or produce keys without panicking.
	for i := 0; i < len(data)-8; i += 3 {
		mut := append([]byte{}, data...)
		mut[i] ^= 0xff
		it, err := NewIter(mut, nil)
		if err != nil {
			continue
		}
		for ok := it.First(); ok; ok = it.Next() {
			_ = it.Key()
			_ = it.Value()
		}
	}
}

// TestRoundTripQuick is the core property test: any sorted unique key set
// round-trips exactly, for random restart intervals.
func TestRoundTripQuick(t *testing.T) {
	f := func(raw map[string]string, interval uint8) bool {
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := NewBuilder(int(interval%32)+1, nil)
		for _, k := range keys {
			b.Add([]byte(k), []byte(raw[k]))
		}
		data := append([]byte{}, b.Finish()...)
		it, err := NewIter(data, nil)
		if err != nil {
			return false
		}
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key()) != keys[i] || string(it.Value()) != raw[keys[i]] {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekQuick(t *testing.T) {
	kvs := sortedKVs(300, 11)
	data := buildBlock(t, 16, kvs)
	it, err := NewIter(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv[0]
	}
	f := func(target string) bool {
		// Reference: first key >= target.
		idx := sort.SearchStrings(keys, target)
		got := it.Seek([]byte(target))
		if idx == len(keys) {
			return !got
		}
		return got && string(it.Key()) == keys[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCount(t *testing.T) {
	kvs := sortedKVs(123, 8)
	data := buildBlock(t, 16, kvs)
	n, err := Count(data)
	if err != nil || n != 123 {
		t.Fatalf("Count = %d, %v; want 123", n, err)
	}
}

func BenchmarkBuilderAdd(b *testing.B) {
	kvs := sortedKVs(1000, 1)
	bl := NewBuilder(16, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := kvs[i%len(kvs)]
		if i%len(kvs) == 0 {
			bl.Reset()
		}
		bl.Add([]byte(kv[0]), []byte(kv[1]))
	}
}

func BenchmarkIterScan4K(b *testing.B) {
	bl := NewBuilder(16, nil)
	for i := 0; bl.SizeEstimate() < 4096; i++ {
		bl.Add([]byte(fmt.Sprintf("user%08d", i)), bytes.Repeat([]byte{'v'}, 100))
	}
	data := append([]byte{}, bl.Finish()...)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := NewIter(data, nil)
		if err != nil {
			b.Fatal(err)
		}
		for ok := it.First(); ok; ok = it.Next() {
		}
	}
}
