// Package block implements the sorted key-value data block that SSTables are
// made of — the unit of work that flows through the paper's seven-step
// compaction procedure (Figure 1(b): "The data blocks contain the sorted
// key-value pairs").
//
// Format (LevelDB-compatible in spirit):
//
//	entry*   — shared := uvarint   (bytes shared with the previous key)
//	           unshared := uvarint (remaining key bytes)
//	           vlen := uvarint
//	           key[shared:] bytes, value bytes
//	restarts — uint32 little-endian offset of each restart entry
//	trailer  — uint32 little-endian restart count
//
// Every restartInterval-th entry is a "restart": it stores its key in full,
// giving binary-searchable entry points while the entries in between use
// shared-prefix compression.
package block

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultRestartInterval is the number of entries between restart points.
const DefaultRestartInterval = 16

// Compare is the key ordering used by block iterators. It must match the
// order keys were added in.
type Compare func(a, b []byte) int

// Builder assembles a data block. Keys must be Added in strictly ascending
// order; Finish returns the serialized block.
//
// A Builder is not safe for concurrent use, but it may be Reset and reused
// to avoid allocation — the compute stage of the compaction pipeline keeps
// one per worker.
type Builder struct {
	restartInterval int
	cmp             Compare
	buf             []byte
	restarts        []uint32
	counter         int // entries since the last restart
	count           int // total entries
	lastKey         []byte
}

// NewBuilder returns a Builder with the given restart interval
// (DefaultRestartInterval if restartInterval <= 0). cmp defines the key
// order Add enforces; nil means bytes.Compare. Note that prefix compression
// always works on raw bytes regardless of cmp.
func NewBuilder(restartInterval int, cmp Compare) *Builder {
	if restartInterval <= 0 {
		restartInterval = DefaultRestartInterval
	}
	if cmp == nil {
		cmp = bytes.Compare
	}
	return &Builder{restartInterval: restartInterval, cmp: cmp}
}

// Reset clears the builder for reuse, retaining allocated capacity.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.count = 0
	b.lastKey = b.lastKey[:0]
}

// Empty reports whether no entries have been added since the last Reset.
func (b *Builder) Empty() bool { return b.count == 0 }

// Count returns the number of entries added since the last Reset.
func (b *Builder) Count() int { return b.count }

// SizeEstimate returns the serialized size the block would have if Finished
// now.
func (b *Builder) SizeEstimate() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Add appends a key/value entry. Keys must arrive in strictly ascending
// order; Add panics otherwise, since an out-of-order key corrupts the block
// and always indicates a bug in the caller (the merge stage).
func (b *Builder) Add(key, value []byte) {
	if b.count > 0 && b.cmp(key, b.lastKey) <= 0 {
		panic(fmt.Sprintf("block: keys out of order: %q after %q", key, b.lastKey))
	}
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && key[shared] == b.lastKey[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	if b.count == 0 {
		// The very first entry is implicitly a restart at offset 0.
		b.restarts = append(b.restarts, 0)
		b.counter = 0
		shared = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.count++
}

// Finish serializes the block and returns its bytes. The returned slice
// aliases the builder's buffer and is invalidated by Reset or further Adds.
func (b *Builder) Finish() []byte {
	if b.count == 0 {
		// An empty block still carries one restart entry so readers have a
		// well-formed trailer.
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Errors returned by block readers.
var (
	ErrBlockTooShort = errors.New("block: too short for trailer")
	ErrBlockCorrupt  = errors.New("block: corrupt entry encoding")
)

// Iter iterates over a serialized block. The zero Iter is invalid; use
// NewIter, or Reset to (re)bind an existing Iter to a block — resetting
// reuses the key scratch buffer, which is what makes per-block iteration in
// a table scan allocation-free.
type Iter struct {
	cmp         Compare
	data        []byte // entry region only
	restartArea []byte // trailing uint32 LE restart offsets, read on demand
	nRestarts   int
	off         int // offset of the current entry within data
	nextOff     int
	key         []byte
	val         []byte
	valid       bool
	err         error
}

// NewIter parses the block trailer and returns an iterator positioned before
// the first entry. cmp may be nil, defaulting to bytes.Compare.
func NewIter(data []byte, cmp Compare) (*Iter, error) {
	it := new(Iter)
	if err := it.Reset(data, cmp); err != nil {
		return nil, err
	}
	return it, nil
}

// Reset rebinds the iterator to a new block, positioned before the first
// entry. Scratch buffers are retained, so resetting an Iter across the
// blocks of a scan does not allocate. The restart offsets are validated here
// but never copied out of data — the block (typically shared with the block
// cache) is its own index.
func (it *Iter) Reset(data []byte, cmp Compare) error {
	if cmp == nil {
		cmp = bytes.Compare
	}
	if len(data) < 4 {
		return ErrBlockTooShort
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	trailer := 4 * (n + 1)
	if n <= 0 || trailer > len(data) {
		return fmt.Errorf("%w: %d restarts in %d bytes", ErrBlockCorrupt, n, len(data))
	}
	restartArea := data[len(data)-trailer : len(data)-4]
	entryLen := len(data) - trailer
	for i := 0; i < n; i++ {
		if off := binary.LittleEndian.Uint32(restartArea[4*i:]); int(off) > entryLen {
			return fmt.Errorf("%w: restart %d out of range", ErrBlockCorrupt, off)
		}
	}
	it.cmp = cmp
	it.data = data[:entryLen]
	it.restartArea = restartArea
	it.nRestarts = n
	it.off, it.nextOff = 0, 0
	it.key = it.key[:0]
	it.val = nil
	it.valid = false
	it.err = nil
	return nil
}

// Release drops the iterator's references into the block so a pooled or
// long-lived Iter does not pin (possibly cache-shared) block bytes. The key
// scratch buffer is retained for the next Reset.
func (it *Iter) Release() {
	it.data = nil
	it.restartArea = nil
	it.nRestarts = 0
	it.val = nil
	it.key = it.key[:0]
	it.valid = false
	it.err = nil
}

// restartOff returns the entry offset of restart index i (validated by
// Reset).
func (it *Iter) restartOff(i int) int {
	return int(binary.LittleEndian.Uint32(it.restartArea[4*i:]))
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid }

// Err returns the first corruption error encountered, if any.
func (it *Iter) Err() error { return it.err }

// Key returns the current entry's key. Valid only while Valid() is true; the
// slice is owned by the iterator and overwritten on movement.
func (it *Iter) Key() []byte { return it.key }

// Value returns the current entry's value, aliasing the block's buffer.
func (it *Iter) Value() []byte { return it.val }

// First positions the iterator on the first entry.
func (it *Iter) First() bool {
	it.seekToRestart(0)
	return it.Next()
}

// seekToRestart positions parsing at restart index i with no current entry.
func (it *Iter) seekToRestart(i int) {
	it.nextOff = it.restartOff(i)
	it.key = it.key[:0]
	it.valid = false
	it.err = nil
}

// Next advances to the next entry, returning false at the end of the block
// or on corruption (check Err to distinguish).
func (it *Iter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.nextOff >= len(it.data) {
		it.valid = false
		return false
	}
	it.off = it.nextOff
	rec := it.data[it.off:]
	shared, n1 := binary.Uvarint(rec)
	if n1 <= 0 {
		return it.corrupt()
	}
	rec = rec[n1:]
	unshared, n2 := binary.Uvarint(rec)
	if n2 <= 0 {
		return it.corrupt()
	}
	rec = rec[n2:]
	vlen, n3 := binary.Uvarint(rec)
	if n3 <= 0 {
		return it.corrupt()
	}
	rec = rec[n3:]
	if uint64(len(rec)) < unshared+vlen || shared > uint64(len(it.key)) {
		return it.corrupt()
	}
	it.key = append(it.key[:int(shared)], rec[:unshared]...)
	it.val = rec[unshared : unshared+vlen]
	it.nextOff = it.off + n1 + n2 + n3 + int(unshared) + int(vlen)
	it.valid = true
	return true
}

func (it *Iter) corrupt() bool {
	it.err = ErrBlockCorrupt
	it.valid = false
	return false
}

// Seek positions the iterator at the first entry with key >= target,
// returning false if no such entry exists.
func (it *Iter) Seek(target []byte) bool {
	// Binary search for the last restart whose key is <= target, then scan.
	lo, hi := 0, it.nRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		k, ok := it.restartKey(mid)
		if !ok {
			return false
		}
		if it.cmp(k, target) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.seekToRestart(lo)
	for it.Next() {
		if it.cmp(it.key, target) >= 0 {
			return true
		}
	}
	return false
}

// restartKey decodes the full key stored at restart index i.
func (it *Iter) restartKey(i int) ([]byte, bool) {
	rec := it.data[it.restartOff(i):]
	shared, n1 := binary.Uvarint(rec)
	if n1 <= 0 || shared != 0 {
		it.err = ErrBlockCorrupt
		return nil, false
	}
	rec = rec[n1:]
	unshared, n2 := binary.Uvarint(rec)
	if n2 <= 0 {
		it.err = ErrBlockCorrupt
		return nil, false
	}
	rec = rec[n2:]
	_, n3 := binary.Uvarint(rec)
	if n3 <= 0 {
		it.err = ErrBlockCorrupt
		return nil, false
	}
	rec = rec[n3:]
	if uint64(len(rec)) < unshared {
		it.err = ErrBlockCorrupt
		return nil, false
	}
	return rec[:unshared], true
}

// Count returns the total number of entries in the block by scanning it.
func Count(data []byte) (int, error) {
	it, err := NewIter(data, nil)
	if err != nil {
		return 0, err
	}
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if it.Err() != nil {
		return n, it.Err()
	}
	return n, nil
}
