package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// flateCodec wraps compress/flate behind the Codec interface. DEFLATE costs
// several times more CPU per byte than Snappy, so selecting it pushes the
// compaction pipeline deeper into the CPU-bound regime — useful for the
// codec ablation and for exercising C-PPCP.
type flateCodec struct {
	writers sync.Pool // *flate.Writer
}

func newFlateCodec() *flateCodec {
	return &flateCodec{
		writers: sync.Pool{
			New: func() any {
				w, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
				if err != nil {
					// DefaultCompression is always a valid level.
					panic(err)
				}
				return w
			},
		},
	}
}

func (c *flateCodec) Kind() Kind { return Flate }

func (c *flateCodec) Compress(dst, src []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w := c.writers.Get().(*flate.Writer)
	w.Reset(&buf)
	// Writing to a bytes.Buffer cannot fail; flate.Writer reports only the
	// underlying writer's errors from Write/Close.
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("compress: flate write to buffer failed: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close failed: %v", err))
	}
	c.writers.Put(w)
	return append(dst, buf.Bytes()...)
}

func (c *flateCodec) Decompress(dst, src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	buf := bytes.NewBuffer(dst)
	if _, err := io.Copy(buf, r); err != nil {
		return dst, fmt.Errorf("compress: flate decode: %w", err)
	}
	return buf.Bytes(), nil
}
