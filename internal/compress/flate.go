package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// flateCodec wraps compress/flate behind the Codec interface. DEFLATE costs
// several times more CPU per byte than Snappy, so selecting it pushes the
// compaction pipeline deeper into the CPU-bound regime — useful for the
// codec ablation and for exercising C-PPCP.
type flateCodec struct {
	writers sync.Pool // *flate.Writer
	readers sync.Pool // flateReader
}

// flateReader pairs a resettable flate decompressor with its source reader
// so Decompress reuses both across calls.
type flateReader struct {
	src *bytes.Reader
	r   io.ReadCloser
}

func newFlateCodec() *flateCodec {
	return &flateCodec{
		writers: sync.Pool{
			New: func() any {
				w, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
				if err != nil {
					// DefaultCompression is always a valid level.
					panic(err)
				}
				return w
			},
		},
		readers: sync.Pool{
			New: func() any {
				src := bytes.NewReader(nil)
				return flateReader{src: src, r: flate.NewReader(src)}
			},
		},
	}
}

func (c *flateCodec) Kind() Kind { return Flate }

func (c *flateCodec) Compress(dst, src []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w := c.writers.Get().(*flate.Writer)
	w.Reset(&buf)
	// Writing to a bytes.Buffer cannot fail; flate.Writer reports only the
	// underlying writer's errors from Write/Close.
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("compress: flate write to buffer failed: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close failed: %v", err))
	}
	c.writers.Put(w)
	return append(dst, buf.Bytes()...)
}

// Decompress appends the decoded bytes to dst, reusing dst's capacity. The
// flate state machine and its source reader come from a pool, and
// bytes.Buffer.ReadFrom decodes directly into the destination's spare
// capacity — no per-call scratch.
func (c *flateCodec) Decompress(dst, src []byte) ([]byte, error) {
	fr := c.readers.Get().(flateReader)
	fr.src.Reset(src)
	if err := fr.r.(flate.Resetter).Reset(fr.src, nil); err != nil {
		return dst, fmt.Errorf("compress: flate reset: %w", err)
	}
	buf := bytes.NewBuffer(dst)
	if _, err := buf.ReadFrom(fr.r); err != nil {
		c.readers.Put(fr)
		return dst, fmt.Errorf("compress: flate decode: %w", err)
	}
	c.readers.Put(fr)
	return buf.Bytes(), nil
}
