package compress

import (
	"encoding/binary"
	"errors"
)

// This file implements the Snappy block format
// (https://github.com/google/snappy/blob/main/format_description.txt)
// from scratch using only the standard library.
//
// Layout: a uvarint header with the decompressed length, followed by a
// sequence of elements. Each element starts with a tag byte whose low two
// bits select the element type:
//
//	00 literal — upper 6 bits encode length-1 (0..59), or 60..63 meaning the
//	   length-1 follows in 1..4 little-endian bytes;
//	01 copy, 1-byte offset — length 4..11 in bits 2..4, offset 0..2047 from
//	   bits 5..7 plus one trailing byte;
//	10 copy, 2-byte offset — length 1..64 in the upper 6 bits, offset in a
//	   trailing little-endian uint16;
//	11 copy, 4-byte offset — as above with a trailing uint32.
//
// The encoder works on independent 64 KiB chunks with a greedy hash-table
// match finder; it only ever emits literals and 2-byte-offset copies, which
// keeps it simple while staying within a few percent of the reference
// encoder's ratio on SSTable blocks. The decoder accepts the full format.

const (
	snappyTagLiteral = 0x00
	snappyTagCopy1   = 0x01
	snappyTagCopy2   = 0x02
	snappyTagCopy4   = 0x03

	snappyMaxChunk = 65536 // encoder chunk; offsets always fit in 16 bits
	snappyMinMatch = 4
)

// Errors returned by the snappy decoder.
var (
	ErrSnappyCorrupt  = errors.New("snappy: corrupt input")
	ErrSnappyTooLarge = errors.New("snappy: decoded block is too large")
)

type snappyCodec struct{}

func (snappyCodec) Kind() Kind { return Snappy }

func (snappyCodec) Compress(dst, src []byte) []byte { return SnappyEncode(dst, src) }

func (snappyCodec) Decompress(dst, src []byte) ([]byte, error) { return SnappyDecode(dst, src) }

// SnappyMaxEncodedLen returns an upper bound on the encoded length of an
// input of size n.
func SnappyMaxEncodedLen(n int) int {
	// Worst case: header plus, per chunk, literals with tag overhead. A
	// single literal run of length L costs at most 5+L bytes; matches only
	// shrink output. 32/6 mirrors the reference bound and is comfortably
	// safe for the chunked encoder.
	return 10 + n + n/6 + 16
}

// SnappyEncode appends the Snappy-format encoding of src to dst.
func SnappyEncode(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)

	for len(src) > 0 {
		chunk := src
		if len(chunk) > snappyMaxChunk {
			chunk = chunk[:snappyMaxChunk]
		}
		src = src[len(chunk):]
		if len(chunk) < snappyMinMatch+1 {
			dst = snappyEmitLiteral(dst, chunk)
			continue
		}
		dst = snappyEncodeChunk(dst, chunk)
	}
	return dst
}

// snappyHash maps a 4-byte little-endian sequence to a table index.
func snappyHash(u uint32, shift uint) uint32 {
	return (u * 0x1e35a7bd) >> shift
}

func snappyLoad32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// snappyEncodeChunk greedily encodes one chunk (≤ 64 KiB) of src.
func snappyEncodeChunk(dst, src []byte) []byte {
	const (
		maxTableBits = 14
		maxTableSize = 1 << maxTableBits
	)
	// Size the table to the chunk to keep small blocks cheap.
	shift, tableSize := uint(32-8), 1<<8
	for tableSize < maxTableSize && tableSize < len(src) {
		shift--
		tableSize *= 2
	}
	var table [maxTableSize]int32
	for i := 0; i < tableSize; i++ {
		table[i] = -1
	}

	nextEmit := 0
	s := 0
	limit := len(src) - snappyMinMatch
	for s <= limit {
		h := snappyHash(snappyLoad32(src, s), shift)
		cand := int(table[h])
		table[h] = int32(s)
		if cand < 0 || snappyLoad32(src, cand) != snappyLoad32(src, s) {
			s++
			continue
		}
		// Found a match: flush the pending literal, then extend the match.
		if nextEmit < s {
			dst = snappyEmitLiteral(dst, src[nextEmit:s])
		}
		base := s
		s += snappyMinMatch
		m := cand + snappyMinMatch
		for s < len(src) && src[s] == src[m] {
			s++
			m++
		}
		dst = snappyEmitCopy(dst, base-cand, s-base)
		nextEmit = s
		// Re-seed the table at the match end so runs keep matching.
		if s <= limit {
			table[snappyHash(snappyLoad32(src, s-1), shift)] = int32(s - 1)
		}
	}
	if nextEmit < len(src) {
		dst = snappyEmitLiteral(dst, src[nextEmit:])
	}
	return dst
}

// snappyEmitLiteral appends a literal element for lit.
func snappyEmitLiteral(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|snappyTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|snappyTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|snappyTagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|snappyTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|snappyTagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// snappyEmitCopy appends copy elements covering length bytes at the given
// back-reference offset (1 ≤ offset ≤ 65535, length ≥ 1).
func snappyEmitCopy(dst []byte, offset, length int) []byte {
	for length > 64 {
		dst = append(dst, 63<<2|snappyTagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	return append(dst, byte(length-1)<<2|snappyTagCopy2, byte(offset), byte(offset>>8))
}

// SnappyDecodedLen returns the decompressed length recorded in a
// Snappy-format buffer and the number of header bytes.
func SnappyDecodedLen(src []byte) (int, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, ErrSnappyCorrupt
	}
	const maxDecoded = 1 << 31
	if v > maxDecoded {
		return 0, 0, ErrSnappyTooLarge
	}
	return int(v), n, nil
}

// SnappyDecode appends the decoding of src to dst. It accepts every element
// type in the format, including the 1- and 4-byte-offset copies the encoder
// above never emits.
func SnappyDecode(dst, src []byte) ([]byte, error) {
	dLen, hdr, err := SnappyDecodedLen(src)
	if err != nil {
		return dst, err
	}
	src = src[hdr:]

	base := len(dst)
	if cap(dst)-base < dLen {
		grown := make([]byte, base, base+dLen)
		copy(grown, dst)
		dst = grown
	}
	out := dst[base : base+dLen]
	d, s := 0, 0
	for s < len(src) {
		tag := src[s] & 0x03
		var length, offset int
		switch tag {
		case snappyTagLiteral:
			x := int(src[s] >> 2)
			s++
			switch {
			case x < 60:
				// length is x+1, no extra bytes
			case x == 60:
				if s+1 > len(src) {
					return dst, ErrSnappyCorrupt
				}
				x = int(src[s])
				s++
			case x == 61:
				if s+2 > len(src) {
					return dst, ErrSnappyCorrupt
				}
				x = int(binary.LittleEndian.Uint16(src[s:]))
				s += 2
			case x == 62:
				if s+3 > len(src) {
					return dst, ErrSnappyCorrupt
				}
				x = int(src[s]) | int(src[s+1])<<8 | int(src[s+2])<<16
				s += 3
			default: // 63
				if s+4 > len(src) {
					return dst, ErrSnappyCorrupt
				}
				x32 := binary.LittleEndian.Uint32(src[s:])
				if x32 > 1<<30 {
					return dst, ErrSnappyCorrupt
				}
				x = int(x32)
				s += 4
			}
			length = x + 1
			if length > len(src)-s || length > dLen-d {
				return dst, ErrSnappyCorrupt
			}
			copy(out[d:], src[s:s+length])
			d += length
			s += length
			continue

		case snappyTagCopy1:
			if s+2 > len(src) {
				return dst, ErrSnappyCorrupt
			}
			length = 4 + int(src[s]>>2)&0x07
			offset = int(src[s]&0xe0)<<3 | int(src[s+1])
			s += 2

		case snappyTagCopy2:
			if s+3 > len(src) {
				return dst, ErrSnappyCorrupt
			}
			length = 1 + int(src[s]>>2)
			offset = int(binary.LittleEndian.Uint16(src[s+1:]))
			s += 3

		default: // snappyTagCopy4
			if s+5 > len(src) {
				return dst, ErrSnappyCorrupt
			}
			length = 1 + int(src[s]>>2)
			off32 := binary.LittleEndian.Uint32(src[s+1:])
			if off32 > 1<<30 {
				return dst, ErrSnappyCorrupt
			}
			offset = int(off32)
			s += 5
		}

		if offset <= 0 || offset > d || length > dLen-d {
			return dst, ErrSnappyCorrupt
		}
		// Copies may overlap their own output (offset < length): copy
		// byte-by-byte in that case so earlier output feeds later output.
		if offset >= length {
			copy(out[d:d+length], out[d-offset:])
			d += length
		} else {
			for i := 0; i < length; i++ {
				out[d] = out[d-offset]
				d++
			}
		}
	}
	if d != dLen {
		return dst, ErrSnappyCorrupt
	}
	return dst[:base+dLen], nil
}
