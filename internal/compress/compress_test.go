package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func allCodecs(t testing.TB) []Codec {
	t.Helper()
	var cs []Codec
	for _, k := range []Kind{None, Snappy, Flate} {
		c, err := ByKind(k)
		if err != nil {
			t.Fatalf("ByKind(%v): %v", k, err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{None: "none", Snappy: "snappy", Flate: "flate", Kind(7): "codec(7)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", byte(k), got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"none", None, true},
		{"", None, true},
		{"snappy", Snappy, true},
		{"flate", Flate, true},
		{"zstd", None, false},
	} {
		got, err := ParseKind(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseKind(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseKind(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestByKindUnknown(t *testing.T) {
	if _, err := ByKind(Kind(200)); err == nil {
		t.Fatal("ByKind(200) should fail")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a codec should panic")
		}
	}()
	Register(noneCodec{})
}

// roundTrip compresses then decompresses src and checks equality.
func roundTrip(t *testing.T, c Codec, src []byte) {
	t.Helper()
	enc := c.Compress(nil, src)
	dec, err := c.Decompress(nil, enc)
	if err != nil {
		t.Fatalf("%v: decompress: %v", c.Kind(), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%v: round trip mismatch: got %d bytes, want %d", c.Kind(), len(dec), len(src))
	}
}

func TestRoundTripFixtures(t *testing.T) {
	fixtures := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("ab"),
		[]byte("abc"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte(strings.Repeat("abcd", 1000)),
		[]byte(strings.Repeat("the quick brown fox ", 500)),
		bytes.Repeat([]byte{0}, 70000), // spans two encoder chunks
		[]byte(strings.Repeat("x", snappyMaxChunk)),
		[]byte(strings.Repeat("x", snappyMaxChunk+1)),
		[]byte(strings.Repeat("x", snappyMaxChunk-1)),
	}
	// A realistic SSTable-block-like payload: sorted keys with shared prefixes.
	var kv bytes.Buffer
	for i := 0; i < 500; i++ {
		kv.WriteString("user")
		kv.WriteByte(byte('0' + i%10))
		kv.WriteString("0000val-payload-")
		kv.WriteByte(byte(i))
	}
	fixtures = append(fixtures, kv.Bytes())

	for _, c := range allCodecs(t) {
		for i, f := range fixtures {
			f := f
			c := c
			t.Run(c.Kind().String(), func(t *testing.T) {
				roundTrip(t, c, f)
				_ = i
			})
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range allCodecs(t) {
		for trial := 0; trial < 30; trial++ {
			n := rng.Intn(200_000)
			src := make([]byte, n)
			switch trial % 3 {
			case 0: // incompressible
				rng.Read(src)
			case 1: // highly compressible
				for i := range src {
					src[i] = byte(i / 100 % 7)
				}
			case 2: // mixed
				for i := range src {
					if i%3 == 0 {
						src[i] = byte(rng.Intn(256))
					} else {
						src[i] = 'k'
					}
				}
			}
			roundTrip(t, c, src)
		}
	}
}

func TestSnappyRoundTripQuick(t *testing.T) {
	f := func(src []byte) bool {
		enc := SnappyEncode(nil, src)
		dec, err := SnappyDecode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSnappyDecodeAppendsToDst(t *testing.T) {
	prefix := []byte("prefix-")
	enc := SnappyEncode(nil, []byte("payload"))
	out, err := SnappyDecode(append([]byte{}, prefix...), enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefix-payload" {
		t.Fatalf("got %q", out)
	}
}

func TestSnappyCompressesRepetition(t *testing.T) {
	src := bytes.Repeat([]byte("0123456789abcdef"), 256) // 4 KiB
	enc := SnappyEncode(nil, src)
	if len(enc) >= len(src)/4 {
		t.Fatalf("snappy encoded 4KiB repetitive block to %d bytes; expected strong compression", len(enc))
	}
	if len(enc) > SnappyMaxEncodedLen(len(src)) {
		t.Fatalf("encoded length %d exceeds MaxEncodedLen %d", len(enc), SnappyMaxEncodedLen(len(src)))
	}
}

func TestSnappyMaxEncodedLenBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, 4096, 65535, 65536, 65537, 200000} {
		src := make([]byte, n)
		rng.Read(src)
		enc := SnappyEncode(nil, src)
		if len(enc) > SnappyMaxEncodedLen(n) {
			t.Fatalf("n=%d: encoded %d > bound %d", n, len(enc), SnappyMaxEncodedLen(n))
		}
	}
}

// TestSnappyDecodeReferenceVectors decodes hand-assembled streams that use
// element types our encoder never emits, verifying full format coverage.
func TestSnappyDecodeReferenceVectors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{
			name: "literal only",
			in:   []byte{5, 4<<2 | snappyTagLiteral, 'h', 'e', 'l', 'l', 'o'},
			want: "hello",
		},
		{
			name: "copy1",
			// "abcd" literal then copy1 of length 4 offset 4 -> "abcdabcd".
			in:   []byte{8, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd', 0<<2 | snappyTagCopy1, 4},
			want: "abcdabcd",
		},
		{
			name: "copy1 with high offset bits",
			// offset = 1<<8 | 4 would need 260 bytes of history; instead use
			// offset encoded via bits 5-7: offset = (1)<<8 + 0 = 256 needs
			// history; keep simple: offset 4 again but length 5.
			in:   []byte{9, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd', 1<<2 | snappyTagCopy1, 4},
			want: "abcdabcda",
		},
		{
			name: "copy2 overlapping",
			// "ab" then copy len 6 offset 2 -> "abababab".
			in:   []byte{8, 1<<2 | snappyTagLiteral, 'a', 'b', 5<<2 | snappyTagCopy2, 2, 0},
			want: "abababab",
		},
		{
			name: "copy4",
			in:   []byte{8, 3<<2 | snappyTagLiteral, 'w', 'x', 'y', 'z', 3<<2 | snappyTagCopy4, 4, 0, 0, 0},
			want: "wxyzwxyz",
		},
		{
			name: "literal with 1-byte length",
			in: append([]byte{70, 60<<2 | snappyTagLiteral, 69},
				bytes.Repeat([]byte{'q'}, 70)...),
			want: strings.Repeat("q", 70),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := SnappyDecode(nil, tc.in)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if string(got) != tc.want {
				t.Fatalf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestSnappyDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{}, // no header
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, // huge length
		{5},                                              // header only, missing body
		{5, 4<<2 | snappyTagLiteral, 'a'},                // truncated literal
		{4, 0<<2 | snappyTagCopy1, 8},                    // copy before any output
		{4, 3<<2 | snappyTagCopy2, 1},                    // truncated copy2
		{4, 3<<2 | snappyTagCopy4, 1, 0, 0},              // truncated copy4
		{2, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd'}, // output overflow
		{9, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd'}, // output underflow
		{8, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd', 3<<2 | snappyTagCopy2, 9, 0}, // offset beyond history
		{8, 3<<2 | snappyTagLiteral, 'a', 'b', 'c', 'd', 3<<2 | snappyTagCopy2, 0, 0}, // zero offset
	}
	for i, in := range cases {
		if _, err := SnappyDecode(nil, in); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestSnappyEncodeCorruptionFlipDetected(t *testing.T) {
	// Not every bit flip must fail decoding (some produce different valid
	// output), but decoding must never panic or read out of bounds.
	src := []byte(strings.Repeat("pipelined compaction for the lsm-tree ", 64))
	enc := SnappyEncode(nil, src)
	for i := 0; i < len(enc); i++ {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0xff
		out, err := SnappyDecode(nil, mut)
		if err == nil && len(out) == 0 && len(src) != 0 {
			t.Fatalf("flip %d: silent empty decode", i)
		}
	}
}

func TestFlateDecompressCorrupt(t *testing.T) {
	c := MustByKind(Flate)
	if _, err := c.Decompress(nil, []byte{0x00, 0x01, 0x02}); err == nil {
		t.Fatal("flate should reject garbage")
	}
}

func TestCodecKindsMatchRegistry(t *testing.T) {
	for _, c := range allCodecs(t) {
		if got := MustByKind(c.Kind()); got.Kind() != c.Kind() {
			t.Errorf("registry returned %v for kind %v", got.Kind(), c.Kind())
		}
	}
}

var benchPayload = func() []byte {
	// KV-block-like payload: sorted keys, semi-random values.
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(1))
	for i := 0; b.Len() < 4096; i++ {
		b.WriteString("user")
		for j := 0; j < 12; j++ {
			b.WriteByte(byte('0' + (i>>uint(j))%10))
		}
		v := make([]byte, 100)
		rng.Read(v[:30])
		b.Write(v)
	}
	return b.Bytes()[:4096]
}()

func BenchmarkSnappyCompress4K(b *testing.B) {
	b.SetBytes(int64(len(benchPayload)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = SnappyEncode(dst[:0], benchPayload)
	}
}

func BenchmarkSnappyDecompress4K(b *testing.B) {
	enc := SnappyEncode(nil, benchPayload)
	b.SetBytes(int64(len(benchPayload)))
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = SnappyDecode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateCompress4K(b *testing.B) {
	c := MustByKind(Flate)
	b.SetBytes(int64(len(benchPayload)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], benchPayload)
	}
}
