// Package compress provides the block codecs used by SSTable data blocks.
//
// Compression is the dominant computation in the paper's compaction pipeline
// (Step 5 COMPRESS is "almost the most costly" computational step, §IV-B),
// so this package implements the paper's codec — the Snappy block format —
// from scratch rather than treating compression as a no-op. A DEFLATE codec
// (heavier CPU) and an identity codec (no CPU) are also provided; switching
// codecs moves the pipeline between CPU-bound and I/O-bound regimes, which
// the ablation benchmarks exploit.
package compress

import (
	"fmt"
	"sync"
)

// Kind identifies a codec in the on-disk format. The byte value is stored in
// every block trailer, so values must never be reused or renumbered.
type Kind byte

const (
	// None stores blocks verbatim.
	None Kind = 0
	// Snappy is the default codec, matching the paper's configuration.
	Snappy Kind = 1
	// Flate uses DEFLATE at the default level: better ratio, much more CPU.
	Flate Kind = 2
)

// String returns the codec's human-readable name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Snappy:
		return "snappy"
	case Flate:
		return "flate"
	default:
		return fmt.Sprintf("codec(%d)", byte(k))
	}
}

// ParseKind maps a codec name to its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "none", "":
		return None, nil
	case "snappy":
		return Snappy, nil
	case "flate":
		return Flate, nil
	default:
		return None, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Codec compresses and decompresses whole blocks. Implementations must be
// safe for concurrent use: the parallel compaction pipeline calls them from
// many goroutines.
type Codec interface {
	// Kind returns the on-disk identifier of the codec.
	Kind() Kind
	// Compress appends the compressed form of src to dst and returns the
	// extended slice.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed form of src to dst and returns the
	// extended slice. It fails if src is not a valid encoding.
	Decompress(dst, src []byte) ([]byte, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[Kind]Codec{}
)

// Register installs a codec for its Kind. Registering the same Kind twice
// panics: codecs define an on-disk format and must be unambiguous.
func Register(c Codec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Kind()]; dup {
		panic(fmt.Sprintf("compress: codec %v registered twice", c.Kind()))
	}
	registry[c.Kind()] = c
}

// ByKind returns the codec registered for k.
func ByKind(k Kind) (Codec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[k]
	if !ok {
		return nil, fmt.Errorf("compress: no codec registered for %v", k)
	}
	return c, nil
}

// MustByKind is ByKind for codecs known to be registered (the three built-ins).
func MustByKind(k Kind) Codec {
	c, err := ByKind(k)
	if err != nil {
		panic(err)
	}
	return c
}

func init() {
	Register(noneCodec{})
	Register(snappyCodec{})
	Register(newFlateCodec())
}

// noneCodec stores blocks verbatim.
type noneCodec struct{}

func (noneCodec) Kind() Kind { return None }

func (noneCodec) Compress(dst, src []byte) []byte { return append(dst, src...) }

func (noneCodec) Decompress(dst, src []byte) ([]byte, error) { return append(dst, src...), nil }
