package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pcplsm/internal/block"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// TestWarmOutputDeliversHotBlocks: blocks whose key range HotRange marks
// hot are handed to WarmOutput with the exact plain contents and file
// offset of the landed block; cold blocks are not.
func TestWarmOutputDeliversHotBlocks(t *testing.T) {
	fs := storage.NewMemFS()
	var lower, upper []kv
	for i := 0; i < 600; i++ {
		lower = append(lower, kv{fmt.Sprintf("user%05d", i), 10, ikey.KindSet, fmt.Sprintf("old-%05d", i)})
		if i%3 == 0 {
			upper = append(upper, kv{fmt.Sprintf("user%05d", i), 20, ikey.KindSet, fmt.Sprintf("new-%05d", i)})
		}
	}
	inputs := []*TableSource{
		buildInputTable(t, fs, "lower.sst", lower, 512),
		buildInputTable(t, fs, "upper.sst", upper, 512),
	}

	// Hot range: user keys in [user00100, user00200].
	hotLo, hotHi := []byte("user00100"), []byte("user00200")
	type warm struct {
		name   string
		offset int64
		plain  []byte
	}
	var mu sync.Mutex
	var warms []warm
	cfg := Config{
		Mode:        ModePCP,
		SubtaskSize: 8 << 10,
		HotRange: func(first, last []byte) bool {
			return bytes.Compare(ikey.UserKey(last), hotLo) >= 0 &&
				bytes.Compare(ikey.UserKey(first), hotHi) <= 0
		},
		WarmOutput: func(name string, offset int64, plain []byte) {
			mu.Lock()
			warms = append(warms, warm{name, offset, append([]byte(nil), plain...)})
			mu.Unlock()
		},
	}
	res, err := Run(cfg, inputs, memSink(fs, "out-"))
	if err != nil {
		t.Fatal(err)
	}
	if len(warms) == 0 {
		t.Fatal("no blocks warmed despite a hot range")
	}

	// Every warmed block must byte-match the plain contents of the block at
	// that offset of the named output table, and every warmed block's keys
	// must intersect the hot range.
	for _, o := range res.Outputs {
		f, err := fs.Open(o.Name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sstable.NewReader(f, ikey.Compare)
		if err != nil {
			t.Fatal(err)
		}
		handles := map[int64]sstable.BlockHandle{}
		for _, e := range r.IndexEntries() {
			handles[e.Handle.Offset] = e.Handle
		}
		for _, w := range warms {
			if w.name != o.Name {
				continue
			}
			h, ok := handles[w.offset]
			if !ok {
				t.Fatalf("warmed offset %d is not a block boundary of %s", w.offset, w.name)
			}
			plain, err := r.ReadBlockData(nil, h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plain, w.plain) {
				t.Fatalf("warmed contents differ from on-disk block at %s+%d", w.name, w.offset)
			}
			bi, err := block.NewIter(plain, ikey.Compare)
			if err != nil {
				t.Fatal(err)
			}
			if !bi.First() {
				t.Fatal("warmed block is empty")
			}
			first := append([]byte(nil), ikey.UserKey(bi.Key())...)
			var last []byte
			for ok := true; ok; ok = bi.Next() {
				last = append(last[:0], ikey.UserKey(bi.Key())...)
			}
			if bytes.Compare(last, hotLo) < 0 || bytes.Compare(first, hotHi) > 0 {
				t.Fatalf("cold block [%s, %s] was warmed", first, last)
			}
		}
		r.Close()
	}

	// Cold ranges must not be warmed: count warmed blocks vs total output
	// blocks — the hot range covers ~1/6 of the key space.
	total := 0
	for _, o := range res.Outputs {
		total += o.Meta.DataBlocks
	}
	if len(warms) >= total {
		t.Fatalf("all %d output blocks warmed; admission by heat is not selective", total)
	}
}

// TestNoWarmWithoutHooks: the engine carries no plain blocks when the
// hooks are absent (the default path stays allocation-identical).
func TestNoWarmWithoutHooks(t *testing.T) {
	fs := storage.NewMemFS()
	var entries []kv
	for i := 0; i < 200; i++ {
		entries = append(entries, kv{fmt.Sprintf("user%05d", i), 5, ikey.KindSet, "v"})
	}
	inputs := []*TableSource{buildInputTable(t, fs, "in.sst", entries, 512)}
	res, err := Run(Config{Mode: ModeSCP}, inputs, memSink(fs, "out-"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
}
