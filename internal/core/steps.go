// Package core implements the paper's contribution: the compaction
// procedures. A compaction merges the key-value entries of overlapping
// tables from adjacent components through seven steps per data block
// (paper §II-A):
//
//	S1 READ        — load physical blocks from the device
//	S2 CHECKSUM    — verify block integrity
//	S3 DECOMPRESS  — restore the key-value entries
//	S4 SORT        — merge entries and build new blocks
//	S5 COMPRESS    — compress the new blocks
//	S6 RE-CHECKSUM — checksum the compressed blocks
//	S7 WRITE       — land the blocks in output tables
//
// The Sequential Compaction Procedure (SCP) runs sub-tasks one after
// another, each executing S1…S7 in order, so the device idles during
// S2–S6 and the CPU idles during S1/S7 (paper Figure 3). The Pipelined
// Compaction Procedure (PCP) splits the work into three stages — read (S1),
// compute (S2–S6), write (S7) — connected by bounded queues, and runs the
// stages concurrently over independent sub-key-range sub-tasks (Figure 4).
// C-PPCP widens the compute stage over k workers (Figure 7(b)); S-PPCP
// widens the I/O stages over k workers/devices (Figure 7(a)).
package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Step identifies one of the paper's seven compaction steps.
type Step int

// The seven steps. Values are 1-based to match the paper's numbering.
const (
	S1Read Step = 1 + iota
	S2Checksum
	S3Decompress
	S4Sort
	S5Compress
	S6ReChecksum
	S7Write
	numSteps = 7
)

// String returns the paper's name for the step.
func (s Step) String() string {
	switch s {
	case S1Read:
		return "read"
	case S2Checksum:
		return "crc"
	case S3Decompress:
		return "decomp"
	case S4Sort:
		return "sort"
	case S5Compress:
		return "comp"
	case S6ReChecksum:
		return "re-crc"
	case S7Write:
		return "write"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// stepClock accumulates per-step durations from concurrent workers.
type stepClock struct {
	ns [numSteps + 1]atomic.Int64
}

// add charges d to step s.
func (c *stepClock) add(s Step, d time.Duration) {
	c.ns[s].Add(int64(d))
}

// time runs f and charges its duration to step s.
func (c *stepClock) time(s Step, f func()) {
	start := time.Now()
	f()
	c.add(s, time.Since(start))
}

// snapshot copies the accumulated durations.
func (c *stepClock) snapshot() StepTimes {
	var st StepTimes
	for i := 1; i <= numSteps; i++ {
		st[i] = time.Duration(c.ns[i].Load())
	}
	return st
}

// StepTimes holds a duration per step, indexed by Step (index 0 unused).
type StepTimes [numSteps + 1]time.Duration

// Get returns the duration of step s.
func (st StepTimes) Get(s Step) time.Duration { return st[s] }

// Total returns the sum over all seven steps — the denominator of the
// paper's Equation 1.
func (st StepTimes) Total() time.Duration {
	var t time.Duration
	for i := 1; i <= numSteps; i++ {
		t += st[i]
	}
	return t
}

// ReadTime returns t_S1.
func (st StepTimes) ReadTime() time.Duration { return st[S1Read] }

// ComputeTime returns the sum of t_S2…t_S6.
func (st StepTimes) ComputeTime() time.Duration {
	return st[S2Checksum] + st[S3Decompress] + st[S4Sort] + st[S5Compress] + st[S6ReChecksum]
}

// WriteTime returns t_S7.
func (st StepTimes) WriteTime() time.Duration { return st[S7Write] }

// Breakdown returns the three-way split the paper's Figures 5, 8 and 9 plot.
func (st StepTimes) Breakdown() Breakdown {
	return Breakdown{Read: st.ReadTime(), Compute: st.ComputeTime(), Write: st.WriteTime()}
}

// Breakdown is the read/compute/write decomposition of compaction time.
type Breakdown struct {
	Read, Compute, Write time.Duration
}

// Total returns the breakdown sum.
func (b Breakdown) Total() time.Duration { return b.Read + b.Compute + b.Write }

// Fractions returns each part as a fraction of the total (zeros if empty).
func (b Breakdown) Fractions() (read, compute, write float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.Read) / t, float64(b.Compute) / t, float64(b.Write) / t
}

// String renders percentages, e.g. "read 42.0% compute 39.5% write 18.5%".
func (b Breakdown) String() string {
	r, c, w := b.Fractions()
	return fmt.Sprintf("read %.1f%% compute %.1f%% write %.1f%%", r*100, c*100, w*100)
}

// Stats aggregates everything measured during one compaction.
type Stats struct {
	// Mode is the procedure that ran (after ModeAuto resolution).
	Mode Mode
	// Steps holds the per-step CPU/device time sums.
	Steps StepTimes
	// Wall is the end-to-end compaction duration.
	Wall time.Duration
	// StageBusy is the busy (non-waiting) time of the read, compute and
	// write stages; for SCP these equal the step sums.
	StageBusy struct {
		Read, Compute, Write time.Duration
	}
	// Pipeline reports the pipeline's shape and dynamics under ModePCP:
	// worker counts, governor resizes, queue high-water marks, and per-stage
	// idle time. Zero-valued under the other modes.
	Pipeline PipelineStats
	// Subtasks is the number of sub-tasks the key range was partitioned into.
	Subtasks int
	// InputTables/OutputTables count tables consumed and produced.
	InputTables  int
	OutputTables int
	// InputBytes is the physical bytes read (S1); OutputBytes written (S7).
	InputBytes  int64
	OutputBytes int64
	// EntriesIn/EntriesOut/EntriesDropped count key-value entries.
	EntriesIn      int64
	EntriesOut     int64
	EntriesDropped int64
}

// Bandwidth returns the paper's compaction-bandwidth metric: the amount of
// data compacted per unit time, in bytes per second.
func (s Stats) Bandwidth() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.InputBytes) / s.Wall.Seconds()
}

// String summarizes the stats for experiment logs.
func (s Stats) String() string {
	return fmt.Sprintf("%d subtasks, %d→%d tables, %.2f MiB in, %.2f MiB out, %.1f MiB/s, %v [%v]",
		s.Subtasks, s.InputTables, s.OutputTables,
		float64(s.InputBytes)/(1<<20), float64(s.OutputBytes)/(1<<20),
		s.Bandwidth()/(1<<20), s.Wall.Round(time.Millisecond), s.Steps.Breakdown())
}
