package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pcplsm/internal/ikey"
	"pcplsm/internal/storage"
)

func TestPartitionEmpty(t *testing.T) {
	if sts := Partition(nil, 1024); sts != nil {
		t.Fatalf("Partition(nil) = %v", sts)
	}
	fs := storage.NewMemFS()
	empty := buildInputTable(t, fs, "e.sst", nil, 4096)
	if sts := Partition([]*TableSource{empty}, 1024); len(sts) != 0 {
		t.Fatalf("empty table produced %d subtasks", len(sts))
	}
}

func TestPartitionSingleSubtask(t *testing.T) {
	fs := storage.NewMemFS()
	src := buildInputTable(t, fs, "t.sst", genEntries(500, 1, 100000, 1), 1024)
	sts := Partition([]*TableSource{src}, 0) // <=0 means one subtask
	if len(sts) != 1 {
		t.Fatalf("%d subtasks, want 1", len(sts))
	}
	st := sts[0]
	if st.Lo != nil || st.Hi != nil {
		t.Fatal("single subtask should be unbounded")
	}
	if len(st.Spans) != 1 || st.Spans[0].From != 0 || st.Spans[0].To != len(src.Entries) {
		t.Fatalf("span = %+v, want full table", st.Spans)
	}
}

func TestPartitionSizesRoughlyRespected(t *testing.T) {
	fs := storage.NewMemFS()
	src := buildInputTable(t, fs, "t.sst", genEntries(5000, 1, 1000000, 2), 1024)
	target := int64(16 << 10)
	sts := Partition([]*TableSource{src}, target)
	if len(sts) < 3 {
		t.Fatalf("only %d subtasks", len(sts))
	}
	for i, st := range sts {
		if st.InputBytes <= 0 {
			t.Fatalf("subtask %d has no bytes", i)
		}
		// Each subtask should not wildly exceed the target (boundary blocks
		// can add at most ~2 blocks of overshoot).
		if st.InputBytes > target*3 {
			t.Fatalf("subtask %d has %d bytes, target %d", i, st.InputBytes, target)
		}
	}
}

func TestPartitionRangesAreOrderedAndAdjacent(t *testing.T) {
	fs := storage.NewMemFS()
	inputs := []*TableSource{
		buildInputTable(t, fs, "a.sst", genEntries(2000, 1, 100000, 3), 512),
		buildInputTable(t, fs, "b.sst", genEntries(2000, 50000, 100000, 4), 512),
	}
	sts := Partition(inputs, 8<<10)
	if len(sts) < 4 {
		t.Fatalf("only %d subtasks", len(sts))
	}
	if sts[0].Lo != nil {
		t.Fatal("first subtask must be open below")
	}
	if sts[len(sts)-1].Hi != nil {
		t.Fatal("last subtask must be open above")
	}
	for i := 1; i < len(sts); i++ {
		if string(sts[i].Lo) != string(sts[i-1].Hi) {
			t.Fatalf("subtasks %d/%d not adjacent", i-1, i)
		}
		if sts[i].Hi != nil && ikey.Compare(sts[i].Lo, sts[i].Hi) >= 0 {
			t.Fatalf("subtask %d range inverted", i)
		}
	}
}

// TestPartitionCoversEveryEntryExactlyOnce is the key partitioner property:
// summing per-subtask in-range entries over all subtasks must touch every
// input entry exactly once.
func TestPartitionCoversEveryEntryExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		fs := storage.NewMemFS()
		nTables := 1 + rng.Intn(4)
		var inputs []*TableSource
		total := 0
		for ti := 0; ti < nTables; ti++ {
			n := 200 + rng.Intn(2000)
			total += n
			entries := genEntries(n, uint64(ti*1000000+1), 100000, int64(trial*10+ti))
			inputs = append(inputs, buildInputTable(t, fs, fmt.Sprintf("t%d.sst", ti), entries, 512))
		}
		subtaskSize := int64(1<<10 + rng.Intn(64<<10))
		sts := Partition(inputs, subtaskSize)

		counted := 0
		for si := range sts {
			st := &sts[si]
			for _, sp := range st.Spans {
				src := inputs[sp.Source]
				for b := sp.From; b < sp.To; b++ {
					plain, err := src.R.ReadBlockData(nil, src.Entries[b].Handle)
					if err != nil {
						t.Fatal(err)
					}
					it := newConcatIter([][]byte{plain})
					for it.next() {
						if st.contains(it.key()) {
							counted++
						}
					}
					if it.err != nil {
						t.Fatal(it.err)
					}
				}
			}
		}
		if counted != total {
			t.Fatalf("trial %d: counted %d entries across subtasks, want %d (subtasks=%d size=%d)",
				trial, counted, total, len(sts), subtaskSize)
		}
	}
}

func TestSubtaskContains(t *testing.T) {
	lo := ikey.Make([]byte("b"), 0, 0)
	hi := ikey.Make([]byte("m"), 0, 0)
	st := &Subtask{Lo: lo, Hi: hi}
	cases := []struct {
		user string
		seq  uint64
		want bool
	}{
		{"a", 5, false}, // before lo
		{"b", 5, false}, // versions of lo's user key sort <= lo
		{"c", 5, true},  // inside
		{"m", 5, true},  // versions of hi's user key sort <= hi: included
		{"n", 5, false}, // after hi
	}
	for _, tc := range cases {
		k := ikey.Make([]byte(tc.user), tc.seq, ikey.KindSet)
		if got := st.contains(k); got != tc.want {
			t.Errorf("contains(%s) = %v, want %v", ikey.String(k), got, tc.want)
		}
	}
	open := &Subtask{}
	if !open.contains(ikey.Make([]byte("anything"), 1, ikey.KindSet)) {
		t.Error("unbounded subtask must contain everything")
	}
}

func TestSpanForRange(t *testing.T) {
	fs := storage.NewMemFS()
	// Keys user00000000..user00000099, one block per ~4 entries.
	var entries []kv
	for i := 0; i < 100; i++ {
		entries = append(entries, kv{fmt.Sprintf("user%08d", i), uint64(i + 1), ikey.KindSet, "v"})
	}
	src := buildInputTable(t, fs, "t.sst", entries, 128)
	n := len(src.Entries)
	if n < 5 {
		t.Fatalf("too few blocks: %d", n)
	}

	// Full range.
	if f, to := spanForRange(src.Entries, nil, nil); f != 0 || to != n {
		t.Fatalf("full range = [%d,%d), want [0,%d)", f, to, n)
	}
	// Range below everything.
	lo := ikey.Make([]byte("zzzz"), 0, 0)
	if f, to := spanForRange(src.Entries, lo, nil); f != to {
		t.Fatalf("empty high range = [%d,%d)", f, to)
	}
	// Range above everything: hi smaller than all keys.
	hi := ikey.Make([]byte("a"), 0, 0)
	if f, to := spanForRange(src.Entries, nil, hi); f != 0 || to != 1 {
		// Only the first block can intersect (its predecessor is -inf).
		t.Fatalf("low range = [%d,%d), want [0,1)", f, to)
	}
	// A middle range must select a middle subset.
	midLo := src.Entries[1].LastKey
	midHi := src.Entries[3].LastKey
	f, to := spanForRange(src.Entries, midLo, midHi)
	if f != 2 || to != 4 {
		t.Fatalf("middle range = [%d,%d), want [2,4)", f, to)
	}
}
