package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements ModePCP with resizable stages. The fixed-width
// pipeline of the paper's Figure 4 is the special case where no Governor is
// configured: ComputeParallel and IOParallel workers are started and keep
// running until the sub-task stream drains. With a Governor, the worker sets
// become elastic — between sub-tasks the governor inspects queue occupancy
// and the per-stage busy clocks and steers the widths, so a compaction that
// turns out compute-bound can widen into C-PPCP mid-run and give the width
// back when the balance shifts.
//
// Correctness under resize: stage completion is tracked by per-stage done
// counters against the total sub-task count, not by worker WaitGroups — the
// compute queue closes when all reads are done and the write queue when all
// computes are done, regardless of how many workers are alive at that
// moment. Retirement is lazy (a worker checks for a pending retire quota
// between jobs), and each stage keeps at least one worker until its input
// channel closes, so the pipeline can never strand a queued sub-task.

// maxStageWorkers bounds any single stage's width regardless of what a
// governor asks for.
const maxStageWorkers = 64

// PipelineTelemetry is the point-in-time snapshot handed to a
// PipelineGovernor between sub-tasks.
type PipelineTelemetry struct {
	// Subtasks is the run's total sub-task count; SubtasksDone the number
	// whose compute stage has finished.
	Subtasks     int
	SubtasksDone int
	// ComputeWorkers and IOWorkers are the current stage widths (IOWorkers
	// covers the read stage; the write stage mirrors it).
	ComputeWorkers int
	IOWorkers      int
	// StageBusy is the busy time accumulated so far by each stage.
	StageBusy Breakdown
	// Queue occupancy: jobs buffered between read→compute and
	// compute→write, against each queue's capacity. A full compute queue
	// means readers outrun compute; an empty one means compute is starved.
	ComputeQueue    int
	ComputeQueueCap int
	WriteQueue      int
	WriteQueueCap   int
}

// PipelineResize is a governor verdict: the desired stage widths. The
// engine clamps both to [1, 64]; returning the current widths unchanged
// leaves the pipeline alone.
type PipelineResize struct {
	Compute int
	IO      int
}

// PipelineGovernor observes a ModePCP run and resizes its stages mid-run.
// Adjust is called from pipeline workers after each sub-task's compute
// stage completes — never concurrently — and must not block: a slow
// governor stalls the stage that called it.
type PipelineGovernor interface {
	Adjust(t PipelineTelemetry) PipelineResize
}

// PipelineStats reports a ModePCP run's shape and dynamics.
type PipelineStats struct {
	// InitialComputeWorkers/InitialIOWorkers are the starting widths;
	// Max* the high-water marks; Final* the widths when the run drained.
	InitialComputeWorkers int
	InitialIOWorkers      int
	MaxComputeWorkers     int
	MaxIOWorkers          int
	FinalComputeWorkers   int
	FinalIOWorkers        int
	// Grows/Shrinks count applied governor resizes (one per stage whose
	// width actually changed).
	Grows   int64
	Shrinks int64
	// ComputeQueueHighWater/WriteQueueHighWater are the deepest the
	// inter-stage queues got.
	ComputeQueueHighWater int
	WriteQueueHighWater   int
	// StageIdle is each stage's summed worker lifetime minus its busy time:
	// the time stage workers spent waiting on queues. Attributing stall to
	// a stage means looking at which stage is busy while the others idle.
	StageIdle Breakdown
}

// pcpStage tracks one resizable worker set. The mutex covers resize
// decisions; workers only touch it once per job, between sub-tasks.
type pcpStage struct {
	mu    sync.Mutex
	live  int // running workers
	quota int // workers asked to retire but not yet exited
	max   int // high-water mark of live

	lifeNs atomic.Int64 // summed worker lifetimes, for idle accounting
}

func (s *pcpStage) init(n int) {
	s.live, s.max = n, n
}

// width is the stage's effective worker count: live minus pending retires.
func (s *pcpStage) width() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live - s.quota
}

// resize steers the stage toward target workers. Pending retirements are
// cancelled before new workers spawn; shrinking only queues retire quota —
// workers leave lazily at their next job boundary. Returns whether the
// effective width changed.
func (s *pcpStage) resize(target int, spawn func()) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	effective := s.live - s.quota
	if target == effective {
		return false
	}
	if target > effective {
		d := target - effective
		if cancel := min(d, s.quota); cancel > 0 {
			s.quota -= cancel
			d -= cancel
		}
		for i := 0; i < d; i++ {
			s.live++
			spawn()
		}
		if s.live > s.max {
			s.max = s.live
		}
		return true
	}
	s.quota += effective - target
	return true
}

// tryRetire reports whether the calling worker should exit to satisfy a
// shrink. The last worker of a stage never retires.
func (s *pcpStage) tryRetire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quota > 0 && s.live > 1 {
		s.quota--
		s.live--
		return true
	}
	if s.quota > 0 {
		// Can't shrink a one-worker stage; drop the stale quota so a later
		// grow doesn't silently cancel against it.
		s.quota = 0
	}
	return false
}

// exited records a worker leaving because its input channel drained.
func (s *pcpStage) exited() {
	s.mu.Lock()
	s.live--
	s.mu.Unlock()
}

// pcpPipe is the shared state of one resizable 3-stage pipeline run.
type pcpPipe struct {
	subCh   chan *Subtask
	compCh  chan *rawJob
	writeCh chan *writeJob

	total int64 // sub-task count

	readsDone    atomic.Int64
	computesDone atomic.Int64

	compQ, writeQ     atomic.Int64 // current queue occupancy
	compQHW, writeQHW atomic.Int64 // queue high-water marks

	read, compute, write pcpStage

	initialCompute, initialIO int
	finalCompute, finalIO     int

	compClose, writeClose sync.Once

	// adjustMu serializes governor calls so Adjust never runs concurrently.
	adjustMu       sync.Mutex
	grows, shrinks atomic.Int64

	wg sync.WaitGroup
}

func hwRatchet(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (p *pcpPipe) closeComp()  { p.compClose.Do(func() { close(p.compCh) }) }
func (p *pcpPipe) closeWrite() { p.writeClose.Do(func() { close(p.writeCh) }) }

// stats snapshots the pipeline's observability block after the run drained.
func (p *pcpPipe) stats(busy Breakdown) PipelineStats {
	idle := func(life *atomic.Int64, b time.Duration) time.Duration {
		d := time.Duration(life.Load()) - b
		if d < 0 {
			d = 0
		}
		return d
	}
	return PipelineStats{
		InitialComputeWorkers: p.initialCompute,
		InitialIOWorkers:      p.initialIO,
		MaxComputeWorkers:     p.compute.max,
		MaxIOWorkers:          p.read.max,
		FinalComputeWorkers:   p.finalCompute,
		FinalIOWorkers:        p.finalIO,
		Grows:                 p.grows.Load(),
		Shrinks:               p.shrinks.Load(),
		ComputeQueueHighWater: int(p.compQHW.Load()),
		WriteQueueHighWater:   int(p.writeQHW.Load()),
		StageIdle: Breakdown{
			Read:    idle(&p.read.lifeNs, busy.Read),
			Compute: idle(&p.compute.lifeNs, busy.Compute),
			Write:   idle(&p.write.lifeNs, busy.Write),
		},
	}
}

// runPipelined is PCP/PPCP: three stages over bounded queues, with
// governor-driven mid-run resizing when Config.Governor is set.
func (e *engine) runPipelined(subtasks []Subtask) {
	if len(subtasks) == 0 {
		return
	}
	qd := e.cfg.QueueDepth
	p := &pcpPipe{
		subCh:          make(chan *Subtask, qd),
		compCh:         make(chan *rawJob, qd),
		writeCh:        make(chan *writeJob, qd),
		total:          int64(len(subtasks)),
		initialCompute: e.cfg.ComputeParallel,
		initialIO:      e.cfg.IOParallel,
	}
	e.pipe = p
	p.read.init(e.cfg.IOParallel)
	p.write.init(e.cfg.IOParallel)
	p.compute.init(e.cfg.ComputeParallel)
	for w := 0; w < e.cfg.IOParallel; w++ {
		p.wg.Add(2)
		go e.readWorker(p)
		go e.writeWorker(p)
	}
	for w := 0; w < e.cfg.ComputeParallel; w++ {
		p.wg.Add(1)
		go e.computeWorker(p)
	}

	go func() {
		defer close(p.subCh)
		for i := range subtasks {
			select {
			case p.subCh <- &subtasks[i]:
			case <-e.cancel:
				return
			}
		}
	}()

	p.wg.Wait()
	p.finalCompute = p.compute.width()
	p.finalIO = p.read.width()
}

// readWorker runs the read stage (S1) for sub-tasks until the stream drains,
// the run cancels, or the governor retires it.
func (e *engine) readWorker(p *pcpPipe) {
	t0 := time.Now()
	retired := false
	defer func() {
		p.read.lifeNs.Add(int64(time.Since(t0)))
		if !retired {
			p.read.exited()
		}
		p.wg.Done()
	}()
	for {
		if p.read.tryRetire() {
			retired = true
			return
		}
		select {
		case st, ok := <-p.subCh:
			if !ok {
				return
			}
			if e.canceled() {
				continue
			}
			begin := time.Now()
			job, err := e.readSubtask(st)
			e.busyRead.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
				continue
			}
			select {
			case p.compCh <- job:
				hwRatchet(&p.compQHW, p.compQ.Add(1))
			case <-e.cancel:
				continue
			}
			if p.readsDone.Add(1) == p.total {
				p.closeComp()
			}
		case <-e.cancel:
			return
		}
	}
}

// computeWorker runs the compute stage (S2–S6). After each sub-task it gives
// the governor a chance to resize the pipeline.
func (e *engine) computeWorker(p *pcpPipe) {
	t0 := time.Now()
	retired := false
	defer func() {
		p.compute.lifeNs.Add(int64(time.Since(t0)))
		if !retired {
			p.compute.exited()
		}
		p.wg.Done()
	}()
	var dil dilation
	for {
		if p.compute.tryRetire() {
			retired = true
			return
		}
		select {
		case job, ok := <-p.compCh:
			if !ok {
				return
			}
			p.compQ.Add(-1)
			if e.canceled() {
				continue
			}
			begin := time.Now()
			wj, err := e.computeSubtask(job, &dil)
			e.busyCompute.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
				continue
			}
			select {
			case p.writeCh <- wj:
				hwRatchet(&p.writeQHW, p.writeQ.Add(1))
			case <-e.cancel:
				continue
			}
			done := p.computesDone.Add(1)
			e.maybeAdjust(p, int(done))
			if done == p.total {
				p.closeWrite()
			}
		case <-e.cancel:
			return
		}
	}
}

// writeWorker runs the write stage (S7).
func (e *engine) writeWorker(p *pcpPipe) {
	t0 := time.Now()
	retired := false
	defer func() {
		p.write.lifeNs.Add(int64(time.Since(t0)))
		if !retired {
			p.write.exited()
		}
		p.wg.Done()
	}()
	for {
		if p.write.tryRetire() {
			retired = true
			return
		}
		select {
		case wj, ok := <-p.writeCh:
			if !ok {
				return
			}
			p.writeQ.Add(-1)
			if e.canceled() {
				continue
			}
			begin := time.Now()
			err := e.writeSubtask(wj)
			e.busyWrite.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
			}
		case <-e.cancel:
			return
		}
	}
}

// maybeAdjust consults the governor after a finished sub-task and applies
// its verdict. Spawning happens from inside a live worker (the caller), so
// the WaitGroup counter is never observed at zero mid-run.
func (e *engine) maybeAdjust(p *pcpPipe, done int) {
	if e.cfg.Governor == nil || int64(done) >= p.total || e.canceled() {
		return
	}
	p.adjustMu.Lock()
	defer p.adjustMu.Unlock()
	t := PipelineTelemetry{
		Subtasks:       int(p.total),
		SubtasksDone:   done,
		ComputeWorkers: p.compute.width(),
		IOWorkers:      p.read.width(),
		StageBusy: Breakdown{
			Read:    time.Duration(e.busyRead.Load()),
			Compute: time.Duration(e.busyCompute.Load()),
			Write:   time.Duration(e.busyWrite.Load()),
		},
		ComputeQueue:    int(p.compQ.Load()),
		ComputeQueueCap: cap(p.compCh),
		WriteQueue:      int(p.writeQ.Load()),
		WriteQueueCap:   cap(p.writeCh),
	}
	r := e.cfg.Governor.Adjust(t)
	comp := clampWorkers(r.Compute)
	io := clampWorkers(r.IO)
	if comp != t.ComputeWorkers {
		if comp > t.ComputeWorkers {
			p.grows.Add(1)
		} else {
			p.shrinks.Add(1)
		}
		p.compute.resize(comp, func() {
			p.wg.Add(1)
			go e.computeWorker(p)
		})
	}
	if io != t.IOWorkers {
		if io > t.IOWorkers {
			p.grows.Add(1)
		} else {
			p.shrinks.Add(1)
		}
		p.read.resize(io, func() {
			p.wg.Add(1)
			go e.readWorker(p)
		})
		p.write.resize(io, func() {
			p.wg.Add(1)
			go e.writeWorker(p)
		})
	}
}

func clampWorkers(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxStageWorkers {
		return maxStageWorkers
	}
	return n
}
