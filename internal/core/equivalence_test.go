package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pcplsm/internal/compress"
	"pcplsm/internal/ikey"
	"pcplsm/internal/storage"
)

// TestEnginesEquivalentUnderRandomConfigs is the randomized engine
// equivalence property: for random input shapes and random engine knobs
// (sub-task size, queue depth, parallelism, codec, block/table sizes,
// tombstone policy, retention), every procedure — SCP, PCP, Deep-PCP,
// C-PPCP, S-PPCP — must produce exactly the same logical entry stream.
func TestEnginesEquivalentUnderRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	codecs := []compress.Kind{compress.None, compress.Snappy, compress.Flate}

	for trial := 0; trial < 8; trial++ {
		// Random inputs: 1-4 tables, overlapping key spaces, duplicate user
		// keys across tables, occasional tombstones.
		fs := storage.NewMemFS()
		nTables := 1 + rng.Intn(4)
		var inputs []*TableSource
		var allEntries [][]kv
		keySpace := 2000 + rng.Intn(20000)
		for ti := 0; ti < nTables; ti++ {
			n := 300 + rng.Intn(1500)
			entries := genEntries(n, uint64(ti*1_000_000+1), keySpace, rng.Int63())
			allEntries = append(allEntries, entries)
			inputs = append(inputs,
				buildInputTable(t, fs, fmt.Sprintf("in%d.sst", ti), append([]kv(nil), entries...), 512+rng.Intn(2048)))
		}
		dropTombs := rng.Intn(2) == 0
		var retain uint64
		if rng.Intn(3) == 0 {
			retain = uint64(rng.Intn(2_000_000)) // random snapshot pin
		}
		base := Config{
			SubtaskSize:     int64(1<<10 + rng.Intn(64<<10)),
			QueueDepth:      1 + rng.Intn(4),
			BlockSize:       512 + rng.Intn(4096),
			TableSize:       int64(8<<10 + rng.Intn(64<<10)),
			Codec:           compress.MustByKind(codecs[rng.Intn(len(codecs))]),
			DropTombstones:  dropTombs,
			RetainSeq:       retain,
			BloomBitsPerKey: rng.Intn(2) * 10,
		}

		collect := func(name string, cfg Config) []kv {
			res, err := Run(cfg, inputs, memSink(fs, fmt.Sprintf("o-%s-%d-", name, trial)))
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			return collectOutputs(t, fs, res.Outputs)
		}

		scpCfg := base
		scpCfg.Mode = ModeSCP
		ref := collect("scp", scpCfg)

		variants := map[string]func(Config) Config{
			"pcp":    func(c Config) Config { c.Mode = ModePCP; return c },
			"deep":   func(c Config) Config { c.Mode = ModeDeepPCP; return c },
			"c-ppcp": func(c Config) Config { c.Mode = ModePCP; c.ComputeParallel = 2 + rng.Intn(3); return c },
			"s-ppcp": func(c Config) Config { c.Mode = ModePCP; c.IOParallel = 2 + rng.Intn(3); return c },
		}
		for name, mk := range variants {
			got := collect(name, mk(base))
			if len(got) != len(ref) {
				t.Fatalf("trial %d %s: %d entries vs scp %d (cfg %+v)",
					trial, name, len(got), len(ref), base)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d %s: entry %d differs: %+v vs %+v",
						trial, name, i, got[i], ref[i])
				}
			}
		}

		// Sanity against first principles: entries are sorted, unique per
		// (user, seq), and every surviving user key's newest version matches
		// the newest version across all inputs when no retention is pinned.
		for i := 1; i < len(ref); i++ {
			a := ikey.Make([]byte(ref[i-1].user), ref[i-1].seq, ref[i-1].kind)
			b := ikey.Make([]byte(ref[i].user), ref[i].seq, ref[i].kind)
			if ikey.Compare(a, b) >= 0 {
				t.Fatalf("trial %d: output out of order at %d", trial, i)
			}
		}
		if retain == 0 {
			want := referenceMerge(allEntries, dropTombs)
			if len(want) != len(ref) {
				t.Fatalf("trial %d: reference %d entries, engines produced %d", trial, len(want), len(ref))
			}
		}
	}
}
