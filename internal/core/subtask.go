package core

import (
	"sort"

	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
)

// TableSource is one input table of a compaction.
type TableSource struct {
	// R reads the table.
	R *sstable.Reader
	// Entries caches the table's index (one entry per data block).
	Entries []sstable.IndexEntry
}

// NewTableSource wraps an open table reader.
func NewTableSource(r *sstable.Reader) *TableSource {
	return &TableSource{R: r, Entries: r.IndexEntries()}
}

// BlockSpan selects the contiguous block range [From, To) of one source.
type BlockSpan struct {
	Source   int // index into the compaction's input slice
	From, To int // data block indices
}

// Subtask is the pipeline's unit of work: one sub-key-range of the
// compaction, holding every input data block whose keys may fall in the
// range. Sub-task key ranges are disjoint and ordered; a block that spans a
// boundary is read by both neighbours, and each emits only the keys inside
// its own range, so every entry flows through exactly one sub-task.
type Subtask struct {
	// Index is the sub-task's position in key order.
	Index int
	// Lo and Hi bound the range: an internal key k belongs to the sub-task
	// iff (Lo == nil or k > Lo) and (Hi == nil or k <= Hi).
	Lo, Hi []byte
	// Spans lists the input blocks intersecting the range.
	Spans []BlockSpan
	// InputBytes is the physical size of the spanned blocks.
	InputBytes int64
}

// contains reports whether internal key k falls inside the sub-task range.
func (st *Subtask) contains(k []byte) bool {
	if st.Lo != nil && ikey.Compare(k, st.Lo) <= 0 {
		return false
	}
	if st.Hi != nil && ikey.Compare(k, st.Hi) > 0 {
		return false
	}
	return true
}

// Partition splits a compaction over inputs into sub-tasks of roughly
// subtaskSize physical input bytes each, cutting only at data block
// boundaries (paper §III-B: "Each sub-key range consists of one or more
// data blocks"). subtaskSize <= 0 yields a single sub-task.
func Partition(inputs []*TableSource, subtaskSize int64) []Subtask {
	type blk struct {
		src, idx int
		last     []byte
		size     int64
	}
	var all []blk
	for si, src := range inputs {
		for bi, e := range src.Entries {
			all = append(all, blk{src: si, idx: bi, last: e.LastKey, size: e.Handle.Length})
		}
	}
	if len(all) == 0 {
		return nil
	}
	sort.SliceStable(all, func(i, j int) bool {
		return ikey.Compare(all[i].last, all[j].last) < 0
	})

	// Choose boundary keys greedily by accumulated physical size. The final
	// block never opens a new boundary, so the last range is never empty.
	// Each boundary is normalized to the maximal internal key of its user
	// key (seq 0, kind 0), so every version of a user key lands in the same
	// sub-task — otherwise two output tables of one level could both hold
	// the key, breaking the level invariant.
	var boundaries [][]byte
	var acc int64
	if subtaskSize > 0 {
		for i, b := range all {
			acc += b.size
			if acc >= subtaskSize && i != len(all)-1 {
				bound := ikey.Make(ikey.UserKey(b.last), 0, 0)
				if len(boundaries) == 0 || ikey.Compare(bound, boundaries[len(boundaries)-1]) > 0 {
					boundaries = append(boundaries, bound)
					acc = 0
				}
			}
		}
	}

	// Materialize one sub-task per range (lo, hi].
	ranges := make([]Subtask, 0, len(boundaries)+1)
	var lo []byte
	for _, hi := range boundaries {
		ranges = append(ranges, Subtask{Lo: lo, Hi: hi})
		lo = hi
	}
	ranges = append(ranges, Subtask{Lo: lo, Hi: nil})

	for ri := range ranges {
		st := &ranges[ri]
		st.Index = ri
		for si, src := range inputs {
			from, to := spanForRange(src.Entries, st.Lo, st.Hi)
			if from >= to {
				continue
			}
			st.Spans = append(st.Spans, BlockSpan{Source: si, From: from, To: to})
			for i := from; i < to; i++ {
				st.InputBytes += src.Entries[i].Handle.Length
			}
		}
	}

	// Drop ranges that ended up with no blocks (possible when a boundary
	// separated ranges covered entirely by one side).
	out := ranges[:0]
	for _, st := range ranges {
		if len(st.Spans) > 0 {
			st.Index = len(out)
			out = append(out, st)
		}
	}
	return out
}

// spanForRange returns the block index range [from, to) of blocks whose key
// span intersects (lo, hi]. Block i holds keys in (last[i-1], last[i]], so
// it intersects iff last[i] > lo and last[i-1] < hi.
func spanForRange(entries []sstable.IndexEntry, lo, hi []byte) (from, to int) {
	n := len(entries)
	if n == 0 {
		return 0, 0
	}
	if lo == nil {
		from = 0
	} else {
		// First block with last > lo.
		from = sort.Search(n, func(i int) bool {
			return ikey.Compare(entries[i].LastKey, lo) > 0
		})
	}
	if hi == nil {
		to = n
	} else {
		// First block with last >= hi; that block may still start below hi,
		// so it is included (to = idx+1). Blocks after it start >= hi.
		idx := sort.Search(n, func(i int) bool {
			return ikey.Compare(entries[i].LastKey, hi) >= 0
		})
		if idx == n {
			to = n
		} else {
			to = idx + 1
		}
	}
	if from > to {
		from = to
	}
	return from, to
}
