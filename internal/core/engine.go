package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pcplsm/internal/block"
	"pcplsm/internal/bloom"
	"pcplsm/internal/compress"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// Mode selects the compaction procedure.
type Mode int

const (
	// ModeAuto, the zero value, resolves to the engine default: ModePCP.
	// Pipelining is the paper's contribution, so a zero-valued Config
	// pipelines; select ModeSCP explicitly for the sequential baseline.
	ModeAuto Mode = iota
	// ModeSCP is the Sequential Compaction Procedure: sub-tasks run one
	// after another, each stepping S1…S7 in order.
	ModeSCP
	// ModePCP is the Pipelined Compaction Procedure: three stages (read /
	// compute / write) run concurrently over the sub-task stream. With
	// ComputeParallel > 1 it is C-PPCP; with IOParallel > 1 it is S-PPCP.
	ModePCP
	// ModeDeepPCP is the five-stage variant the paper rejects in §III-B
	// (read / verify+decompress / merge / compress+checksum / write). It
	// exists for the ablation benchmarks: its finer stages suffer the load
	// imbalance the paper predicts — the merge and compress stages dominate
	// and the others idle — so it trails C-PPCP at equal parallelism.
	ModeDeepPCP
)

// String names the mode, including the parallel variants.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSCP:
		return "scp"
	case ModePCP:
		return "pcp"
	case ModeDeepPCP:
		return "pcp-deep"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// OutputSink allocates output table files. It must be safe for concurrent
// use: S-PPCP's write workers call it in parallel.
type OutputSink func() (name string, f storage.File, err error)

// Config parameterizes one compaction run.
type Config struct {
	// Mode selects SCP or PCP.
	Mode Mode
	// SubtaskSize is the target physical input bytes per sub-task. Zero
	// selects the 512 KiB default (the best point in the paper's Figure
	// 11(a)); a negative value disables partitioning entirely, producing a
	// single sub-task for the whole compaction.
	SubtaskSize int64
	// QueueDepth is the buffer depth of the queues between pipeline stages.
	QueueDepth int
	// ComputeParallel is the number of compute-stage workers (C-PPCP when
	// > 1). Ignored under SCP.
	ComputeParallel int
	// IOParallel is the number of read-stage and write-stage workers
	// (S-PPCP when > 1, paired with a multi-device file system). Ignored
	// under SCP.
	IOParallel int
	// BlockSize is the uncompressed output data block size (default 4 KiB).
	BlockSize int
	// RestartInterval for output blocks.
	RestartInterval int
	// Codec compresses output blocks (default Snappy).
	Codec compress.Codec
	// TableSize caps output table file size (default 2 MiB, paper setting).
	TableSize int64
	// DropTombstones removes deletion markers that survive shadowing; legal
	// only when no older component can hold versions of the dropped keys.
	DropTombstones bool
	// RetainSeq is the smallest live snapshot's sequence number: versions
	// that a snapshot at RetainSeq (or newer) could still read are kept.
	// 0 means no snapshots — only the newest version of each key survives.
	RetainSeq uint64
	// BloomBitsPerKey, when positive, attaches a Bloom filter over user
	// keys to every output table (10 bits/key ≈ 0.8% false positives).
	// Point reads use the filters to skip tables — the bLSM optimization
	// from the paper's related work.
	BloomBitsPerKey int
	// HotRange, when set, reports whether the key range [first, last]
	// (internal keys) of a freshly merged output block is currently hot on
	// the read path. Hot blocks keep their plain (uncompressed) contents in
	// memory through S7 so WarmOutput can re-seed the block cache under the
	// output table's identity — the compaction-surviving cache pre-warm.
	// Called from compute-stage workers, possibly concurrently.
	HotRange func(first, last []byte) bool
	// WarmOutput, when set together with HotRange, receives each hot output
	// block right after S7 lands it: the output table's name, the block's
	// file offset (the ReadBlockData handle offset), and its plain contents.
	// The callee takes ownership of plain. Called from write-stage workers,
	// possibly concurrently.
	WarmOutput func(name string, offset int64, plain []byte)
	// CPUDilation, when >= 2, stretches every compute step (S2–S6) by
	// sleeping (D−1)× its measured duration. Together with scaling the
	// simulated devices by the same factor, this emulates running on a
	// machine with more cores than the host: the sleep portion of
	// "computation" overlaps across compute workers even when the host
	// cannot run them simultaneously, so C-PPCP scaling is observable on
	// small hosts while every CPU-vs-I/O ratio is preserved. 0/1 = off.
	CPUDilation int
	// Governor, when set under ModePCP, is consulted between sub-tasks and
	// may resize the stage worker sets mid-run: ComputeParallel and
	// IOParallel become the starting widths rather than fixed ones. Ignored
	// under the other modes (ModeDeepPCP keeps the paper's fixed five-stage
	// shape; SCP has no stages to widen).
	Governor PipelineGovernor
}

func (c Config) withDefaults() Config {
	if c.Mode == ModeAuto {
		c.Mode = ModePCP
	}
	if c.SubtaskSize == 0 {
		c.SubtaskSize = 512 << 10
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2
	}
	if c.ComputeParallel <= 0 {
		c.ComputeParallel = 1
	}
	if c.IOParallel <= 0 {
		c.IOParallel = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 10
	}
	if c.RestartInterval <= 0 {
		c.RestartInterval = block.DefaultRestartInterval
	}
	if c.Codec == nil {
		c.Codec = compress.MustByKind(compress.Snappy)
	}
	if c.TableSize <= 0 {
		c.TableSize = 2 << 20
	}
	return c
}

// Output describes one produced table.
type Output struct {
	Name string
	Meta sstable.TableMeta
}

// Result is a finished compaction: the output tables (sorted by smallest
// key) and the measured statistics.
type Result struct {
	Outputs []Output
	Stats   Stats
}

// ErrNoInput is returned when Run is given no input tables.
var ErrNoInput = errors.New("core: compaction has no input tables")

// Run executes one compaction over the input tables, writing outputs
// through sink. Input tables may overlap arbitrarily; version shadowing is
// resolved through internal-key sequence numbers.
func Run(cfg Config, inputs []*TableSource, sink OutputSink) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(inputs) == 0 {
		return nil, ErrNoInput
	}
	e := &engine{cfg: cfg, inputs: inputs, sink: sink, cancel: make(chan struct{})}
	subtasks := Partition(inputs, cfg.SubtaskSize)

	start := time.Now()
	switch cfg.Mode {
	case ModeSCP:
		e.runSequential(subtasks)
	case ModePCP:
		e.runPipelined(subtasks)
	case ModeDeepPCP:
		e.runDeepPipeline(subtasks)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	if e.err != nil {
		return nil, e.err
	}

	sort.Slice(e.outputs, func(i, j int) bool {
		return ikey.Compare(e.outputs[i].Meta.Smallest, e.outputs[j].Meta.Smallest) < 0
	})
	stats := Stats{
		Steps:        e.clock.snapshot(),
		Wall:         time.Since(start),
		Subtasks:     len(subtasks),
		InputTables:  len(inputs),
		OutputTables: len(e.outputs),
		InputBytes:   e.inputBytes.Load(),
		OutputBytes:  e.outputBytes.Load(),
		EntriesIn:    e.entriesIn.Load(),
		EntriesOut:   e.entriesOut.Load(),
	}
	stats.EntriesDropped = stats.EntriesIn - stats.EntriesOut
	stats.Mode = cfg.Mode
	stats.StageBusy.Read = time.Duration(e.busyRead.Load())
	stats.StageBusy.Compute = time.Duration(e.busyCompute.Load())
	stats.StageBusy.Write = time.Duration(e.busyWrite.Load())
	if e.pipe != nil {
		stats.Pipeline = e.pipe.stats(stats.StageBusy)
	}
	return &Result{Outputs: e.outputs, Stats: stats}, nil
}

// engine carries the shared state of one compaction run.
type engine struct {
	cfg    Config
	inputs []*TableSource
	sink   OutputSink
	clock  stepClock

	inputBytes, outputBytes          atomic.Int64
	entriesIn, entriesOut            atomic.Int64
	busyRead, busyCompute, busyWrite atomic.Int64

	outMu   sync.Mutex
	outputs []Output

	// pipe is the live 3-stage pipeline state under ModePCP; nil otherwise.
	pipe *pcpPipe

	errOnce sync.Once
	err     error
	cancel  chan struct{}
}

func (e *engine) fail(err error) {
	e.errOnce.Do(func() {
		e.err = err
		close(e.cancel)
	})
}

func (e *engine) canceled() bool {
	select {
	case <-e.cancel:
		return true
	default:
		return false
	}
}

// dilation tracks one worker's CPU-dilation debt. The target extra time is
// charged to the step clock exactly; the sleep itself is settled once per
// sub-task with an oversleep credit carried forward, so OS timer overshoot
// (~1ms per sleep) does not distort measurements.
type dilation struct {
	pending time.Duration // dilation owed but not yet slept
	credit  time.Duration // banked oversleep
}

// settle sleeps off the pending dilation.
func (dil *dilation) settle() {
	target := dil.pending - dil.credit
	dil.pending = 0
	if target <= 0 {
		dil.credit = -target
		return
	}
	t0 := time.Now()
	time.Sleep(target)
	dil.credit = time.Since(t0) - target
}

// computeTime runs one compute step, records its dilated duration, and
// queues the dilation sleep on dil.
func (e *engine) computeTime(dil *dilation, s Step, f func()) {
	start := time.Now()
	f()
	elapsed := time.Since(start)
	if d := e.cfg.CPUDilation; d > 1 {
		extra := elapsed * time.Duration(d-1)
		dil.pending += extra
		elapsed += extra
	}
	e.clock.add(s, elapsed)
}

// rawJob is a sub-task after the read stage: physical blocks per span.
type rawJob struct {
	st  *Subtask
	raw [][][]byte // raw[spanIdx][blockIdx] = physical block bytes
}

// sealedBlock is a finished output block awaiting S7.
type sealedBlock struct {
	first, last []byte
	physical    []byte
	entries     int64
	hashes      []uint32
	// plain holds the uncompressed contents when the block's key range is
	// hot (Config.HotRange) so the write stage can pre-warm the block
	// cache; nil for cold blocks.
	plain []byte
}

// sealedTable groups the sealed blocks of one output table.
type sealedTable struct {
	blocks []sealedBlock
	bytes  int64
}

// writeJob is a sub-task after the compute stage.
type writeJob struct {
	tables []sealedTable
}

// runSequential is SCP: every sub-task runs S1…S7 inline, in key order.
func (e *engine) runSequential(subtasks []Subtask) {
	var dil dilation
	for i := range subtasks {
		job, err := e.readSubtask(&subtasks[i])
		if err != nil {
			e.fail(err)
			return
		}
		wj, err := e.computeSubtask(job, &dil)
		if err != nil {
			e.fail(err)
			return
		}
		if err := e.writeSubtask(wj); err != nil {
			e.fail(err)
			return
		}
	}
	// Under SCP the "stages" are just the step groups.
	e.busyRead.Store(int64(e.clock.snapshot().ReadTime()))
	e.busyCompute.Store(int64(e.clock.snapshot().ComputeTime()))
	e.busyWrite.Store(int64(e.clock.snapshot().WriteTime()))
}

// readSubtask performs S1: one contiguous physical read per span, sliced
// into per-block buffers.
func (e *engine) readSubtask(st *Subtask) (*rawJob, error) {
	job := &rawJob{st: st, raw: make([][][]byte, len(st.Spans))}
	for i, sp := range st.Spans {
		src := e.inputs[sp.Source]
		first := src.Entries[sp.From].Handle
		last := src.Entries[sp.To-1].Handle
		span := sstable.BlockHandle{
			Offset: first.Offset,
			Length: last.Offset + last.Length - first.Offset,
		}
		var buf []byte
		var err error
		e.clock.time(S1Read, func() {
			buf, err = src.R.ReadRaw(nil, span)
		})
		if err != nil {
			return nil, fmt.Errorf("core: S1 read span %d of subtask %d: %w", i, st.Index, err)
		}
		e.inputBytes.Add(span.Length)
		blocks := make([][]byte, sp.To-sp.From)
		for j := sp.From; j < sp.To; j++ {
			h := src.Entries[j].Handle
			off := h.Offset - first.Offset
			blocks[j-sp.From] = buf[off : off+h.Length]
		}
		job.raw[i] = blocks
	}
	return job, nil
}

// plainJob is a sub-task after S2+S3: decompressed input blocks per span.
type plainJob struct {
	st     *Subtask
	plains [][][]byte
}

// plainBlock is a merged output block before compression.
type plainBlock struct {
	first, last []byte
	data        []byte
	entries     int64
	hashes      []uint32 // Bloom filter hashes of the block's user keys
}

// builtJob is a sub-task after S4: merged plain output blocks.
type builtJob struct {
	st        *Subtask
	outBlocks []plainBlock
}

// verifyDecompress performs S2 (checksum verification) and S3
// (decompression) for one sub-task.
func (e *engine) verifyDecompress(job *rawJob, dil *dilation) (*plainJob, error) {
	// S2: verify every input block's checksum.
	payloads := make([][][]byte, len(job.raw))
	var verr error
	e.computeTime(dil, S2Checksum, func() {
		for i, blocks := range job.raw {
			payloads[i] = make([][]byte, len(blocks))
			for j, physical := range blocks {
				p, err := sstable.VerifyBlockChecksum(physical)
				if err != nil {
					verr = fmt.Errorf("core: S2 subtask %d: %w", job.st.Index, err)
					return
				}
				payloads[i][j] = p
			}
		}
	})
	if verr != nil {
		return nil, verr
	}

	// S3: decompress every input block.
	plains := make([][][]byte, len(payloads))
	var derr error
	e.computeTime(dil, S3Decompress, func() {
		for i, ps := range payloads {
			plains[i] = make([][]byte, len(ps))
			for j, p := range ps {
				d, err := sstable.DecompressBlock(nil, p)
				if err != nil {
					derr = fmt.Errorf("core: S3 subtask %d: %w", job.st.Index, err)
					return
				}
				plains[i][j] = d
			}
		}
	})
	if derr != nil {
		return nil, derr
	}
	dil.settle()
	return &plainJob{st: job.st, plains: plains}, nil
}

// mergeBuild performs S4: the k-way merge and output block formation.
func (e *engine) mergeBuild(pj *plainJob, dil *dilation) (*builtJob, error) {
	var outBlocks []plainBlock
	builder := block.NewBuilder(e.cfg.RestartInterval, ikey.Compare)
	var curFirst, curLast []byte
	var curEntries int64
	var curHashes []uint32
	flush := func() {
		if builder.Empty() {
			return
		}
		data := append([]byte(nil), builder.Finish()...)
		outBlocks = append(outBlocks, plainBlock{
			first:   append([]byte(nil), curFirst...),
			last:    append([]byte(nil), curLast...),
			data:    data,
			entries: curEntries,
			hashes:  curHashes,
		})
		builder.Reset()
		curEntries = 0
		curHashes = nil
	}
	var seen, emitted int64
	var merr error
	e.computeTime(dil, S4Sort, func() {
		sources := make([]*concatIter, len(pj.plains))
		for i := range pj.plains {
			sources[i] = newConcatIter(pj.plains[i])
		}
		seen, emitted, merr = mergeEmit(pj.st, sources, e.cfg.DropTombstones, e.cfg.RetainSeq, func(k, v []byte) {
			if builder.Empty() {
				curFirst = append(curFirst[:0], k...)
			}
			builder.Add(k, v)
			if e.cfg.BloomBitsPerKey > 0 {
				curHashes = append(curHashes, bloom.Hash(ikey.UserKey(k)))
			}
			curLast = append(curLast[:0], k...)
			curEntries++
			if builder.SizeEstimate() >= e.cfg.BlockSize {
				flush()
			}
		})
		flush()
	})
	if merr != nil {
		return nil, fmt.Errorf("core: S4 subtask %d: %w", pj.st.Index, merr)
	}
	e.entriesIn.Add(seen)
	e.entriesOut.Add(emitted)
	dil.settle()
	return &builtJob{st: pj.st, outBlocks: outBlocks}, nil
}

// sealSubtask performs S5 (compress) and S6 (re-checksum), and splits the
// sealed blocks into output tables no larger than TableSize.
func (e *engine) sealSubtask(bj *builtJob, dil *dilation) (*writeJob, error) {
	// S5: compress the new blocks.
	compressed := make([][]byte, len(bj.outBlocks))
	e.computeTime(dil, S5Compress, func() {
		for i, b := range bj.outBlocks {
			compressed[i] = sstable.CompressBlock(nil, b.data, e.cfg.Codec)
		}
	})

	// S6: checksum the compressed blocks.
	sealed := make([]sealedBlock, len(bj.outBlocks))
	e.computeTime(dil, S6ReChecksum, func() {
		for i, b := range bj.outBlocks {
			sealed[i] = sealedBlock{
				first:    b.first,
				last:     b.last,
				physical: sstable.ChecksumBlock(compressed[i]),
				entries:  b.entries,
				hashes:   b.hashes,
			}
		}
	})
	dil.settle()
	// Outside the timed S6 step: decide (via the read-path heat map) which
	// blocks to carry to the cache pre-warm. The plain data is already in
	// memory; retaining it costs nothing until S7 hands it off.
	if e.cfg.HotRange != nil && e.cfg.WarmOutput != nil {
		for i, b := range bj.outBlocks {
			if e.cfg.HotRange(b.first, b.last) {
				sealed[i].plain = b.data
			}
		}
	}

	wj := &writeJob{}
	var cur sealedTable
	for _, sb := range sealed {
		if cur.bytes > 0 && cur.bytes+int64(len(sb.physical)) > e.cfg.TableSize {
			wj.tables = append(wj.tables, cur)
			cur = sealedTable{}
		}
		cur.blocks = append(cur.blocks, sb)
		cur.bytes += int64(len(sb.physical))
	}
	if len(cur.blocks) > 0 {
		wj.tables = append(wj.tables, cur)
	}
	return wj, nil
}

// computeSubtask performs S2–S6 for one sub-task (the 3-stage pipeline's
// whole compute stage, per the paper's §III-B argument for not splitting
// it further).
func (e *engine) computeSubtask(job *rawJob, dil *dilation) (*writeJob, error) {
	pj, err := e.verifyDecompress(job, dil)
	if err != nil {
		return nil, err
	}
	bj, err := e.mergeBuild(pj, dil)
	if err != nil {
		return nil, err
	}
	return e.sealSubtask(bj, dil)
}

// writeSubtask performs S7: land every output table of the sub-task.
func (e *engine) writeSubtask(wj *writeJob) error {
	for _, tbl := range wj.tables {
		name, rawFile, err := e.sink()
		if err != nil {
			return fmt.Errorf("core: S7 creating output: %w", err)
		}
		// Coalesce block writes into large requests, as a buffered file
		// (or the page cache) would; the device then sees sub-task-sized
		// writes, matching the paper's S7 I/O granularity.
		f := storage.NewBufferedFile(rawFile, int(e.cfg.SubtaskSize))
		var meta sstable.TableMeta
		var werr error
		// Hot blocks and their file offsets, handed to WarmOutput once the
		// table is durable — warming a table that then fails to land would
		// only waste cache space on unreadable keys.
		type warmBlock struct {
			offset int64
			plain  []byte
		}
		var warms []warmBlock
		e.clock.time(S7Write, func() {
			w := sstable.NewRawWriter(f, ikey.Compare)
			w.FilterBitsPerKey = e.cfg.BloomBitsPerKey
			for _, sb := range tbl.blocks {
				off := w.Offset()
				if werr = w.AddSealedBlock(sb.first, sb.last, sb.physical, sb.entries); werr != nil {
					return
				}
				w.AddFilterHashes(sb.hashes)
				if sb.plain != nil && e.cfg.WarmOutput != nil {
					warms = append(warms, warmBlock{offset: off, plain: sb.plain})
				}
			}
			meta, werr = w.Finish()
			// The output must be durable before the caller journals it and
			// drops the input tables it replaces.
			if werr == nil {
				werr = f.Sync()
			}
		})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("core: S7 writing %s: %w", name, werr)
		}
		for _, wb := range warms {
			e.cfg.WarmOutput(name, wb.offset, wb.plain)
		}
		e.outputBytes.Add(meta.FileSize)
		e.outMu.Lock()
		e.outputs = append(e.outputs, Output{Name: name, Meta: meta})
		e.outMu.Unlock()
	}
	return nil
}
