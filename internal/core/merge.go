package core

import (
	"container/heap"

	"pcplsm/internal/block"
	"pcplsm/internal/ikey"
)

// concatIter iterates the entries of a run of consecutive plain data blocks
// from one table — within a sub-task, each source contributes one such run.
type concatIter struct {
	blocks [][]byte // plain block contents, in key order
	cur    int
	bi     *block.Iter
	err    error
}

func newConcatIter(blocks [][]byte) *concatIter {
	return &concatIter{blocks: blocks, cur: -1}
}

// next advances to the next entry, crossing block boundaries.
func (c *concatIter) next() bool {
	if c.err != nil {
		return false
	}
	for {
		if c.bi != nil {
			if c.bi.Next() {
				return true
			}
			if c.bi.Err() != nil {
				c.err = c.bi.Err()
				return false
			}
		}
		c.cur++
		if c.cur >= len(c.blocks) {
			return false
		}
		bi, err := block.NewIter(c.blocks[c.cur], ikey.Compare)
		if err != nil {
			c.err = err
			return false
		}
		c.bi = bi
		if c.bi.First() {
			return true
		}
		if c.bi.Err() != nil {
			c.err = c.bi.Err()
			return false
		}
	}
}

func (c *concatIter) key() []byte   { return c.bi.Key() }
func (c *concatIter) value() []byte { return c.bi.Value() }

// mergeHeap orders source iterators by current internal key; ties (which
// cannot occur for distinct writes, since sequence numbers are unique) break
// by source index for determinism.
type mergeHeap struct {
	items []*heapItem
}

type heapItem struct {
	it  *concatIter
	src int
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := ikey.Compare(h.items[i].it.key(), h.items[j].it.key())
	if c != 0 {
		return c < 0
	}
	return h.items[i].src < h.items[j].src
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(*heapItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// mergeEmit runs the k-way merge (paper step S4's sorting half) over the
// sources, applying version shadowing, snapshot retention and tombstone
// elimination, and calls emit for every surviving entry inside the
// sub-task's range. It returns (entriesSeen, entriesEmitted).
//
// Shadowing: internal keys of one user key sort newest-first. A version is
// dropped when a newer version of the same user key exists whose sequence
// number is <= retainSeq — i.e. when every live snapshot already sees that
// newer version (the LevelDB rule). retainSeq 0 means "no snapshots": only
// the newest version survives. dropTombstones additionally removes
// deletion markers whose sequence is <= retainSeq (visible to every
// reader), legal only when no lower component can still hold older
// versions of the key (bottom-level compactions).
func mergeEmit(st *Subtask, sources []*concatIter, dropTombstones bool, retainSeq uint64, emit func(k, v []byte)) (seen, emitted int64, err error) {
	if retainSeq == 0 {
		retainSeq = ikey.MaxSeq
	}
	h := &mergeHeap{}
	for si, it := range sources {
		if it.next() {
			h.items = append(h.items, &heapItem{it: it, src: si})
		}
		if it.err != nil {
			return seen, emitted, it.err
		}
	}
	heap.Init(h)

	var lastUser []byte
	haveLast := false
	// prevSeq is the sequence of the previously kept-or-seen version of
	// lastUser; the sentinel (MaxSeq+1) marks "no newer version exists".
	const freshKey = uint64(1) << 60
	prevSeq := freshKey
	for h.Len() > 0 {
		top := h.items[0]
		k, v := top.it.key(), top.it.value()
		if st.contains(k) {
			// Entries outside the range belong to a neighbouring sub-task
			// (their block straddles the boundary) and are not counted here.
			seen++
			user := ikey.UserKey(k)
			if !haveLast || string(user) != string(lastUser) {
				lastUser = append(lastUser[:0], user...)
				haveLast = true
				prevSeq = freshKey
			}
			switch {
			case prevSeq <= retainSeq:
				// A newer version is visible to every snapshot: this one is
				// dead for all readers.
			case dropTombstones && ikey.KindOf(k) == ikey.KindDelete && ikey.Seq(k) <= retainSeq:
				// Tombstone visible to every reader and nothing deeper can
				// resurface: elide it (and the retention rule above will
				// drop the older versions it shadows).
			default:
				emit(k, v)
				emitted++
			}
			prevSeq = ikey.Seq(k)
		}
		if top.it.next() {
			heap.Fix(h, 0)
		} else {
			if top.it.err != nil {
				return seen, emitted, top.it.err
			}
			heap.Pop(h)
		}
	}
	return seen, emitted, nil
}
