package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"pcplsm/internal/compress"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// kv is a test entry: user key, seq, kind, value.
type kv struct {
	user string
	seq  uint64
	kind ikey.Kind
	val  string
}

// buildInputTable writes entries (sorted by internal key) into a new table.
func buildInputTable(t testing.TB, fs storage.FS, name string, entries []kv, blockSize int) *TableSource {
	t.Helper()
	sort.Slice(entries, func(i, j int) bool {
		a := ikey.Make([]byte(entries[i].user), entries[i].seq, entries[i].kind)
		b := ikey.Make([]byte(entries[j].user), entries[j].seq, entries[j].kind)
		return ikey.Compare(a, b) < 0
	})
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{BlockSize: blockSize, Compare: ikey.Compare})
	for _, e := range entries {
		if err := w.Add(ikey.Make([]byte(e.user), e.seq, e.kind), []byte(e.val)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sstable.NewReader(rf, ikey.Compare)
	if err != nil {
		t.Fatal(err)
	}
	return NewTableSource(r)
}

// memSink allocates sequentially numbered output files on fs.
func memSink(fs storage.FS, prefix string) OutputSink {
	var n atomic.Int64
	return func() (string, storage.File, error) {
		name := fmt.Sprintf("%s%06d.sst", prefix, n.Add(1))
		f, err := fs.Create(name)
		return name, f, err
	}
}

// referenceMerge computes the expected surviving entries: newest version per
// user key, optionally dropping tombstones.
func referenceMerge(inputs [][]kv, dropTombstones bool) []kv {
	var all []kv
	for _, in := range inputs {
		all = append(all, in...)
	}
	sort.Slice(all, func(i, j int) bool {
		a := ikey.Make([]byte(all[i].user), all[i].seq, all[i].kind)
		b := ikey.Make([]byte(all[j].user), all[j].seq, all[j].kind)
		return ikey.Compare(a, b) < 0
	})
	var out []kv
	lastUser := ""
	have := false
	for _, e := range all {
		if have && e.user == lastUser {
			continue
		}
		lastUser, have = e.user, true
		if dropTombstones && e.kind == ikey.KindDelete {
			continue
		}
		out = append(out, e)
	}
	return out
}

// collectOutputs reads back every output table and returns its entries in
// key order.
func collectOutputs(t testing.TB, fs storage.FS, outs []Output) []kv {
	t.Helper()
	var got []kv
	for _, o := range outs {
		f, err := fs.Open(o.Name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sstable.NewReader(f, ikey.Compare)
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIter()
		for ok := it.First(); ok; ok = it.Next() {
			got = append(got, kv{
				user: string(ikey.UserKey(it.Key())),
				seq:  ikey.Seq(it.Key()),
				kind: ikey.KindOf(it.Key()),
				val:  string(it.Value()),
			})
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		r.Close()
	}
	return got
}

func genEntries(n int, seqBase uint64, keySpace int, seed int64) []kv {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []kv
	for len(out) < n {
		u := fmt.Sprintf("user%08d", rng.Intn(keySpace))
		if seen[u] {
			continue
		}
		seen[u] = true
		kind := ikey.KindSet
		if rng.Intn(10) == 0 {
			kind = ikey.KindDelete
		}
		out = append(out, kv{user: u, seq: seqBase + uint64(len(out)), kind: kind,
			val: fmt.Sprintf("val-%d-%d", seqBase, rng.Int63())})
	}
	return out
}

// engineConfigs enumerates the four procedures.
func engineConfigs() map[string]Config {
	return map[string]Config{
		"scp":    {Mode: ModeSCP},
		"pcp":    {Mode: ModePCP},
		"c-ppcp": {Mode: ModePCP, ComputeParallel: 4},
		"s-ppcp": {Mode: ModePCP, IOParallel: 4},
	}
}

func TestAllEnginesMatchReference(t *testing.T) {
	upper := genEntries(3000, 100000, 50000, 1)
	lower1 := genEntries(2000, 1, 50000, 2)
	lower2 := genEntries(2000, 50000, 50000, 3)
	want := referenceMerge([][]kv{upper, lower1, lower2}, false)

	for name, cfg := range engineConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			fs := storage.NewMemFS()
			inputs := []*TableSource{
				buildInputTable(t, fs, "u.sst", append([]kv(nil), upper...), 1024),
				buildInputTable(t, fs, "l1.sst", append([]kv(nil), lower1...), 1024),
				buildInputTable(t, fs, "l2.sst", append([]kv(nil), lower2...), 1024),
			}
			cfg.SubtaskSize = 32 << 10
			cfg.TableSize = 64 << 10
			res, err := Run(cfg, inputs, memSink(fs, "out-"))
			if err != nil {
				t.Fatal(err)
			}
			got := collectOutputs(t, fs, res.Outputs)
			if len(got) != len(want) {
				t.Fatalf("%d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
				}
			}
			if res.Stats.EntriesOut != int64(len(want)) {
				t.Errorf("Stats.EntriesOut = %d, want %d", res.Stats.EntriesOut, len(want))
			}
			if res.Stats.Subtasks < 2 {
				t.Errorf("expected multiple subtasks, got %d", res.Stats.Subtasks)
			}
			if res.Stats.OutputTables != len(res.Outputs) {
				t.Errorf("OutputTables mismatch")
			}
		})
	}
}

func TestShadowingNewestWins(t *testing.T) {
	fs := storage.NewMemFS()
	upper := []kv{{"k1", 100, ikey.KindSet, "new"}, {"k2", 101, ikey.KindDelete, ""}}
	lower := []kv{{"k1", 5, ikey.KindSet, "old"}, {"k2", 6, ikey.KindSet, "old2"}, {"k3", 7, ikey.KindSet, "keep"}}
	inputs := []*TableSource{
		buildInputTable(t, fs, "u.sst", upper, 4096),
		buildInputTable(t, fs, "l.sst", lower, 4096),
	}
	res, err := Run(Config{Mode: ModePCP}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	got := collectOutputs(t, fs, res.Outputs)
	want := []kv{
		{"k1", 100, ikey.KindSet, "new"},
		{"k2", 101, ikey.KindDelete, ""},
		{"k3", 7, ikey.KindSet, "keep"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries: %+v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if res.Stats.EntriesDropped != 2 {
		t.Errorf("EntriesDropped = %d, want 2", res.Stats.EntriesDropped)
	}
}

func TestDropTombstones(t *testing.T) {
	fs := storage.NewMemFS()
	upper := []kv{{"a", 10, ikey.KindDelete, ""}, {"b", 11, ikey.KindSet, "bv"}}
	lower := []kv{{"a", 1, ikey.KindSet, "av"}, {"c", 2, ikey.KindDelete, ""}}
	inputs := []*TableSource{
		buildInputTable(t, fs, "u.sst", upper, 4096),
		buildInputTable(t, fs, "l.sst", lower, 4096),
	}
	res, err := Run(Config{Mode: ModeSCP, DropTombstones: true}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	got := collectOutputs(t, fs, res.Outputs)
	if len(got) != 1 || got[0].user != "b" {
		t.Fatalf("tombstone elimination failed: %+v", got)
	}
}

// TestScpPcpIdenticalOutput checks that all engines produce byte-identical
// table contents (determinism: pipelining must not change results).
func TestScpPcpIdenticalOutput(t *testing.T) {
	upper := genEntries(2000, 50000, 20000, 7)
	lower := genEntries(3000, 1, 20000, 8)

	type tableDump struct {
		smallest string
		content  []byte
	}
	dump := func(cfgName string, cfg Config) []tableDump {
		fs := storage.NewMemFS()
		inputs := []*TableSource{
			buildInputTable(t, fs, "u.sst", append([]kv(nil), upper...), 1024),
			buildInputTable(t, fs, "l.sst", append([]kv(nil), lower...), 1024),
		}
		cfg.SubtaskSize = 16 << 10
		cfg.TableSize = 32 << 10
		res, err := Run(cfg, inputs, memSink(fs, "o-"))
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		var dumps []tableDump
		for _, o := range res.Outputs {
			data, err := storage.ReadAll(fs, o.Name)
			if err != nil {
				t.Fatal(err)
			}
			dumps = append(dumps, tableDump{smallest: string(o.Meta.Smallest), content: data})
		}
		sort.Slice(dumps, func(i, j int) bool { return dumps[i].smallest < dumps[j].smallest })
		return dumps
	}

	ref := dump("scp", Config{Mode: ModeSCP})
	for name, cfg := range engineConfigs() {
		got := dump(name, cfg)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d tables, scp has %d", name, len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(got[i].content, ref[i].content) {
				t.Fatalf("%s: table %d differs from scp output", name, i)
			}
		}
	}
}

func TestSingleTableCompaction(t *testing.T) {
	// Compacting a single table (move/rewrite) must preserve everything.
	fs := storage.NewMemFS()
	entries := genEntries(1000, 1, 100000, 4)
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 512)}
	res, err := Run(Config{Mode: ModePCP, SubtaskSize: 8 << 10}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	got := collectOutputs(t, fs, res.Outputs)
	want := referenceMerge([][]kv{entries}, false)
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
}

func TestRunNoInputs(t *testing.T) {
	if _, err := Run(Config{}, nil, memSink(storage.NewMemFS(), "o-")); err != ErrNoInput {
		t.Fatalf("err = %v, want ErrNoInput", err)
	}
}

func TestEmptyInputTables(t *testing.T) {
	fs := storage.NewMemFS()
	inputs := []*TableSource{buildInputTable(t, fs, "e.sst", nil, 4096)}
	res, err := Run(Config{Mode: ModePCP}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 || res.Stats.Subtasks != 0 {
		t.Fatalf("empty input produced %d outputs, %d subtasks", len(res.Outputs), res.Stats.Subtasks)
	}
}

func TestTableSizeSplitsOutputs(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(5000, 1, 1000000, 5)
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)}
	res, err := Run(Config{Mode: ModeSCP, TableSize: 16 << 10, Codec: compress.MustByKind(compress.None)},
		inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) < 4 {
		t.Fatalf("expected several output tables, got %d", len(res.Outputs))
	}
	for _, o := range res.Outputs {
		if o.Meta.FileSize > (16<<10)+8<<10 {
			t.Errorf("table %s is %d bytes, exceeds cap", o.Name, o.Meta.FileSize)
		}
	}
	// Outputs must be disjoint and ordered.
	for i := 1; i < len(res.Outputs); i++ {
		prev, cur := res.Outputs[i-1].Meta, res.Outputs[i].Meta
		if ikey.Compare(prev.Largest, cur.Smallest) >= 0 {
			t.Fatalf("outputs %d and %d overlap: %s vs %s", i-1, i,
				ikey.String(prev.Largest), ikey.String(cur.Smallest))
		}
	}
}

func TestNoUserKeySpansOutputTables(t *testing.T) {
	// Multiple versions of one user key must never end up in different
	// output tables (level invariant).
	fs := storage.NewMemFS()
	var entries []kv
	for i := 0; i < 200; i++ {
		u := fmt.Sprintf("user%04d", i)
		for v := 0; v < 20; v++ {
			entries = append(entries, kv{u, uint64(i*100 + v + 1), ikey.KindSet, fmt.Sprintf("v%d", v)})
		}
	}
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", entries, 512)}
	// Tiny sub-tasks force boundaries between versions if unnormalized.
	res, err := Run(Config{Mode: ModePCP, SubtaskSize: 2 << 10, TableSize: 8 << 10}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	// Shadowing keeps one version per user key, so simply assert the user
	// key ranges of output tables do not overlap.
	for i := 1; i < len(res.Outputs); i++ {
		prevLargest := ikey.UserKey(res.Outputs[i-1].Meta.Largest)
		curSmallest := ikey.UserKey(res.Outputs[i].Meta.Smallest)
		if string(prevLargest) > string(curSmallest) {
			t.Fatalf("user key ranges overlap between outputs %d and %d", i-1, i)
		}
	}
	got := collectOutputs(t, fs, res.Outputs)
	if len(got) != 200 {
		t.Fatalf("expected 200 surviving entries, got %d", len(got))
	}
	for _, e := range got {
		if e.val != "v19" {
			t.Fatalf("entry %s kept version %q, want v19", e.user, e.val)
		}
	}
}

func TestStatsPlausible(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(4000, 1, 1000000, 6)
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)}
	res, err := Run(Config{Mode: ModeSCP, SubtaskSize: 32 << 10}, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.InputBytes <= 0 || s.OutputBytes <= 0 {
		t.Fatalf("byte counters: %+v", s)
	}
	if s.Wall <= 0 || s.Bandwidth() <= 0 {
		t.Fatalf("wall/bandwidth: %v %f", s.Wall, s.Bandwidth())
	}
	if s.EntriesIn != 4000 || s.EntriesOut != 4000 {
		t.Fatalf("entries: in=%d out=%d", s.EntriesIn, s.EntriesOut)
	}
	for _, step := range []Step{S1Read, S2Checksum, S3Decompress, S4Sort, S5Compress, S6ReChecksum, S7Write} {
		if s.Steps.Get(step) < 0 {
			t.Fatalf("negative time for %v", step)
		}
	}
	if s.Steps.Get(S4Sort) == 0 {
		t.Fatal("S4 took zero time")
	}
	b := s.Steps.Breakdown()
	r, c, w := b.Fractions()
	if r+c+w < 0.99 || r+c+w > 1.01 {
		t.Fatalf("fractions do not sum to 1: %v %v %v", r, c, w)
	}
	if s.String() == "" || b.String() == "" {
		t.Fatal("empty stats strings")
	}
}

func TestCorruptInputBlockFailsCompaction(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(500, 1, 100000, 9)
	buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)

	// Corrupt a data block in the middle of the file.
	data, _ := storage.ReadAll(fs, "t.sst")
	mut := append([]byte{}, data...)
	mut[len(mut)/3] ^= 0xff
	if err := storage.WriteFile(fs, "bad.sst", mut); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("bad.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sstable.NewReader(f, ikey.Compare)
	if err != nil {
		t.Skip("corruption landed in the index; covered elsewhere")
	}
	for name, cfg := range engineConfigs() {
		cfg.SubtaskSize = 8 << 10
		_, err := Run(cfg, []*TableSource{NewTableSource(r)}, memSink(fs, "o-"+name))
		if err == nil {
			t.Fatalf("%s: corrupt input compacted without error", name)
		}
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(1000, 1, 100000, 10)
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)}
	failing := func() (string, storage.File, error) {
		return "", nil, fmt.Errorf("disk full")
	}
	for name, cfg := range engineConfigs() {
		cfg.SubtaskSize = 8 << 10
		if _, err := Run(cfg, inputs, failing); err == nil {
			t.Fatalf("%s: sink error not propagated", name)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeSCP.String() != "scp" || ModePCP.String() != "pcp" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestStepString(t *testing.T) {
	names := map[Step]string{
		S1Read: "read", S2Checksum: "crc", S3Decompress: "decomp", S4Sort: "sort",
		S5Compress: "comp", S6ReChecksum: "re-crc", S7Write: "write",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q want %q", s, s.String(), want)
		}
	}
}

func TestUnknownModeRejected(t *testing.T) {
	fs := storage.NewMemFS()
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", []kv{{"a", 1, ikey.KindSet, "v"}}, 4096)}
	if _, err := Run(Config{Mode: Mode(42)}, inputs, memSink(fs, "o-")); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
