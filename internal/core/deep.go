package core

import (
	"sync"
	"time"
)

// runDeepPipeline executes the five-stage pipeline the paper's §III-B
// considers and rejects: Step 1 and Step 7 as I/O stages plus the compute
// steps split into three stages (S2+S3, S4, S5+S6), each on its own
// worker. The paper's objections — uneven stage times cause load
// imbalance, data must migrate between workers, and the scheme does not
// scale — show up directly in the ablation benchmarks: the merge and
// compress stages dominate while verify/decompress idles, so this variant
// trails C-PPCP with the same number of workers.
func (e *engine) runDeepPipeline(subtasks []Subtask) {
	qd := e.cfg.QueueDepth
	subCh := make(chan *Subtask, qd)
	rawCh := make(chan *rawJob, qd)
	plainCh := make(chan *plainJob, qd)
	builtCh := make(chan *builtJob, qd)
	writeCh := make(chan *writeJob, qd)

	go func() {
		defer close(subCh)
		for i := range subtasks {
			select {
			case subCh <- &subtasks[i]:
			case <-e.cancel:
				return
			}
		}
	}()

	var readWg sync.WaitGroup
	for w := 0; w < e.cfg.IOParallel; w++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			for st := range subCh {
				if e.canceled() {
					continue
				}
				begin := time.Now()
				job, err := e.readSubtask(st)
				e.busyRead.Add(int64(time.Since(begin)))
				if err != nil {
					e.fail(err)
					continue
				}
				select {
				case rawCh <- job:
				case <-e.cancel:
				}
			}
		}()
	}
	go func() {
		readWg.Wait()
		close(rawCh)
	}()

	// Stage 2: verify + decompress.
	var vdWg sync.WaitGroup
	vdWg.Add(1)
	go func() {
		defer vdWg.Done()
		var dil dilation
		for job := range rawCh {
			if e.canceled() {
				continue
			}
			begin := time.Now()
			pj, err := e.verifyDecompress(job, &dil)
			e.busyCompute.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
				continue
			}
			select {
			case plainCh <- pj:
			case <-e.cancel:
			}
		}
	}()
	go func() {
		vdWg.Wait()
		close(plainCh)
	}()

	// Stage 3: merge.
	var mergeWg sync.WaitGroup
	mergeWg.Add(1)
	go func() {
		defer mergeWg.Done()
		var dil dilation
		for pj := range plainCh {
			if e.canceled() {
				continue
			}
			begin := time.Now()
			bj, err := e.mergeBuild(pj, &dil)
			e.busyCompute.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
				continue
			}
			select {
			case builtCh <- bj:
			case <-e.cancel:
			}
		}
	}()
	go func() {
		mergeWg.Wait()
		close(builtCh)
	}()

	// Stage 4: compress + re-checksum.
	var sealWg sync.WaitGroup
	sealWg.Add(1)
	go func() {
		defer sealWg.Done()
		var dil dilation
		for bj := range builtCh {
			if e.canceled() {
				continue
			}
			begin := time.Now()
			wj, err := e.sealSubtask(bj, &dil)
			e.busyCompute.Add(int64(time.Since(begin)))
			if err != nil {
				e.fail(err)
				continue
			}
			select {
			case writeCh <- wj:
			case <-e.cancel:
			}
		}
	}()
	go func() {
		sealWg.Wait()
		close(writeCh)
	}()

	var writeWg sync.WaitGroup
	for w := 0; w < e.cfg.IOParallel; w++ {
		writeWg.Add(1)
		go func() {
			defer writeWg.Done()
			for wj := range writeCh {
				if e.canceled() {
					continue
				}
				begin := time.Now()
				err := e.writeSubtask(wj)
				e.busyWrite.Add(int64(time.Since(begin)))
				if err != nil {
					e.fail(err)
				}
			}
		}()
	}
	writeWg.Wait()
}
