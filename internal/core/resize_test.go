package core

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"pcplsm/internal/storage"
)

// scriptedGovernor replays a fixed sequence of width verdicts, one per
// Adjust call, then holds the last one.
type scriptedGovernor struct {
	script []PipelineResize

	mu    sync.Mutex
	calls int
	seen  []PipelineTelemetry
}

func (g *scriptedGovernor) Adjust(t PipelineTelemetry) PipelineResize {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seen = append(g.seen, t)
	i := g.calls
	g.calls++
	if i >= len(g.script) {
		i = len(g.script) - 1
	}
	return g.script[i]
}

// resizeDump runs cfg over a fixed two-table input set and returns the
// output tables (bytes, sorted by smallest key) plus the run's Result.
func resizeDump(t *testing.T, cfg Config) ([][]byte, *Result) {
	t.Helper()
	upper := genEntries(3000, 50000, 20000, 17)
	lower := genEntries(4000, 1, 20000, 18)
	fs := storage.NewMemFS()
	inputs := []*TableSource{
		buildInputTable(t, fs, "u.sst", append([]kv(nil), upper...), 1024),
		buildInputTable(t, fs, "l.sst", append([]kv(nil), lower...), 1024),
	}
	cfg.SubtaskSize = 16 << 10
	cfg.TableSize = 32 << 10
	res, err := Run(cfg, inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatalf("run %v: %v", cfg.Mode, err)
	}
	type tableDump struct {
		smallest string
		content  []byte
	}
	var dumps []tableDump
	for _, o := range res.Outputs {
		data, err := storage.ReadAll(fs, o.Name)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, tableDump{smallest: string(o.Meta.Smallest), content: data})
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].smallest < dumps[j].smallest })
	out := make([][]byte, len(dumps))
	for i := range dumps {
		out[i] = dumps[i].content
	}
	return out, res
}

func assertSameTables(t *testing.T, name string, got, ref [][]byte) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d tables, reference has %d", name, len(got), len(ref))
	}
	for i := range ref {
		if !bytes.Equal(got[i], ref[i]) {
			t.Fatalf("%s: table %d differs from reference output", name, i)
		}
	}
}

// TestGovernorResizeMidRun: a governor that grows the pipeline to 3 compute
// + 2 I/O workers and later shrinks it back produces byte-identical output
// to a fixed-width run, and the resize dynamics land in Stats.Pipeline.
func TestGovernorResizeMidRun(t *testing.T) {
	ref, fixedRes := resizeDump(t, Config{Mode: ModePCP})
	if fixedRes.Stats.Subtasks < 6 {
		t.Fatalf("only %d sub-tasks; need enough for the script to play out",
			fixedRes.Stats.Subtasks)
	}

	gov := &scriptedGovernor{script: []PipelineResize{
		{Compute: 3, IO: 2}, // grow both stages
		{Compute: 3, IO: 2}, // hold
		{Compute: 1, IO: 1}, // shrink back
	}}
	got, res := resizeDump(t, Config{Mode: ModePCP, Governor: gov})

	if gov.calls == 0 {
		t.Fatal("governor was never consulted")
	}
	p := res.Stats.Pipeline
	if p.MaxComputeWorkers < 3 {
		t.Errorf("MaxComputeWorkers = %d, want >= 3", p.MaxComputeWorkers)
	}
	if p.MaxIOWorkers < 2 {
		t.Errorf("MaxIOWorkers = %d, want >= 2", p.MaxIOWorkers)
	}
	if p.Grows < 1 || p.Shrinks < 1 {
		t.Errorf("Grows/Shrinks = %d/%d, want both >= 1", p.Grows, p.Shrinks)
	}
	if p.InitialComputeWorkers != 1 || p.InitialIOWorkers != 1 {
		t.Errorf("initial widths = %d/%d, want 1/1",
			p.InitialComputeWorkers, p.InitialIOWorkers)
	}
	if res.Stats.Mode != ModePCP {
		t.Errorf("Stats.Mode = %v, want pcp", res.Stats.Mode)
	}
	for _, tel := range gov.seen {
		if tel.SubtasksDone < 1 || tel.SubtasksDone > tel.Subtasks {
			t.Fatalf("telemetry SubtasksDone %d out of range [1,%d]",
				tel.SubtasksDone, tel.Subtasks)
		}
		if tel.ComputeWorkers < 1 || tel.IOWorkers < 1 {
			t.Fatalf("telemetry widths %d/%d below 1", tel.ComputeWorkers, tel.IOWorkers)
		}
	}
	assertSameTables(t, "resized", got, ref)
}

// TestGovernorVerdictClamped: absurd governor verdicts are clamped to
// [1, maxStageWorkers] and the run still completes correctly.
func TestGovernorVerdictClamped(t *testing.T) {
	ref, _ := resizeDump(t, Config{Mode: ModePCP})
	gov := &scriptedGovernor{script: []PipelineResize{
		{Compute: -5, IO: 0},      // below the floor
		{Compute: 100000, IO: 99}, // above the ceiling
		{Compute: 1, IO: 1},
	}}
	got, res := resizeDump(t, Config{Mode: ModePCP, Governor: gov})
	if mx := res.Stats.Pipeline.MaxComputeWorkers; mx > maxStageWorkers {
		t.Errorf("MaxComputeWorkers = %d, exceeded the clamp %d", mx, maxStageWorkers)
	}
	assertSameTables(t, "clamped", got, ref)
}

// TestModeAutoResolvesToPCP: the zero-valued Mode pipelines.
func TestModeAutoResolvesToPCP(t *testing.T) {
	refTables, _ := resizeDump(t, Config{Mode: ModeSCP})
	got, res := resizeDump(t, Config{}) // Mode zero value = ModeAuto
	if res.Stats.Mode != ModePCP {
		t.Fatalf("Stats.Mode = %v, want pcp (ModeAuto must resolve to PCP)", res.Stats.Mode)
	}
	if ModeAuto.String() != "auto" {
		t.Fatalf("ModeAuto.String() = %q", ModeAuto.String())
	}
	assertSameTables(t, "auto", got, refTables)
}

// TestPipelineIdleAccounting: a PCP run records worker idle time consistent
// with lifetimes (idle >= 0 enforced by construction; busy must be > 0).
func TestPipelineIdleAccounting(t *testing.T) {
	_, res := resizeDump(t, Config{Mode: ModePCP, ComputeParallel: 2, IOParallel: 2})
	s := res.Stats
	if s.StageBusy.Read <= 0 || s.StageBusy.Compute <= 0 || s.StageBusy.Write <= 0 {
		t.Fatalf("stage busy times not all positive: %+v", s.StageBusy)
	}
	p := s.Pipeline
	if p.InitialComputeWorkers != 2 || p.InitialIOWorkers != 2 {
		t.Fatalf("initial widths = %d/%d, want 2/2", p.InitialComputeWorkers, p.InitialIOWorkers)
	}
	if p.StageIdle.Read < 0 || p.StageIdle.Compute < 0 || p.StageIdle.Write < 0 {
		t.Fatalf("negative stage idle: %+v", p.StageIdle)
	}
}
