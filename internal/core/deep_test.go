package core

import (
	"bytes"
	"sort"
	"testing"

	"pcplsm/internal/storage"
)

// TestDeepPipelineMatchesReference: the 5-stage variant must produce
// exactly the same results as SCP.
func TestDeepPipelineMatchesReference(t *testing.T) {
	upper := genEntries(2500, 100000, 40000, 21)
	lower := genEntries(2500, 1, 40000, 22)
	want := referenceMerge([][]kv{upper, lower}, false)

	fs := storage.NewMemFS()
	inputs := []*TableSource{
		buildInputTable(t, fs, "u.sst", append([]kv(nil), upper...), 1024),
		buildInputTable(t, fs, "l.sst", append([]kv(nil), lower...), 1024),
	}
	res, err := Run(Config{Mode: ModeDeepPCP, SubtaskSize: 16 << 10, TableSize: 64 << 10},
		inputs, memSink(fs, "o-"))
	if err != nil {
		t.Fatal(err)
	}
	got := collectOutputs(t, fs, res.Outputs)
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestDeepPipelineByteIdenticalToScp: pipelining depth must not change the
// produced tables.
func TestDeepPipelineByteIdenticalToScp(t *testing.T) {
	entries := genEntries(3000, 1, 100000, 23)
	dump := func(mode Mode) [][]byte {
		fs := storage.NewMemFS()
		inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)}
		res, err := Run(Config{Mode: mode, SubtaskSize: 16 << 10, TableSize: 32 << 10},
			inputs, memSink(fs, "o-"))
		if err != nil {
			t.Fatal(err)
		}
		var dumps [][]byte
		for _, o := range res.Outputs {
			data, err := storage.ReadAll(fs, o.Name)
			if err != nil {
				t.Fatal(err)
			}
			dumps = append(dumps, data)
		}
		sort.Slice(dumps, func(i, j int) bool { return bytes.Compare(dumps[i], dumps[j]) < 0 })
		return dumps
	}
	ref := dump(ModeSCP)
	deep := dump(ModeDeepPCP)
	if len(ref) != len(deep) {
		t.Fatalf("table count differs: %d vs %d", len(ref), len(deep))
	}
	for i := range ref {
		if !bytes.Equal(ref[i], deep[i]) {
			t.Fatalf("table %d differs between scp and pcp-deep", i)
		}
	}
}

// TestDeepPipelineErrorPaths: sink failures propagate through all five
// stages without deadlock.
func TestDeepPipelineErrorPaths(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(1000, 1, 100000, 24)
	inputs := []*TableSource{buildInputTable(t, fs, "t.sst", append([]kv(nil), entries...), 1024)}
	failing := func() (string, storage.File, error) {
		return "", nil, errSinkFull
	}
	if _, err := Run(Config{Mode: ModeDeepPCP, SubtaskSize: 8 << 10}, inputs, failing); err == nil {
		t.Fatal("sink error not propagated through deep pipeline")
	}
}

var errSinkFull = storage.ErrExist // any sentinel error works for the test

func TestDeepModeString(t *testing.T) {
	if ModeDeepPCP.String() != "pcp-deep" {
		t.Fatalf("String = %q", ModeDeepPCP.String())
	}
}
