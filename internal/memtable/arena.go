package memtable

import "sync/atomic"

// DefaultArenaChunk is the byte-arena chunk size used when Config.ChunkSize
// is zero. Chunks are small enough that a nearly-empty memtable costs little
// and large enough that a busy shard allocates a handful of chunks, not
// thousands.
const DefaultArenaChunk = 64 << 10

// arena is a chunked append-only byte allocator. Key and value bytes are
// carved out of the current chunk; when a memtable is dropped the whole
// arena is freed as a few chunk slices instead of millions of tiny objects.
//
// Only the shard's single writer allocates. Readers never touch the arena
// directly — they reach allocated bytes through node key/value subslices
// whose visibility is guaranteed by the skiplist's atomic next-pointer
// publication (the copy into the arena happens-before the node is linked).
// The reserved/used counters are atomics only so Stats snapshots can read
// them without stopping the writer.
type arena struct {
	chunkSize int
	cur       []byte   // current chunk; len = bytes handed out, cap = chunk size
	chunks    [][]byte // all chunks, including cur, kept alive until the arena dies
	reserved  atomic.Int64
	used      atomic.Int64
}

func newArena(chunkSize int) *arena {
	if chunkSize <= 0 {
		chunkSize = DefaultArenaChunk
	}
	return &arena{chunkSize: chunkSize}
}

// alloc returns a fresh n-byte slice carved from the arena. The bytes are
// zeroed (Go-allocated) and owned by the caller until the arena is dropped.
// Requests larger than the chunk size get a dedicated chunk so huge values
// don't force a huge chunk-size default.
func (a *arena) alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > a.chunkSize {
		b := make([]byte, n)
		a.chunks = append(a.chunks, b)
		a.reserved.Add(int64(n))
		a.used.Add(int64(n))
		return b
	}
	if cap(a.cur)-len(a.cur) < n {
		a.cur = make([]byte, 0, a.chunkSize)
		a.chunks = append(a.chunks, a.cur)
		a.reserved.Add(int64(a.chunkSize))
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	a.used.Add(int64(n))
	return a.cur[off : off+n : off+n]
}
