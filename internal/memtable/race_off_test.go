//go:build !race

package memtable

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
