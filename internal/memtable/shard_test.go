package memtable

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pcplsm/internal/ikey"
)

func TestNormalShards(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{7, 8}, {8, 8}, {9, 16}, {33, 64}, {64, 64}, {1000, 64},
	}
	for _, c := range cases {
		if got := NormalShards(c.in); got != c.want {
			t.Errorf("NormalShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// applyAll pushes ops through Apply in groups, mimicking the commit leader.
func applyAll(m *Memtable, ops []Op, groupSize int) {
	for len(ops) > 0 {
		n := groupSize
		if n > len(ops) {
			n = len(ops)
		}
		m.Apply(ops[:n])
		ops = ops[n:]
	}
}

// TestShardedMatchesUnsharded checks the core equivalence contract: any shard
// count yields exactly the same merged contents and scan order as a single
// skiplist.
func TestShardedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5A4D))
	var ops []Op
	for seq := uint64(1); seq <= 4000; seq++ {
		k := []byte(fmt.Sprintf("user%04d", rng.Intn(700)))
		kind, val := ikey.KindSet, []byte(fmt.Sprintf("val-%d", seq))
		if rng.Intn(10) == 0 {
			kind, val = ikey.KindDelete, nil
		}
		ops = append(ops, Op{Seq: seq, Kind: kind, Key: k, Val: val})
	}

	ref := New(Config{Shards: 1})
	applyAll(ref, ops, 17)
	for _, shards := range []int{2, 4, 8} {
		m := New(Config{Shards: shards})
		applyAll(m, ops, 17)

		if got, want := m.Count(), ref.Count(); got != want {
			t.Fatalf("shards=%d: count %d, want %d", shards, got, want)
		}
		ri, mi := ref.NewIter(), m.NewIter()
		rok, mok := ri.First(), mi.First()
		n := 0
		for rok && mok {
			if string(ri.Key()) != string(mi.Key()) || string(ri.Value()) != string(mi.Value()) {
				t.Fatalf("shards=%d: entry %d diverges: %q/%q vs %q/%q",
					shards, n, ri.Key(), ri.Value(), mi.Key(), mi.Value())
			}
			rok, mok = ri.Next(), mi.Next()
			n++
		}
		if rok != mok {
			t.Fatalf("shards=%d: iterators end at different lengths after %d entries", shards, n)
		}

		// Point reads agree too, at a few snapshot seqs.
		for _, seq := range []uint64{1, 137, 2000, 4000} {
			for i := 0; i < 700; i++ {
				k := []byte(fmt.Sprintf("user%04d", i))
				rv, rd, rk := ref.Get(k, seq)
				mv, md, mk := m.Get(k, seq)
				if rd != md || rk != mk || string(rv) != string(mv) {
					t.Fatalf("shards=%d: Get(%q,%d) = (%q,%v,%v), want (%q,%v,%v)",
						shards, k, seq, mv, md, mk, rv, rd, rk)
				}
			}
		}
	}
}

// TestShardedStatsSkew exercises the shard-skew gauges.
func TestShardedStatsSkew(t *testing.T) {
	m := New(Config{Shards: 4})
	for seq := uint64(1); seq <= 512; seq++ {
		m.Put(seq, []byte(fmt.Sprintf("k%05d", seq)), []byte("v"))
	}
	st := m.Stats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", st.Shards)
	}
	if st.Entries != 512 {
		t.Fatalf("Entries = %d, want 512", st.Entries)
	}
	if st.MaxShardEntries < st.MinShardEntries {
		t.Fatalf("max %d < min %d", st.MaxShardEntries, st.MinShardEntries)
	}
	if st.ArenaUsed <= 0 || st.ArenaReserved < st.ArenaUsed {
		t.Fatalf("arena gauges inconsistent: reserved=%d used=%d", st.ArenaReserved, st.ArenaUsed)
	}
}

// TestShardedApplyConcurrentReaders is the -race stress for the sharding
// contract: one committer goroutine issues Apply groups (each fanning out to
// parallel per-shard appliers), while lock-free point readers and full merged
// scans run concurrently. Readers must only ever observe well-formed values
// for the keys they find, and scans must always come back in sorted internal
// key order.
func TestShardedApplyConcurrentReaders(t *testing.T) {
	// Force the parallel-apply path even on a single-CPU host (Apply gates
	// the fan-out on GOMAXPROCS): the race detector checks the contract from
	// goroutine interleavings, not real parallelism.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	m := New(Config{Shards: 8, ChunkSize: 16 << 10})
	const (
		keys   = 400
		groups = 300
		group  = 16 // >= minParallelApply so the parallel path runs
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Point readers: a value for key i must always be "val-i-<seq>".
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 99))
			for !stop.Load() {
				i := rng.Intn(keys)
				k := []byte(fmt.Sprintf("user%04d", i))
				if v, deleted, ok := m.Get(k, ^uint64(0)>>8); ok && !deleted {
					want := fmt.Sprintf("val-%d-", i)
					if len(v) < len(want) || string(v[:len(want)]) != want {
						t.Errorf("reader saw torn value %q for key %q", v, k)
						return
					}
				}
			}
		}(r)
	}

	// Scanner: merged iterator must stay sorted mid-write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			it := m.NewIter()
			var prev []byte
			for ok := it.First(); ok; ok = it.Next() {
				if prev != nil && ikey.Compare(prev, it.Key()) >= 0 {
					t.Errorf("scan out of order: %q then %q", prev, it.Key())
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
		}
	}()

	// Single committer: groups span shards, triggering parallel appliers.
	seq := uint64(0)
	rng := rand.New(rand.NewSource(7))
	for g := 0; g < groups; g++ {
		ops := make([]Op, 0, group)
		for j := 0; j < group; j++ {
			seq++
			i := rng.Intn(keys)
			ops = append(ops, Op{
				Seq:  seq,
				Kind: ikey.KindSet,
				Key:  []byte(fmt.Sprintf("user%04d", i)),
				Val:  []byte(fmt.Sprintf("val-%d-%d", i, seq)),
			})
		}
		m.Apply(ops)
	}
	stop.Store(true)
	wg.Wait()

	if got := m.Count(); got != int64(groups*group) {
		t.Fatalf("Count = %d, want %d", got, groups*group)
	}
}
