package memtable

import (
	"fmt"
	"testing"

	"pcplsm/internal/ikey"
)

// TestInsertAllocs pins the arena payoff: inserting a version allocates
// nothing per call (node, key and value bytes all come from the arena;
// chunk refills and node-slab growth amortize to well under one allocation
// per insert). The seed implementation paid 4 allocs per insert.
func TestInsertAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is skewed by the race detector")
	}
	m := New(Config{Shards: 4})
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
	}
	seq, i := uint64(0), 0
	val := []byte("value-payload-0123456789")
	avg := testing.AllocsPerRun(20000, func() {
		seq++
		m.Put(seq, keys[i%len(keys)], val)
		i++
	})
	if avg >= 1 {
		t.Fatalf("memtable insert: %.3f allocs/op, want < 1 (seed was 4)", avg)
	}
}

// TestGetAllocs pins the zero-allocation point read: the decomposed-target
// seek materializes no search key and the returned value aliases the arena.
func TestGetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is skewed by the race detector")
	}
	m := New(Config{Shards: 4})
	keys := make([][]byte, 2048)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
		m.Put(uint64(i+1), keys[i], []byte("value"))
	}
	i := 0
	avg := testing.AllocsPerRun(20000, func() {
		v, deleted, ok := m.Get(keys[i%len(keys)], ikey.MaxSeq)
		if !ok || deleted || len(v) == 0 {
			t.Fatal("lookup failed")
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("memtable get: %.3f allocs/op, want 0", avg)
	}
}
