package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"pcplsm/internal/ikey"
)

func TestSkiplistInsertAndScan(t *testing.T) {
	s := NewSkiplist(1)
	var want []string
	for i := 0; i < 500; i++ {
		u := fmt.Sprintf("key%05d", (i*7919)%5000)
		want = append(want, u)
		s.Insert(ikey.Make([]byte(u), uint64(i+1), ikey.KindSet), []byte("v"))
	}
	sort.Strings(want)
	it := s.NewIter()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if got := string(ikey.UserKey(it.Key())); got != want[i] {
			t.Fatalf("entry %d: got %q want %q", i, got, want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("scanned %d entries, want %d", i, len(want))
	}
	if s.Count() != int64(len(want)) {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := NewSkiplist(2)
	for i := 0; i < 100; i++ {
		s.Insert(ikey.Make([]byte(fmt.Sprintf("k%03d", i*2)), 1, ikey.KindSet), nil)
	}
	it := s.NewIter()
	// Seek to existing key.
	if !it.Seek(ikey.SearchKey([]byte("k010"), ikey.MaxSeq)) {
		t.Fatal("seek failed")
	}
	if got := string(ikey.UserKey(it.Key())); got != "k010" {
		t.Fatalf("landed on %q", got)
	}
	// Seek between keys lands on successor.
	if !it.Seek(ikey.SearchKey([]byte("k011"), ikey.MaxSeq)) {
		t.Fatal("seek failed")
	}
	if got := string(ikey.UserKey(it.Key())); got != "k012" {
		t.Fatalf("landed on %q", got)
	}
	// Seek past end.
	if it.Seek(ikey.SearchKey([]byte("z"), ikey.MaxSeq)) {
		t.Fatal("seek past end should be invalid")
	}
}

func TestMemtableGetVersions(t *testing.T) {
	m := New(Config{})
	m.Put(1, []byte("a"), []byte("v1"))
	m.Put(5, []byte("a"), []byte("v5"))
	m.Delete(8, []byte("a"))
	m.Put(10, []byte("a"), []byte("v10"))

	cases := []struct {
		snap    uint64
		want    string
		deleted bool
		ok      bool
	}{
		{0, "", false, false},
		{1, "v1", false, true},
		{4, "v1", false, true},
		{5, "v5", false, true},
		{7, "v5", false, true},
		{8, "", true, true},
		{9, "", true, true},
		{10, "v10", false, true},
		{ikey.MaxSeq, "v10", false, true},
	}
	for _, tc := range cases {
		v, deleted, ok := m.Get([]byte("a"), tc.snap)
		if ok != tc.ok || deleted != tc.deleted || string(v) != tc.want {
			t.Errorf("Get(a, %d) = (%q, del=%v, ok=%v), want (%q, %v, %v)",
				tc.snap, v, deleted, ok, tc.want, tc.deleted, tc.ok)
		}
	}
}

func TestMemtableGetMissing(t *testing.T) {
	m := New(Config{})
	m.Put(1, []byte("b"), []byte("v"))
	if _, _, ok := m.Get([]byte("a"), ikey.MaxSeq); ok {
		t.Fatal("Get(a) should miss")
	}
	if _, _, ok := m.Get([]byte("c"), ikey.MaxSeq); ok {
		t.Fatal("Get(c) should miss")
	}
	// Prefix of an existing key must not match.
	if _, _, ok := m.Get([]byte(""), ikey.MaxSeq); ok {
		t.Fatal("Get(\"\") should miss")
	}
}

func TestMemtableValueIsolation(t *testing.T) {
	m := New(Config{})
	v := []byte("mutable")
	m.Put(1, []byte("k"), v)
	v[0] = 'X'
	got, _, _ := m.Get([]byte("k"), ikey.MaxSeq)
	if string(got) != "mutable" {
		t.Fatalf("memtable aliased caller's value: %q", got)
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New(Config{})
	prev := m.ApproximateSize()
	for i := 0; i < 100; i++ {
		m.Put(uint64(i+1), []byte(fmt.Sprintf("key%d", i)), bytes.Repeat([]byte{'v'}, 100))
		if sz := m.ApproximateSize(); sz <= prev {
			t.Fatalf("size did not grow at %d", i)
		} else {
			prev = sz
		}
	}
}

// TestQuickAgainstReferenceMap compares memtable reads against a reference
// model for random operation sequences.
func TestQuickAgainstReferenceMap(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		m := New(Config{})
		ref := map[string]string{} // latest value; "" + tombstone map
		dead := map[string]bool{}
		seq := uint64(0)
		for _, o := range ops {
			seq++
			k := fmt.Sprintf("k%03d", o.Key)
			if o.Del {
				m.Delete(seq, []byte(k))
				dead[k] = true
				delete(ref, k)
			} else {
				v := fmt.Sprintf("v%d", o.Val)
				m.Put(seq, []byte(k), []byte(v))
				ref[k] = v
				delete(dead, k)
			}
		}
		for i := 0; i < 256; i++ {
			k := fmt.Sprintf("k%03d", i)
			v, deleted, ok := m.Get([]byte(k), ikey.MaxSeq)
			if want, exists := ref[k]; exists {
				if !ok || deleted || string(v) != want {
					return false
				}
			} else if dead[k] {
				if !ok || !deleted {
					return false
				}
			} else if ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersDuringInsert exercises the single-writer/N-reader
// contract under the race detector.
func TestConcurrentReadersDuringInsert(t *testing.T) {
	m := New(Config{})
	const total = 2000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := fmt.Sprintf("key%06d", rng.Intn(total))
				if v, deleted, ok := m.Get([]byte(k), ikey.MaxSeq); ok && !deleted {
					// Values are written as the key's own text; verify.
					if string(v) != k {
						t.Errorf("read tearing: key %q has value %q", k, v)
						return
					}
				}
				// Also scan a little.
				it := m.NewIter()
				prev := []byte(nil)
				for ok := it.First(); ok && rng.Intn(50) != 0; ok = it.Next() {
					if prev != nil && ikey.Compare(prev, it.Key()) >= 0 {
						t.Error("iterator out of order during concurrent insert")
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}(int64(r))
	}
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key%06d", i)
		m.Put(uint64(i+1), []byte(k), []byte(k))
	}
	close(done)
	wg.Wait()
	if m.Count() != total {
		t.Fatalf("Count = %d, want %d", m.Count(), total)
	}
}

func TestIterSeesSortedInternalKeys(t *testing.T) {
	m := New(Config{})
	// Multiple versions of the same user key must appear newest-first.
	m.Put(1, []byte("x"), []byte("old"))
	m.Put(9, []byte("x"), []byte("new"))
	m.Put(5, []byte("x"), []byte("mid"))
	it := m.NewIter()
	var seqs []uint64
	for ok := it.First(); ok; ok = it.Next() {
		seqs = append(seqs, ikey.Seq(it.Key()))
	}
	want := []uint64{9, 5, 1}
	if len(seqs) != 3 || seqs[0] != want[0] || seqs[1] != want[1] || seqs[2] != want[2] {
		t.Fatalf("seq order = %v, want %v", seqs, want)
	}
}

func BenchmarkInsert(b *testing.B) {
	m := New(Config{})
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i*7919%100000))
	}
	val := bytes.Repeat([]byte{'v'}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i+1), keys[i%len(keys)], val)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(Config{})
	for i := 0; i < 10000; i++ {
		m.Put(uint64(i+1), []byte(fmt.Sprintf("user%016d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("user%016d", i%10000)), ikey.MaxSeq)
	}
}
