//go:build race

package memtable

// raceEnabled reports whether the race detector is active. The allocation
// guards skip under -race: the detector instruments allocations and makes
// testing.AllocsPerRun report its own bookkeeping.
const raceEnabled = true
