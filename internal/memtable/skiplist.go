// Package memtable implements the in-memory component C0 of the LSM-tree: a
// skiplist keyed by internal keys, supporting a single concurrent writer and
// any number of lock-free readers (the LevelDB concurrency contract — the DB
// serializes writers with its own mutex).
package memtable

import (
	"math/rand"
	"sync/atomic"

	"pcplsm/internal/ikey"
)

const (
	maxHeight = 12
	// branching is the inverse probability of growing a node by one level.
	branching = 4
)

// node is a skiplist node. key and value are immutable after insertion; the
// next pointers are published with atomic stores so readers never observe a
// half-linked node.
type node struct {
	key   []byte // internal key
	value []byte
	next  []atomic.Pointer[node]
}

func newNode(key, value []byte, height int) *node {
	return &node{key: key, value: value, next: make([]atomic.Pointer[node], height)}
}

// Skiplist is an ordered map from internal key to value.
type Skiplist struct {
	head   *node
	height atomic.Int32
	size   atomic.Int64 // approximate memory footprint in bytes
	count  atomic.Int64
	rng    *rand.Rand // guarded by the single-writer contract
}

// NewSkiplist returns an empty skiplist. seed fixes the node-height sequence
// so tests are reproducible.
func NewSkiplist(seed int64) *Skiplist {
	s := &Skiplist{
		head: newNode(nil, nil, maxHeight),
		rng:  rand.New(rand.NewSource(seed)),
	}
	s.height.Store(1)
	return s
}

// randomHeight draws a height with P(h) ∝ branching^-h.
func (s *Skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= target, also filling
// prev with the rightmost node before target at every level when prev is
// non-nil.
func (s *Skiplist) findGreaterOrEqual(target []byte, prev *[maxHeight]*node) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && ikey.Compare(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Insert adds an internal key/value pair. Keys must be unique — the DB
// guarantees this by stamping every write with a fresh sequence number.
// Insert must only be called from one goroutine at a time.
func (s *Skiplist) Insert(key, value []byte) {
	var prev [maxHeight]*node
	s.findGreaterOrEqual(key, &prev)

	h := s.randomHeight()
	if cur := int(s.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = s.head
		}
		// Readers that race with this store simply use the old height and
		// miss the taller levels — still correct, just slower.
		s.height.Store(int32(h))
	}

	n := newNode(key, value, h)
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
	}
	// Publish bottom-up so a reader following level-0 links always finds the
	// node once any level points at it.
	for i := 0; i < h; i++ {
		prev[i].next[i].Store(n)
	}
	s.size.Add(int64(len(key) + len(value) + 48)) // 48 ≈ node overhead
	s.count.Add(1)
}

// ApproximateSize returns the approximate memory footprint in bytes.
func (s *Skiplist) ApproximateSize() int64 { return s.size.Load() }

// Count returns the number of inserted entries.
func (s *Skiplist) Count() int64 { return s.count.Load() }

// Iter iterates a snapshot-consistent view of the skiplist (it sees at least
// all entries present when movement began; concurrent inserts may or may not
// appear, matching LevelDB semantics).
type Iter struct {
	list *Skiplist
	n    *node
}

// NewIter returns an iterator positioned before the first entry.
func (s *Skiplist) NewIter() *Iter { return &Iter{list: s} }

// Valid reports whether the iterator is on an entry.
func (it *Iter) Valid() bool { return it.n != nil }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return it.n.key }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.n.value }

// First moves to the first entry.
func (it *Iter) First() bool {
	it.n = it.list.head.next[0].Load()
	return it.n != nil
}

// Next advances one entry.
func (it *Iter) Next() bool {
	it.n = it.n.next[0].Load()
	return it.n != nil
}

// Seek moves to the first entry with internal key >= target.
func (it *Iter) Seek(target []byte) bool {
	it.n = it.list.findGreaterOrEqual(target, nil)
	return it.n != nil
}
