// Package memtable implements the in-memory component C0 of the LSM-tree: a
// set of skiplists keyed by internal keys. Each skiplist supports a single
// concurrent writer and any number of lock-free readers (the LevelDB
// concurrency contract); the Memtable wrapper shards user keys across
// skiplists so independent shard writers can apply a write group in
// parallel.
package memtable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"pcplsm/internal/ikey"
)

const (
	maxHeight = 12
	// branching is the inverse probability of growing a node by one level.
	branching = 4

	// headRef is the node ref of the head sentinel (the first slab slot).
	// Ref 0 is reserved as the nil link.
	headRef = 1

	// nodeBlockBase is the node count of the first slab block; block i holds
	// nodeBlockBase<<i nodes so capacity doubles per block.
	nodeBlockBase = 512
	maxNodeBlocks = 20

	// nodeSize approximates the in-memory footprint of one slab node for
	// size accounting (two slice headers + maxHeight uint32 links).
	nodeSize = 96
)

// node is a skiplist node. key and value are immutable subslices of the
// arena after insertion; next holds node refs (slab index + 1, 0 = nil)
// published with atomic stores so readers never observe a half-linked node.
// Nodes live in slab blocks instead of the heap, so a memtable's nodes are
// freed as ~a dozen blocks rather than millions of objects.
type node struct {
	key []byte // internal key
	val []byte
	// next[i] is the level-i successor ref. A fixed-height array keeps every
	// node in one slab slot; the unused tail of short nodes stays zero.
	next [maxHeight]atomic.Uint32
}

// Skiplist is an ordered map from internal key to value, arena-backed.
type Skiplist struct {
	arena *arena
	// blocks is the node slab: geometrically growing []node blocks, each
	// published once with an atomic store before any node inside it becomes
	// reachable, so lock-free readers may deref refs without synchronizing
	// with slab growth.
	blocks [maxNodeBlocks]atomic.Pointer[[]node]
	nNodes uint32 // nodes allocated, including the head; writer-only
	height atomic.Int32
	size   atomic.Int64 // approximate memory footprint in bytes
	count  atomic.Int64
	// rng is an inline xorshift state for node heights. Each skiplist owns
	// its state, so parallel shard writers never share RNG state — the
	// single-writer contract is per shard, not global.
	rng uint64
}

// NewSkiplist returns an empty skiplist backed by its own arena. seed fixes
// the node-height sequence so tests are reproducible.
func NewSkiplist(seed int64) *Skiplist {
	return newSkiplist(uint64(seed), newArena(0))
}

func newSkiplist(seed uint64, a *arena) *Skiplist {
	s := &Skiplist{arena: a}
	// splitmix64 finalizer: spreads small seeds over the whole state space;
	// |1 keeps xorshift out of its zero fixed point.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	s.rng = (z ^ (z >> 31)) | 1
	s.height.Store(1)
	ref, _ := s.newNode()
	if ref != headRef {
		panic("memtable: head sentinel must be the first slab node")
	}
	return s
}

// node derefs a non-nil node ref. pos = ref-1; block b holds positions
// [nodeBlockBase*(2^b - 1), nodeBlockBase*(2^(b+1) - 1)).
func (s *Skiplist) node(ref uint32) *node {
	pos := ref - 1
	b := bits.Len32(pos/nodeBlockBase+1) - 1
	blk := *s.blocks[b].Load()
	return &blk[pos-nodeBlockBase*(uint32(1)<<b-1)]
}

func (s *Skiplist) nodeOrNil(ref uint32) *node {
	if ref == 0 {
		return nil
	}
	return s.node(ref)
}

// newNode allocates the next slab slot, growing the slab by one block when
// full. Writer-only; the block pointer store is atomic so readers racing on
// a just-published ref observe the block.
func (s *Skiplist) newNode() (uint32, *node) {
	pos := s.nNodes
	b := bits.Len32(pos/nodeBlockBase+1) - 1
	if b >= maxNodeBlocks {
		panic(fmt.Sprintf("memtable: skiplist exceeds %d nodes", s.nNodes))
	}
	start := nodeBlockBase * (uint32(1)<<b - 1)
	blkp := s.blocks[b].Load()
	if blkp == nil {
		blk := make([]node, nodeBlockBase<<b)
		s.arena.reserved.Add(int64(len(blk)) * nodeSize)
		s.blocks[b].Store(&blk)
		blkp = &blk
	}
	s.nNodes++
	s.arena.used.Add(nodeSize)
	return pos + 1, &(*blkp)[pos-start]
}

// randomHeight draws a height with P(h) ∝ branching^-h from the inline
// xorshift64 state (writer-only).
func (s *Skiplist) randomHeight() int {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	h := 1
	for h < maxHeight && x&(branching-1) == 0 {
		h++
		x >>= 2
	}
	return h
}

// cmpNodeKey orders a node's internal key against a target decomposed into
// (user key, trailer): user key ascending, then trailer descending. Taking
// the decomposed form lets seeks run without materializing a search key.
func cmpNodeKey(k, tuser []byte, ttrailer uint64) int {
	if c := bytes.Compare(k[:len(k)-ikey.TrailerLen], tuser); c != 0 {
		return c
	}
	kt := binary.LittleEndian.Uint64(k[len(k)-ikey.TrailerLen:])
	switch {
	case kt > ttrailer:
		return -1
	case kt < ttrailer:
		return 1
	default:
		return 0
	}
}

// findGE returns the ref of the first node with internal key >=
// (tuser, ttrailer), also filling prev with the rightmost node before the
// target at every level when prev is non-nil.
func (s *Skiplist) findGE(tuser []byte, ttrailer uint64, prev *[maxHeight]uint32) uint32 {
	x := uint32(headRef)
	xn := s.node(x)
	level := int(s.height.Load()) - 1
	for {
		nref := xn.next[level].Load()
		if nref != 0 {
			n := s.node(nref)
			if cmpNodeKey(n.key, tuser, ttrailer) < 0 {
				x, xn = nref, n
				continue
			}
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return nref
		}
		level--
	}
}

// Insert adds an internal key/value pair, copying both into the arena. Keys
// must be unique — the DB guarantees this by stamping every write with a
// fresh sequence number. Insert must only be called from one goroutine at a
// time (per skiplist; distinct shards may insert concurrently).
func (s *Skiplist) Insert(key, value []byte) {
	if !ikey.Valid(key) {
		panic(fmt.Sprintf("memtable: invalid internal key of %d bytes", len(key)))
	}
	k := s.arena.alloc(len(key))
	copy(k, key)
	var v []byte
	if len(value) > 0 {
		v = s.arena.alloc(len(value))
		copy(v, value)
	}
	s.insertArena(k, v)
}

// InsertVersion encodes the internal key (ukey, seq, kind) directly into the
// arena — the zero-allocation commit path — and copies value in beside it.
func (s *Skiplist) InsertVersion(seq uint64, kind ikey.Kind, ukey, value []byte) {
	k := s.arena.alloc(len(ukey) + ikey.TrailerLen)
	copy(k, ukey)
	ikey.PutTrailer(k[len(ukey):], seq, kind)
	var v []byte
	if len(value) > 0 {
		v = s.arena.alloc(len(value))
		copy(v, value)
	}
	s.insertArena(k, v)
}

// insertArena links a node whose key/value already live in the arena.
func (s *Skiplist) insertArena(key, value []byte) {
	var prev [maxHeight]uint32
	user := key[:len(key)-ikey.TrailerLen]
	trailer := binary.LittleEndian.Uint64(key[len(key)-ikey.TrailerLen:])
	s.findGE(user, trailer, &prev)

	h := s.randomHeight()
	if cur := int(s.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = headRef
		}
		// Readers that race with this store simply use the old height and
		// miss the taller levels — still correct, just slower.
		s.height.Store(int32(h))
	}

	ref, n := s.newNode()
	n.key, n.val = key, value
	for i := 0; i < h; i++ {
		n.next[i].Store(s.node(prev[i]).next[i].Load())
	}
	// Publish bottom-up so a reader following level-0 links always finds the
	// node once any level points at it.
	for i := 0; i < h; i++ {
		s.node(prev[i]).next[i].Store(ref)
	}
	s.size.Add(int64(len(key) + len(value) + nodeSize))
	s.count.Add(1)
}

// getVersion returns the newest version of ukey visible at snapshot seq
// without allocating. The returned value aliases the arena: it stays valid
// for as long as the skiplist is referenced.
func (s *Skiplist) getVersion(ukey []byte, seq uint64) (value []byte, deleted, ok bool) {
	ref := s.findGE(ukey, seq<<8|0xff, nil)
	if ref == 0 {
		return nil, false, false
	}
	n := s.node(ref)
	k := n.key
	if !bytes.Equal(k[:len(k)-ikey.TrailerLen], ukey) {
		return nil, false, false
	}
	if ikey.KindOf(k) == ikey.KindDelete {
		return nil, true, true
	}
	return n.val, false, true
}

// ApproximateSize returns the approximate memory footprint in bytes.
func (s *Skiplist) ApproximateSize() int64 { return s.size.Load() }

// Count returns the number of inserted entries.
func (s *Skiplist) Count() int64 { return s.count.Load() }

// SkipIter iterates a snapshot-consistent view of one skiplist (it sees at
// least all entries present when movement began; concurrent inserts may or
// may not appear, matching LevelDB semantics).
type SkipIter struct {
	list *Skiplist
	n    *node
}

// NewIter returns an iterator positioned before the first entry.
func (s *Skiplist) NewIter() *SkipIter { return &SkipIter{list: s} }

// Valid reports whether the iterator is on an entry.
func (it *SkipIter) Valid() bool { return it.n != nil }

// Key returns the current internal key (aliasing the arena).
func (it *SkipIter) Key() []byte { return it.n.key }

// Value returns the current value (aliasing the arena).
func (it *SkipIter) Value() []byte { return it.n.val }

// First moves to the first entry.
func (it *SkipIter) First() bool {
	it.n = it.list.nodeOrNil(it.list.node(headRef).next[0].Load())
	return it.n != nil
}

// Next advances one entry.
func (it *SkipIter) Next() bool {
	it.n = it.list.nodeOrNil(it.n.next[0].Load())
	return it.n != nil
}

// Seek moves to the first entry with internal key >= target.
func (it *SkipIter) Seek(target []byte) bool {
	it.n = it.list.nodeOrNil(it.list.findGE(ikey.UserKey(target), ikey.Trailer(target), nil))
	return it.n != nil
}
