package memtable

import (
	"math/bits"
	"runtime"
	"sync"

	"pcplsm/internal/ikey"
)

// MaxShards caps Config.Shards; beyond this the merged iterator's linear
// min-scan and the per-shard fixed costs outweigh any apply parallelism.
const MaxShards = 64

// minParallelApply is the smallest write group (in ops) worth fanning out to
// shard goroutines; below it the spawn/wait overhead exceeds the insert work.
const minParallelApply = 8

// Config sizes a memtable. The zero value means one shard with default
// arena chunking and a fixed RNG seed — the pre-sharding behavior.
type Config struct {
	// Shards is the number of independent skiplists, partitioned by
	// user-key hash. Values are clamped to [1, MaxShards] and rounded up to
	// a power of two. Sharding never changes observable contents or WAL
	// bytes — only which internal structure holds each key.
	Shards int
	// ChunkSize is the per-shard arena chunk size in bytes
	// (DefaultArenaChunk if zero).
	ChunkSize int
	// Seed fixes the node-height RNG sequences (shard i derives its own
	// state from Seed+i). Zero selects a fixed default.
	Seed int64
}

// NormalShards returns cfg.Shards clamped and rounded as New will apply it.
func NormalShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Op is one versioned mutation, the unit Apply distributes across shards.
// Key and Val are read during Apply only (copied into the arena), so callers
// may reuse their backing buffers afterwards.
type Op struct {
	Seq  uint64
	Kind ikey.Kind
	Key  []byte
	Val  []byte
}

// Memtable is the mutable in-memory component of the LSM-tree: N skiplist
// shards partitioned by user-key hash, each arena-backed.
//
// Concurrency contract: all mutations (Put, Delete, Apply) must be
// serialized by the caller — the DB does so with its commit mutex. Apply
// itself may fan a write group out to parallel per-shard goroutines, which
// is safe because each shard has a single writer within the group and
// groups never overlap. Readers (Get, iterators) are lock-free and may run
// concurrently with any mutation.
type Memtable struct {
	shards []*Skiplist
	mask   uint64
	stage  [][]Op // per-shard staging for Apply; reused across groups
}

// New returns an empty memtable configured by cfg.
func New(cfg Config) *Memtable {
	n := NormalShards(cfg.Shards)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xC0FFEE
	}
	m := &Memtable{shards: make([]*Skiplist, n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i] = newSkiplist(uint64(seed)+uint64(i), newArena(cfg.ChunkSize))
	}
	if n > 1 {
		m.stage = make([][]Op, n)
	}
	return m
}

// shardOf routes a user key to its shard by FNV-1a hash. All versions of a
// user key land in one shard, so point reads probe exactly one skiplist.
func (m *Memtable) shardOf(ukey []byte) *Skiplist {
	return m.shards[m.shardIndex(ukey)]
}

func (m *Memtable) shardIndex(ukey []byte) int {
	if m.mask == 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, c := range ukey {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h & m.mask)
}

// Put records a Set of ukey to value at sequence seq. Serialized with all
// other mutations by the caller.
func (m *Memtable) Put(seq uint64, ukey, value []byte) {
	m.shardOf(ukey).InsertVersion(seq, ikey.KindSet, ukey, value)
}

// Delete records a tombstone for ukey at sequence seq.
func (m *Memtable) Delete(seq uint64, ukey []byte) {
	m.shardOf(ukey).InsertVersion(seq, ikey.KindDelete, ukey, nil)
}

// Apply inserts a whole write group, splitting it into per-shard sub-batches
// applied by parallel shard goroutines when the group is large enough.
// It returns how many shards the group touched and whether it was applied in
// parallel. Apply does not publish visibility: the caller advances its
// visibility watermark after Apply returns, so no reader observes a
// partially applied group regardless of shard completion order.
func (m *Memtable) Apply(ops []Op) (shardsTouched int, parallel bool) {
	if len(m.shards) == 1 {
		s := m.shards[0]
		for _, op := range ops {
			s.InsertVersion(op.Seq, op.Kind, op.Key, op.Val)
		}
		return 1, false
	}
	// Serial path: small groups, and any group on a single-P runtime (where
	// goroutine fan-out is pure overhead). Ops route straight to their
	// shards with no staging pass; a bitmask (MaxShards <= 64) counts the
	// shards touched for the stats.
	if len(ops) < minParallelApply || runtime.GOMAXPROCS(0) == 1 {
		var touched uint64
		for _, op := range ops {
			i := m.shardIndex(op.Key)
			touched |= 1 << uint(i)
			m.shards[i].InsertVersion(op.Seq, op.Kind, op.Key, op.Val)
		}
		return bits.OnesCount64(touched), false
	}
	for i := range m.stage {
		m.stage[i] = m.stage[i][:0]
	}
	for _, op := range ops {
		i := m.shardIndex(op.Key)
		if len(m.stage[i]) == 0 {
			shardsTouched++
		}
		m.stage[i] = append(m.stage[i], op)
	}
	if shardsTouched <= 1 {
		for i, sub := range m.stage {
			s := m.shards[i]
			for _, op := range sub {
				s.InsertVersion(op.Seq, op.Kind, op.Key, op.Val)
			}
		}
		return shardsTouched, false
	}
	var wg sync.WaitGroup
	for i, sub := range m.stage {
		if len(sub) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *Skiplist, sub []Op) {
			defer wg.Done()
			for _, op := range sub {
				s.InsertVersion(op.Seq, op.Kind, op.Key, op.Val)
			}
		}(m.shards[i], sub)
	}
	wg.Wait()
	return shardsTouched, true
}

// Get returns the newest version of ukey visible at snapshot seq.
// ok reports whether any version exists; deleted reports whether that
// version is a tombstone (in which case value is nil). The returned value
// aliases the memtable's arena: it stays valid while the memtable is
// referenced and must not be modified.
func (m *Memtable) Get(ukey []byte, seq uint64) (value []byte, deleted, ok bool) {
	return m.shardOf(ukey).getVersion(ukey, seq)
}

// ApproximateSize returns the approximate memory footprint in bytes; the DB
// compares it against Options.MemtableSize to decide when to rotate.
func (m *Memtable) ApproximateSize() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.ApproximateSize()
	}
	return n
}

// Count returns the number of entries (versions, not distinct user keys).
func (m *Memtable) Count() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Count()
	}
	return n
}

// MemStats is a point-in-time snapshot of the memtable's memory layout.
type MemStats struct {
	Shards          int
	Entries         int64
	MaxShardEntries int64 // largest shard, to expose hash skew
	MinShardEntries int64
	ArenaReserved   int64 // bytes reserved by arena chunks and node slabs
	ArenaUsed       int64 // bytes actually carved out of them
}

// Stats snapshots memory gauges. Safe to call concurrently with mutations;
// counters are read atomically per shard (the snapshot is not a consistent
// cut across shards, which is fine for gauges).
func (m *Memtable) Stats() MemStats {
	st := MemStats{Shards: len(m.shards)}
	for i, s := range m.shards {
		c := s.Count()
		st.Entries += c
		if i == 0 || c > st.MaxShardEntries {
			st.MaxShardEntries = c
		}
		if i == 0 || c < st.MinShardEntries {
			st.MinShardEntries = c
		}
		st.ArenaReserved += s.arena.reserved.Load()
		st.ArenaUsed += s.arena.used.Load()
	}
	return st
}

// Iter merges the shard skiplists into one sorted view of internal keys.
// Internal keys are globally unique (every version of a user key lives in
// one shard), so the merge never ties. A single-shard memtable iterates its
// skiplist directly.
type Iter struct {
	single *SkipIter  // fast path when there is one shard
	its    []SkipIter // per-shard iterators, inline to avoid per-shard allocs
	cur    int        // index of the current minimum, -1 when invalid
}

// NewIter returns an iterator over internal keys in sorted order.
func (m *Memtable) NewIter() *Iter {
	if len(m.shards) == 1 {
		return &Iter{single: m.shards[0].NewIter(), cur: -1}
	}
	it := &Iter{its: make([]SkipIter, len(m.shards)), cur: -1}
	for i, s := range m.shards {
		it.its[i].list = s
	}
	return it
}

// findMin scans the shard iterators for the smallest current key. Linear in
// shard count, which is capped at MaxShards and typically single digits —
// the same trade the DB-level merge iterator makes.
func (it *Iter) findMin() bool {
	it.cur = -1
	for i := range it.its {
		s := &it.its[i]
		if !s.Valid() {
			continue
		}
		if it.cur < 0 || ikey.Compare(s.Key(), it.its[it.cur].Key()) < 0 {
			it.cur = i
		}
	}
	return it.cur >= 0
}

// Valid reports whether the iterator is on an entry.
func (it *Iter) Valid() bool {
	if it.single != nil {
		return it.single.Valid()
	}
	return it.cur >= 0
}

// Key returns the current internal key (aliasing the arena).
func (it *Iter) Key() []byte {
	if it.single != nil {
		return it.single.Key()
	}
	return it.its[it.cur].Key()
}

// Value returns the current value (aliasing the arena).
func (it *Iter) Value() []byte {
	if it.single != nil {
		return it.single.Value()
	}
	return it.its[it.cur].Value()
}

// First moves to the first entry.
func (it *Iter) First() bool {
	if it.single != nil {
		return it.single.First()
	}
	for i := range it.its {
		it.its[i].First()
	}
	return it.findMin()
}

// Next advances one entry.
func (it *Iter) Next() bool {
	if it.single != nil {
		return it.single.Next()
	}
	it.its[it.cur].Next()
	return it.findMin()
}

// Seek moves to the first entry with internal key >= target.
func (it *Iter) Seek(target []byte) bool {
	if it.single != nil {
		return it.single.Seek(target)
	}
	for i := range it.its {
		it.its[i].Seek(target)
	}
	return it.findMin()
}
