package memtable

import (
	"pcplsm/internal/ikey"
)

// Memtable is the mutable in-memory component of the LSM-tree. It wraps the
// skiplist with the user-key API the DB needs: versioned puts/deletes and
// snapshot reads.
type Memtable struct {
	list *Skiplist
}

// New returns an empty memtable.
func New() *Memtable { return &Memtable{list: NewSkiplist(0xC0FFEE)} }

// Put records a Set of ukey to value at sequence seq.
func (m *Memtable) Put(seq uint64, ukey, value []byte) {
	m.list.Insert(ikey.Make(ukey, seq, ikey.KindSet), append([]byte(nil), value...))
}

// Delete records a tombstone for ukey at sequence seq.
func (m *Memtable) Delete(seq uint64, ukey []byte) {
	m.list.Insert(ikey.Make(ukey, seq, ikey.KindDelete), nil)
}

// Get returns the newest version of ukey visible at snapshot seq.
// ok reports whether any version exists; deleted reports whether that
// version is a tombstone (in which case value is nil).
func (m *Memtable) Get(ukey []byte, seq uint64) (value []byte, deleted, ok bool) {
	it := m.list.NewIter()
	if !it.Seek(ikey.SearchKey(ukey, seq)) {
		return nil, false, false
	}
	k := it.Key()
	if string(ikey.UserKey(k)) != string(ukey) {
		return nil, false, false
	}
	if ikey.KindOf(k) == ikey.KindDelete {
		return nil, true, true
	}
	return it.Value(), false, true
}

// ApproximateSize returns the approximate memory footprint in bytes; the DB
// compares it against Options.MemtableSize to decide when to rotate.
func (m *Memtable) ApproximateSize() int64 { return m.list.ApproximateSize() }

// Count returns the number of entries (versions, not distinct user keys).
func (m *Memtable) Count() int64 { return m.list.Count() }

// NewIter returns an iterator over internal keys in sorted order.
func (m *Memtable) NewIter() *Iter { return m.list.NewIter() }
