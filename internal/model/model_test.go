package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// hddProfile mirrors the paper's Figure 5(a): read >40%, write <20%,
// compute ~40%.
func hddProfile() StepTimes {
	return StepTimes{
		S1: 45 * time.Millisecond,
		S2: 2 * time.Millisecond, S3: 3 * time.Millisecond, S4: 20 * time.Millisecond,
		S5: 12 * time.Millisecond, S6: 2 * time.Millisecond,
		S7: 16 * time.Millisecond,
	}
}

// ssdProfile mirrors Figure 5(b): compute >60%, write > read.
func ssdProfile() StepTimes {
	return StepTimes{
		S1: 14 * time.Millisecond,
		S2: 3 * time.Millisecond, S3: 5 * time.Millisecond, S4: 30 * time.Millisecond,
		S5: 20 * time.Millisecond, S6: 4 * time.Millisecond,
		S7: 27 * time.Millisecond,
	}
}

// randomProfile builds a positive StepTimes from fuzz inputs.
func randomProfile(a, b, c, d, e, f, g uint16) StepTimes {
	ms := func(x uint16) time.Duration { return time.Duration(int(x)%1000+1) * time.Millisecond }
	return StepTimes{S1: ms(a), S2: ms(b), S3: ms(c), S4: ms(d), S5: ms(e), S6: ms(f), S7: ms(g)}
}

func TestEquation1And2KnownValues(t *testing.T) {
	// 100ms total, bottleneck stage 45ms, l = 1MiB.
	tt := hddProfile()
	l := int64(1 << 20)
	if got := Bscp(l, tt); math.Abs(got-float64(l)/0.1) > 1 {
		t.Fatalf("Bscp = %f, want %f", got, float64(l)/0.1)
	}
	if got := Bpcp(l, tt); math.Abs(got-float64(l)/0.045) > 1 {
		t.Fatalf("Bpcp = %f, want %f", got, float64(l)/0.045)
	}
	if got := PcpSpeedup(tt); math.Abs(got-0.1/0.045) > 1e-9 {
		t.Fatalf("speedup = %f", got)
	}
}

func TestPcpSpeedupBounds(t *testing.T) {
	// Equation 3's value is always in [1, 3]: the pipeline can at best
	// perfectly overlap three stages.
	f := func(a, b, c, d, e, g, h uint16) bool {
		tt := randomProfile(a, b, c, d, e, g, h)
		s := PcpSpeedup(tt)
		return s >= 1.0-1e-9 && s <= 3.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRegimeClassification(t *testing.T) {
	if Classify(hddProfile()) != IOBound {
		t.Fatal("HDD profile must classify IO-bound")
	}
	if Classify(ssdProfile()) != CPUBound {
		t.Fatal("SSD profile must classify CPU-bound")
	}
	if IOBound.String() != "io-bound" || CPUBound.String() != "cpu-bound" {
		t.Fatal("regime names")
	}
}

func TestSppcpMonotoneAndSaturating(t *testing.T) {
	tt := hddProfile() // IO-bound: devices should help, then flatten
	l := int64(1 << 20)
	prev := 0.0
	for k := 1; k <= 16; k++ {
		b := Bsppcp(l, tt, k)
		if b+1e-6 < prev {
			t.Fatalf("Bsppcp decreased at k=%d: %f < %f", k, b, prev)
		}
		prev = b
	}
	// Saturation: once CPU-bound, more devices give nothing.
	sat := SaturationDevices(tt)
	if sat < 2 {
		t.Fatalf("HDD profile should benefit from >1 disk, sat=%d", sat)
	}
	bAtSat := Bsppcp(l, tt, sat)
	bWayPast := Bsppcp(l, tt, sat*4)
	if (bWayPast-bAtSat)/bAtSat > 0.01 {
		t.Fatalf("bandwidth still rising past saturation: %f → %f", bAtSat, bWayPast)
	}
	// Past saturation the regime must be CPU-bound.
	if SppcpStillIOBound(tt, sat) {
		t.Fatal("at saturation the pipeline should no longer be IO-bound")
	}
	if !SppcpStillIOBound(tt, 1) {
		t.Fatal("HDD profile with 1 disk must be IO-bound")
	}
}

func TestCppcpMonotoneAndSaturating(t *testing.T) {
	tt := ssdProfile() // CPU-bound: workers should help, then flatten
	l := int64(1 << 20)
	prev := 0.0
	for k := 1; k <= 16; k++ {
		b := Bcppcp(l, tt, k)
		if b+1e-6 < prev {
			t.Fatalf("Bcppcp decreased at k=%d", k)
		}
		prev = b
	}
	sat := SaturationWorkers(tt)
	if sat < 2 {
		t.Fatalf("SSD profile should benefit from >1 worker, sat=%d", sat)
	}
	bAtSat := Bcppcp(l, tt, sat)
	bWayPast := Bcppcp(l, tt, sat*4)
	if (bWayPast-bAtSat)/bAtSat > 0.01 {
		t.Fatal("bandwidth still rising past worker saturation")
	}
	if CppcpStillCPUBound(tt, sat) {
		t.Fatal("at saturation the pipeline should no longer be CPU-bound")
	}
	if !CppcpStillCPUBound(tt, 1) {
		t.Fatal("SSD profile with 1 worker must be CPU-bound")
	}
}

func TestSpeedupCeilings(t *testing.T) {
	// Equations 5 and 7: measured ideal speedups never exceed their bounds.
	f := func(a, b, c, d, e, g, h uint16, kk uint8) bool {
		tt := randomProfile(a, b, c, d, e, g, h)
		k := int(kk%15) + 1
		if SppcpSpeedup(tt, k) > SppcpSpeedupBound(tt, k)+1e-9 {
			return false
		}
		if CppcpSpeedup(tt, k) > CppcpSpeedupBound(tt, k)+1e-9 {
			return false
		}
		// Speedups are at least 1 (adding resources never hurts in the
		// ideal model).
		return SppcpSpeedup(tt, k) >= 1-1e-9 && CppcpSpeedup(tt, k) >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformations(t *testing.T) {
	// §III: "I/O-bound cases can be transformed to CPU-bound cases when
	// excessive storage devices are used" — and vice versa.
	hdd := hddProfile()
	if Classify(hdd) != IOBound {
		t.Fatal("precondition")
	}
	k := SaturationDevices(hdd)
	// After k devices, effective read/write times are divided by k; the
	// bottleneck is now compute.
	eff := hdd
	eff.S1 /= time.Duration(k)
	eff.S7 /= time.Duration(k)
	if Classify(eff) != CPUBound {
		t.Fatalf("with %d devices the HDD profile should become CPU-bound", k)
	}

	ssd := ssdProfile()
	kw := SaturationWorkers(ssd)
	effc := ssd
	effc.S2 /= time.Duration(kw)
	effc.S3 /= time.Duration(kw)
	effc.S4 /= time.Duration(kw)
	effc.S5 /= time.Duration(kw)
	effc.S6 /= time.Duration(kw)
	if Classify(effc) != IOBound {
		t.Fatalf("with %d workers the SSD profile should become IO-bound", kw)
	}
}

func TestDegenerateInputs(t *testing.T) {
	var zero StepTimes
	if zero.Valid() {
		t.Fatal("zero profile should be invalid")
	}
	if Bscp(1<<20, zero) != 0 || Bpcp(1<<20, zero) != 0 {
		t.Fatal("zero profile should yield zero bandwidth")
	}
	if PcpSpeedup(zero) != 0 {
		t.Fatal("zero profile speedup should be 0")
	}
	// k < 1 clamps to 1.
	tt := ssdProfile()
	if Bsppcp(1, tt, 0) != Bsppcp(1, tt, 1) || Bcppcp(1, tt, -3) != Bcppcp(1, tt, 1) {
		t.Fatal("k clamping broken")
	}
	// Pure-compute profile: adding disks cannot help — the ceiling floors
	// at 1 (no gain, no loss).
	pureCPU := StepTimes{S4: time.Second}
	if got := SppcpSpeedupBound(pureCPU, 8); got != 1 {
		t.Fatalf("pure-CPU SppcpSpeedupBound = %f, want 1", got)
	}
	pureIO := StepTimes{S1: time.Second}
	if got := CppcpSpeedupBound(pureIO, 8); got != 1 {
		t.Fatalf("pure-IO CppcpSpeedupBound = %f, want 1", got)
	}
	if got := SppcpSpeedupBound(pureIO, 8); got != 8 {
		t.Fatalf("pure-IO SppcpSpeedupBound = %f, want 8", got)
	}
}

func TestAnalyzeReport(t *testing.T) {
	r := Analyze(1<<20, ssdProfile())
	if r.Regime != CPUBound {
		t.Fatal("regime")
	}
	if r.Bpcp <= r.Bscp {
		t.Fatal("pipeline must beat sequential in the model")
	}
	if r.PcpSpeedup <= 1 {
		t.Fatal("speedup must exceed 1")
	}
	if r.SatWorkers < 1 || r.SatDevices < 1 {
		t.Fatal("saturation points")
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestPaperHeadlineShapeHolds(t *testing.T) {
	// The paper reports PCP improving compaction bandwidth by ≥45% on HDD
	// and ≥65% on SSD. The ideal model must allow at least those gains for
	// the corresponding profiles.
	if s := PcpSpeedup(hddProfile()); s < 1.45 {
		t.Fatalf("HDD-profile ideal speedup %.2f < paper's measured 1.45", s)
	}
	if s := PcpSpeedup(ssdProfile()); s < 1.65 {
		t.Fatalf("SSD-profile ideal speedup %.2f < paper's measured 1.65", s)
	}
}
