// Package model implements the paper's analytical performance model
// (Equations 1–7 in §III). Given the measured per-step times of one data
// block (or sub-task), it predicts the compaction bandwidth of SCP, PCP,
// S-PPCP and C-PPCP, the ideal speedups, and the resource-bound regime.
//
// Conventions: l is the amount of data per sub-task (bytes); t_Si are the
// per-sub-task step times. Bandwidths are bytes per second.
package model

import (
	"fmt"
	"time"
)

// StepTimes carries the per-sub-task execution time of each paper step.
type StepTimes struct {
	S1 time.Duration // READ
	S2 time.Duration // CHECKSUM
	S3 time.Duration // DECOMPRESS
	S4 time.Duration // SORT
	S5 time.Duration // COMPRESS
	S6 time.Duration // RE-CHECKSUM
	S7 time.Duration // WRITE
}

// Compute returns Σ t_S2…t_S6, the compute-stage service time.
func (t StepTimes) Compute() time.Duration { return t.S2 + t.S3 + t.S4 + t.S5 + t.S6 }

// Total returns Σ t_S1…t_S7.
func (t StepTimes) Total() time.Duration { return t.S1 + t.Compute() + t.S7 }

// Valid reports whether the sample is usable (a positive total).
func (t StepTimes) Valid() bool { return t.Total() > 0 }

// seconds converts safely.
func seconds(d time.Duration) float64 { return d.Seconds() }

// Bscp is Equation 1: the sequential procedure's bandwidth,
//
//	B_scp = l / Σ_{i=1..7} t_Si
func Bscp(l int64, t StepTimes) float64 {
	den := seconds(t.Total())
	if den <= 0 {
		return 0
	}
	return float64(l) / den
}

// Bpcp is Equation 2: the three-stage pipeline's bandwidth, limited by its
// slowest stage,
//
//	B_pcp = l / max{ t_S1, Σ_{i=2..6} t_Si, t_S7 }
func Bpcp(l int64, t StepTimes) float64 {
	den := seconds(maxDur(t.S1, t.Compute(), t.S7))
	if den <= 0 {
		return 0
	}
	return float64(l) / den
}

// PcpSpeedup is Equation 3: B_pcp / B_scp.
func PcpSpeedup(t StepTimes) float64 {
	num := seconds(t.Total())
	den := seconds(maxDur(t.S1, t.Compute(), t.S7))
	if den <= 0 {
		return 0
	}
	return num / den
}

// Bsppcp is Equation 4: the storage-parallel pipeline with k devices,
//
//	B_s-ppcp = l / max{ t_S1/k, Σ_{i=2..6} t_Si, t_S7/k }
func Bsppcp(l int64, t StepTimes, k int) float64 {
	if k < 1 {
		k = 1
	}
	den := maxF(seconds(t.S1)/float64(k), seconds(t.Compute()), seconds(t.S7)/float64(k))
	if den <= 0 {
		return 0
	}
	return float64(l) / den
}

// SppcpSpeedup is Equation 5: B_s-ppcp / B_pcp. Its ideal value is bounded
// by min{ k, max{t_S1, t_S7} / Σ_{i=2..6} t_Si }.
func SppcpSpeedup(t StepTimes, k int) float64 {
	b1 := Bpcp(1, t)
	bk := Bsppcp(1, t, k)
	if b1 <= 0 {
		return 0
	}
	return bk / b1
}

// SppcpSpeedupBound returns Equation 5's ideal ceiling,
// min{ k, max{t_S1,t_S7} / Σ t_S2..6 }, floored at 1: when the pipeline is
// already CPU-bound the paper's ratio drops below one, but extra devices
// can never make it slower.
func SppcpSpeedupBound(t StepTimes, k int) float64 {
	c := seconds(t.Compute())
	if c <= 0 {
		return float64(k)
	}
	io := seconds(maxDur(t.S1, t.S7))
	bound := io / c
	if bound < 1 {
		bound = 1
	}
	if float64(k) < bound {
		return float64(k)
	}
	return bound
}

// Bcppcp is Equation 6: the computation-parallel pipeline with k workers,
//
//	B_c-ppcp = l / max{ t_S1, Σ_{i=2..6} t_Si / k, t_S7 }
func Bcppcp(l int64, t StepTimes, k int) float64 {
	if k < 1 {
		k = 1
	}
	den := maxF(seconds(t.S1), seconds(t.Compute())/float64(k), seconds(t.S7))
	if den <= 0 {
		return 0
	}
	return float64(l) / den
}

// CppcpSpeedup is Equation 7: B_c-ppcp / B_pcp. Its ideal value cannot
// exceed min{ k, Σ_{i=2..6} t_Si / max{t_S1, t_S7} }.
func CppcpSpeedup(t StepTimes, k int) float64 {
	b1 := Bpcp(1, t)
	bk := Bcppcp(1, t, k)
	if b1 <= 0 {
		return 0
	}
	return bk / b1
}

// CppcpSpeedupBound returns Equation 7's ideal ceiling,
// min{ k, Σ t_S2..6 / max{t_S1,t_S7} }, floored at 1 (see SppcpSpeedupBound).
func CppcpSpeedupBound(t StepTimes, k int) float64 {
	io := seconds(maxDur(t.S1, t.S7))
	if io <= 0 {
		return float64(k)
	}
	bound := seconds(t.Compute()) / io
	if bound < 1 {
		bound = 1
	}
	if float64(k) < bound {
		return float64(k)
	}
	return bound
}

// Regime classifies the pipeline's bottleneck stage.
type Regime int

const (
	// IOBound means stage read or stage write dominates (HDD-like, paper
	// Figure 6(a)).
	IOBound Regime = iota
	// CPUBound means the compute stage dominates (SSD-like, Figure 6(b)).
	CPUBound
)

// String names the regime.
func (r Regime) String() string {
	if r == CPUBound {
		return "cpu-bound"
	}
	return "io-bound"
}

// Classify returns the pipeline's regime under PCP.
func Classify(t StepTimes) Regime {
	if t.Compute() >= maxDur(t.S1, t.S7) {
		return CPUBound
	}
	return IOBound
}

// SppcpStillIOBound reports the paper's §III-C1 condition: with k devices,
// the pipeline stays I/O-bound iff k < max{t_S1, t_S7} / Σ t_S2..6. Past
// that point adding devices cannot raise bandwidth (it has become
// CPU-bound).
func SppcpStillIOBound(t StepTimes, k int) bool {
	return seconds(maxDur(t.S1, t.S7)) > float64(k)*seconds(t.Compute())
}

// CppcpStillCPUBound reports the §III-C2 condition: with k compute workers,
// the pipeline stays CPU-bound iff k < Σ t_S2..6 / max{t_S1, t_S7}.
func CppcpStillCPUBound(t StepTimes, k int) bool {
	return seconds(t.Compute()) > float64(k)*seconds(maxDur(t.S1, t.S7))
}

// SaturationDevices returns the smallest device count at which S-PPCP
// becomes CPU-bound — where Figure 12(a)'s curve flattens.
func SaturationDevices(t StepTimes) int {
	for k := 1; k < 1<<20; k++ {
		if !SppcpStillIOBound(t, k) {
			return k
		}
	}
	return 1 << 20
}

// SaturationWorkers returns the smallest compute-worker count at which
// C-PPCP becomes I/O-bound — where Figure 12(d)'s curve flattens.
func SaturationWorkers(t StepTimes) int {
	for k := 1; k < 1<<20; k++ {
		if !CppcpStillCPUBound(t, k) {
			return k
		}
	}
	return 1 << 20
}

// Report summarizes the model's predictions for one measured profile.
type Report struct {
	Steps      StepTimes
	SubtaskLen int64
	Regime     Regime
	Bscp       float64
	Bpcp       float64
	PcpSpeedup float64
	SatDevices int
	SatWorkers int
}

// Analyze builds a Report for a measured per-sub-task profile.
func Analyze(l int64, t StepTimes) Report {
	return Report{
		Steps:      t,
		SubtaskLen: l,
		Regime:     Classify(t),
		Bscp:       Bscp(l, t),
		Bpcp:       Bpcp(l, t),
		PcpSpeedup: PcpSpeedup(t),
		SatDevices: SaturationDevices(t),
		SatWorkers: SaturationWorkers(t),
	}
}

// String renders the report for experiment logs.
func (r Report) String() string {
	return fmt.Sprintf("%v: Bscp=%.1fMiB/s Bpcp=%.1fMiB/s speedup=%.2fx sat(devices)=%d sat(workers)=%d",
		r.Regime, r.Bscp/(1<<20), r.Bpcp/(1<<20), r.PcpSpeedup, r.SatDevices, r.SatWorkers)
}

func maxDur(ds ...time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

func maxF(fs ...float64) float64 {
	m := fs[0]
	for _, f := range fs[1:] {
		if f > m {
			m = f
		}
	}
	return m
}
