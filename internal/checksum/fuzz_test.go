package checksum

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRoundTrip: for any payload, the full pipeline — Sum, Mask, Append,
// VerifyTrailer, Unmask — is self-consistent: what Append writes, Verify
// accepts, and the incremental SumWithSeed over any split of the payload
// agrees with the one-shot Sum.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil), 0)
	f.Add([]byte("hello"), 2)
	f.Add(bytes.Repeat([]byte{0xa2, 0x82, 0xea, 0xd8}, 64), 17)
	f.Fuzz(func(t *testing.T, data []byte, split int) {
		crc := Sum(data)
		if Unmask(Mask(crc)) != crc {
			t.Fatalf("Unmask(Mask(%#08x)) = %#08x", crc, Unmask(Mask(crc)))
		}
		if err := Verify(data, Mask(crc)); err != nil {
			t.Fatalf("Verify of own checksum: %v", err)
		}
		// Incremental checksumming over an arbitrary split must agree.
		s := split
		if s < 0 {
			s = -s
		}
		s %= len(data) + 1
		if got := SumWithSeed(Sum(data[:s]), data[s:]); got != crc {
			t.Fatalf("SumWithSeed split at %d = %#08x, Sum = %#08x", s, got, crc)
		}
		// The on-disk trailer round-trips through VerifyTrailer.
		buf := Append(append([]byte(nil), data...), data)
		payload, err := VerifyTrailer(buf)
		if err != nil {
			t.Fatalf("VerifyTrailer of Append output: %v", err)
		}
		if !bytes.Equal(payload, data) {
			t.Fatalf("VerifyTrailer returned %q, want %q", payload, data)
		}
	})
}

// FuzzDetectsBitFlips: any single-bit flip in a checksummed buffer —
// payload or trailer — must be rejected. CRC32-C guarantees detection of
// all 1-bit (indeed all burst-<32-bit) errors; this is the property the
// block reader, the WAL, and the scrubber rely on.
func FuzzDetectsBitFlips(f *testing.F) {
	f.Add([]byte("some block payload"), 3, 5)
	f.Add([]byte{0}, 0, 0)
	f.Add(bytes.Repeat([]byte{0xff}, 100), 99, 7)
	f.Fuzz(func(t *testing.T, data []byte, pos, bit int) {
		buf := Append(append([]byte(nil), data...), data)
		if pos < 0 {
			pos = -pos
		}
		pos %= len(buf)
		if bit < 0 {
			bit = -bit
		}
		buf[pos] ^= 1 << (bit % 8)
		if _, err := VerifyTrailer(buf); err == nil {
			t.Fatalf("flipping bit %d of byte %d in a %d-byte buffer went undetected",
				bit%8, pos, len(buf))
		}
	})
}

// FuzzVerifyTrailerNeverPanics: arbitrary byte soup must produce a clean
// accept or reject, never a panic or out-of-bounds access.
func FuzzVerifyTrailerNeverPanics(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 4))
	valid := Append(nil, []byte("v"))
	f.Add(valid)
	f.Fuzz(func(t *testing.T, buf []byte) {
		payload, err := VerifyTrailer(buf)
		if err == nil {
			// An accepted buffer must genuinely verify.
			stored := binary.LittleEndian.Uint32(buf[len(buf)-4:])
			if Unmask(stored) != Sum(payload) {
				t.Fatalf("VerifyTrailer accepted a buffer whose trailer does not match")
			}
		}
	})
}
