// Package checksum provides the CRC32-C (Castagnoli) checksums used to
// protect every data block and log record in the store.
//
// The paper's compaction pipeline spends Step 2 (CHECKSUM) and Step 6
// (RE-CHECKSUM) here. Following LevelDB, stored checksums are "masked" so
// that computing the CRC of data that embeds CRCs does not produce
// pathological values.
package checksum

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32-C table shared by all checksum computations.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const maskDelta = 0xa282ead8

// Sum returns the unmasked CRC32-C of data.
func Sum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// SumWithSeed extends an existing CRC with more data. It allows callers to
// checksum a logical record that is stored in multiple physical fragments
// without concatenating them first.
func SumWithSeed(seed uint32, data []byte) uint32 {
	return crc32.Update(seed, castagnoli, data)
}

// Mask returns a masked representation of crc, suitable for storing on disk.
//
// Motivation (from LevelDB): it is problematic to compute the CRC of a
// string that contains embedded CRCs. Masking rotates the CRC and adds a
// constant so stored values never equal the raw CRC of their own payload.
func Mask(crc uint32) uint32 {
	return ((crc >> 15) | (crc << 17)) + maskDelta
}

// Unmask is the inverse of Mask.
func Unmask(masked uint32) uint32 {
	rot := masked - maskDelta
	return (rot >> 17) | (rot << 15)
}

// Append appends the masked CRC32-C of data to dst as 4 little-endian bytes
// and returns the extended slice. It is the standard on-disk trailer used by
// blocks and log records.
func Append(dst, data []byte) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], Mask(Sum(data)))
	return append(dst, buf[:]...)
}

// ErrMismatch reports a checksum verification failure.
type ErrMismatch struct {
	Want uint32 // unmasked checksum recorded on disk
	Got  uint32 // unmasked checksum of the bytes read
}

func (e *ErrMismatch) Error() string {
	return fmt.Sprintf("checksum mismatch: stored %#08x, computed %#08x", e.Want, e.Got)
}

// Verify checks that the masked trailer stored matches the contents of data.
// It returns nil on success and an *ErrMismatch otherwise.
func Verify(data []byte, stored uint32) error {
	want := Unmask(stored)
	got := Sum(data)
	if want != got {
		return &ErrMismatch{Want: want, Got: got}
	}
	return nil
}

// VerifyTrailer interprets the final 4 bytes of buf as a masked little-endian
// CRC of the preceding bytes, verifies it, and returns the payload without
// the trailer.
func VerifyTrailer(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("checksum: buffer too short (%d bytes) to hold a trailer", len(buf))
	}
	payload := buf[:len(buf)-4]
	stored := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if err := Verify(payload, stored); err != nil {
		return nil, err
	}
	return payload, nil
}
