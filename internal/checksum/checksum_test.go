package checksum

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestSumKnownValues(t *testing.T) {
	// CRC32-C of "123456789" is the classic check value 0xe3069283.
	if got := Sum([]byte("123456789")); got != 0xe3069283 {
		t.Fatalf("Sum(123456789) = %#08x, want 0xe3069283", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %#08x, want 0", got)
	}
}

func TestMaskRoundTrip(t *testing.T) {
	f := func(crc uint32) bool { return Unmask(Mask(crc)) == crc }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskChangesValue(t *testing.T) {
	f := func(data []byte) bool {
		crc := Sum(data)
		return Mask(crc) != crc || crc == Mask(crc) && len(data) == 0 && crc == maskDelta
	}
	// Mask(crc) == crc would defeat the purpose; it can only happen for a
	// single fixed point, which Sum essentially never produces. Check a few
	// deterministic cases rather than asserting a universal property.
	for _, s := range []string{"", "a", "hello", "pipelined compaction"} {
		crc := Sum([]byte(s))
		if Mask(crc) == crc {
			t.Errorf("Mask(%#08x) is a fixed point for %q", crc, s)
		}
	}
	_ = f
}

func TestSumWithSeedMatchesWhole(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := Sum(append(append([]byte{}, a...), b...))
		split := SumWithSeed(Sum(a), b)
		return whole == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendVerifyTrailer(t *testing.T) {
	f := func(data []byte) bool {
		buf := Append(nil, data)
		if len(buf) != 4 {
			return false
		}
		full := append(append([]byte{}, data...), buf...)
		payload, err := VerifyTrailer(full)
		if err != nil {
			return false
		}
		return string(payload) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	full := append(append([]byte{}, data...), Append(nil, data)...)
	for i := range full {
		corrupt := append([]byte{}, full...)
		corrupt[i] ^= 0x40
		if _, err := VerifyTrailer(corrupt); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestVerifyTrailerShortBuffer(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		if _, err := VerifyTrailer(make([]byte, n)); err == nil {
			t.Errorf("VerifyTrailer with %d bytes should fail", n)
		}
	}
}

func TestVerifyErrMismatchFields(t *testing.T) {
	data := []byte("payload")
	stored := Mask(Sum(data)) ^ 0xffffffff
	err := Verify(data, stored)
	if err == nil {
		t.Fatal("expected mismatch")
	}
	me, ok := err.(*ErrMismatch)
	if !ok {
		t.Fatalf("error type %T, want *ErrMismatch", err)
	}
	if me.Got != Sum(data) {
		t.Errorf("Got = %#08x, want %#08x", me.Got, Sum(data))
	}
	if me.Error() == "" {
		t.Error("empty error message")
	}
}

func TestTrailerEncoding(t *testing.T) {
	data := []byte("abc")
	buf := Append(nil, data)
	stored := binary.LittleEndian.Uint32(buf)
	if Unmask(stored) != Sum(data) {
		t.Fatalf("trailer does not decode to the payload checksum")
	}
}

func BenchmarkSum4K(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}
