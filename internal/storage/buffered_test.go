package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"pcplsm/internal/device"
)

// nullDevices returns n zero-cost simulated devices.
func nullDevices(n int) []*device.Device {
	devs := make([]*device.Device, n)
	for i := range devs {
		devs[i] = device.New(device.Null(), 0)
	}
	return devs
}

func TestBufferedFileRoundTrip(t *testing.T) {
	fs := NewMemFS()
	raw, _ := fs.Create("b")
	f := NewBufferedFile(raw, 64)

	var want bytes.Buffer
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		chunk := make([]byte, rng.Intn(50))
		rng.Read(chunk)
		want.Write(chunk)
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	// Size includes buffered bytes before any flush.
	if sz, err := f.Size(); err != nil || sz != int64(want.Len()) {
		t.Fatalf("Size = %d, %v; want %d", sz, err, want.Len())
	}
	// ReadAt flushes and reads through.
	got := make([]byte, want.Len())
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("read-through mismatch")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final, _ := ReadAll(fs, "b")
	if !bytes.Equal(final, want.Bytes()) {
		t.Fatal("close did not flush remaining bytes")
	}
}

func TestBufferedFileLargeSingleWrite(t *testing.T) {
	fs := NewMemFS()
	raw, _ := fs.Create("b")
	f := NewBufferedFile(raw, 16)
	big := bytes.Repeat([]byte{7}, 1000) // far larger than the buffer
	if n, err := f.Write(big); err != nil || n != 1000 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadAll(fs, "b")
	if !bytes.Equal(got, big) {
		t.Fatal("large write mangled")
	}
}

func TestBufferedFileWriteFailurePropagates(t *testing.T) {
	inner := NewMemFS()
	fault := NewFaultFS(inner)
	raw, err := fault.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	f := NewBufferedFile(raw, 8)
	fault.Arm(FaultWrite, 1, true)
	// Small writes buffer fine; the flush must surface the fault.
	f.Write([]byte("1234"))
	if _, err := f.Write(bytes.Repeat([]byte{'x'}, 32)); err == nil {
		t.Fatal("flush failure not propagated through Write")
	}
}

func TestStripedWriteReadBytes(t *testing.T) {
	// Striped reads/writes across devices return exactly the right bytes.
	fsInner := NewMemFS()
	fs := NewSimFS(fsInner, nullDevices(3), PlaceStripe, 1024)
	f, _ := fs.Create("s")
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	f.Write(payload)
	f.Close()
	r, _ := fs.Open("s")
	defer r.Close()
	got := make([]byte, len(payload))
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped round trip mismatch")
	}
	// Partial read at an unaligned offset.
	part := make([]byte, 777)
	if _, err := r.ReadAt(part, 3000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, payload[3000:3777]) {
		t.Fatal("unaligned striped read mismatch")
	}
}
