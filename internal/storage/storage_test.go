package storage

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pcplsm/internal/device"
)

// fsFactories enumerates every FS implementation under test.
func fsFactories(t *testing.T) map[string]func() FS {
	return map[string]func() FS{
		"memfs": func() FS { return NewMemFS() },
		"osfs": func() FS {
			o, err := NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		"simfs-1dev": func() FS {
			return NewSimFS(NewMemFS(), []*device.Device{device.New(device.Null(), 0)}, PlaceByFile, 0)
		},
		"simfs-stripe": func() FS {
			devs := []*device.Device{
				device.New(device.Null(), 0),
				device.New(device.Null(), 0),
				device.New(device.Null(), 0),
			}
			return NewSimFS(NewMemFS(), devs, PlaceStripe, 4096)
		},
	}
}

func TestFSConformance(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()

			// Create + write + read back.
			f, err := fs.Create("a")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if sz, err := f.Size(); err != nil || sz != 11 {
				t.Fatalf("Size = %d, %v", sz, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// Duplicate create fails.
			if _, err := fs.Create("a"); err == nil {
				t.Fatal("duplicate Create should fail")
			}

			// Open + positional reads.
			r, err := fs.Open("a")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 5)
			if _, err := r.ReadAt(buf, 6); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "world" {
				t.Fatalf("ReadAt = %q", buf)
			}
			// Read past EOF.
			if n, err := r.ReadAt(buf, 100); err != io.EOF || n != 0 {
				t.Fatalf("past-EOF read: n=%d err=%v", n, err)
			}
			// Short read at the tail returns EOF with partial data.
			big := make([]byte, 20)
			n, err := r.ReadAt(big, 6)
			if n != 5 || err != io.EOF {
				t.Fatalf("tail read: n=%d err=%v", n, err)
			}
			r.Close()

			// Open missing file.
			if _, err := fs.Open("missing"); err == nil {
				t.Fatal("Open(missing) should fail")
			}
			if _, err := fs.Size("missing"); err == nil {
				t.Fatal("Size(missing) should fail")
			}

			// Rename and List.
			if err := fs.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			if okA, err := Exists(fs, "a"); err != nil || okA {
				t.Fatalf("Exists(a) = %v, %v after rename", okA, err)
			}
			if okB, err := Exists(fs, "b"); err != nil || !okB {
				t.Fatalf("Exists(b) = %v, %v after rename", okB, err)
			}
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(names)
			if len(names) != 1 || names[0] != "b" {
				t.Fatalf("List = %v", names)
			}

			// Size by name.
			if sz, err := fs.Size("b"); err != nil || sz != 11 {
				t.Fatalf("Size(b) = %d, %v", sz, err)
			}

			// Remove.
			if err := fs.Remove("b"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Remove("b"); err == nil {
				t.Fatal("double Remove should fail")
			}

			// Invalid names.
			if _, err := fs.Create(""); err == nil {
				t.Fatal("empty name should fail")
			}
			if _, err := fs.Create("x/y"); err == nil {
				t.Fatal("name with separator should fail")
			}
		})
	}
}

func TestReadAllWriteFile(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			payload := bytes.Repeat([]byte("xyz"), 1000)
			if err := WriteFile(fs, "f", payload); err != nil {
				t.Fatal(err)
			}
			got, err := ReadAll(fs, "f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("round trip mismatch")
			}
			// WriteFile replaces.
			if err := WriteFile(fs, "f", []byte("new")); err != nil {
				t.Fatal(err)
			}
			got, _ = ReadAll(fs, "f")
			if string(got) != "new" {
				t.Fatalf("after replace: %q", got)
			}
		})
	}
}

func TestReadAllEmptyFile(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(fs, "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll(empty) = %v, %v", got, err)
	}
}

// TestMemFSRandomOps drives MemFS against a reference map with random
// operation sequences.
func TestMemFSRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMemFS()
		ref := map[string][]byte{}
		names := []string{"a", "b", "c", "d"}
		for step := 0; step < 200; step++ {
			n := names[rng.Intn(len(names))]
			switch rng.Intn(4) {
			case 0: // create+write
				if _, ok := ref[n]; ok {
					if _, err := fs.Create(n); err == nil {
						return false
					}
					continue
				}
				f, err := fs.Create(n)
				if err != nil {
					return false
				}
				data := make([]byte, rng.Intn(100))
				rng.Read(data)
				f.Write(data)
				f.Close()
				ref[n] = data
			case 1: // read
				data, ok := ref[n]
				got, err := ReadAll(fs, n)
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got, data) {
					return false
				}
			case 2: // remove
				_, ok := ref[n]
				err := fs.Remove(n)
				if ok != (err == nil) {
					return false
				}
				delete(ref, n)
			case 3: // rename
				m := names[rng.Intn(len(names))]
				if m == n {
					continue
				}
				_, ok := ref[n]
				err := fs.Rename(n, m)
				if ok != (err == nil) {
					return false
				}
				if ok {
					ref[m] = ref[n]
					delete(ref, n)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSConcurrentReadersWriters(t *testing.T) {
	fs := NewMemFS()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("file%d", i)
			f, err := fs.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 100; j++ {
				f.Write([]byte("0123456789"))
			}
			f.Close()
			got, err := ReadAll(fs, name)
			if err != nil || len(got) != 1000 {
				t.Errorf("file%d: %d bytes, %v", i, len(got), err)
			}
		}(i)
	}
	wg.Wait()
}

func TestSimFSChargesDevices(t *testing.T) {
	dev := device.New(device.SSD(), 0)
	fs := NewSimFS(NewMemFS(), []*device.Device{dev}, PlaceByFile, 0)
	f, _ := fs.Create("t")
	f.Write(make([]byte, 10000))
	f.Close()
	r, _ := fs.Open("t")
	buf := make([]byte, 4000)
	r.ReadAt(buf, 0)
	r.Close()

	s := dev.Stats()
	if s.WriteBytes != 10000 {
		t.Fatalf("WriteBytes = %d", s.WriteBytes)
	}
	if s.ReadBytes != 4000 {
		t.Fatalf("ReadBytes = %d", s.ReadBytes)
	}
}

func TestSimFSStripeSpreadsLoad(t *testing.T) {
	devs := []*device.Device{
		device.New(device.Null(), 0),
		device.New(device.Null(), 0),
		device.New(device.Null(), 0),
		device.New(device.Null(), 0),
	}
	fs := NewSimFS(NewMemFS(), devs, PlaceStripe, 1024)
	f, _ := fs.Create("t")
	f.Write(make([]byte, 64*1024))
	f.Close()

	for i, d := range devs {
		if got := d.Stats().WriteBytes; got != 16*1024 {
			t.Errorf("device %d got %d bytes, want even 16384", i, got)
		}
	}
}

func TestSimFSByFileRoundRobin(t *testing.T) {
	devs := []*device.Device{device.New(device.Null(), 0), device.New(device.Null(), 0)}
	fs := NewSimFS(NewMemFS(), devs, PlaceByFile, 0)
	for i := 0; i < 4; i++ {
		f, err := fs.Create(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		f.Write(make([]byte, 100))
		f.Close()
	}
	b0 := devs[0].Stats().WriteBytes
	b1 := devs[1].Stats().WriteBytes
	if b0 != 200 || b1 != 200 {
		t.Fatalf("round robin uneven: %d vs %d", b0, b1)
	}
}

func TestSimFSRenameKeepsAssignment(t *testing.T) {
	devs := []*device.Device{device.New(device.Null(), 0), device.New(device.Null(), 0)}
	fs := NewSimFS(NewMemFS(), devs, PlaceByFile, 0)
	f, _ := fs.Create("orig") // assigned to device 0
	f.Write(make([]byte, 100))
	f.Close()
	if err := fs.Rename("orig", "renamed"); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("renamed")
	r.ReadAt(make([]byte, 100), 0)
	r.Close()
	if rb := devs[0].Stats().ReadBytes; rb != 100 {
		t.Fatalf("read charged to wrong device: dev0 read %d bytes", rb)
	}
}

func TestSimFSStripeParallelism(t *testing.T) {
	// With k devices, a striped read of one large request should take ~1/k
	// of the single-device time (each device transfers 1/k of the bytes
	// concurrently).
	mkDevs := func(k int) []*device.Device {
		m := device.Model{Name: "t", ReadBandwidth: 100e6, WriteBandwidth: 100e6} // no latency
		devs := make([]*device.Device, k)
		for i := range devs {
			devs[i] = device.New(m, 1.0)
		}
		return devs
	}
	timeRead := func(k int) time.Duration {
		fs := NewSimFS(NewMemFS(), mkDevs(k), PlaceStripe, 64<<10)
		f, _ := fs.Create("t")
		f.Write(make([]byte, 4<<20))
		f.Close()
		r, _ := fs.Open("t")
		defer r.Close()
		start := time.Now()
		r.ReadAt(make([]byte, 4<<20), 0)
		return time.Since(start)
	}
	t1 := timeRead(1)
	t4 := timeRead(4)
	if t4 > t1*2/3 {
		t.Fatalf("striping gave no speedup: 1 disk %v, 4 disks %v", t1, t4)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceStripe.String() != "stripe" || PlaceByFile.String() != "byfile" {
		t.Fatal("placement names wrong")
	}
	if Placement(9).String() == "" {
		t.Fatal("unknown placement should render")
	}
}
