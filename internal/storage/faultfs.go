package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// ErrInjected is the error FaultFS returns when a fault fires.
var ErrInjected = errors.New("storage: injected fault")

// ErrPowerCut is returned by every operation after a simulated power cut.
var ErrPowerCut = errors.New("storage: simulated power cut")

// FaultFS wraps an FS with a deterministic, scriptable fault plan, for
// exercising error paths and crash consistency:
//
//   - Error injection: the Nth operation of a given kind (optionally
//     restricted to file names with a given suffix) fails, once or sticky.
//   - Torn writes: a failing write first persists a seeded prefix of its
//     payload, modelling a request torn mid-transfer.
//   - Power cuts: a Cut fault freezes the file system — the triggering and
//     every later operation fail with ErrPowerCut. FaultFS tracks synced
//     versus merely written bytes per file, so CrashImage can then produce
//     the durable state a machine would reboot with: synced prefixes
//     survive, unsynced tails are dropped except for a seeded torn fragment
//     (real disks persist part of the in-flight cache), and files that were
//     never synced since creation may vanish entirely.
//
// The fault plan is evaluated under one mutex, so a multi-goroutine store
// sees a single consistent fault sequence; with a fixed seed and a
// deterministic operation order the whole run replays identically.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	armed []*faultState
	files map[string]*fileMeta
	ops   map[FaultOp]int64
	rng   *rand.Rand
	down  bool
}

// FaultOp selects which operation class a fault applies to.
type FaultOp int

// Fault classes. FaultAny matches every operation kind (useful to schedule
// a power cut at the Nth I/O operation overall).
const (
	FaultCreate FaultOp = iota
	FaultOpen
	FaultWrite
	FaultSync
	FaultRemove
	FaultRename
	FaultRead
	FaultAny
	numFaultOps
)

var faultOpNames = [...]string{"create", "open", "write", "sync", "remove", "rename", "read", "any"}

func (op FaultOp) String() string {
	if int(op) < len(faultOpNames) {
		return faultOpNames[op]
	}
	return fmt.Sprintf("op%d", int(op))
}

// Fault is one entry of the fault plan.
type Fault struct {
	// Op selects the operation kind (FaultAny matches all).
	Op FaultOp
	// Suffix, when non-empty, restricts the fault to operations on file
	// names with this suffix (renames match on the old name).
	Suffix string
	// N fires the fault on the Nth matching operation (1 = the next one).
	N int
	// Sticky keeps the fault firing on every later matching operation.
	Sticky bool
	// Torn makes a failing write persist a seeded prefix of its payload
	// before reporting the error.
	Torn bool
	// Garble makes a write SUCCEED while silently flipping one seeded bit
	// of its payload on the way to the device — the lying-device fault that
	// only an end-to-end verification (paranoid checks, scrubbing) can
	// catch, since the write path observes no error at all.
	Garble bool
	// Cut turns the fault into a power cut: the file system goes down and
	// every operation from this one on fails with ErrPowerCut.
	Cut bool
	// Err overrides the returned error (default ErrInjected).
	Err error
}

type faultState struct {
	Fault
	countdown int64
	hits      int64
}

// fileMeta tracks durability per file: size is every byte written through
// this FaultFS, synced the prefix made durable by Sync. Files opened (not
// created) start fully durable at their existing size.
type fileMeta struct {
	size   int64
	synced int64
}

// NewFaultFS wraps inner with no faults armed and a fixed default seed.
func NewFaultFS(inner FS) *FaultFS { return NewSeededFaultFS(inner, 1) }

// NewSeededFaultFS wraps inner; seed drives torn-write prefixes and the
// torn-tail fractions of CrashImage.
func NewSeededFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{
		inner: inner,
		files: map[string]*fileMeta{},
		ops:   map[FaultOp]int64{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Arm makes the n-th next operation of kind op fail (n=1 means the next
// one). If sticky, every subsequent matching operation fails too.
func (f *FaultFS) Arm(op FaultOp, n int, sticky bool) {
	f.ArmFault(Fault{Op: op, N: n, Sticky: sticky})
}

// ArmFault adds one fault-plan entry. Entries accumulate; use Disarm to
// clear all entries for an operation kind.
func (f *FaultFS) ArmFault(ft Fault) {
	if ft.N < 1 {
		ft.N = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = append(f.armed, &faultState{Fault: ft, countdown: int64(ft.N)})
}

// Disarm clears every fault-plan entry of kind op.
func (f *FaultFS) Disarm(op FaultOp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.armed[:0]
	for _, st := range f.armed {
		if st.Op != op {
			kept = append(kept, st)
		}
	}
	f.armed = kept
}

// Hits returns how many times faults of kind op have fired.
func (f *FaultFS) Hits(op FaultOp) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.armed {
		if st.Op == op {
			n += st.hits
		}
	}
	return n
}

// OpCount returns how many operations of kind op have been issued (FaultAny
// gives the total across all kinds).
func (f *FaultFS) OpCount(op FaultOp) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if op == FaultAny {
		var n int64
		for _, c := range f.ops {
			n += c
		}
		return n
	}
	return f.ops[op]
}

// Down reports whether a power cut has fired.
func (f *FaultFS) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// tornLen is the seeded length of the persisted prefix of a torn payload.
// Called with f.mu held.
func (f *FaultFS) tornLen(n int) int {
	if n <= 0 {
		return 0
	}
	return f.rng.Intn(n + 1)
}

// check runs the fault plan for one operation, returning a non-nil error
// when a fault fires. tornPrefix is the number of payload bytes a torn
// write should persist before failing (0 otherwise); garble reports that a
// write should succeed with one seeded bit of its payload flipped.
func (f *FaultFS) check(op FaultOp, name string, payloadLen int) (tornPrefix int, garble bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.checkLocked(op, name, payloadLen)
}

func (f *FaultFS) checkLocked(op FaultOp, name string, payloadLen int) (tornPrefix int, garble bool, err error) {
	if f.down {
		return 0, false, ErrPowerCut
	}
	f.ops[op]++
	for _, st := range f.armed {
		if st.Op != FaultAny && st.Op != op {
			continue
		}
		if st.Suffix != "" && !hasSuffix(name, st.Suffix) {
			continue
		}
		st.countdown--
		if st.countdown > 0 || (st.countdown < 0 && !st.Sticky) {
			continue
		}
		st.hits++
		if st.Cut {
			f.down = true
			return 0, false, ErrPowerCut
		}
		if st.Garble && op == FaultWrite {
			return 0, true, nil
		}
		ferr := st.Err
		if ferr == nil {
			ferr = ErrInjected
		}
		if st.Torn && op == FaultWrite {
			return f.tornLen(payloadLen), false, ferr
		}
		return 0, false, ferr
	}
	return 0, false, nil
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if _, _, err := f.check(FaultCreate, name, 0); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	meta := &fileMeta{}
	f.files[name] = meta
	f.mu.Unlock()
	return &faultFile{fs: f, inner: file, name: name, meta: meta}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if _, _, err := f.check(FaultOpen, name, 0); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	meta, ok := f.files[name]
	if !ok {
		// A file that predates this FaultFS is fully durable as it stands.
		sz, serr := file.Size()
		if serr != nil {
			f.mu.Unlock()
			file.Close()
			return nil, serr
		}
		meta = &fileMeta{size: sz, synced: sz}
		f.files[name] = meta
	}
	f.mu.Unlock()
	return &faultFile{fs: f, inner: file, name: name, meta: meta}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, _, err := f.check(FaultRemove, name, 0); err != nil {
		return err
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.files, name)
	f.mu.Unlock()
	return nil
}

// Rename implements FS. Namespace operations model a metadata-journaling
// file system: once a rename returns it is durable and ordered, but file
// contents still require Sync.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, _, err := f.check(FaultRename, oldname, 0); err != nil {
		return err
	}
	if err := f.inner.Rename(oldname, newname); err != nil {
		return err
	}
	f.mu.Lock()
	if meta, ok := f.files[oldname]; ok {
		delete(f.files, oldname)
		f.files[newname] = meta
	} else {
		delete(f.files, newname)
	}
	f.mu.Unlock()
	return nil
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) {
	f.mu.Lock()
	down := f.down
	f.mu.Unlock()
	if down {
		return nil, ErrPowerCut
	}
	return f.inner.List()
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	f.mu.Lock()
	down := f.down
	f.mu.Unlock()
	if down {
		return 0, ErrPowerCut
	}
	return f.inner.Size(name)
}

// RotBytes injects at-rest bit-rot: it flips one seeded bit in each of n
// distinct random bytes of the named file's durable image, modelling media
// decay that no write path ever observed (the file's size, sync state, and
// every open handle's view of the old bytes are untouched — like a real
// disk, already-cached reads keep serving the healthy data while fresh
// reads see the rot). Only the synced prefix is eligible: unsynced bytes
// are still in the "page cache", where rot does not land. Returns the
// affected byte offsets.
func (f *FaultFS) RotBytes(name string, n int) ([]int64, error) {
	data, err := ReadAll(f.inner, name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	window := int64(len(data))
	if meta, ok := f.files[name]; ok && meta.synced < window {
		window = meta.synced
	}
	if window <= 0 {
		f.mu.Unlock()
		return nil, fmt.Errorf("storage: no durable bytes in %s to rot", name)
	}
	if int64(n) > window {
		n = int(window)
	}
	offsets := make([]int64, 0, n)
	seen := map[int64]bool{}
	for len(offsets) < n {
		off := f.rng.Int63n(window)
		if seen[off] {
			continue
		}
		seen[off] = true
		data[off] ^= 1 << f.rng.Intn(8)
		offsets = append(offsets, off)
	}
	f.mu.Unlock()
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	// Rewrite through a temp file + rename on the inner FS so the injection
	// bypasses the fault plan and the durability bookkeeping: the file's
	// tracked size and synced prefix are unchanged, exactly as if the
	// medium itself decayed.
	if err := WriteFile(f.inner, name, data); err != nil {
		return nil, err
	}
	return offsets, nil
}

// CrashImage renders the durable state after a power cut (or at any
// instant) into a fresh MemFS: every file keeps its synced prefix plus a
// seeded fraction of its unsynced tail, with the last bytes of a kept tail
// possibly garbled — the torn write a real disk leaves behind. Files
// created but never synced may be dropped entirely.
func (f *FaultFS) CrashImage() (*MemFS, error) {
	names, err := f.inner.List()
	if err != nil {
		return nil, err
	}
	sort.Strings(names)

	f.mu.Lock()
	defer f.mu.Unlock()
	img := NewMemFS()
	for _, name := range names {
		data, rerr := ReadAll(f.inner, name)
		if rerr != nil {
			return nil, fmt.Errorf("storage: crash image of %s: %w", name, rerr)
		}
		durable := len(data)
		if meta, ok := f.files[name]; ok {
			if int64(durable) > meta.synced {
				durable = int(meta.synced)
			}
			if tail := len(data) - durable; tail > 0 {
				// The unsynced suffix tears: a seeded prefix of it survives,
				// and up to 8 of its final bytes may be garbage.
				keep := f.rng.Intn(tail + 1)
				if keep > 0 {
					data = append([]byte(nil), data[:durable+keep]...)
					if f.rng.Intn(2) == 0 {
						garble := 1 + f.rng.Intn(8)
						if garble > keep {
							garble = keep
						}
						for i := len(data) - garble; i < len(data); i++ {
							data[i] ^= 0xa5
						}
					}
					durable = len(data)
				}
			}
			if durable == 0 && meta.synced == 0 {
				// Creation without any sync: the file itself may be lost.
				if f.rng.Intn(2) == 0 {
					continue
				}
			}
		}
		wf, cerr := img.Create(name)
		if cerr != nil {
			return nil, cerr
		}
		if durable > 0 {
			if _, werr := wf.Write(data[:durable]); werr != nil {
				return nil, werr
			}
		}
		wf.Close()
	}
	return img, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
	meta  *fileMeta
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if _, _, err := f.fs.check(FaultRead, f.name, 0); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	torn, garble, err := f.fs.check(FaultWrite, f.name, len(p))
	if err != nil {
		if torn > 0 {
			if n, werr := f.inner.Write(p[:torn]); werr == nil {
				f.fs.mu.Lock()
				f.meta.size += int64(n)
				f.fs.mu.Unlock()
			}
		}
		return 0, err
	}
	if garble && len(p) > 0 {
		// The device silently flips one seeded bit of the payload and then
		// reports a clean write.
		q := append([]byte(nil), p...)
		f.fs.mu.Lock()
		q[f.fs.rng.Intn(len(q))] ^= 1 << f.fs.rng.Intn(8)
		f.fs.mu.Unlock()
		p = q
	}
	n, err := f.inner.Write(p)
	if n > 0 {
		f.fs.mu.Lock()
		f.meta.size += int64(n)
		f.fs.mu.Unlock()
	}
	return n, err
}

func (f *faultFile) Sync() error {
	if _, _, err := f.fs.check(FaultSync, f.name, 0); err != nil {
		return err
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.meta.synced = f.meta.size
	f.fs.mu.Unlock()
	return nil
}

// Close passes through even after a power cut: a crashed process's file
// descriptors close without touching the (gone) device.
func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
