package storage

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error FaultFS returns when a fault fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultFS wraps an FS and injects failures, for exercising error paths:
// flush failures surfacing as background errors, compactions aborting
// cleanly, recovery after partial writes. Faults are armed by operation
// kind with a countdown: the Nth matching operation fails (and keeps
// failing until disarmed).
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	armed  map[FaultOp]*faultState
	writes atomic.Int64
}

// FaultOp selects which operation class a fault applies to.
type FaultOp int

// Fault classes.
const (
	FaultCreate FaultOp = iota
	FaultOpen
	FaultWrite
	FaultSync
	FaultRemove
	FaultRename
)

type faultState struct {
	countdown int64 // fail when it reaches zero
	sticky    bool  // keep failing after the first hit
	hits      int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, armed: map[FaultOp]*faultState{}}
}

// Arm makes the n-th next operation of kind op fail (n=1 means the next
// one). If sticky, every subsequent matching operation fails too.
func (f *FaultFS) Arm(op FaultOp, n int, sticky bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed[op] = &faultState{countdown: int64(n), sticky: sticky}
}

// Disarm clears a fault.
func (f *FaultFS) Disarm(op FaultOp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.armed, op)
}

// Hits returns how many times a fault of kind op has fired.
func (f *FaultFS) Hits(op FaultOp) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st, ok := f.armed[op]; ok {
		return st.hits
	}
	return 0
}

// check returns ErrInjected when the fault for op fires.
func (f *FaultFS) check(op FaultOp) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.armed[op]
	if !ok {
		return nil
	}
	st.countdown--
	if st.countdown > 0 {
		return nil
	}
	if st.countdown < 0 && !st.sticky {
		return nil
	}
	st.hits++
	return ErrInjected
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check(FaultCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.check(FaultOpen); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(FaultRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check(FaultRename); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) { return f.inner.List() }

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(FaultWrite); err != nil {
		return 0, err
	}
	f.fs.writes.Add(1)
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(FaultSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
