package storage

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// MemFS is an in-memory FS, safe for concurrent use. It is the default
// backing store for tests and for SimFS-based experiments (the paper's
// direct-I/O methodology means the page cache is out of the picture anyway;
// holding bytes in memory lets the simulated devices own all timing).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFileData
}

type memFileData struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFileData{}}
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	d := &memFileData{}
	fs.files[name] = d
	return &memFile{d: d}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &memFile{d: d}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	if err := validateName(newname); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = d
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	return names, nil
}

// Size implements FS.
func (fs *MemFS) Size(name string) (int64, error) {
	fs.mu.Lock()
	d, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data)), nil
}

// memFile is a handle onto shared file data. The closed flag is atomic:
// with concurrent background work a table reader can be closed by cache
// eviction while a racing read is in flight on another goroutine.
type memFile struct {
	d      *memFileData
	closed atomic.Bool
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, fmt.Errorf("storage: read on closed file")
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed.Load() {
		return 0, fmt.Errorf("storage: write on closed file")
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.d.data = append(f.d.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.closed.Store(true)
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.data)), nil
}
