// Package storage abstracts the file system under the LSM store.
//
// Three implementations are provided:
//
//   - MemFS: an in-memory file system for fast, deterministic tests;
//   - OSFS: a passthrough to the real file system;
//   - SimFS: wraps another FS and charges every read/write against simulated
//     devices (package device), either striping across them like the paper's
//     md RAID0 setup (S-PPCP) or assigning whole files round-robin.
//
// The namespace is flat: names contain no directory separators. The store
// only ever creates files in one directory, so a flat namespace keeps every
// implementation small.
package storage

import (
	"errors"
	"fmt"
	"io"
)

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = errors.New("storage: file does not exist")

// ErrExist is returned by Create when the file already exists.
var ErrExist = errors.New("storage: file already exists")

// File is an open file. Writes always append (the store writes SSTables and
// logs strictly sequentially); reads are positional and concurrency-safe.
type File interface {
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync makes previously written data durable.
	Sync() error
	// Size returns the current file size.
	Size() (int64, error)
}

// FS is a flat-namespace file system.
type FS interface {
	// Create makes a new empty file. It fails with ErrExist if name exists.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldname, newname string) error
	// List returns all file names in unspecified order.
	List() ([]string, error)
	// Size returns the size of a named file.
	Size(name string) (int64, error)
}

// Exists reports whether name exists in fs. A failed probe is distinct from
// a missing file: only ErrNotExist maps to (false, nil); any other Size
// error is returned so callers cannot mistake an I/O fault for absence.
func Exists(fs FS, name string) (bool, error) {
	_, err := fs.Size(name)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNotExist):
		return false, nil
	default:
		return false, err
	}
}

// ReadAll reads the entire contents of a named file.
func ReadAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if sz == 0 {
		return buf, nil
	}
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates name with the given contents, replacing any existing
// file of that name via a temporary file and rename.
func WriteFile(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	_ = fs.Remove(tmp)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, name)
}

// validateName rejects names that would escape a flat namespace.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty file name")
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == '\\' {
			return fmt.Errorf("storage: name %q contains a path separator", name)
		}
	}
	return nil
}
