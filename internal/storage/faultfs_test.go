package storage

import (
	"errors"
	"testing"
)

func TestFaultFSPassthrough(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	if err := WriteFile(fs, "a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(fs, "a")
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if sz, err := fs.Size("a"); err != nil || sz != 4 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
}

func TestFaultCountdown(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	fs.Arm(FaultCreate, 3, false) // third create fails

	for i, want := range []bool{true, true, false, true} {
		_, err := fs.Create(string(rune('a' + i)))
		if (err == nil) != want {
			t.Fatalf("create %d: err=%v, want ok=%v", i, err, want)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("wrong error type: %v", err)
		}
	}
	if fs.Hits(FaultCreate) != 1 {
		t.Fatalf("Hits = %d", fs.Hits(FaultCreate))
	}
}

func TestStickyFault(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm(FaultWrite, 2, true)
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal("first write should pass")
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("more")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d: %v", i, err)
		}
	}
	fs.Disarm(FaultWrite)
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
}

func TestSyncAndRenameFaults(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("s")
	fs.Arm(FaultSync, 1, false)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	fs.Arm(FaultRename, 1, false)
	if err := fs.Rename("s", "t"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault: %v", err)
	}
	if err := fs.Rename("s", "t"); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}
