package storage

import (
	"errors"
	"testing"
)

func TestFaultFSPassthrough(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	if err := WriteFile(fs, "a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(fs, "a")
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if sz, err := fs.Size("a"); err != nil || sz != 4 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
}

func TestFaultCountdown(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	fs.Arm(FaultCreate, 3, false) // third create fails

	for i, want := range []bool{true, true, false, true} {
		_, err := fs.Create(string(rune('a' + i)))
		if (err == nil) != want {
			t.Fatalf("create %d: err=%v, want ok=%v", i, err, want)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("wrong error type: %v", err)
		}
	}
	if fs.Hits(FaultCreate) != 1 {
		t.Fatalf("Hits = %d", fs.Hits(FaultCreate))
	}
}

func TestStickyFault(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm(FaultWrite, 2, true)
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal("first write should pass")
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("more")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d: %v", i, err)
		}
	}
	fs.Disarm(FaultWrite)
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
}

func TestFaultSuffixFilter(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	fs.ArmFault(Fault{Op: FaultCreate, Suffix: ".sst", N: 1, Sticky: true})
	if _, err := fs.Create("000001.log"); err != nil {
		t.Fatalf("non-matching create failed: %v", err)
	}
	if _, err := fs.Create("000002.sst"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching create: %v", err)
	}
}

func TestFaultCustomError(t *testing.T) {
	boom := errors.New("boom")
	fs := NewFaultFS(NewMemFS())
	fs.ArmFault(Fault{Op: FaultOpen, N: 1, Err: boom})
	WriteFile(fs, "f", []byte("x"))
	if _, err := fs.Open("f"); !errors.Is(err, boom) {
		t.Fatalf("custom error: %v", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	inner := NewMemFS()
	fs := NewSeededFaultFS(inner, 7)
	f, err := fs.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	fs.ArmFault(Fault{Op: FaultWrite, N: 1, Torn: true})
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %v", err)
	}
	data, err := ReadAll(inner, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len("durable") || len(data) > len("durable")+10 {
		t.Fatalf("inner length %d after torn write", len(data))
	}
	if string(data[:7]) != "durable" {
		t.Fatalf("torn write damaged earlier data: %q", data)
	}
	// The persisted prefix must be a prefix of the torn payload.
	if string(data[7:]) != "0123456789"[:len(data)-7] {
		t.Fatalf("persisted tail %q is not a payload prefix", data[7:])
	}
}

func TestPowerCutFailsEverything(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	fs.ArmFault(Fault{Op: FaultAny, N: 1, Cut: true})
	if _, err := fs.Create("b"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("create at cut: %v", err)
	}
	if !fs.Down() {
		t.Fatal("Down() false after cut")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut: %v", err)
	}
	if _, err := fs.List(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("list after cut: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after cut must pass: %v", err)
	}
}

func TestCrashImageDurability(t *testing.T) {
	inner := NewMemFS()
	fs := NewSeededFaultFS(inner, 42)

	// synced: fully durable.
	f1, _ := fs.Create("synced")
	f1.Write([]byte("hello"))
	f1.Sync()

	// mixed: a synced prefix plus an unsynced tail.
	f2, _ := fs.Create("mixed")
	f2.Write([]byte("keep-"))
	f2.Sync()
	f2.Write([]byte("maybe-this-tail-is-lost"))

	// unsynced: never synced since creation; may vanish entirely.
	f3, _ := fs.Create("unsynced")
	f3.Write([]byte("gone?"))

	fs.ArmFault(Fault{Op: FaultAny, N: 1, Cut: true})
	fs.Create("ignored") // trips the cut

	img, err := fs.CrashImage()
	if err != nil {
		t.Fatal(err)
	}
	if data, err := ReadAll(img, "synced"); err != nil || string(data) != "hello" {
		t.Fatalf("synced file = %q, %v", data, err)
	}
	data, err := ReadAll(img, "mixed")
	if err != nil {
		t.Fatalf("mixed file: %v", err)
	}
	if len(data) < 5 || string(data[:5]) != "keep-" {
		t.Fatalf("mixed file lost synced prefix: %q", data)
	}
	if ok, err := Exists(img, "unsynced"); err != nil {
		t.Fatal(err)
	} else if ok {
		// Allowed to survive (possibly truncated/garbled), never required.
		if sz, _ := img.Size("unsynced"); sz > 5 {
			t.Fatalf("unsynced file grew: %d bytes", sz)
		}
	}
}

func TestCrashImageDeterministic(t *testing.T) {
	build := func(seed int64) map[string]string {
		inner := NewMemFS()
		fs := NewSeededFaultFS(inner, seed)
		for _, name := range []string{"a", "b", "c"} {
			f, _ := fs.Create(name)
			f.Write([]byte("synced-part-"))
			f.Sync()
			f.Write([]byte("unsynced-tail-of-" + name))
		}
		fs.ArmFault(Fault{Op: FaultAny, N: 1, Cut: true})
		fs.Size("a")
		img, err := fs.CrashImage()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		names, _ := img.List()
		for _, n := range names {
			data, _ := ReadAll(img, n)
			out[n] = string(data)
		}
		return out
	}
	one, two := build(99), build(99)
	if len(one) != len(two) {
		t.Fatalf("images differ in file count: %d vs %d", len(one), len(two))
	}
	for n, d := range one {
		if two[n] != d {
			t.Fatalf("file %s differs between same-seed runs: %q vs %q", n, d, two[n])
		}
	}
}

func TestCrashImagePreexistingFilesDurable(t *testing.T) {
	inner := NewMemFS()
	if err := WriteFile(inner, "old", []byte("pre-existing")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(inner)
	fs.ArmFault(Fault{Op: FaultAny, N: 1, Cut: true})
	fs.Size("old")
	img, err := fs.CrashImage()
	if err != nil {
		t.Fatal(err)
	}
	if data, err := ReadAll(img, "old"); err != nil || string(data) != "pre-existing" {
		t.Fatalf("pre-existing file = %q, %v", data, err)
	}
}

func TestRenameMovesDurabilityTracking(t *testing.T) {
	inner := NewMemFS()
	fs := NewSeededFaultFS(inner, 5)
	f, _ := fs.Create("tmp")
	f.Write([]byte("payload"))
	f.Sync()
	f.Close()
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	fs.ArmFault(Fault{Op: FaultAny, N: 1, Cut: true})
	fs.Size("final")
	img, err := fs.CrashImage()
	if err != nil {
		t.Fatal(err)
	}
	if data, err := ReadAll(img, "final"); err != nil || string(data) != "payload" {
		t.Fatalf("renamed file = %q, %v", data, err)
	}
	if ok, _ := Exists(img, "tmp"); ok {
		t.Fatal("old name survived the rename")
	}
}

func TestSyncAndRenameFaults(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("s")
	fs.Arm(FaultSync, 1, false)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	fs.Arm(FaultRename, 1, false)
	if err := fs.Rename("s", "t"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault: %v", err)
	}
	if err := fs.Rename("s", "t"); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}
