package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// OSFS is an FS rooted at a real directory, for running the store and the
// experiments against actual storage hardware.
type OSFS struct {
	root string
}

// NewOSFS returns an FS rooted at dir, creating it if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating root: %w", err)
	}
	return &OSFS{root: dir}, nil
}

func (o *OSFS) path(name string) string { return filepath.Join(o.root, name) }

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(o.path(name), os.O_CREATE|os.O_EXCL|os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrExist, name)
		}
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Open implements FS.
func (o *OSFS) Open(name string) (File, error) {
	// Open read-write with append so journal files (manifest, WAL) can be
	// reopened and continued; table files are only ever read.
	f, err := os.OpenFile(o.path(name), os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	err := os.Remove(o.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return err
}

// Rename implements FS.
func (o *OSFS) Rename(oldname, newname string) error {
	if err := validateName(newname); err != nil {
		return err
	}
	err := os.Rename(o.path(oldname), o.path(newname))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	return err
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(o.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Size implements FS.
func (o *OSFS) Size(name string) (int64, error) {
	st, err := os.Stat(o.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, err
	}
	return st.Size(), nil
}

type osFile struct {
	f *os.File
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *osFile) Sync() error                             { return f.f.Sync() }
func (f *osFile) Close() error                            { return f.f.Close() }
func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
