package storage

import (
	"fmt"
	"sync"

	"pcplsm/internal/device"
)

// Placement selects how SimFS maps bytes onto its devices.
type Placement int

const (
	// PlaceStripe stripes every file across all devices in stripeSize
	// units — the paper's md RAID0 configuration for S-PPCP.
	PlaceStripe Placement = iota
	// PlaceByFile assigns each whole file to one device, round-robin at
	// creation — the paper's alternative S-PPCP scheduling where Step 1 and
	// Step 7 of different sub-tasks land on different disks.
	PlaceByFile
)

// DefaultStripeSize is the RAID0 chunk size (matches common md defaults).
const DefaultStripeSize = 512 << 10

// SimFS charges all I/O on an inner FS against simulated devices. The inner
// FS provides the bytes; the devices provide the time.
type SimFS struct {
	inner      FS
	devices    []*device.Device
	placement  Placement
	stripeSize int

	mu      sync.Mutex
	ids     map[string]uint64
	assign  map[uint64]int
	nextID  uint64
	nextDev int
}

// NewSimFS wraps inner with the given devices. With one device the
// placement mode is irrelevant. stripeSize <= 0 selects DefaultStripeSize.
func NewSimFS(inner FS, devices []*device.Device, placement Placement, stripeSize int) *SimFS {
	if len(devices) == 0 {
		panic("storage: SimFS needs at least one device")
	}
	if stripeSize <= 0 {
		stripeSize = DefaultStripeSize
	}
	return &SimFS{
		inner:      inner,
		devices:    devices,
		placement:  placement,
		stripeSize: stripeSize,
		ids:        map[string]uint64{},
		assign:     map[uint64]int{},
	}
}

// Devices returns the simulated devices (for stats inspection).
func (s *SimFS) Devices() []*device.Device { return s.devices }

// ResetDeviceStats zeroes all device counters.
func (s *SimFS) ResetDeviceStats() {
	for _, d := range s.devices {
		d.ResetStats()
	}
}

// fileID returns a stable id for name, assigning one (and a device, for
// PlaceByFile) on first use.
func (s *SimFS) fileID(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	s.nextID++
	id := s.nextID
	s.ids[name] = id
	s.assign[id] = s.nextDev
	s.nextDev = (s.nextDev + 1) % len(s.devices)
	return id
}

// charge applies the simulated time for an access of n bytes at off.
func (s *SimFS) charge(write bool, id uint64, off int64, n int) {
	if n <= 0 {
		return
	}
	if s.placement == PlaceByFile || len(s.devices) == 1 {
		s.mu.Lock()
		dev := s.devices[s.assign[id]%len(s.devices)]
		s.mu.Unlock()
		dev.Access(write, id, off, n)
		return
	}
	// RAID0: split [off, off+n) into stripe chunks and charge each device
	// its share concurrently, the way independent spindles service one
	// logical request.
	k := len(s.devices)
	per := make([]int, k)
	start := make([]int64, k)
	first := make([]bool, k)
	stripe := int64(s.stripeSize)
	for cur := off; cur < off+int64(n); {
		chunkEnd := (cur/stripe + 1) * stripe
		if end := off + int64(n); chunkEnd > end {
			chunkEnd = end
		}
		di := int((cur / stripe) % int64(k))
		if !first[di] {
			// Translated per-device offset keeps sequential detection
			// meaningful: device di sees roughly off/k.
			start[di] = cur / int64(k)
			first[di] = true
		}
		per[di] += int(chunkEnd - cur)
		cur = chunkEnd
	}
	var wg sync.WaitGroup
	for di := 0; di < k; di++ {
		if per[di] == 0 {
			continue
		}
		wg.Add(1)
		go func(di int) {
			defer wg.Done()
			s.devices[di].Access(write, id, start[di], per[di])
		}(di)
	}
	wg.Wait()
}

// Create implements FS.
func (s *SimFS) Create(name string) (File, error) {
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &simFile{fs: s, inner: f, id: s.fileID(name)}, nil
}

// Open implements FS.
func (s *SimFS) Open(name string) (File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	sz, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &simFile{fs: s, inner: f, id: s.fileID(name), woff: sz}, nil
}

// Remove implements FS.
func (s *SimFS) Remove(name string) error { return s.inner.Remove(name) }

// Rename implements FS. The file keeps its device assignment.
func (s *SimFS) Rename(oldname, newname string) error {
	if err := s.inner.Rename(oldname, newname); err != nil {
		return err
	}
	s.mu.Lock()
	if id, ok := s.ids[oldname]; ok {
		delete(s.ids, oldname)
		s.ids[newname] = id
	}
	s.mu.Unlock()
	return nil
}

// List implements FS.
func (s *SimFS) List() ([]string, error) { return s.inner.List() }

// Size implements FS.
func (s *SimFS) Size(name string) (int64, error) { return s.inner.Size(name) }

// simWriteCoalesce is the write-back granularity: appended bytes are
// charged against the device in chunks of this size (plus a final partial
// chunk at Sync/Close/read), modeling the page cache absorbing small
// writes and writing them back in large requests. Data itself reaches the
// inner FS immediately, so crash-recovery semantics are unaffected.
const simWriteCoalesce = 256 << 10

type simFile struct {
	fs    *SimFS
	inner File
	id    uint64

	mu         sync.Mutex
	woff       int64 // append position
	pendingOff int64 // where the uncharged run started
	pending    int   // appended bytes not yet charged
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	// Charge pending writes first so device-time ordering follows data
	// dependencies.
	f.flushCharge()
	f.fs.charge(false, f.id, off, len(p))
	return f.inner.ReadAt(p, off)
}

func (f *simFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.pending == 0 {
		f.pendingOff = f.woff
	}
	f.woff += int64(len(p))
	f.pending += len(p)
	var chargeOff int64
	var chargeN int
	if f.pending >= simWriteCoalesce {
		chargeOff, chargeN = f.pendingOff, f.pending
		f.pending = 0
	}
	f.mu.Unlock()
	if chargeN > 0 {
		f.fs.charge(true, f.id, chargeOff, chargeN)
	}
	return f.inner.Write(p)
}

// flushCharge charges any uncharged appended bytes.
func (f *simFile) flushCharge() {
	f.mu.Lock()
	off, n := f.pendingOff, f.pending
	f.pending = 0
	f.mu.Unlock()
	if n > 0 {
		f.fs.charge(true, f.id, off, n)
	}
}

func (f *simFile) Sync() error {
	f.flushCharge()
	return f.inner.Sync()
}

func (f *simFile) Close() error {
	f.flushCharge()
	return f.inner.Close()
}

func (f *simFile) Size() (int64, error) { return f.inner.Size() }

// String identifies the placement mode for experiment logs.
func (p Placement) String() string {
	switch p {
	case PlaceStripe:
		return "stripe"
	case PlaceByFile:
		return "byfile"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}
