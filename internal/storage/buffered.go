package storage

import "fmt"

// BufferedFile wraps a File with write buffering: appends accumulate in
// memory and reach the underlying file in chunks of at least flushSize.
// This mirrors how a real store writes tables and logs (through a buffered
// writer / page cache), so simulated devices see realistic I/O sizes
// instead of one request per 4 KiB block.
//
// ReadAt flushes first, so reads always observe written data. Not safe for
// concurrent writers (the store never shares an output file).
type BufferedFile struct {
	f    File
	buf  []byte
	size int
}

// DefaultFlushSize is the default write-coalescing threshold.
const DefaultFlushSize = 256 << 10

// NewBufferedFile wraps f. flushSize <= 0 selects DefaultFlushSize.
func NewBufferedFile(f File, flushSize int) *BufferedFile {
	if flushSize <= 0 {
		flushSize = DefaultFlushSize
	}
	return &BufferedFile{f: f, size: flushSize, buf: make([]byte, 0, flushSize)}
}

// Write buffers p, flushing whole chunks as the buffer fills.
func (b *BufferedFile) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := copy(b.buf[len(b.buf):cap(b.buf)], p)
		b.buf = b.buf[:len(b.buf)+n]
		p = p[n:]
		if len(b.buf) == cap(b.buf) {
			if err := b.Flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// Flush forces buffered bytes down to the file.
func (b *BufferedFile) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	n, err := b.f.Write(b.buf)
	if err != nil {
		return err
	}
	if n != len(b.buf) {
		return fmt.Errorf("storage: short buffered flush: %d of %d", n, len(b.buf))
	}
	b.buf = b.buf[:0]
	return nil
}

// ReadAt flushes and reads through.
func (b *BufferedFile) ReadAt(p []byte, off int64) (int, error) {
	if err := b.Flush(); err != nil {
		return 0, err
	}
	return b.f.ReadAt(p, off)
}

// Sync flushes and syncs the underlying file.
func (b *BufferedFile) Sync() error {
	if err := b.Flush(); err != nil {
		return err
	}
	return b.f.Sync()
}

// Close flushes and closes.
func (b *BufferedFile) Close() error {
	if err := b.Flush(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}

// Size returns the logical size including buffered bytes.
func (b *BufferedFile) Size() (int64, error) {
	sz, err := b.f.Size()
	if err != nil {
		return 0, err
	}
	return sz + int64(len(b.buf)), nil
}
