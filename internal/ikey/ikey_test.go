package ikey

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeAndExtract(t *testing.T) {
	ik := Make([]byte("hello"), 12345, KindSet)
	if string(UserKey(ik)) != "hello" {
		t.Fatalf("UserKey = %q", UserKey(ik))
	}
	if Seq(ik) != 12345 {
		t.Fatalf("Seq = %d", Seq(ik))
	}
	if KindOf(ik) != KindSet {
		t.Fatalf("Kind = %v", KindOf(ik))
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(user []byte, seq uint64, isSet bool) bool {
		seq %= MaxSeq + 1
		kind := KindDelete
		if isSet {
			kind = KindSet
		}
		ik := Make(user, seq, kind)
		return bytes.Equal(UserKey(ik), user) && Seq(ik) == seq && KindOf(ik) == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for seq > MaxSeq")
		}
	}()
	Make([]byte("k"), MaxSeq+1, KindSet)
}

func TestCompareOrdering(t *testing.T) {
	// In expected order, earliest first.
	ordered := [][]byte{
		Make([]byte("a"), 9, KindSet),
		Make([]byte("a"), 5, KindSet),
		Make([]byte("a"), 5, KindDelete), // same seq: Set(1) sorts before Delete(0)
		Make([]byte("a"), 1, KindSet),
		Make([]byte("b"), 100, KindDelete),
		Make([]byte("b"), 2, KindSet),
		Make([]byte("ba"), 50, KindSet),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", String(ordered[i]), String(ordered[j]), got, want)
			}
		}
	}
}

func TestCompareNewestFirstProperty(t *testing.T) {
	f := func(user []byte, s1, s2 uint64) bool {
		s1 %= MaxSeq + 1
		s2 %= MaxSeq + 1
		a := Make(user, s1, KindSet)
		b := Make(user, s2, KindSet)
		switch {
		case s1 > s2:
			return Compare(a, b) < 0 // newer sorts first
		case s1 < s2:
			return Compare(a, b) > 0
		default:
			return Compare(a, b) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchKeySortsBeforeAllVersions(t *testing.T) {
	user := []byte("k")
	snap := uint64(50)
	sk := SearchKey(user, snap)
	// SearchKey(user, 50) must sort <= every version with seq <= 50 and
	// after every version with seq > 50.
	for seq := uint64(0); seq <= 100; seq += 5 {
		for _, kind := range []Kind{KindDelete, KindSet} {
			v := Make(user, seq, kind)
			c := Compare(sk, v)
			if seq <= snap && c > 0 {
				t.Errorf("SearchKey(50) sorts after version seq=%d kind=%v", seq, kind)
			}
			if seq > snap && c <= 0 {
				t.Errorf("SearchKey(50) does not sort after newer version seq=%d", seq)
			}
		}
	}
}

func TestSortStability(t *testing.T) {
	// Sorting a shuffled set of internal keys with Compare must group user
	// keys and order versions newest-first within each group.
	var keys [][]byte
	for _, u := range []string{"b", "a", "c"} {
		for _, s := range []uint64{3, 1, 7, 2} {
			keys = append(keys, Make([]byte(u), s, KindSet))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return Compare(keys[i], keys[j]) < 0 })
	wantUsers := []string{"a", "a", "a", "a", "b", "b", "b", "b", "c", "c", "c", "c"}
	wantSeqs := []uint64{7, 3, 2, 1, 7, 3, 2, 1, 7, 3, 2, 1}
	for i, k := range keys {
		if string(UserKey(k)) != wantUsers[i] || Seq(k) != wantSeqs[i] {
			t.Fatalf("position %d: got %s", i, String(k))
		}
	}
}

func TestValid(t *testing.T) {
	if Valid(make([]byte, 7)) {
		t.Error("7 bytes should be invalid")
	}
	if !Valid(make([]byte, 8)) {
		t.Error("8 bytes (empty user key) should be valid")
	}
}

func TestEmptyUserKey(t *testing.T) {
	ik := Make(nil, 1, KindSet)
	if len(UserKey(ik)) != 0 {
		t.Fatalf("UserKey = %q", UserKey(ik))
	}
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "set" || KindDelete.String() != "del" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestStringFormat(t *testing.T) {
	s := String(Make([]byte("u"), 7, KindDelete))
	if s != `"u"#7,del` {
		t.Fatalf("String = %s", s)
	}
	if String([]byte{1}) == "" {
		t.Fatal("short key should render a diagnostic")
	}
}
