// Package ikey defines the internal key encoding shared by the memtable,
// SSTables and the compaction merge step.
//
// An internal key is the user key followed by an 8-byte little-endian
// trailer packing a 56-bit sequence number and an 8-bit kind:
//
//	| user key ... | (seq << 8 | kind) as uint64 LE |
//
// Internal keys order by user key ascending, then sequence number
// descending, then kind descending — so the newest version of a user key is
// encountered first, which is what lets the compaction merge (Step 4 SORT)
// drop shadowed versions and deletion tombstones.
package ikey

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates entry types inside the tree.
type Kind uint8

const (
	// KindDelete marks a deletion tombstone.
	KindDelete Kind = 0
	// KindSet marks a normal key/value entry.
	KindSet Kind = 1
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "del"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MaxSeq is the largest representable sequence number (56 bits).
const MaxSeq = uint64(1)<<56 - 1

// TrailerLen is the byte length of the encoded trailer.
const TrailerLen = 8

// PutTrailer encodes the (seq, kind) trailer into dst[:TrailerLen], letting
// callers that manage their own buffers (the memtable arena) build internal
// keys without an intermediate allocation.
func PutTrailer(dst []byte, seq uint64, kind Kind) {
	if seq > MaxSeq {
		panic(fmt.Sprintf("ikey: sequence %d exceeds MaxSeq", seq))
	}
	binary.LittleEndian.PutUint64(dst, seq<<8|uint64(kind))
}

// Make appends the trailer for (seq, kind) to user and returns the internal
// key. It does not alias user's backing array beyond what append does;
// callers that must not mutate user should pass a copy.
func Make(user []byte, seq uint64, kind Kind) []byte {
	ik := make([]byte, len(user)+TrailerLen)
	copy(ik, user)
	PutTrailer(ik[len(user):], seq, kind)
	return ik
}

// SearchKey returns the internal key that sorts before every version of
// user visible at snapshot seq — i.e. the seek target for a read at seq.
func SearchKey(user []byte, seq uint64) []byte {
	return Make(user, seq, Kind(0xff))
}

// Valid reports whether ik is long enough to carry a trailer.
func Valid(ik []byte) bool { return len(ik) >= TrailerLen }

// UserKey returns the user-key portion of ik.
func UserKey(ik []byte) []byte {
	if !Valid(ik) {
		panic(fmt.Sprintf("ikey: invalid internal key of %d bytes", len(ik)))
	}
	return ik[:len(ik)-TrailerLen]
}

// Trailer returns the packed (seq<<8|kind) trailer value.
func Trailer(ik []byte) uint64 {
	if !Valid(ik) {
		panic(fmt.Sprintf("ikey: invalid internal key of %d bytes", len(ik)))
	}
	return binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:])
}

// Seq extracts the sequence number.
func Seq(ik []byte) uint64 { return Trailer(ik) >> 8 }

// KindOf extracts the kind.
func KindOf(ik []byte) Kind { return Kind(Trailer(ik) & 0xff) }

// Compare orders internal keys: user key ascending, then trailer (seq,kind)
// descending. It panics on malformed keys — such keys indicate corruption
// that must not be silently ordered.
func Compare(a, b []byte) int {
	if c := bytes.Compare(UserKey(a), UserKey(b)); c != 0 {
		return c
	}
	ta, tb := Trailer(a), Trailer(b)
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// String renders ik for debugging, e.g. "user0001#42,set".
func String(ik []byte) string {
	if !Valid(ik) {
		return fmt.Sprintf("badikey(%q)", ik)
	}
	return fmt.Sprintf("%q#%d,%v", UserKey(ik), Seq(ik), KindOf(ik))
}
