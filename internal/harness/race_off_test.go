//go:build !race

package harness

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
