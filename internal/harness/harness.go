// Package harness reproduces every figure of the paper's evaluation
// (§IV). Each Fig* function runs the experiment at a configurable scale
// and returns a Table holding the same rows/series the paper plots;
// cmd/pcpbench prints them and EXPERIMENTS.md records paper-vs-measured.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/device"
	"pcplsm/internal/ikey"
	"pcplsm/internal/lsm"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
	"pcplsm/internal/workload"
)

// Table is one experiment's output: named columns and formatted rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-form annotation.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale trades experiment fidelity for runtime. The paper loaded up to
// 80 million entries on real hardware; Quick runs in seconds on simulated
// devices, Full in minutes.
type Scale struct {
	Name string
	// TimeScale multiplies simulated device service times. It must equal
	// CPUDilation for faithful CPU-vs-I/O ratios; smaller values speed
	// experiments up but shift every configuration toward CPU-bound.
	TimeScale float64
	// CPUDilation emulates the paper's multi-core testbed on small hosts:
	// compute steps are stretched D× by sleeping, so parallel compute
	// workers overlap even on one core (see core.Config.CPUDilation).
	// TimeScale must be multiplied by the same factor.
	CPUDilation int
	// CompactionBytes is the upper-component input for isolated-compaction
	// experiments (Figures 5, 8, 9, 11a).
	CompactionBytes int64
	// Fig10Entries are the working-set sizes swept in Figure 10/12 load
	// experiments.
	Fig10Entries []int
	// Fig12Entries is the fixed load for the PPCP sweeps.
	Fig12Entries int
	// MaxDisks / MaxWorkers bound the Figure 12 sweeps.
	MaxDisks, MaxWorkers int
}

// Quick finishes each figure in a few seconds (unit tests, smoke runs).
func Quick() Scale {
	return Scale{
		Name:            "quick",
		TimeScale:       4.0,
		CPUDilation:     4,
		CompactionBytes: 4 << 20,
		Fig10Entries:    []int{20_000, 40_000, 80_000},
		Fig12Entries:    40_000,
		MaxDisks:        6,
		MaxWorkers:      6,
	}
}

// Full runs larger sweeps (cmd/pcpbench default).
func Full() Scale {
	return Scale{
		Name:            "full",
		TimeScale:       4.0,
		CPUDilation:     4,
		CompactionBytes: 16 << 20,
		Fig10Entries:    []int{50_000, 100_000, 200_000, 400_000},
		Fig12Entries:    150_000,
		MaxDisks:        8,
		MaxWorkers:      8,
	}
}

// engine stamps scale-level engine settings onto a base configuration.
func (sc Scale) engine(base core.Config) core.Config {
	base.CPUDilation = sc.CPUDilation
	return base
}

// defaultValueSize matches the paper (100-byte values, 16-byte keys).
const (
	defaultValueSize = 100
	defaultKeySize   = 16
	defaultBlockSize = 4 << 10
	defaultTableSize = 2 << 20
)

// simEnv is a simulated storage environment for isolated compactions.
type simEnv struct {
	fs   *storage.SimFS
	devs []*device.Device
}

// newSimEnv builds a SimFS over fresh devices.
func newSimEnv(dev string, disks int, raid0 bool, timeScale float64) (*simEnv, error) {
	model, err := device.ByName(dev)
	if err != nil {
		return nil, err
	}
	if disks <= 0 {
		disks = 1
	}
	devs := make([]*device.Device, disks)
	for i := range devs {
		devs[i] = device.New(model, timeScale)
	}
	placement := storage.PlaceByFile
	if raid0 {
		placement = storage.PlaceStripe
	}
	return &simEnv{
		fs:   storage.NewSimFS(storage.NewMemFS(), devs, placement, 128<<10),
		devs: devs,
	}, nil
}

// buildInput writes one input table holding entries for user keys
// {offset, offset+stride, ...} until the table reaches aboutBytes.
// Returns the table name.
func buildInput(fs storage.FS, name string, aboutBytes int64, valueSize, blockSize int,
	codec compress.Codec, seqBase uint64, stride, offset int) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize: blockSize,
		Codec:     codec,
		Compare:   ikey.Compare,
	})
	i := 0
	for w.EstimatedSize() < aboutBytes {
		user := fmt.Sprintf("user%012d", offset+i*stride)
		val := makeValue(valueSize, uint64(offset+i*stride), seqBase)
		if err := w.Add(ikey.Make([]byte(user), seqBase+uint64(i), ikey.KindSet), val); err != nil {
			f.Close()
			return err
		}
		i++
	}
	if _, err := w.Finish(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// makeValue builds a ~50%-compressible value deterministic in (n, salt).
func makeValue(size int, n, salt uint64) []byte {
	v := make([]byte, size)
	x := n*0x9e3779b97f4a7c15 + salt + 1
	for i := 0; i < size/2; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = byte(x)
	}
	return v
}

// IsolatedConfig describes one isolated compaction run: a synthetic upper
// component merged with an overlapping lower component on simulated
// devices, without the rest of the DB.
type IsolatedConfig struct {
	Device     string
	Disks      int
	RAID0      bool
	TimeScale  float64
	UpperBytes int64 // input from C_i (the paper's "compaction size")
	LowerBytes int64 // overlapping data in C_i+1 (default 2× upper)
	ValueSize  int
	BlockSize  int
	Engine     core.Config
}

// RunIsolated builds inputs, runs one compaction, and returns its stats.
func RunIsolated(cfg IsolatedConfig) (core.Stats, error) {
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = defaultValueSize
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = defaultBlockSize
	}
	if cfg.LowerBytes <= 0 {
		cfg.LowerBytes = 2 * cfg.UpperBytes
	}
	env, err := newSimEnv(cfg.Device, cfg.Disks, cfg.RAID0, cfg.TimeScale)
	if err != nil {
		return core.Stats{}, err
	}
	codec := cfg.Engine.Codec
	if codec == nil {
		codec = compress.MustByKind(compress.Snappy)
	}

	// Lower component: even keys, old sequence numbers, split into
	// table-size files. Upper: every third key, newer sequence numbers.
	var inputs []*core.TableSource
	mkTables := func(prefix string, total int64, seqBase uint64, stride, offset int) error {
		n := int((total + defaultTableSize - 1) / defaultTableSize)
		per := total / int64(n)
		for t := 0; t < n; t++ {
			name := fmt.Sprintf("%s-%02d.sst", prefix, t)
			// Offset successive tables so their key ranges are disjoint
			// ascending chunks of the shared key space.
			tblOffset := offset + t*stride*int(per)/(defaultKeySize+cfg.ValueSize)
			if err := buildInput(env.fs, name, per, cfg.ValueSize, cfg.BlockSize,
				codec, seqBase, stride, tblOffset); err != nil {
				return err
			}
			f, err := env.fs.Open(name)
			if err != nil {
				return err
			}
			r, err := sstable.NewReader(f, ikey.Compare)
			if err != nil {
				return err
			}
			inputs = append(inputs, core.NewTableSource(r))
		}
		return nil
	}
	if err := mkTables("lower", cfg.LowerBytes, 1, 2, 0); err != nil {
		return core.Stats{}, err
	}
	if err := mkTables("upper", cfg.UpperBytes, 1<<40, 3, 0); err != nil {
		return core.Stats{}, err
	}

	// Building the inputs charged the devices; measure only the compaction.
	for _, d := range env.devs {
		d.ResetStats()
	}
	var n int
	sink := func() (string, storage.File, error) {
		n++
		name := fmt.Sprintf("out-%04d.sst", n)
		f, err := env.fs.Create(name)
		return name, f, err
	}
	res, err := core.Run(cfg.Engine, inputs, sink)
	if err != nil {
		return core.Stats{}, err
	}
	return res.Stats, nil
}

// LoadConfig describes a Figure-10/12-style full-store load.
type LoadConfig struct {
	Device    string
	Disks     int
	RAID0     bool
	TimeScale float64
	Entries   int
	ValueSize int
	Engine    core.Config
}

// LoadResult carries the metrics the paper plots per load.
type LoadResult struct {
	// IOPS is insert operations per second over the whole load, including
	// time waiting for compactions (stalls) — the paper's "throughput".
	IOPS float64
	// CompactionBandwidth is input bytes per second of compaction wall time.
	CompactionBandwidth float64
	// Stats is the DB's cumulative view.
	Stats lsm.Stats
}

// RunLoad loads an insert-only workload into a fresh store and drains all
// background work, returning the paper's two headline metrics.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = defaultValueSize
	}
	env, err := newSimEnv(cfg.Device, cfg.Disks, cfg.RAID0, cfg.TimeScale)
	if err != nil {
		return LoadResult{}, err
	}
	// Scaled-down geometry: the paper's 4MiB memtable against 50M entries
	// behaves, proportionally, like a 512KiB memtable against our scaled
	// loads — lots of flushes and multi-level compactions.
	// Scaled-down geometry: proportional to the paper's (4 MiB memtable vs
	// tens of millions of entries), so the tree sees many flushes and
	// multi-level compactions. The sub-task size shrinks with the geometry
	// to keep per-compaction sub-task counts in the paper's effective range
	// (Figure 11(b): PCP needs ≥~6 sub-tasks per compaction).
	engine := cfg.Engine
	if engine.SubtaskSize == 0 {
		engine.SubtaskSize = 256 << 10
	}
	db, err := lsm.Open(lsm.Options{
		FS:                  env.fs,
		MemtableSize:        512 << 10,
		TableSize:           512 << 10,
		BlockSize:           defaultBlockSize,
		BaseLevelSize:       2 << 20,
		LevelMultiplier:     10,
		L0CompactionTrigger: 4,
		L0StallTrigger:      8,
		Compaction:          engine,
	})
	if err != nil {
		return LoadResult{}, err
	}
	defer db.Close()

	gen := workload.New(workload.Config{
		Entries:   cfg.Entries,
		KeySize:   defaultKeySize,
		ValueSize: cfg.ValueSize,
		KeySpace:  4 * cfg.Entries,
		Seed:      1,
	})
	start := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			return LoadResult{}, err
		}
	}
	if err := db.WaitIdle(); err != nil {
		return LoadResult{}, err
	}
	elapsed := time.Since(start)

	st := db.Stats()
	return LoadResult{
		IOPS:                float64(cfg.Entries) / elapsed.Seconds(),
		CompactionBandwidth: st.CompactionBandwidth(),
		Stats:               st,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
