//go:build race

package harness

// raceEnabled reports whether the race detector is active. The shape tests
// measure real CPU-vs-I/O ratios; the detector's 5-10x CPU overhead pushes
// every configuration CPU-bound, so those tests skip themselves under -race
// (functional coverage still runs in the other packages' race tests).
const raceEnabled = true
