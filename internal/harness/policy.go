package harness

import (
	"errors"
	"fmt"
	"time"

	"pcplsm/internal/lsm"
	"pcplsm/internal/workload"
)

// Compaction-policy experiment: the same phased workload — a sequential
// insert flood followed by a zipfian read phase with a trickle of uniform
// writes — driven through each compaction policy (leveling, lazy-leveling,
// coldest-range) and the metrics-driven auto-tuner. Reported per run:
// insert/read throughput, write amplification (bytes the engine wrote per
// user byte ingested), trivial moves, stalls, and where the tuner ended
// up. A second ablation isolates the trivial-move optimisation: the same
// sequential load under leveling with moves enabled vs disabled, so the
// write-amp delta is attributable to metadata-only installs alone. The
// recorded artifact is BENCH_PR9.json.

// PolicyRunConfig describes one policy run.
type PolicyRunConfig struct {
	Device    string
	TimeScale float64
	Entries   int
	// Policy pins lsm.Options.CompactionPolicy; empty runs the auto-tuner.
	Policy string
	// DisableTrivialMove forces full rewrites (the ablation arm).
	DisableTrivialMove bool
}

// PolicyResult records one run's metrics.
type PolicyResult struct {
	Policy           string  `json:"policy"`
	FinalPolicy      string  `json:"final_policy"`
	PolicySwitches   int64   `json:"policy_switches"`
	Entries          int     `json:"entries"`
	InsertsPerSec    float64 `json:"inserts_per_sec"`
	ReadsPerSec      float64 `json:"reads_per_sec"`
	WriteAmp         float64 `json:"write_amp"`
	Compactions      int64   `json:"compactions"`
	TrivialMoves     int64   `json:"trivial_moves"`
	TrivialMoveBytes int64   `json:"trivial_move_bytes"`
	StallCount       int64   `json:"stall_count"`
	StallSeconds     float64 `json:"stall_seconds"`
	BlockCacheHitPct float64 `json:"block_cache_hit_pct"`
}

// RunPolicyVariant loads the phased workload into a fresh store under one
// policy configuration and drains all background work.
func RunPolicyVariant(cfg PolicyRunConfig) (PolicyResult, error) {
	env, err := newSimEnv(cfg.Device, 1, false, cfg.TimeScale)
	if err != nil {
		return PolicyResult{}, err
	}
	db, err := lsm.Open(lsm.Options{
		FS:                  env.fs,
		MemtableSize:        128 << 10,
		TableSize:           128 << 10,
		BlockSize:           defaultBlockSize,
		BaseLevelSize:       512 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 4,
		L0StallTrigger:      8,
		BackgroundWorkers:   2,
		BlockCacheBytes:     512 << 10, // heat map on: coldest-range has signal
		CompactionPolicy:    cfg.Policy,
		PolicyTunerWindow:   4, // auto runs: react within the experiment's length
		DisableTrivialMove:  cfg.DisableTrivialMove,
	})
	if err != nil {
		return PolicyResult{}, err
	}
	defer db.Close()

	// Phase 1 — sequential insert flood: maximal trivial-move opportunity,
	// write-amp dominated by compaction placement decisions.
	gen := workload.New(workload.Config{
		Entries:   cfg.Entries,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		Dist:      workload.Sequential,
		Seed:      1,
	})
	var userBytes int64
	insertStart := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			return PolicyResult{}, err
		}
		userBytes += int64(len(k) + len(v))
	}
	insertElapsed := time.Since(insertStart)

	// Phase 2 — zipfian point reads over the sequential key space with a
	// uniform write trickle: the read-heavy regime the coldest-range picker
	// (and the tuner's read-heavy verdict) targets.
	reads := 2 * cfg.Entries
	readGen := workload.New(workload.Config{
		Entries:   reads,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		KeySpace:  cfg.Entries,
		Dist:      workload.Zipfian,
		Seed:      2,
	})
	writeGen := workload.New(workload.Config{
		Entries:   cfg.Entries / 10,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		KeySpace:  cfg.Entries,
		Seed:      3,
	})
	readStart := time.Now()
	for i := 0; ; i++ {
		k, _, ok := readGen.Next()
		if !ok {
			break
		}
		if _, err := db.Get(k); err != nil && !errors.Is(err, lsm.ErrNotFound) {
			return PolicyResult{}, err
		}
		if i%20 == 0 {
			if wk, wv, ok := writeGen.Next(); ok {
				if err := db.Put(wk, wv); err != nil {
					return PolicyResult{}, err
				}
				userBytes += int64(len(wk) + len(wv))
			}
		}
	}
	readElapsed := time.Since(readStart)
	if err := db.WaitIdle(); err != nil {
		return PolicyResult{}, err
	}

	st := db.Stats()
	res := PolicyResult{
		Policy:           cfg.Policy,
		FinalPolicy:      st.ActivePolicy,
		PolicySwitches:   st.PolicySwitches,
		Entries:          cfg.Entries,
		InsertsPerSec:    float64(cfg.Entries) / insertElapsed.Seconds(),
		ReadsPerSec:      float64(reads) / readElapsed.Seconds(),
		Compactions:      st.Compactions,
		TrivialMoves:     st.TrivialMoves,
		TrivialMoveBytes: st.TrivialMoveBytes,
		StallCount:       st.StallCount,
		StallSeconds:     st.StallTime.Seconds(),
	}
	if res.Policy == "" {
		res.Policy = "auto"
	}
	if userBytes > 0 {
		res.WriteAmp = float64(st.FlushBytes+st.CompactionOutputBytes) / float64(userBytes)
	}
	if probes := st.BlockCacheHits + st.BlockCacheMisses; probes > 0 {
		res.BlockCacheHitPct = 100 * float64(st.BlockCacheHits) / float64(probes)
	}
	return res, nil
}

// TrivialMoveAblation pairs the leveling policy's write amplification with
// trivial moves enabled and disabled on the identical load.
type TrivialMoveAblation struct {
	Enabled  PolicyResult `json:"enabled"`
	Disabled PolicyResult `json:"disabled"`
	// WriteAmpReduction is 1 − enabled/disabled write-amp: the fraction of
	// engine writes the metadata-only path avoided.
	WriteAmpReduction float64 `json:"write_amp_reduction"`
}

// PolicyComparison is the recorded artifact (BENCH_PR9.json).
type PolicyComparison struct {
	Experiment string              `json:"experiment"`
	Device     string              `json:"device"`
	TimeScale  float64             `json:"time_scale"`
	Policies   []PolicyResult      `json:"policies"`
	Ablation   TrivialMoveAblation `json:"trivial_move_ablation"`
}

// RunPolicyComparison runs every policy plus the auto-tuner through the
// phased workload, then the trivial-move ablation.
func RunPolicyComparison(sc Scale, entries int) (PolicyComparison, error) {
	const dev = "ssd"
	cmp := PolicyComparison{
		Experiment: "compaction policies: leveling vs lazy-leveling vs coldest-range vs metrics-tuned auto, with trivial-move ablation",
		Device:     dev,
		TimeScale:  sc.TimeScale,
	}
	for _, pol := range []string{lsm.PolicyLeveling, lsm.PolicyLazyLeveling, lsm.PolicyColdestRange, ""} {
		res, err := RunPolicyVariant(PolicyRunConfig{
			Device: dev, TimeScale: sc.TimeScale, Entries: entries, Policy: pol,
		})
		if err != nil {
			return cmp, fmt.Errorf("policy %q: %w", pol, err)
		}
		cmp.Policies = append(cmp.Policies, res)
	}

	base := PolicyRunConfig{Device: dev, TimeScale: sc.TimeScale, Entries: entries,
		Policy: lsm.PolicyLeveling}
	enabled, err := RunPolicyVariant(base)
	if err != nil {
		return cmp, fmt.Errorf("ablation enabled arm: %w", err)
	}
	base.DisableTrivialMove = true
	disabled, err := RunPolicyVariant(base)
	if err != nil {
		return cmp, fmt.Errorf("ablation disabled arm: %w", err)
	}
	cmp.Ablation = TrivialMoveAblation{Enabled: enabled, Disabled: disabled}
	if disabled.WriteAmp > 0 {
		cmp.Ablation.WriteAmpReduction = 1 - enabled.WriteAmp/disabled.WriteAmp
	}
	return cmp, nil
}

// FigPolicy renders the policy comparison as a pcpbench table.
func FigPolicy(sc Scale) (*Table, error) {
	cmp, err := RunPolicyComparison(sc, sc.Fig12Entries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "compaction policies: leveling vs lazy-leveling vs coldest-range vs auto-tuned",
		Columns: []string{"policy", "final", "switches", "inserts/s", "reads/s", "write_amp", "compactions", "moves", "stalls", "cache_hit%"},
	}
	for _, r := range cmp.Policies {
		t.AddRow(
			r.Policy,
			r.FinalPolicy,
			fmt.Sprintf("%d", r.PolicySwitches),
			fmt.Sprintf("%.0f", r.InsertsPerSec),
			fmt.Sprintf("%.0f", r.ReadsPerSec),
			fmt.Sprintf("%.2f", r.WriteAmp),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.TrivialMoves),
			fmt.Sprintf("%d", r.StallCount),
			fmt.Sprintf("%.1f", r.BlockCacheHitPct),
		)
	}
	ab := cmp.Ablation
	t.Note("trivial-move ablation (leveling, sequential+zipf load): write-amp %.2f with moves vs %.2f without (−%.0f%%), %d moves / %d MiB spared",
		ab.Enabled.WriteAmp, ab.Disabled.WriteAmp, ab.WriteAmpReduction*100,
		ab.Enabled.TrivialMoves, ab.Enabled.TrivialMoveBytes>>20)
	return t, nil
}
