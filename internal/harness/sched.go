package harness

import (
	"fmt"
	"time"

	"pcplsm/internal/core"
	"pcplsm/internal/lsm"
	"pcplsm/internal/workload"
)

// SchedConfig describes one mixed flush+compaction load for the background
// scheduler experiment: an insert-only stream over uniform random keys
// against a tight tree geometry, so memtable flushes and multi-level
// compactions continuously compete for the background workers.
type SchedConfig struct {
	Device    string
	TimeScale float64
	Entries   int
	Workers   int
	Engine    core.Config
}

// SchedResult records the stall and throughput metrics of one run.
type SchedResult struct {
	Workers                 int     `json:"workers"`
	Entries                 int     `json:"entries"`
	ElapsedSeconds          float64 `json:"elapsed_seconds"`
	InsertsPerSec           float64 `json:"inserts_per_sec"`
	StallCount              int64   `json:"stall_count"`
	StallSeconds            float64 `json:"stall_seconds"`
	Flushes                 int64   `json:"flushes"`
	Compactions             int64   `json:"compactions"`
	MaxConcurrentBackground int64   `json:"max_concurrent_background"`
}

// RunSched loads the mixed workload into a fresh store with the given
// background worker count and drains all background work.
func RunSched(cfg SchedConfig) (SchedResult, error) {
	env, err := newSimEnv(cfg.Device, 1, false, cfg.TimeScale)
	if err != nil {
		return SchedResult{}, err
	}
	engine := cfg.Engine
	if engine.SubtaskSize == 0 {
		engine.SubtaskSize = 64 << 10
	}
	// Tighter geometry than RunLoad: flushes every ~128 KiB keep the flush
	// lane busy while L0/L1 compactions back up behind it, so a serial
	// scheduler hits the L0 stall trigger and a concurrent one overlaps.
	db, err := lsm.Open(lsm.Options{
		FS:                  env.fs,
		MemtableSize:        128 << 10,
		TableSize:           128 << 10,
		BlockSize:           defaultBlockSize,
		BaseLevelSize:       512 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 4,
		L0StallTrigger:      8,
		Compaction:          engine,
		BackgroundWorkers:   cfg.Workers,
	})
	if err != nil {
		return SchedResult{}, err
	}
	defer db.Close()

	gen := workload.New(workload.Config{
		Entries:   cfg.Entries,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		KeySpace:  4 * cfg.Entries,
		Seed:      1,
	})
	start := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			return SchedResult{}, err
		}
	}
	if err := db.WaitIdle(); err != nil {
		return SchedResult{}, err
	}
	elapsed := time.Since(start)

	st := db.Stats()
	return SchedResult{
		Workers:                 cfg.Workers,
		Entries:                 cfg.Entries,
		ElapsedSeconds:          elapsed.Seconds(),
		InsertsPerSec:           float64(cfg.Entries) / elapsed.Seconds(),
		StallCount:              st.StallCount,
		StallSeconds:            st.StallTime.Seconds(),
		Flushes:                 st.Flushes,
		Compactions:             st.Compactions,
		MaxConcurrentBackground: st.MaxConcurrentBackground,
	}, nil
}

// SchedComparison is the recorded artifact (BENCH_PR1.json): the same mixed
// workload under the strictly-serial scheduler (workers=1) and the
// concurrent one (workers=2).
type SchedComparison struct {
	Experiment string      `json:"experiment"`
	Device     string      `json:"device"`
	TimeScale  float64     `json:"time_scale"`
	Serial     SchedResult `json:"workers_1"`
	Concurrent SchedResult `json:"workers_2"`
	// StallTimeReduction is 1 − concurrent/serial stall seconds (0 when the
	// serial run never stalled).
	StallTimeReduction float64 `json:"stall_time_reduction"`
	// ThroughputGain is concurrent/serial inserts per second − 1.
	ThroughputGain float64 `json:"throughput_gain"`
}

// RunSchedComparison runs the workers=1 vs workers=2 experiment.
func RunSchedComparison(sc Scale, dev string, entries int) (SchedComparison, error) {
	cmp := SchedComparison{
		Experiment: "mixed flush+compaction load, serial vs concurrent background scheduler",
		Device:     dev,
		TimeScale:  sc.TimeScale,
	}
	var err error
	base := SchedConfig{
		Device:    dev,
		TimeScale: sc.TimeScale,
		Entries:   entries,
		Engine:    sc.engine(core.Config{Mode: core.ModePCP}),
	}
	serial := base
	serial.Workers = 1
	if cmp.Serial, err = RunSched(serial); err != nil {
		return cmp, err
	}
	conc := base
	conc.Workers = 2
	if cmp.Concurrent, err = RunSched(conc); err != nil {
		return cmp, err
	}
	if cmp.Serial.StallSeconds > 0 {
		cmp.StallTimeReduction = 1 - cmp.Concurrent.StallSeconds/cmp.Serial.StallSeconds
	}
	if cmp.Serial.InsertsPerSec > 0 {
		cmp.ThroughputGain = cmp.Concurrent.InsertsPerSec/cmp.Serial.InsertsPerSec - 1
	}
	return cmp, nil
}

// FigSched renders the scheduler comparison as a pcpbench table.
func FigSched(sc Scale) (*Table, error) {
	cmp, err := RunSchedComparison(sc, "ssd", sc.Fig12Entries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "background scheduler: workers=1 (serial) vs workers=2 (concurrent)",
		Columns: []string{"workers", "inserts/s", "stalls", "stall_s", "flushes", "compactions", "max_concurrent"},
	}
	for _, r := range []SchedResult{cmp.Serial, cmp.Concurrent} {
		t.AddRow(
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.0f", r.InsertsPerSec),
			fmt.Sprintf("%d", r.StallCount),
			fmt.Sprintf("%.3f", r.StallSeconds),
			fmt.Sprintf("%d", r.Flushes),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.MaxConcurrentBackground),
		)
	}
	t.Note("stall-time reduction %.0f%%, throughput gain %.0f%%",
		cmp.StallTimeReduction*100, cmp.ThroughputGain*100)
	return t, nil
}
