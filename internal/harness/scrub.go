package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pcplsm/internal/lsm"
	"pcplsm/internal/storage"
)

// Integrity harness: seed a store, inject at-rest bit-rot into one live
// table behind the running engine's back, and verify the integrity
// contract end to end:
//
//   - the background scrub worker detects the rot within one full cycle
//     over the tree and quarantines exactly the damaged table;
//   - reads over the quarantined range fail typed (ErrQuarantined, never
//     the store-wide ErrBackgroundError), every other range keeps serving
//     the correct values, and the store stays writable;
//   - the quarantine survives a close/reopen (it is manifest state);
//   - with ParanoidChecks enabled, a lying device that garbles a flush or
//     compaction output in flight is caught by verify-before-install: the
//     output is discarded and rebuilt before the manifest references it.
//
// Every random choice derives from ScrubConfig.Seed, so a failing cycle
// replays exactly by seed.

// ScrubConfig parameterizes one bit-rot/scrub/quarantine cycle.
type ScrubConfig struct {
	// Seed drives the workload, the rot target and offsets, and the garble
	// fault of the paranoid leg.
	Seed int64
	// Serial uses the serial commit path instead of group commit.
	Serial bool
	// Keys is the keyspace size per table-producing round (default 150).
	Keys int
	// ValueLen pads values to roughly this many bytes (default 48).
	ValueLen int
	// RotBytes is how many file bytes get a flipped bit (default 4).
	RotBytes int
	// DetectTimeout bounds the wait for the background scrubber (default 30s).
	DetectTimeout time.Duration
}

func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Keys <= 0 {
		c.Keys = 150
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 48
	}
	if c.RotBytes <= 0 {
		c.RotBytes = 4
	}
	if c.DetectTimeout <= 0 {
		c.DetectTimeout = 30 * time.Second
	}
	return c
}

// ScrubCycleResult summarizes one cycle (the pcpbench -scrubjson artifact).
type ScrubCycleResult struct {
	Seed   int64  `json:"seed"`
	Serial bool   `json:"serial"`
	Rotted string `json:"rotted_table"`
	// CyclesAtDetection is how many scrub cycles completed between the rot
	// injection and the quarantine landing: <= 2 means the rot was caught
	// within one full pass over the tree (the pass in flight at injection
	// time may already be past the table, so one wrap can intervene).
	CyclesAtDetection  int64 `json:"cycles_at_detection"`
	TablesVerified     int64 `json:"tables_verified"`
	BytesVerified      int64 `json:"bytes_verified"`
	QuarantinedKeys    int   `json:"quarantined_keys"`
	HealthyKeys        int   `json:"healthy_keys"`
	ParanoidRejections int64 `json:"paranoid_rejections"`
}

// scrubGeometry sizes the store so a short workload yields several tables,
// with the background scrubber cycling aggressively and unthrottled.
func scrubGeometry(fs storage.FS, serial bool) lsm.Options {
	opts := crashGeometry(fs, serial, false, "")
	opts.DisableAutoCompaction = true // keep the rot target alive and in place
	opts.ScrubInterval = time.Millisecond
	opts.ScrubBytesPerSec = -1
	return opts
}

// scrubWorkloadKey returns key i of round r; rounds are flushed separately,
// so each round is (at least) one table with a disjoint range.
func scrubWorkloadKey(r, i int) []byte { return []byte(fmt.Sprintf("r%02d-k%05d", r, i)) }

func scrubWorkloadValue(seed int64, r, i, valueLen int) []byte {
	val := fmt.Sprintf("s%d-r%d-k%d-", seed, r, i)
	for len(val) < valueLen {
		val += "v"
	}
	return []byte(val)
}

// scrubRounds is how many flushed rounds seed the tree.
const scrubRounds = 3

// loadScrubWorkload writes scrubRounds disjoint key ranges, flushing each
// into its own table(s), and returns the expected key→value state.
func loadScrubWorkload(db *lsm.DB, cfg ScrubConfig) (map[string]string, error) {
	expected := map[string]string{}
	for r := 0; r < scrubRounds; r++ {
		for i := 0; i < cfg.Keys; i++ {
			k, v := scrubWorkloadKey(r, i), scrubWorkloadValue(cfg.Seed, r, i, cfg.ValueLen)
			if err := db.Put(k, v); err != nil {
				return nil, fmt.Errorf("loading round %d: %w", r, err)
			}
			expected[string(k)] = string(v)
		}
		if err := db.Flush(); err != nil {
			return nil, fmt.Errorf("flushing round %d: %w", r, err)
		}
	}
	return expected, nil
}

// auditScrubState sweeps every expected key on a store with one quarantined
// table: each Get must either return the correct value or fail scoped with
// ErrQuarantined. Returns the set of quarantined keys and the healthy count.
func auditScrubState(db *lsm.DB, expected map[string]string) (map[string]bool, int, error) {
	quarantined := map[string]bool{}
	healthy := 0
	for key, want := range expected {
		val, err := db.Get([]byte(key))
		switch {
		case err == nil:
			if string(val) != want {
				return nil, 0, fmt.Errorf("key %s = %q, want %q", key, val, want)
			}
			healthy++
		case errors.Is(err, lsm.ErrQuarantined):
			if errors.Is(err, lsm.ErrBackgroundError) {
				return nil, 0, fmt.Errorf("key %s: %v implies ErrBackgroundError (store-wide degradation)", key, err)
			}
			quarantined[key] = true
		default:
			return nil, 0, fmt.Errorf("key %s: unexpected error %v", key, err)
		}
	}
	return quarantined, healthy, nil
}

// RunScrubCycle executes one seeded bit-rot cycle and verifies the
// integrity contract, returning an error describing the first violation.
func RunScrubCycle(cfg ScrubConfig) (ScrubCycleResult, error) {
	cfg = cfg.withDefaults()
	res := ScrubCycleResult{Seed: cfg.Seed, Serial: cfg.Serial}
	fail := func(format string, a ...any) (ScrubCycleResult, error) {
		return res, fmt.Errorf("scrub cycle seed %d (serial=%v): %w",
			cfg.Seed, cfg.Serial, fmt.Errorf(format, a...))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	inner := storage.NewMemFS()
	ffs := storage.NewSeededFaultFS(inner, cfg.Seed)
	db, err := lsm.Open(scrubGeometry(ffs, cfg.Serial))
	if err != nil {
		return fail("initial open: %v", err)
	}
	expected, err := loadScrubWorkload(db, cfg)
	if err != nil {
		db.Close()
		return fail("%v", err)
	}

	// Rot a seeded live table behind the engine's back.
	names, err := ffs.List()
	if err != nil {
		db.Close()
		return fail("listing files: %v", err)
	}
	sort.Strings(names)
	var tables []string
	for _, nm := range names {
		if len(nm) > 4 && nm[len(nm)-4:] == ".sst" {
			tables = append(tables, nm)
		}
	}
	if len(tables) < scrubRounds {
		db.Close()
		return fail("only %d tables on disk, want >= %d", len(tables), scrubRounds)
	}
	res.Rotted = tables[rng.Intn(len(tables))]
	if _, err := ffs.RotBytes(res.Rotted, cfg.RotBytes); err != nil {
		db.Close()
		return fail("injecting rot into %s: %v", res.Rotted, err)
	}
	cyclesAtInjection := db.Stats().ScrubCycles

	// The background worker must find the rot without any foreground read
	// tripping on it first.
	deadline := time.Now().Add(cfg.DetectTimeout)
	s := db.Stats()
	for s.QuarantinedTables == 0 {
		if time.Now().After(deadline) {
			db.Close()
			return fail("background scrub never quarantined the rotted table")
		}
		time.Sleep(time.Millisecond)
		s = db.Stats()
	}
	res.CyclesAtDetection = s.ScrubCycles - cyclesAtInjection
	res.TablesVerified = s.ScrubTablesVerified
	res.BytesVerified = s.ScrubBytesVerified
	if s.QuarantinedTables != 1 {
		db.Close()
		return fail("%d tables quarantined, want exactly the rotted one", s.QuarantinedTables)
	}
	if s.ScrubCorruptions != 1 {
		db.Close()
		return fail("ScrubCorruptions = %d, want 1", s.ScrubCorruptions)
	}
	// Detection within one full pass over the tree: the pass in flight at
	// injection may already be beyond the table (one wrap), and the stats
	// poll can lag the quarantine by a fraction of a cycle (one more).
	if res.CyclesAtDetection > 3 {
		db.Close()
		return fail("rot survived %d scrub cycles, want detection within one full pass", res.CyclesAtDetection)
	}

	// Scoped degradation: some keys fail typed, everything else serves the
	// correct value, and the store stays writable.
	quarKeys, healthy, err := auditScrubState(db, expected)
	if err != nil {
		db.Close()
		return fail("%v", err)
	}
	res.QuarantinedKeys, res.HealthyKeys = len(quarKeys), healthy
	if len(quarKeys) == 0 {
		db.Close()
		return fail("no key fails over the quarantined table %s", res.Rotted)
	}
	if healthy == 0 {
		db.Close()
		return fail("quarantine of %s leaked: every key fails", res.Rotted)
	}
	probe := []byte(fmt.Sprintf("probe-%d", cfg.Seed))
	if err := db.Put(probe, []byte("alive")); err != nil {
		db.Close()
		return fail("store not writable after quarantine: %v", err)
	}
	if err := db.Close(); err != nil {
		return fail("close after quarantine: %v", err)
	}

	// The quarantine is manifest state: reopen and re-audit — the same keys
	// must fail, the same keys must serve.
	db, err = lsm.Open(scrubGeometry(ffs, cfg.Serial))
	if err != nil {
		return fail("reopen after quarantine: %v", err)
	}
	defer db.Close()
	if got := db.Stats().QuarantinedTables; got != 1 {
		return fail("QuarantinedTables after reopen = %d, want 1", got)
	}
	quarKeys2, healthy2, err := auditScrubState(db, expected)
	if err != nil {
		return fail("after reopen: %v", err)
	}
	if len(quarKeys2) != len(quarKeys) || healthy2 != healthy {
		return fail("quarantine scope changed across reopen: %d/%d keys failed, want %d/%d",
			len(quarKeys2), healthy2, len(quarKeys), healthy)
	}
	for key := range quarKeys2 {
		if !quarKeys[key] {
			return fail("key %s quarantined only after reopen", key)
		}
	}
	if val, err := db.Get(probe); err != nil || string(val) != "alive" {
		return fail("post-quarantine write lost across reopen: %q, %v", val, err)
	}

	// Paranoid leg: on a fresh store a lying device garbles one output
	// write per stage; verify-before-install must discard and rebuild each
	// before the manifest references it, leaving a fully clean tree.
	rejections, err := runParanoidLeg(cfg)
	res.ParanoidRejections = rejections
	if err != nil {
		return fail("%v", err)
	}
	return res, nil
}

// runParanoidLeg exercises Options.ParanoidChecks against silent output
// corruption on both table-producing paths (flush and compaction),
// returning the number of outputs the verify-before-install pass rejected.
func runParanoidLeg(cfg ScrubConfig) (int64, error) {
	inner := storage.NewMemFS()
	ffs := storage.NewSeededFaultFS(inner, cfg.Seed+1)
	opts := scrubGeometry(ffs, cfg.Serial)
	opts.ScrubInterval = 0 // this leg is about install-time verification
	opts.ParanoidChecks = true
	db, err := lsm.Open(opts)
	if err != nil {
		return 0, fmt.Errorf("paranoid open: %v", err)
	}
	defer db.Close()

	// One garbled flush output, then one garbled compaction output.
	ffs.ArmFault(storage.Fault{Op: storage.FaultWrite, Suffix: ".sst", N: 1, Garble: true})
	expected, err := loadScrubWorkload(db, cfg)
	if err != nil {
		return 0, fmt.Errorf("paranoid load: %w", err)
	}
	ffs.ArmFault(storage.Fault{Op: storage.FaultWrite, Suffix: ".sst", N: 1, Garble: true})
	// Manual compactions return the verify rejection instead of consuming
	// the background retry budget; the rejection leaves the inputs intact,
	// so a retry against the now-honest device must succeed.
	cerr := db.CompactLevel(0)
	if cerr != nil {
		cerr = db.CompactLevel(0)
	}
	if cerr != nil {
		return 0, fmt.Errorf("paranoid compaction retry: %w", cerr)
	}

	s := db.Stats()
	if s.ParanoidRejections < 2 {
		return s.ParanoidRejections, fmt.Errorf(
			"ParanoidRejections = %d, want >= 2 (one garbled flush + one garbled compaction output)",
			s.ParanoidRejections)
	}
	if s.QuarantinedTables != 0 {
		return s.ParanoidRejections, fmt.Errorf(
			"%d tables quarantined: a garbled output reached the manifest", s.QuarantinedTables)
	}
	// Nothing corrupted may be installed: a full scrub comes back clean and
	// every key reads back exactly.
	rep, err := db.Scrub()
	if err != nil {
		return s.ParanoidRejections, fmt.Errorf("paranoid scrub: %w", err)
	}
	if rep.Corruptions != 0 || rep.Skipped != 0 {
		return s.ParanoidRejections, fmt.Errorf(
			"scrub of paranoid tree: %d corruptions, %d skipped, want a clean pass", rep.Corruptions, rep.Skipped)
	}
	for key, want := range expected {
		val, err := db.Get([]byte(key))
		if err != nil || string(val) != want {
			return s.ParanoidRejections, fmt.Errorf("paranoid key %s = %q, %v; want %q", key, val, err, want)
		}
	}
	return s.ParanoidRejections, nil
}

// ScrubSummary aggregates a matrix of scrub cycles (the pcpbench -scrubjson
// artifact).
type ScrubSummary struct {
	Cycles             int                `json:"cycles"`
	Survived           int                `json:"survived"`
	Failed             int                `json:"failed"`
	FailedSeeds        []int64            `json:"failed_seeds,omitempty"`
	Failures           []string           `json:"failures,omitempty"`
	TablesVerified     int64              `json:"tables_verified"`
	BytesVerified      int64              `json:"bytes_verified"`
	QuarantinedKeys    int                `json:"quarantined_keys"`
	HealthyKeys        int                `json:"healthy_keys"`
	ParanoidRejections int64              `json:"paranoid_rejections"`
	BaseSeed           int64              `json:"base_seed"`
	Results            []ScrubCycleResult `json:"results"`
}

// RunScrubMatrix runs n seeded cycles starting at baseSeed, alternating the
// commit mode (grouped/serial), and aggregates the outcome.
func RunScrubMatrix(baseSeed int64, n int) ScrubSummary {
	sum := ScrubSummary{BaseSeed: baseSeed}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		res, err := RunScrubCycle(ScrubConfig{Seed: seed, Serial: i%2 == 1})
		sum.Cycles++
		sum.TablesVerified += res.TablesVerified
		sum.BytesVerified += res.BytesVerified
		sum.QuarantinedKeys += res.QuarantinedKeys
		sum.HealthyKeys += res.HealthyKeys
		sum.ParanoidRejections += res.ParanoidRejections
		sum.Results = append(sum.Results, res)
		if err != nil {
			sum.Failed++
			sum.FailedSeeds = append(sum.FailedSeeds, seed)
			if len(sum.Failures) < 10 {
				sum.Failures = append(sum.Failures, err.Error())
			}
		} else {
			sum.Survived++
		}
	}
	sort.Slice(sum.FailedSeeds, func(i, j int) bool { return sum.FailedSeeds[i] < sum.FailedSeeds[j] })
	return sum
}
