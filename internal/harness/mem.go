package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pcplsm/internal/ikey"
	"pcplsm/internal/lsm"
	"pcplsm/internal/memtable"
	"pcplsm/internal/storage"
)

// Memtable/allocation comparison (BENCH_PR7.json): the sharded arena
// memtable and the zero-copy read path, measured as (a) a concurrent-writer
// throughput matrix across writer and shard counts and (b) allocation
// microprobes against the recorded pre-sharding ("seed") costs.

// Seed costs recorded on this harness before the arena memtable and pooled
// read path landed (go test -bench, -benchmem). They are the denominators
// for the reduction figures, so the artifact is self-describing.
const (
	seedInsertAllocs = 4   // memtable insert: allocs/op
	seedInsertBytes  = 234 // memtable insert: B/op
	seedMemGetAllocs = 2   // memtable point get: allocs/op
	seedGetAllocs    = 9   // cached LSM point get: allocs/op
	seedGetBytes     = 301 // cached LSM point get: B/op
)

// MemWriteResult is one cell of the writers x shards throughput matrix.
type MemWriteResult struct {
	Writers int `json:"writers"`
	Shards  int `json:"shards"`
	Ops     int `json:"ops"`

	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp and BytesPerOp are heap-allocation deltas over the whole
	// run divided by ops (all goroutines, via runtime.MemStats).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// ShardsPerGroup is how many shard sub-batches the average commit group
	// split into; ParallelShare is the fraction of groups applied by
	// parallel shard goroutines (0 on a single-CPU host, where Apply's
	// GOMAXPROCS gate keeps the serial loop).
	ShardsPerGroup float64 `json:"shards_per_group"`
	ParallelShare  float64 `json:"parallel_share"`
}

// RunMemWrite drives one run of one cell: writers goroutines splitting ops
// synchronous Puts against a store with background work disabled, so the
// commit path (WAL append + memtable apply) is on the clock.
func RunMemWrite(writers, shards, ops int) (MemWriteResult, error) {
	res := MemWriteResult{Writers: writers, Shards: shards, Ops: ops}
	db, err := lsm.Open(lsm.Options{
		FS:                    storage.NewMemFS(),
		MemtableSize:          1 << 30, // never rotate: the memtable is the subject
		MemtableShards:        shards,
		DisableAutoCompaction: true,
	})
	if err != nil {
		return res, err
	}
	defer db.Close()

	val := make([]byte, 100)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	per := ops / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := make([]byte, 16)
			for i := 0; i < per; i++ {
				copy(key, fmt.Sprintf("w%03d%08d", w, i))
				if err := db.Put(key, val); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	select {
	case err := <-errs:
		return res, err
	default:
	}

	done := per * writers
	res.Ops = done
	res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(done)
	res.OpsPerSec = float64(done) / elapsed.Seconds()
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(done)
	res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(done)
	st := db.Stats()
	if st.WriteGroups > 0 {
		res.ShardsPerGroup = float64(st.ApplyShardRuns) / float64(st.WriteGroups)
		res.ParallelShare = float64(st.ParallelApplies) / float64(st.WriteGroups)
	}
	return res, nil
}

// MemApplyResult is one cell of the isolated memtable matrix: group-sized
// Apply calls driven single-threaded, so the only variable is how deep each
// shard's skiplist grows. This is the denominator-free view of the sharding
// effect, unpolluted by WAL and commit-queue costs.
type MemApplyResult struct {
	Shards  int     `json:"shards"`
	Entries int     `json:"entries"`
	NsPerOp float64 `json:"ns_per_op"`
}

// RunMemApply fills a memtable with entries versions through group Apply
// calls and returns the mean insert cost.
func RunMemApply(shards, entries int) MemApplyResult {
	res := MemApplyResult{Shards: shards, Entries: entries}
	keys := make([][]byte, 65536)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i*i))
	}
	val := []byte("value-payload-0123456789")
	m := memtable.New(memtable.Config{Shards: shards})
	ops := make([]memtable.Op, 16)
	seq := uint64(0)
	runtime.GC()
	t0 := time.Now()
	for g := 0; g < entries/len(ops); g++ {
		for j := range ops {
			seq++
			ops[j] = memtable.Op{
				Seq:  seq,
				Kind: ikey.KindSet,
				Key:  keys[int(seq*2654435761)%len(keys)],
				Val:  val,
			}
		}
		m.Apply(ops)
	}
	res.NsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(seq)
	return res
}

// MemAllocProbe is one allocation microbenchmark with its seed reference.
type MemAllocProbe struct {
	Op          string  `json:"op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Seed* are the recorded pre-sharding costs; AllocReduction is
	// 1 - now/seed (1.0 = every allocation eliminated).
	SeedAllocsPerOp float64 `json:"seed_allocs_per_op"`
	SeedBytesPerOp  float64 `json:"seed_bytes_per_op,omitempty"`
	AllocReduction  float64 `json:"alloc_reduction"`
}

// allocsPerOp measures f's average heap cost the way testing.AllocsPerRun
// does: pinned to one P, GC'd first, Mallocs/TotalAlloc deltas over runs.
func allocsPerOp(runs int, f func()) (allocs, bytes float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm-up, outside the window
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(runs)
}

// probeMemtable measures raw memtable insert and point-get allocation costs.
func probeMemtable() (insert, get MemAllocProbe) {
	m := memtable.New(memtable.Config{Shards: 4})
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
	}
	val := []byte("value-payload-0123456789")
	seq, i := uint64(0), 0
	insert = MemAllocProbe{Op: "memtable_insert", SeedAllocsPerOp: seedInsertAllocs, SeedBytesPerOp: seedInsertBytes}
	insert.AllocsPerOp, insert.BytesPerOp = allocsPerOp(30000, func() {
		seq++
		m.Put(seq, keys[i%len(keys)], val)
		i++
	})
	insert.AllocReduction = 1 - insert.AllocsPerOp/seedInsertAllocs

	get = MemAllocProbe{Op: "memtable_get", SeedAllocsPerOp: seedMemGetAllocs}
	get.AllocsPerOp, get.BytesPerOp = allocsPerOp(30000, func() {
		if _, _, ok := m.Get(keys[i%len(keys)], ikey.MaxSeq); !ok {
			panic("memtable probe: key missing")
		}
		i++
	})
	get.AllocReduction = 1 - get.AllocsPerOp/seedMemGetAllocs
	return insert, get
}

// probeCachedGet measures a cache-hit point read through the whole store —
// the path the pooled iterators and zero-copy block decode serve.
func probeCachedGet() (MemAllocProbe, error) {
	probe := MemAllocProbe{Op: "cached_point_get", SeedAllocsPerOp: seedGetAllocs, SeedBytesPerOp: seedGetBytes}
	db, err := lsm.Open(lsm.Options{
		FS:              storage.NewMemFS(),
		MemtableSize:    64 << 10,
		TableSize:       16 << 10,
		BlockSize:       1 << 10,
		BlockCacheBytes: 8 << 20,
	})
	if err != nil {
		return probe, err
	}
	defer db.Close()
	keys := make([][]byte, 4000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
		if err := db.Put(keys[i], []byte("value")); err != nil {
			return probe, err
		}
	}
	if err := db.WaitIdle(); err != nil {
		return probe, err
	}
	for _, k := range keys {
		if _, err := db.Get(k); err != nil {
			return probe, err
		}
	}
	i := 0
	probe.AllocsPerOp, probe.BytesPerOp = allocsPerOp(10000, func() {
		if _, err := db.Get(keys[i%len(keys)]); err != nil {
			panic(err)
		}
		i++
	})
	probe.AllocReduction = 1 - probe.AllocsPerOp/seedGetAllocs
	return probe, nil
}

// MemComparison is the recorded artifact (BENCH_PR7.json).
type MemComparison struct {
	Experiment string `json:"experiment"`
	// GoMaxProcs records the host parallelism the matrix ran under: on 1
	// the apply fan-out is gated off and shard gains come from shallower
	// per-shard skiplists alone.
	GoMaxProcs  int              `json:"gomaxprocs"`
	OpsPerCell  int              `json:"ops_per_cell"`
	WriteMatrix []MemWriteResult `json:"write_matrix"`
	// ShardSpeedup4/16 compare the best sharded cell against shards=1 at
	// that writer count: ops_per_sec ratio - 1.
	ShardSpeedup4  float64 `json:"shard_speedup_writers4"`
	ShardSpeedup16 float64 `json:"shard_speedup_writers16"`
	// ApplyMatrix isolates the memtable: identical single-threaded group
	// inserts across shard counts, and ApplySpeedup8 is shards=8 over
	// shards=1. On a multi-core host the parallel fan-out adds on top of
	// this; on GOMAXPROCS=1 this depth effect is the whole win.
	ApplyMatrix   []MemApplyResult `json:"apply_matrix"`
	ApplySpeedup8 float64          `json:"apply_speedup_shards8"`
	Probes        []MemAllocProbe  `json:"alloc_probes"`
}

// RunMemComparison runs the writers x shards matrix plus the allocation
// probes and derives the headline ratios.
func RunMemComparison(opsPerCell int) (MemComparison, error) {
	cmp := MemComparison{
		Experiment: "sharded arena memtable + zero-copy read path: concurrent-writer throughput across shard counts, allocation probes vs seed",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		OpsPerCell: opsPerCell,
	}
	// Measurement discipline for a small shared host: process state (heap
	// size, GC pacing) drifts run to run, so reps are interleaved
	// round-robin across shard configs — drift then biases every config
	// equally — and each cell keeps its fastest rep (the one GC missed).
	// The first-ever run additionally pays for growing the heap from its
	// post-start floor, so a throwaway warm-up goes first.
	shardCounts := []int{1, 4, 8}
	if _, err := RunMemWrite(1, 1, opsPerCell/4); err != nil {
		return cmp, err
	}
	const reps = 3
	best := map[int]float64{} // writers -> best sharded ops/s
	base := map[int]float64{} // writers -> shards=1 ops/s
	for _, writers := range []int{1, 4, 16} {
		cells := make(map[int]MemWriteResult)
		for rep := 0; rep < reps; rep++ {
			for _, shards := range shardCounts {
				r, err := RunMemWrite(writers, shards, opsPerCell)
				if err != nil {
					return cmp, err
				}
				if prev, ok := cells[shards]; !ok || r.NsPerOp < prev.NsPerOp {
					cells[shards] = r
				}
			}
		}
		for _, shards := range shardCounts {
			r := cells[shards]
			cmp.WriteMatrix = append(cmp.WriteMatrix, r)
			if shards == 1 {
				base[writers] = r.OpsPerSec
			} else if r.OpsPerSec > best[writers] {
				best[writers] = r.OpsPerSec
			}
		}
	}
	if base[4] > 0 {
		cmp.ShardSpeedup4 = best[4]/base[4] - 1
	}
	if base[16] > 0 {
		cmp.ShardSpeedup16 = best[16]/base[16] - 1
	}
	applyCells := make(map[int]MemApplyResult)
	for rep := 0; rep < reps; rep++ {
		for _, shards := range shardCounts {
			r := RunMemApply(shards, opsPerCell)
			if prev, ok := applyCells[shards]; !ok || r.NsPerOp < prev.NsPerOp {
				applyCells[shards] = r
			}
		}
	}
	for _, shards := range shardCounts {
		cmp.ApplyMatrix = append(cmp.ApplyMatrix, applyCells[shards])
	}
	if base := cmp.ApplyMatrix[0].NsPerOp; base > 0 {
		cmp.ApplySpeedup8 = base/cmp.ApplyMatrix[len(cmp.ApplyMatrix)-1].NsPerOp - 1
	}
	insert, memGet := probeMemtable()
	cached, err := probeCachedGet()
	if err != nil {
		return cmp, err
	}
	cmp.Probes = []MemAllocProbe{insert, memGet, cached}
	return cmp, nil
}

// FigMem renders the memtable comparison as a pcpbench table.
func FigMem(sc Scale) (*Table, error) {
	ops := 200_000
	if sc.Name == "full" {
		ops = 1_000_000
	}
	cmp, err := RunMemComparison(ops)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "sharded arena memtable: concurrent writers x shards",
		Columns: []string{"writers", "shards", "ns/op", "ops/s", "allocs/op", "shards/group", "parallel"},
	}
	for _, r := range cmp.WriteMatrix {
		t.AddRow(
			fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%.2f", r.ShardsPerGroup),
			fmt.Sprintf("%.3f", r.ParallelShare),
		)
	}
	for _, p := range cmp.Probes {
		t.Note("%s: %.2f allocs/op (seed %.0f, %.0f%% fewer)",
			p.Op, p.AllocsPerOp, p.SeedAllocsPerOp, p.AllocReduction*100)
	}
	for _, r := range cmp.ApplyMatrix {
		t.Note("isolated apply, shards=%d: %.0f ns/op", r.Shards, r.NsPerOp)
	}
	t.Note("best sharded vs shards=1: %+.0f%% at 4 writers, %+.0f%% at 16; isolated apply shards=8 %+.0f%% (GOMAXPROCS=%d)",
		cmp.ShardSpeedup4*100, cmp.ShardSpeedup16*100, cmp.ApplySpeedup8*100, cmp.GoMaxProcs)
	return t, nil
}
