package harness

import (
	"bytes"
	"strings"
	"testing"

	"pcplsm/internal/core"
	"pcplsm/internal/model"
)

// testScale is a miniature Quick: small enough for unit tests, large enough
// that the paper's shape properties are measurable. Margins in assertions
// are generous because each experiment is a single run.
func testScale() Scale {
	return Scale{
		Name:            "test",
		TimeScale:       4.0,
		CPUDilation:     4,
		CompactionBytes: 2 << 20,
		Fig10Entries:    []int{20_000},
		Fig12Entries:    20_000,
		MaxDisks:        3,
		MaxWorkers:      3,
	}
}

// skipUnderRace skips timing-sensitive shape tests when instrumentation
// (the race detector or coverage counters) distorts CPU costs.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("shape assertions measure CPU/I-O ratios; invalid under -race")
	}
	if testing.CoverMode() != "" {
		t.Skip("shape assertions measure CPU/I-O ratios; invalid under -cover")
	}
}

func TestTablePrint(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("hello %d", 7)
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// fractions extracts the read/compute/write split of one SCP breakdown.
func breakdownFractions(t *testing.T, sc Scale, dev string) (r, c, w float64, st core.Stats) {
	t.Helper()
	st, err := scpBreakdown(sc, dev, defaultValueSize, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	r, c, w = st.Steps.Breakdown().Fractions()
	return r, c, w, st
}

// TestFig5Shape asserts the paper's central profiling claim: HDD
// compactions are I/O-bound with read dominant; SSD compactions are
// CPU-bound with computation the majority.
func TestFig5Shape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()

	r, c, w, hdd := breakdownFractions(t, sc, "hdd")
	if r < 0.35 {
		t.Errorf("hdd read share %.2f, want > 0.35 (paper: >0.40)", r)
	}
	if r+w < 0.50 {
		t.Errorf("hdd I/O share %.2f, want > 0.50 (paper: ~0.60)", r+w)
	}
	if model.Classify(stepTimesFrom(hdd)) != model.IOBound {
		t.Error("hdd must be I/O-bound")
	}
	if w > 0.25 {
		t.Errorf("hdd write share %.2f, want < 0.25 (paper: <0.20)", w)
	}

	r, c, w, ssd := breakdownFractions(t, sc, "ssd")
	if c < 0.50 {
		t.Errorf("ssd compute share %.2f, want > 0.50 (paper: >0.60)", c)
	}
	if model.Classify(stepTimesFrom(ssd)) != model.CPUBound {
		t.Error("ssd must be CPU-bound")
	}
	if w <= r {
		t.Errorf("ssd write share %.2f should exceed read %.2f (write-after-erase)", w, r)
	}
}

// TestFig8Shape: the sort step's share decreases as values grow.
func TestFig8Shape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	share := func(vs int) float64 {
		st, err := scpBreakdown(sc, "ssd", vs, 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Steps.Get(core.S4Sort)) / float64(st.Steps.Total())
	}
	small := share(64)
	big := share(1024)
	if small <= big {
		t.Errorf("sort share should shrink with value size: 64B=%.3f, 1024B=%.3f", small, big)
	}
	// CRC steps stay small (paper: <5% each; allow 10% at test scale).
	st, err := scpBreakdown(sc, "ssd", 100, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	tot := float64(st.Steps.Total())
	if crc := float64(st.Steps.Get(core.S2Checksum)) / tot; crc > 0.10 {
		t.Errorf("crc share %.3f too large", crc)
	}
	if recrc := float64(st.Steps.Get(core.S6ReChecksum)) / tot; recrc > 0.10 {
		t.Errorf("re-crc share %.3f too large", recrc)
	}
}

// TestFig9Shape: the write share falls as the sub-task (I/O) size grows.
func TestFig9Shape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	writeShare := func(sub int64) float64 {
		st, err := scpBreakdown(sc, "ssd", defaultValueSize, sub)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Steps.Get(core.S7Write)) / float64(st.Steps.Total())
	}
	small := writeShare(64 << 10)
	big := writeShare(2 << 20)
	if small <= big {
		t.Errorf("write share should shrink with sub-task size: 64K=%.3f 2M=%.3f", small, big)
	}
}

// TestFig10Shape: PCP beats SCP on both throughput and compaction
// bandwidth, on both devices.
func TestFig10Shape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	for _, dev := range []string{"hdd", "ssd"} {
		scp, err := RunLoad(LoadConfig{Device: dev, TimeScale: sc.TimeScale,
			Entries: sc.Fig10Entries[0], Engine: sc.engine(core.Config{Mode: core.ModeSCP})})
		if err != nil {
			t.Fatal(err)
		}
		pcp, err := RunLoad(LoadConfig{Device: dev, TimeScale: sc.TimeScale,
			Entries: sc.Fig10Entries[0], Engine: sc.engine(core.Config{Mode: core.ModePCP})})
		if err != nil {
			t.Fatal(err)
		}
		if scp.Stats.Compactions == 0 || pcp.Stats.Compactions == 0 {
			t.Fatalf("%s: no compactions ran; load too small", dev)
		}
		if pcp.CompactionBandwidth <= scp.CompactionBandwidth {
			t.Errorf("%s: PCP cbw %.1f ≤ SCP %.1f", dev,
				pcp.CompactionBandwidth/(1<<20), scp.CompactionBandwidth/(1<<20))
		}
		if pcp.IOPS < scp.IOPS*0.95 {
			t.Errorf("%s: PCP IOPS %.0f clearly below SCP %.0f", dev, pcp.IOPS, scp.IOPS)
		}
	}
}

// TestFig11Shape: PCP beats SCP at the paper's sweet-spot sub-task size,
// and too-large sub-tasks hurt PCP.
func TestFig11Shape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	run := func(mode core.Mode, sub int64) core.Stats {
		st, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine:     sc.engine(core.Config{Mode: mode, SubtaskSize: sub})})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	scp := run(core.ModeSCP, 256<<10)
	pcp := run(core.ModePCP, 256<<10)
	if pcp.Bandwidth() <= scp.Bandwidth() {
		t.Errorf("PCP %.1f ≤ SCP %.1f MiB/s at 256K sub-tasks",
			pcp.Bandwidth()/(1<<20), scp.Bandwidth()/(1<<20))
	}
	// One giant sub-task disables pipelining: PCP ≈ SCP.
	single := run(core.ModePCP, -1)
	if single.Subtasks != 1 {
		t.Fatalf("subtask size 0 should yield one sub-task, got %d", single.Subtasks)
	}
	if single.Bandwidth() > pcp.Bandwidth()*1.05 {
		t.Errorf("unpipelined run (%.1f) should not beat pipelined (%.1f)",
			single.Bandwidth()/(1<<20), pcp.Bandwidth()/(1<<20))
	}
}

// TestFig12CppcpShape: extra compute workers help a CPU-bound pipeline.
// This needs a compaction large enough that the single shared device does
// not become the bottleneck first (read and write serialize on one SSD),
// so it uses a 4 MiB upper input like the quick-scale Figure 12 run.
func TestFig12CppcpShape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	run := func(workers int) core.Stats {
		st, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: 4 << 20,
			Engine: sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: 512 << 10,
				ComputeParallel: workers})})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Single runs on a small host are noisy; compare best-of-two.
	best := func(workers int) float64 {
		a, b := run(workers).Bandwidth(), run(workers).Bandwidth()
		if a > b {
			return a
		}
		return b
	}
	one := best(1)
	two := best(2)
	if two < one*1.05 {
		t.Errorf("C-PPCP with 2 workers (%.1f) should beat 1 worker (%.1f)",
			two/(1<<20), one/(1<<20))
	}
}

// TestFig12SppcpShape: extra disks help an I/O-bound pipeline.
func TestFig12SppcpShape(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	run := func(disks int) core.Stats {
		st, err := RunIsolated(IsolatedConfig{Device: "hdd", Disks: disks, RAID0: true,
			TimeScale:  sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine: sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: 256 << 10,
				IOParallel: disks})})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Single runs on a small host are noisy; compare best-of-two.
	best := func(disks int) float64 {
		a, b := run(disks).Bandwidth(), run(disks).Bandwidth()
		if a > b {
			return a
		}
		return b
	}
	one := best(1)
	three := best(3)
	if three < one*1.05 {
		t.Errorf("S-PPCP with 3 disks (%.1f) should beat 1 disk (%.1f)",
			three/(1<<20), one/(1<<20))
	}
}

// TestModelAgreesWithMeasurement: the analytical model's regime matches the
// measured one, and measured PCP speedup does not exceed the ideal Eq.3
// prediction (the paper: practice trails the ideal by ~10%).
func TestModelAgreesWithMeasurement(t *testing.T) {
	skipUnderRace(t)
	sc := testScale()
	for _, dev := range []string{"hdd", "ssd"} {
		scp, err := scpBreakdown(sc, dev, defaultValueSize, 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		steps := stepTimesFrom(scp)
		rep := model.Analyze(scp.InputBytes, steps)

		pcp, err := RunIsolated(IsolatedConfig{Device: dev, TimeScale: sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine:     sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: 256 << 10})})
		if err != nil {
			t.Fatal(err)
		}
		measured := pcp.Bandwidth() / scp.Bandwidth()
		if measured > rep.PcpSpeedup*1.25 {
			t.Errorf("%s: measured speedup %.2f far exceeds ideal %.2f", dev, measured, rep.PcpSpeedup)
		}
		if measured < 1.0 {
			t.Errorf("%s: PCP slower than SCP (%.2f)", dev, measured)
		}
	}
}

// TestFigureFunctionsProduceTables smoke-runs the cheap figure functions
// end to end (the expensive sweeps are covered by cmd/pcpbench and the
// benchmarks).
func TestFigureFunctionsProduceTables(t *testing.T) {
	sc := testScale()
	tb, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 || len(tb.Columns) != 5 {
		t.Fatalf("Fig5 table shape: %d rows, %d cols", len(tb.Rows), len(tb.Columns))
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
