package harness

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// scrubSeedBase lets CI shift the seed matrix without editing the test.
func scrubSeedBase(t *testing.T) int64 {
	if s := os.Getenv("PCPLSM_SCRUB_SEED_BASE"); s != "" {
		base, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PCPLSM_SCRUB_SEED_BASE %q: %v", s, err)
		}
		return base
	}
	return 1
}

// scrubSerial selects the commit mode for cycle i: the CI commit-mode
// matrix pins one via PCPLSM_SCRUB_COMMIT (grouped|serial), otherwise
// cycles alternate.
func scrubSerial(t *testing.T, i int) bool {
	switch mode := os.Getenv("PCPLSM_SCRUB_COMMIT"); mode {
	case "":
		return i%2 == 1
	case "grouped":
		return false
	case "serial":
		return true
	default:
		t.Fatalf("bad PCPLSM_SCRUB_COMMIT %q: want grouped or serial", mode)
		return false
	}
}

// TestScrubCycles is the integrity acceptance gate: seeded at-rest bit-rot
// cycles across both commit modes, each verifying that the background
// scrubber detects the rot within one pass, quarantines only the damaged
// table, the quarantine survives reopen, and ParanoidChecks rejects
// silently garbled pipeline outputs before the manifest references them.
// Cycles are sharded into parallel subtests so -race runs stay within test
// timeouts.
func TestScrubCycles(t *testing.T) {
	cycles := 12
	if testing.Short() {
		cycles = 4
	}
	base := scrubSeedBase(t)
	const shard = 4
	for lo := 0; lo < cycles; lo += shard {
		lo := lo
		n := shard
		if lo+n > cycles {
			n = cycles - lo
		}
		t.Run(fmt.Sprintf("seeds%d-%d", lo, lo+n-1), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				seed := base + int64(lo+i)
				res, err := RunScrubCycle(ScrubConfig{Seed: seed, Serial: scrubSerial(t, lo+i)})
				if err != nil {
					t.Fatal(err)
				}
				if res.ParanoidRejections < 2 {
					t.Fatalf("seed %d: ParanoidRejections = %d, want >= 2", seed, res.ParanoidRejections)
				}
			}
		})
	}
}
