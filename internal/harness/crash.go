package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pcplsm/internal/core"
	"pcplsm/internal/lsm"
	"pcplsm/internal/storage"
)

// Crash-consistency harness: run a randomized multi-writer workload over a
// FaultFS, cut power at a seeded random operation count, render the durable
// crash image, reopen the store on it, and verify the recovery contract:
//
//   - every acknowledged batch (Write returned nil under SyncWAL) is fully
//     visible after reopen;
//   - the at-most-one in-flight batch per writer is all-or-nothing: either
//     every entry of it landed or none did;
//   - no other data appears, recovery tolerates the torn WAL tail the cut
//     leaves behind, and a full scan completes without error.
//
// Every random choice derives from CrashConfig.Seed, so a failing cycle
// replays exactly by seed.

// CrashConfig parameterizes one power-cut cycle.
type CrashConfig struct {
	// Seed drives the workload, the cut point, and the crash image's torn
	// tails.
	Seed int64
	// Writers is the number of concurrent writer goroutines (default 3).
	Writers int
	// Serial uses the serial commit path instead of group commit.
	Serial bool
	// SCP compacts with the sequential baseline procedure. The default
	// exercises the live pipeline: ModePCP with parallel stage workers and
	// the adaptive governor, so a power cut can land mid-pipeline with
	// multiple output writers in flight.
	SCP bool
	// Policy pins the compaction policy for the cycle (the empty default
	// runs leveling with the self-tuner enabled). Every policy must uphold
	// the same recovery contract: policies change only which compaction
	// runs, never the durability semantics — and trivial moves add a new
	// manifest-record shape (a same-number table changing levels) the cut
	// must be able to land around.
	Policy string
	// MaxKeys is the per-writer keyspace size (default 16; small so batches
	// overwrite and delete hot keys).
	MaxKeys int
	// ValueLen pads values to roughly this many bytes (default 64).
	ValueLen int
	// CutOps cuts power at the Nth file-system operation after Open; 0
	// picks a seeded value in [30, 600).
	CutOps int
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Writers <= 0 {
		c.Writers = 3
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 16
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 64
	}
	return c
}

// CrashCycleResult summarizes one power-cut/reopen cycle.
type CrashCycleResult struct {
	Seed        int64 `json:"seed"`
	Serial      bool  `json:"serial"`
	SCP         bool  `json:"scp"`
	CutOps      int   `json:"cut_ops"`
	AckedBatch  int   `json:"acked_batches"`
	Inflight    int   `json:"inflight_batches"`
	KeysChecked int   `json:"keys_checked"`
}

// crashWriterLog is what one writer goroutine observed: the batches whose
// Write was acknowledged, in commit order, plus the single unacknowledged
// batch in flight when the cut hit (nil if its last Write succeeded).
type crashWriterLog struct {
	acked    []crashBatch
	inflight *crashBatch
}

// crashBatch is one logical batch: puts and deletes over the writer's
// disjoint keyspace, with values unique per (seed, writer, batch).
type crashBatch struct {
	puts map[string]string
	dels map[string]bool
}

// crashGeometry returns DB options sized so a short workload exercises WAL
// rotation, flushes, and compactions. The PCP leg (scp=false) runs parallel
// stage workers so the cut can tear a compaction with several output
// writers mid-file.
func crashGeometry(fs storage.FS, serial, scp bool, policy string) lsm.Options {
	opts := lsm.Options{
		FS:                  fs,
		MemtableSize:        8 << 10,
		TableSize:           8 << 10,
		BlockSize:           512,
		L0CompactionTrigger: 2,
		SyncWAL:             true,
		DisableGroupCommit:  serial,
		CompactionPolicy:    policy,
		BackgroundRetry:     lsm.BackgroundRetryPolicy{Max: 2, BaseDelay: 200 * time.Microsecond},
	}
	if scp {
		opts.Compaction.Mode = core.ModeSCP
	} else {
		opts.Compaction.Mode = core.ModePCP
		opts.Compaction.ComputeParallel = 2
		opts.Compaction.IOParallel = 2
		opts.PipelineComputeTokens = 4
		opts.PipelineIOTokens = 4
	}
	return opts
}

// RunCrashCycle executes one seeded power-cut/reopen cycle and verifies the
// recovery contract, returning an error describing the first violation.
func RunCrashCycle(cfg CrashConfig) (CrashCycleResult, error) {
	cfg = cfg.withDefaults()
	res := CrashCycleResult{Seed: cfg.Seed, Serial: cfg.Serial, SCP: cfg.SCP}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cutOps := cfg.CutOps
	if cutOps <= 0 {
		cutOps = 30 + rng.Intn(570)
	}
	res.CutOps = cutOps

	inner := storage.NewMemFS()
	ffs := storage.NewSeededFaultFS(inner, cfg.Seed)
	db, err := lsm.Open(crashGeometry(ffs, cfg.Serial, cfg.SCP, cfg.Policy))
	if err != nil {
		return res, fmt.Errorf("initial open: %w", err)
	}
	ffs.ArmFault(storage.Fault{Op: storage.FaultAny, N: cutOps, Cut: true})

	// Writers hammer disjoint keyspaces until the cut surfaces as a write
	// error. At most one batch per writer is ever unacknowledged.
	logs := make([]*crashWriterLog, cfg.Writers)
	done := make(chan int, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		logs[w] = &crashWriterLog{}
		go func(w int, wrng *rand.Rand) {
			defer func() { done <- w }()
			log := logs[w]
			for batchSeq := 0; ; batchSeq++ {
				cb := crashBatch{puts: map[string]string{}, dels: map[string]bool{}}
				var b lsm.Batch
				n := 1 + wrng.Intn(4)
				for len(cb.puts)+len(cb.dels) < n {
					key := fmt.Sprintf("w%d-k%03d", w, wrng.Intn(cfg.MaxKeys))
					if cb.puts[key] != "" || cb.dels[key] {
						continue // keys within a batch must be distinct
					}
					if wrng.Intn(100) < 15 {
						cb.dels[key] = true
						b.Delete([]byte(key))
					} else {
						val := fmt.Sprintf("s%d-w%d-b%d-%s-", cfg.Seed, w, batchSeq, key)
						for len(val) < cfg.ValueLen {
							val += "x"
						}
						cb.puts[key] = val
						b.Put([]byte(key), []byte(val))
					}
				}
				log.inflight = &cb
				if err := db.Write(&b); err != nil {
					return // cut (or poison): cb stays in flight
				}
				log.inflight = nil
				log.acked = append(log.acked, cb)
			}
		}(w, rand.New(rand.NewSource(cfg.Seed*1000+int64(w))))
	}
	for i := 0; i < cfg.Writers; i++ {
		<-done
	}
	if !ffs.Down() {
		return res, errors.New("writers stopped before the power cut fired")
	}
	_ = db.Close() // post-cut close: every sync is rejected, nothing becomes durable

	img, err := ffs.CrashImage()
	if err != nil {
		return res, fmt.Errorf("rendering crash image: %w", err)
	}
	db2, err := lsm.Open(crashGeometry(img, cfg.Serial, cfg.SCP, cfg.Policy))
	if err != nil {
		return res, fmt.Errorf("reopen after cut: %w", err)
	}
	defer db2.Close()

	for _, log := range logs {
		res.AckedBatch += len(log.acked)
		if log.inflight != nil {
			res.Inflight++
		}
	}
	checked, err := verifyCrashState(db2, logs)
	res.KeysChecked = checked
	if err != nil {
		return res, fmt.Errorf("seed %d (serial=%v, scp=%v, cut at op %d): %w",
			cfg.Seed, cfg.Serial, cfg.SCP, cutOps, err)
	}
	return res, nil
}

// verifyCrashState checks the reopened store against every writer's log.
func verifyCrashState(db *lsm.DB, logs []*crashWriterLog) (int, error) {
	// Replay acked batches per writer into the expected final state; the
	// keyspaces are disjoint, so one flat map suffices. present=false marks
	// a key that was deleted (or never written).
	type state struct {
		present bool
		value   string
	}
	expected := map[string]state{}
	for _, log := range logs {
		for _, cb := range log.acked {
			for k, v := range cb.puts {
				expected[k] = state{present: true, value: v}
			}
			for k := range cb.dels {
				expected[k] = state{}
			}
		}
	}

	checked := 0
	get := func(key string) (state, error) {
		val, err := db.Get([]byte(key))
		switch {
		case err == nil:
			return state{present: true, value: string(val)}, nil
		case errors.Is(err, lsm.ErrNotFound):
			return state{}, nil
		default:
			return state{}, fmt.Errorf("Get(%s) after reopen: %w", key, err)
		}
	}

	// Acked data not touched by an in-flight batch must match exactly.
	inflightKeys := map[string]bool{}
	for _, log := range logs {
		if log.inflight == nil {
			continue
		}
		for k := range log.inflight.puts {
			inflightKeys[k] = true
		}
		for k := range log.inflight.dels {
			inflightKeys[k] = true
		}
	}
	for key, want := range expected {
		if inflightKeys[key] {
			continue
		}
		got, err := get(key)
		if err != nil {
			return checked, err
		}
		checked++
		if got != want {
			return checked, fmt.Errorf("acked write lost: key %s = %+v, want %+v", key, got, want)
		}
	}

	// Each in-flight batch must be all-or-nothing: every key whose old and
	// new states differ must agree on one side.
	for w, log := range logs {
		if log.inflight == nil {
			continue
		}
		sawOld, sawNew := false, false
		verdict := func(key string, old, new state) error {
			if old == new {
				return nil // uninformative key
			}
			got, err := get(key)
			if err != nil {
				return err
			}
			checked++
			switch got {
			case new:
				sawNew = true
			case old:
				sawOld = true
			default:
				return fmt.Errorf("key %s = %+v matches neither pre-batch %+v nor post-batch %+v",
					key, got, old, new)
			}
			return nil
		}
		for k, v := range log.inflight.puts {
			if err := verdict(k, expected[k], state{present: true, value: v}); err != nil {
				return checked, err
			}
		}
		for k := range log.inflight.dels {
			if err := verdict(k, expected[k], state{}); err != nil {
				return checked, err
			}
		}
		if sawOld && sawNew {
			return checked, fmt.Errorf("writer %d: in-flight batch is torn (half its entries visible)", w)
		}
	}

	// Full scan: recovery must iterate cleanly, and nothing outside the
	// workload's key universe may appear.
	union := map[string]bool{}
	for key := range expected {
		union[key] = true
	}
	for key := range inflightKeys {
		union[key] = true
	}
	it, err := db.NewIterator()
	if err != nil {
		return checked, fmt.Errorf("opening iterator after reopen: %w", err)
	}
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		if !union[string(it.Key())] {
			return checked, fmt.Errorf("unknown key %q surfaced after recovery", it.Key())
		}
	}
	if err := it.Err(); err != nil {
		return checked, fmt.Errorf("iterator after reopen: %w", err)
	}
	return checked, nil
}

// CrashSummary aggregates a matrix of crash cycles (the pcpbench -crashjson
// artifact).
type CrashSummary struct {
	Cycles       int      `json:"cycles"`
	Survived     int      `json:"survived"`
	Failed       int      `json:"failed"`
	FailedSeeds  []int64  `json:"failed_seeds,omitempty"`
	Failures     []string `json:"failures,omitempty"`
	AckedBatches int      `json:"acked_batches"`
	KeysChecked  int      `json:"keys_checked"`
	BaseSeed     int64    `json:"base_seed"`
}

// crashPolicyCycle rotates the compaction-policy dimension across cycles:
// the auto-tuned default plus each pinned policy.
var crashPolicyCycle = []string{"", lsm.PolicyLeveling, lsm.PolicyLazyLeveling, lsm.PolicyColdestRange}

// RunCrashMatrix runs n seeded cycles starting at baseSeed, cycling through
// the commit-mode × compaction-procedure × compaction-policy matrix
// (grouped/serial commits × parallel-PCP/SCP compactions × auto/pinned
// policies), and aggregates the outcome.
func RunCrashMatrix(baseSeed int64, n int) CrashSummary {
	sum := CrashSummary{BaseSeed: baseSeed}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		res, err := RunCrashCycle(CrashConfig{Seed: seed, Serial: i%2 == 1, SCP: i%4 >= 2,
			Policy: crashPolicyCycle[i%len(crashPolicyCycle)]})
		sum.Cycles++
		sum.AckedBatches += res.AckedBatch
		sum.KeysChecked += res.KeysChecked
		if err != nil {
			sum.Failed++
			sum.FailedSeeds = append(sum.FailedSeeds, seed)
			if len(sum.Failures) < 10 {
				sum.Failures = append(sum.Failures, err.Error())
			}
		} else {
			sum.Survived++
		}
	}
	sort.Slice(sum.FailedSeeds, func(i, j int) bool { return sum.FailedSeeds[i] < sum.FailedSeeds[j] })
	return sum
}
