package harness

import (
	"fmt"
	"strings"
	"time"

	"pcplsm/internal/core"
	"pcplsm/internal/lsm"
	"pcplsm/internal/workload"
)

// Pipeline-governor experiment: the same mixed flush+compaction load driven
// through three live-compaction configurations —
//
//   - scp:          the sequential baseline procedure, no governor;
//   - pcp-fixed:    ModePCP at fixed configured widths (the paper's C-PPCP
//                   posture), governor disabled;
//   - pcp-adaptive: ModePCP starting at baseline widths with the adaptive
//                   pilot growing/shrinking stage workers inside a shared
//                   token budget (the live default).
//
// Reported per variant: insert throughput, compaction bandwidth, write
// stalls, governor decision counters, and the pipeline observability gauges
// (token pools, stage busy/idle attribution). The recorded artifact is
// BENCH_PR8.json.

// PipelineConfig describes one variant run.
type PipelineConfig struct {
	Device    string
	TimeScale float64
	Entries   int
	Variant   string
	Engine    core.Config
	// ComputeTokens/IOTokens size the governor pools; ComputeTokens < 0
	// disables the governor (fixed widths, no leasing).
	ComputeTokens int
	IOTokens      int
	// DisableAdaptive keeps leased widths fixed (token accounting only).
	DisableAdaptive bool
}

// PipelineResult records one variant's metrics.
type PipelineResult struct {
	Variant              string  `json:"variant"`
	Entries              int     `json:"entries"`
	ElapsedSeconds       float64 `json:"elapsed_seconds"`
	InsertsPerSec        float64 `json:"inserts_per_sec"`
	CompactionBandwidth  float64 `json:"compaction_bandwidth_bytes_per_sec"`
	StallCount           int64   `json:"stall_count"`
	StallSeconds         float64 `json:"stall_seconds"`
	Flushes              int64   `json:"flushes"`
	Compactions          int64   `json:"compactions"`
	PipelinedCompactions int64   `json:"pipelined_compactions"`
	GovernorGrows        int64   `json:"governor_grows"`
	GovernorShrinks      int64   `json:"governor_shrinks"`
	GovernorDenials      int64   `json:"governor_denials"`
	// Gauges is the pipeline/governor slice of the DB's metrics registry at
	// the end of the run (token pools, stage busy/idle ns, queue high-water).
	Gauges map[string]int64 `json:"gauges"`
}

// RunPipelineVariant loads the mixed workload into a fresh store under one
// compaction configuration and drains all background work.
func RunPipelineVariant(cfg PipelineConfig) (PipelineResult, error) {
	env, err := newSimEnv(cfg.Device, 1, false, cfg.TimeScale)
	if err != nil {
		return PipelineResult{}, err
	}
	engine := cfg.Engine
	if engine.SubtaskSize == 0 {
		engine.SubtaskSize = 64 << 10
	}
	// The RunSched geometry: flushes every ~128 KiB keep multi-level
	// compactions continuously in flight, so the procedure under test is on
	// the critical path of the insert stream.
	db, err := lsm.Open(lsm.Options{
		FS:                        env.fs,
		MemtableSize:              128 << 10,
		TableSize:                 128 << 10,
		BlockSize:                 defaultBlockSize,
		BaseLevelSize:             512 << 10,
		LevelMultiplier:           4,
		L0CompactionTrigger:       4,
		L0StallTrigger:            8,
		Compaction:                engine,
		BackgroundWorkers:         2,
		PipelineComputeTokens:     cfg.ComputeTokens,
		PipelineIOTokens:          cfg.IOTokens,
		DisableAdaptiveCompaction: cfg.DisableAdaptive,
	})
	if err != nil {
		return PipelineResult{}, err
	}
	defer db.Close()

	gen := workload.New(workload.Config{
		Entries:   cfg.Entries,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		KeySpace:  4 * cfg.Entries,
		Seed:      1,
	})
	start := time.Now()
	for {
		k, v, ok := gen.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			return PipelineResult{}, err
		}
	}
	if err := db.WaitIdle(); err != nil {
		return PipelineResult{}, err
	}
	elapsed := time.Since(start)

	st := db.Stats()
	gauges := map[string]int64{}
	for name, v := range db.Metrics().Snapshot() {
		if strings.HasPrefix(name, "lsm_pipeline_") ||
			strings.HasPrefix(name, "lsm_governor_") ||
			strings.HasPrefix(name, "lsm_compactions_pipelined") ||
			strings.HasPrefix(name, "lsm_compaction_stage_") ||
			strings.HasPrefix(name, "lsm_compaction_queue_") {
			gauges[name] = v
		}
	}
	return PipelineResult{
		Variant:              cfg.Variant,
		Entries:              cfg.Entries,
		ElapsedSeconds:       elapsed.Seconds(),
		InsertsPerSec:        float64(cfg.Entries) / elapsed.Seconds(),
		CompactionBandwidth:  st.CompactionBandwidth(),
		StallCount:           st.StallCount,
		StallSeconds:         st.StallTime.Seconds(),
		Flushes:              st.Flushes,
		Compactions:          st.Compactions,
		PipelinedCompactions: st.PipelinedCompactions,
		GovernorGrows:        st.GovernorGrows,
		GovernorShrinks:      st.GovernorShrinks,
		GovernorDenials:      st.GovernorDenials,
		Gauges:               gauges,
	}, nil
}

// pipelineVariants builds the three configurations at a given scale.
func pipelineVariants(sc Scale, dev string, entries int) []PipelineConfig {
	base := PipelineConfig{Device: dev, TimeScale: sc.TimeScale, Entries: entries}
	scp := base
	scp.Variant = "scp"
	scp.Engine = sc.engine(core.Config{Mode: core.ModeSCP})
	scp.ComputeTokens = -1

	fixed := base
	fixed.Variant = "pcp-fixed"
	fixed.Engine = sc.engine(core.Config{Mode: core.ModePCP, ComputeParallel: 3, IOParallel: 2})
	fixed.ComputeTokens = -1

	adaptive := base
	adaptive.Variant = "pcp-adaptive"
	adaptive.Engine = sc.engine(core.Config{Mode: core.ModePCP})
	// Pools emulate the dilated testbed's cores: the pilot may grow each
	// compaction's pipeline up to the shared budget.
	adaptive.ComputeTokens = 3
	adaptive.IOTokens = 4
	return []PipelineConfig{scp, fixed, adaptive}
}

// PipelineDeviceComparison is one device's three-variant comparison.
type PipelineDeviceComparison struct {
	Device   string         `json:"device"`
	SCP      PipelineResult `json:"scp"`
	Fixed    PipelineResult `json:"pcp_fixed"`
	Adaptive PipelineResult `json:"pcp_adaptive"`
	// AdaptiveBandwidthGain is adaptive/scp compaction bandwidth − 1.
	AdaptiveBandwidthGain float64 `json:"adaptive_bandwidth_gain"`
	// AdaptiveStallReduction is 1 − adaptive/scp stall seconds (0 when the
	// SCP run never stalled).
	AdaptiveStallReduction float64 `json:"adaptive_stall_reduction"`
}

// PipelineComparison is the recorded artifact (BENCH_PR8.json).
type PipelineComparison struct {
	Experiment string                     `json:"experiment"`
	TimeScale  float64                    `json:"time_scale"`
	Devices    []PipelineDeviceComparison `json:"devices"`
}

// RunPipelineComparison runs the scp / pcp-fixed / pcp-adaptive matrix on
// simulated HDD and SSD.
func RunPipelineComparison(sc Scale, entries int) (PipelineComparison, error) {
	cmp := PipelineComparison{
		Experiment: "live compaction procedure: SCP vs fixed-width PCP vs adaptive PCP under the pipeline governor",
		TimeScale:  sc.TimeScale,
	}
	for _, dev := range []string{"hdd", "ssd"} {
		dc := PipelineDeviceComparison{Device: dev}
		var err error
		for _, cfg := range pipelineVariants(sc, dev, entries) {
			var res PipelineResult
			if res, err = RunPipelineVariant(cfg); err != nil {
				return cmp, fmt.Errorf("%s/%s: %w", dev, cfg.Variant, err)
			}
			switch cfg.Variant {
			case "scp":
				dc.SCP = res
			case "pcp-fixed":
				dc.Fixed = res
			case "pcp-adaptive":
				dc.Adaptive = res
			}
		}
		if dc.SCP.CompactionBandwidth > 0 {
			dc.AdaptiveBandwidthGain = dc.Adaptive.CompactionBandwidth/dc.SCP.CompactionBandwidth - 1
		}
		if dc.SCP.StallSeconds > 0 {
			dc.AdaptiveStallReduction = 1 - dc.Adaptive.StallSeconds/dc.SCP.StallSeconds
		}
		cmp.Devices = append(cmp.Devices, dc)
	}
	return cmp, nil
}

// FigPipe renders the live-pipeline comparison as a pcpbench table.
func FigPipe(sc Scale) (*Table, error) {
	cmp, err := RunPipelineComparison(sc, sc.Fig12Entries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "live compaction: scp vs pcp-fixed vs pcp-adaptive (pipeline governor)",
		Columns: []string{"device", "variant", "inserts/s", "cbw MiB/s", "stalls", "stall_s", "grows", "shrinks", "denials"},
	}
	for _, dc := range cmp.Devices {
		for _, r := range []PipelineResult{dc.SCP, dc.Fixed, dc.Adaptive} {
			t.AddRow(
				dc.Device,
				r.Variant,
				fmt.Sprintf("%.0f", r.InsertsPerSec),
				fmt.Sprintf("%.1f", r.CompactionBandwidth/(1<<20)),
				fmt.Sprintf("%d", r.StallCount),
				fmt.Sprintf("%.3f", r.StallSeconds),
				fmt.Sprintf("%d", r.GovernorGrows),
				fmt.Sprintf("%d", r.GovernorShrinks),
				fmt.Sprintf("%d", r.GovernorDenials),
			)
		}
		t.Note("%s: adaptive vs scp bandwidth %+.0f%%, stall time %+.0f%%",
			dc.Device, dc.AdaptiveBandwidthGain*100, -dc.AdaptiveStallReduction*100)
	}
	return t, nil
}
