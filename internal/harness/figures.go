package harness

import (
	"fmt"
	"time"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/model"
)

// pct renders a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// mibs renders a bandwidth cell.
func mibs(bytesPerSec float64) string { return fmt.Sprintf("%.1f MiB/s", bytesPerSec/(1<<20)) }

// stepRow renders the per-step breakdown of one SCP run.
func stepRow(st core.Stats) []string {
	total := float64(st.Steps.Total())
	cell := func(s core.Step) string {
		if total == 0 {
			return "0%"
		}
		return pct(float64(st.Steps.Get(s)) / total)
	}
	return []string{
		cell(core.S1Read), cell(core.S2Checksum), cell(core.S3Decompress),
		cell(core.S4Sort), cell(core.S5Compress), cell(core.S6ReChecksum),
		cell(core.S7Write),
	}
}

// scpBreakdown runs one isolated SCP compaction and returns its stats.
func scpBreakdown(sc Scale, dev string, valueSize int, subtask int64) (core.Stats, error) {
	return RunIsolated(IsolatedConfig{
		Device:     dev,
		TimeScale:  sc.TimeScale,
		UpperBytes: sc.CompactionBytes,
		ValueSize:  valueSize,
		Engine:     sc.engine(core.Config{Mode: core.ModeSCP, SubtaskSize: subtask}),
	})
}

// Fig5 reproduces Figure 5: the execution-time breakdown of the Sequential
// Compaction Procedure into read / compute / write on HDD and on SSD.
//
// Paper shape: on HDD, read > 40% and read+write > 60% (I/O-bound); on
// SSD, the computation steps take > 60% and write costs more than read
// (CPU-bound, write-after-erase).
func Fig5(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 5: SCP execution-time breakdown (read/compute/write)",
		Columns: []string{"device", "read", "compute", "write", "regime"},
	}
	for _, dev := range []string{"hdd", "ssd"} {
		st, err := scpBreakdown(sc, dev, defaultValueSize, 512<<10)
		if err != nil {
			return nil, err
		}
		b := st.Steps.Breakdown()
		r, c, w := b.Fractions()
		regime := model.Classify(stepTimesFrom(st))
		t.AddRow(dev, pct(r), pct(c), pct(w), regime.String())
	}
	t.Note("paper: HDD read>40%%, HDD I/O>60%% (I/O-bound); SSD compute>60%%, SSD write>read (CPU-bound)")
	return t, nil
}

// stepTimesFrom converts measured core stats into the model's step vector.
func stepTimesFrom(st core.Stats) model.StepTimes {
	return model.StepTimes{
		S1: st.Steps.Get(core.S1Read),
		S2: st.Steps.Get(core.S2Checksum),
		S3: st.Steps.Get(core.S3Decompress),
		S4: st.Steps.Get(core.S4Sort),
		S5: st.Steps.Get(core.S5Compress),
		S6: st.Steps.Get(core.S6ReChecksum),
		S7: st.Steps.Get(core.S7Write),
	}
}

// Fig8 reproduces Figure 8: the SCP step breakdown for key-value sizes
// from 64B to 1024B, on HDD and SSD.
//
// Paper shape: as the value size grows, step sort's share shrinks (fewer
// entries per byte); crc/re-crc stay under 5%; decomp is the cheapest
// computation step; comp is (almost) the costliest.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 8: SCP step breakdown vs key-value size",
		Columns: []string{"device", "vsize", "read", "crc", "decomp", "sort", "comp", "re-crc", "write"},
	}
	for _, dev := range []string{"hdd", "ssd"} {
		for _, vs := range []int{64, 128, 256, 512, 1024} {
			st, err := scpBreakdown(sc, dev, vs, 512<<10)
			if err != nil {
				return nil, err
			}
			row := append([]string{dev, fmt.Sprintf("%dB", vs)}, stepRow(st)...)
			t.AddRow(row...)
		}
	}
	t.Note("paper: sort share decreases with value size; crc+re-crc <5%% each; comp is the costliest compute step")
	return t, nil
}

// Fig9 reproduces Figure 9: the SCP step breakdown for sub-task sizes from
// 64KB to 4MB, on HDD and SSD.
//
// Paper shape: the write share decreases as the sub-task (= I/O) size
// grows, because large I/O exploits SSD internal parallelism and improves
// HDD bandwidth.
func Fig9(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 9: SCP step breakdown vs sub-task size",
		Columns: []string{"device", "subtask", "read", "crc", "decomp", "sort", "comp", "re-crc", "write"},
	}
	for _, dev := range []string{"hdd", "ssd"} {
		for _, sz := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
			st, err := scpBreakdown(sc, dev, defaultValueSize, sz)
			if err != nil {
				return nil, err
			}
			row := append([]string{dev, fmt.Sprintf("%dKB", sz>>10)}, stepRow(st)...)
			t.AddRow(row...)
		}
	}
	t.Note("paper: write time decreases as sub-task size increases (larger I/O)")
	return t, nil
}

// Fig10 reproduces Figure 10: insert throughput (IOPS), compaction
// bandwidth, and PCP-over-SCP speedups on HDD and SSD as the working set
// grows.
//
// Paper shape: PCP improves IOPS by ≥25% on HDD and ≥45% on SSD, and
// compaction bandwidth by ≥45% (HDD) / ≥65% (SSD); throughput decreases
// with working-set size while compaction bandwidth stays roughly flat on
// SSD and sags slightly on HDD.
func Fig10(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Figure 10: SCP vs PCP — IOPS, compaction bandwidth, speedup",
		Columns: []string{"device", "entries",
			"scp IOPS", "pcp IOPS", "IOPS speedup",
			"scp cbw", "pcp cbw", "cbw speedup"},
	}
	for _, dev := range []string{"hdd", "ssd"} {
		for _, n := range sc.Fig10Entries {
			scp, err := RunLoad(LoadConfig{Device: dev, TimeScale: sc.TimeScale, Entries: n,
				Engine: sc.engine(core.Config{Mode: core.ModeSCP})})
			if err != nil {
				return nil, err
			}
			pcp, err := RunLoad(LoadConfig{Device: dev, TimeScale: sc.TimeScale, Entries: n,
				Engine: sc.engine(core.Config{Mode: core.ModePCP})})
			if err != nil {
				return nil, err
			}
			t.AddRow(dev, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", scp.IOPS), fmt.Sprintf("%.0f", pcp.IOPS),
				fmt.Sprintf("%.2fx", pcp.IOPS/scp.IOPS),
				mibs(scp.CompactionBandwidth), mibs(pcp.CompactionBandwidth),
				fmt.Sprintf("%.2fx", pcp.CompactionBandwidth/scp.CompactionBandwidth))
		}
	}
	t.Note("paper: PCP ≥ +25%% IOPS on HDD, ≥ +45%% on SSD; ≥ +45%% cbw on HDD, ≥ +65%% on SSD")
	return t, nil
}

// Fig11 reproduces Figure 11: compaction bandwidth of SCP vs PCP (a) as
// the sub-task size sweeps 64KB→4MB at fixed compaction size, and (b) as
// the compaction size sweeps with 1MB sub-tasks.
//
// Paper shape: (a) SCP rises monotonically with sub-task size; PCP rises
// then falls (too few sub-tasks starve the pipeline), peaking near 512KB.
// (b) SCP is flat in compaction size; PCP keeps rising until the sub-task
// count is ~6, then saturates.
func Fig11(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 11(a): compaction bandwidth vs sub-task size (SSD)",
		Columns: []string{"subtask", "scp cbw", "pcp cbw", "speedup", "subtasks"},
	}
	for _, sz := range []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20} {
		scp, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine:     sc.engine(core.Config{Mode: core.ModeSCP, SubtaskSize: sz})})
		if err != nil {
			return nil, err
		}
		pcp, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine:     sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: sz})})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dKB", sz>>10),
			mibs(scp.Bandwidth()), mibs(pcp.Bandwidth()),
			fmt.Sprintf("%.2fx", pcp.Bandwidth()/scp.Bandwidth()),
			fmt.Sprintf("%d", pcp.Subtasks))
	}
	t.Note("paper: PCP peaks near 512KB sub-tasks; SCP rises with I/O size")
	return t, nil
}

// Fig11b is Figure 11(b): bandwidth vs compaction size with 1MB sub-tasks.
func Fig11b(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 11(b): compaction bandwidth vs compaction size (SSD, 1MB sub-tasks)",
		Columns: []string{"upper input", "scp cbw", "pcp cbw", "speedup", "subtasks"},
	}
	for _, mb := range []int64{1, 2, 4, 6, 8, 10} {
		upper := mb << 20
		scp, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: upper,
			Engine:     sc.engine(core.Config{Mode: core.ModeSCP, SubtaskSize: 1 << 20})})
		if err != nil {
			return nil, err
		}
		pcp, err := RunIsolated(IsolatedConfig{Device: "ssd", TimeScale: sc.TimeScale,
			UpperBytes: upper,
			Engine:     sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: 1 << 20})})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dMB", mb),
			mibs(scp.Bandwidth()), mibs(pcp.Bandwidth()),
			fmt.Sprintf("%.2fx", pcp.Bandwidth()/scp.Bandwidth()),
			fmt.Sprintf("%d", pcp.Subtasks))
	}
	t.Note("paper: SCP flat; PCP rises until ~6 sub-tasks, then saturates")
	return t, nil
}

// Fig12SPPCP reproduces Figure 12(a–c): S-PPCP throughput, compaction
// bandwidth and speedup as the HDD count grows (RAID0).
//
// Paper shape: throughput/bandwidth rise with disk count and flatten once
// the pipeline becomes CPU-bound (paper: at 5 disks).
func Fig12SPPCP(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 12(a-c): S-PPCP vs HDD count (RAID0)",
		Columns: []string{"disks", "IOPS", "cbw", "IOPS speedup", "cbw speedup"},
	}
	var base LoadResult
	for k := 1; k <= sc.MaxDisks; k++ {
		res, err := RunLoad(LoadConfig{
			Device: "hdd", Disks: k, RAID0: true, TimeScale: sc.TimeScale,
			Entries: sc.Fig12Entries,
			Engine:  sc.engine(core.Config{Mode: core.ModePCP, IOParallel: k}),
		})
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = res
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", res.IOPS), mibs(res.CompactionBandwidth),
			fmt.Sprintf("%.2fx", res.IOPS/base.IOPS),
			fmt.Sprintf("%.2fx", res.CompactionBandwidth/base.CompactionBandwidth))
	}
	t.Note("paper: gains flatten when the pipeline turns CPU-bound (~5 disks on their testbed)")
	return t, nil
}

// Fig12CPPCP reproduces Figure 12(d–f): C-PPCP throughput, compaction
// bandwidth and speedup as compute workers grow on SSD.
//
// Paper shape: one extra compute thread helps; past saturation the
// pipeline is I/O-bound and extra threads stop helping (their testbed even
// degraded slightly from thread overhead).
func Fig12CPPCP(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 12(d-f): C-PPCP vs compute-worker count (SSD)",
		Columns: []string{"workers", "IOPS", "cbw", "IOPS speedup", "cbw speedup"},
	}
	var base LoadResult
	for k := 1; k <= sc.MaxWorkers; k++ {
		res, err := RunLoad(LoadConfig{
			Device: "ssd", TimeScale: sc.TimeScale,
			Entries: sc.Fig12Entries,
			Engine:  sc.engine(core.Config{Mode: core.ModePCP, ComputeParallel: k}),
		})
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = res
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", res.IOPS), mibs(res.CompactionBandwidth),
			fmt.Sprintf("%.2fx", res.IOPS/base.IOPS),
			fmt.Sprintf("%.2fx", res.CompactionBandwidth/base.CompactionBandwidth))
	}
	t.Note("paper: gains stop once the pipeline becomes I/O-bound")
	return t, nil
}

// FigModel validates Equations 1–7: it profiles SCP per-step times on each
// device, feeds them to the analytical model, and compares the predicted
// PCP bandwidth/speedup against a measured PCP run.
func FigModel(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Equations 1-7: analytical model vs measurement",
		Columns: []string{"device", "regime", "B_scp meas", "B_pcp pred", "B_pcp meas",
			"speedup pred", "speedup meas", "sat disks", "sat workers"},
	}
	for _, dev := range []string{"hdd", "ssd"} {
		scp, err := scpBreakdown(sc, dev, defaultValueSize, 512<<10)
		if err != nil {
			return nil, err
		}
		steps := stepTimesFrom(scp)
		// Normalize per-sub-task (the model is per-unit; ratios cancel).
		rep := model.Analyze(scp.InputBytes, steps)

		pcp, err := RunIsolated(IsolatedConfig{Device: dev, TimeScale: sc.TimeScale,
			UpperBytes: sc.CompactionBytes,
			Engine:     sc.engine(core.Config{Mode: core.ModePCP, SubtaskSize: 512 << 10})})
		if err != nil {
			return nil, err
		}
		measured := pcp.Bandwidth() / scp.Bandwidth()
		t.AddRow(dev, rep.Regime.String(),
			mibs(scp.Bandwidth()), mibs(rep.Bpcp), mibs(pcp.Bandwidth()),
			fmt.Sprintf("%.2fx", rep.PcpSpeedup), fmt.Sprintf("%.2fx", measured),
			fmt.Sprintf("%d", rep.SatDevices), fmt.Sprintf("%d", rep.SatWorkers))
	}
	t.Note("paper: practical speedup ≈ ideal −10%% (pipeline fill/drain overhead)")
	return t, nil
}

// All runs every figure at the given scale.
func All(sc Scale) ([]*Table, error) {
	start := time.Now()
	var tables []*Table
	for _, f := range []func(Scale) (*Table, error){
		Fig5, Fig8, Fig9, Fig10, Fig11, Fig11b, Fig12SPPCP, Fig12CPPCP, FigModel,
	} {
		tb, err := f(sc)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tb)
	}
	if len(tables) > 0 {
		tables[len(tables)-1].Note("all figures completed in %v", time.Since(start).Round(time.Millisecond))
	}
	return tables, nil
}

// codecByName is a small helper for the ablation benchmarks.
func codecByName(name string) compress.Codec {
	k, err := compress.ParseKind(name)
	if err != nil {
		panic(err)
	}
	return compress.MustByKind(k)
}
