package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"pcplsm/internal/core"
	"pcplsm/internal/lsm"
	"pcplsm/internal/workload"
)

// ReadConfig describes one read-mostly run against a store under sustained
// compaction: a sequential load, a zipfian point-read phase that warms the
// block cache, a measured zipfian read phase with a concurrent uniform
// writer forcing compactions that rewrite the hot ranges, and a final full
// scan. The PreWarm and Readahead knobs are what the comparison toggles.
type ReadConfig struct {
	Device     string
	TimeScale  float64
	Entries    int   // sequentially-loaded key space (every key present)
	CacheBytes int64 // block-cache capacity
	PreWarm    bool  // compaction-surviving cache on/off
	Readahead  int   // scan readahead blocks; <= 0 disables
	Engine     core.Config
}

// ReadResult records one run's read-path metrics.
type ReadResult struct {
	PreWarm   bool `json:"prewarm"`
	Readahead int  `json:"readahead"`

	// PreHitRate is the block-cache hit rate of zipfian reads after warm-up
	// but before any compaction churn.
	PreHitRate float64 `json:"pre_hit_rate"`
	// MinWindowHitRate is the worst per-window hit rate observed during the
	// measured phase — the depth of the post-compaction cache cliff.
	MinWindowHitRate float64 `json:"min_window_hit_rate"`
	// FinalHitRate aggregates the whole measured phase.
	FinalHitRate float64 `json:"final_hit_rate"`
	// ReadP99Micros is the 99th-percentile point-read latency of the
	// measured phase, in microseconds.
	ReadP99Micros float64 `json:"read_p99_micros"`
	// ScanKeysPerSec is the full-scan throughput after the churn settles.
	ScanKeysPerSec float64 `json:"scan_keys_per_sec"`

	Compactions int64 `json:"compactions"`
	Prewarmed   int64 `json:"prewarmed_blocks"`
	Evictions   int64 `json:"evictions"`
}

// readHitRate returns the hit fraction of the stats delta since prev.
func readHitRate(prev, cur lsm.Stats) float64 {
	h := cur.BlockCacheHits - prev.BlockCacheHits
	m := cur.BlockCacheMisses - prev.BlockCacheMisses
	if h+m == 0 {
		return 1
	}
	return float64(h) / float64(h+m)
}

// RunRead executes one configuration and returns its metrics.
func RunRead(cfg ReadConfig) (ReadResult, error) {
	res := ReadResult{PreWarm: cfg.PreWarm, Readahead: cfg.Readahead}
	env, err := newSimEnv(cfg.Device, 1, false, cfg.TimeScale)
	if err != nil {
		return res, err
	}
	engine := cfg.Engine
	if engine.SubtaskSize == 0 {
		engine.SubtaskSize = 64 << 10
	}
	ra := cfg.Readahead
	if ra <= 0 {
		ra = -1 // Options treats 0 as "default", negative as "off"
	}
	db, err := lsm.Open(lsm.Options{
		FS:                  env.fs,
		MemtableSize:        128 << 10,
		TableSize:           128 << 10,
		BlockSize:           defaultBlockSize,
		BaseLevelSize:       512 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 4,
		L0StallTrigger:      8,
		Compaction:          engine,
		BlockCacheBytes:     cfg.CacheBytes,
		DisableCachePreWarm: !cfg.PreWarm,
		ScanReadahead:       ra,
	})
	if err != nil {
		return res, err
	}
	defer db.Close()

	// Load: every key in [0, Entries) present exactly once, then settle.
	load := workload.New(workload.Config{
		Entries:   cfg.Entries,
		KeySize:   defaultKeySize,
		ValueSize: defaultValueSize,
		KeySpace:  cfg.Entries,
		Dist:      workload.Sequential,
		Seed:      1,
	})
	for {
		k, v, ok := load.Next()
		if !ok {
			break
		}
		if err := db.Put(k, v); err != nil {
			return res, err
		}
	}
	if err := db.WaitIdle(); err != nil {
		return res, err
	}

	// Zipfian read stream over the loaded key space: a small hot set whose
	// covering blocks the cache should retain.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(cfg.Entries-1))
	readOne := func() (time.Duration, error) {
		k := workload.FormatKey(zipf.Uint64(), defaultKeySize)
		t0 := time.Now()
		_, err := db.Get(k)
		return time.Since(t0), err
	}

	// Warm-up plus pre-churn measurement: the hit rate the measured phase is
	// judged against.
	warm := cfg.Entries / 2
	for i := 0; i < warm; i++ {
		if _, err := readOne(); err != nil {
			return res, err
		}
	}
	preStart := db.Stats()
	for i := 0; i < warm/4; i++ {
		if _, err := readOne(); err != nil {
			return res, err
		}
	}
	preEnd := db.Stats()
	res.PreHitRate = readHitRate(preStart, preEnd)

	// Measured phase: zipfian reads while a uniform writer rewrites the key
	// space, driving flushes and compactions through the hot ranges.
	var writerErr atomic.Value
	writerDone := make(chan struct{})
	stopWriter := make(chan struct{})
	go func() {
		defer close(writerDone)
		wgen := workload.New(workload.Config{
			Entries:   cfg.Entries,
			KeySize:   defaultKeySize,
			ValueSize: defaultValueSize,
			KeySpace:  cfg.Entries,
			Seed:      2,
		})
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			k, v, ok := wgen.Next()
			if !ok {
				return
			}
			if err := db.Put(k, v); err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	const window = 500
	reads := cfg.Entries
	lat := make([]float64, 0, reads)
	res.MinWindowHitRate = 1
	phaseStart := db.Stats()
	winStart := phaseStart
	for i := 0; i < reads; i++ {
		d, err := readOne()
		if err != nil {
			return res, err
		}
		lat = append(lat, float64(d.Microseconds()))
		if (i+1)%window == 0 {
			winEnd := db.Stats()
			if hr := readHitRate(winStart, winEnd); hr < res.MinWindowHitRate {
				res.MinWindowHitRate = hr
			}
			winStart = winEnd
		}
	}
	close(stopWriter)
	<-writerDone
	if err, _ := writerErr.Load().(error); err != nil {
		return res, err
	}
	if err := db.WaitIdle(); err != nil {
		return res, err
	}
	phaseEnd := db.Stats()
	res.FinalHitRate = readHitRate(phaseStart, phaseEnd)
	sort.Float64s(lat)
	res.ReadP99Micros = lat[len(lat)*99/100]
	res.Compactions = phaseEnd.Compactions
	res.Prewarmed = phaseEnd.BlockCachePrewarmed
	res.Evictions = phaseEnd.BlockCacheEvictions

	// Scan phase on the settled tree. The iterator opens private, uncached
	// readers, so this isolates the readahead pipeline.
	it, err := db.NewIterator()
	if err != nil {
		return res, err
	}
	t0 := time.Now()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		it.Close()
		return res, err
	}
	it.Close()
	if sec := time.Since(t0).Seconds(); sec > 0 {
		res.ScanKeysPerSec = float64(n) / sec
	}
	return res, nil
}

// ReadComparison is the recorded artifact (BENCH_PR6.json): the same
// read-mostly workload under sustained compaction without (baseline) and
// with the compaction-surviving cache plus scan readahead.
type ReadComparison struct {
	Experiment string     `json:"experiment"`
	Device     string     `json:"device"`
	TimeScale  float64    `json:"time_scale"`
	Entries    int        `json:"entries"`
	CacheBytes int64      `json:"cache_bytes"`
	Baseline   ReadResult `json:"baseline"`
	PreWarmed  ReadResult `json:"prewarm_readahead"`
	// HitRateDrop is PreHitRate − MinWindowHitRate per run, in points: the
	// depth of the cache cliff compactions punch into the hit rate.
	BaselineHitRateDrop float64 `json:"baseline_hit_rate_drop"`
	PreWarmHitRateDrop  float64 `json:"prewarm_hit_rate_drop"`
	// ScanSpeedup is prewarmed/baseline scan throughput − 1.
	ScanSpeedup float64 `json:"scan_speedup"`
	// P99Reduction is 1 − prewarmed/baseline read p99.
	P99Reduction float64 `json:"p99_reduction"`
}

// RunReadComparison runs the baseline (no pre-warm, no readahead) and the
// tuned (pre-warm + readahead 4) configurations over the same workload.
func RunReadComparison(sc Scale, dev string, entries int) (ReadComparison, error) {
	cmp := ReadComparison{
		Experiment: "zipfian point reads under sustained compaction + full scan: plain cache vs compaction-surviving cache with scan readahead",
		Device:     dev,
		TimeScale:  sc.TimeScale,
		Entries:    entries,
		// Sized so the zipfian working set fits: steady-state misses then come
		// only from compaction churn, which is the effect under test.
		CacheBytes: 4 << 20,
	}
	base := ReadConfig{
		Device:     dev,
		TimeScale:  sc.TimeScale,
		Entries:    entries,
		CacheBytes: cmp.CacheBytes,
		Engine:     sc.engine(core.Config{Mode: core.ModePCP}),
	}
	var err error
	if cmp.Baseline, err = RunRead(base); err != nil {
		return cmp, err
	}
	tuned := base
	tuned.PreWarm = true
	tuned.Readahead = 4
	if cmp.PreWarmed, err = RunRead(tuned); err != nil {
		return cmp, err
	}
	cmp.BaselineHitRateDrop = cmp.Baseline.PreHitRate - cmp.Baseline.MinWindowHitRate
	cmp.PreWarmHitRateDrop = cmp.PreWarmed.PreHitRate - cmp.PreWarmed.MinWindowHitRate
	if cmp.Baseline.ScanKeysPerSec > 0 {
		cmp.ScanSpeedup = cmp.PreWarmed.ScanKeysPerSec/cmp.Baseline.ScanKeysPerSec - 1
	}
	if cmp.Baseline.ReadP99Micros > 0 {
		cmp.P99Reduction = 1 - cmp.PreWarmed.ReadP99Micros/cmp.Baseline.ReadP99Micros
	}
	return cmp, nil
}

// FigRead renders the read comparison as a pcpbench table.
func FigRead(sc Scale) (*Table, error) {
	cmp, err := RunReadComparison(sc, "ssd", sc.Fig12Entries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "read path under compaction: baseline vs pre-warm + readahead",
		Columns: []string{"config", "pre_hit", "min_win_hit", "final_hit", "p99_us", "scan_keys/s", "prewarmed", "compactions"},
	}
	for _, r := range []ReadResult{cmp.Baseline, cmp.PreWarmed} {
		name := "baseline"
		if r.PreWarm {
			name = fmt.Sprintf("prewarm+ra%d", r.Readahead)
		}
		t.AddRow(
			name,
			fmt.Sprintf("%.3f", r.PreHitRate),
			fmt.Sprintf("%.3f", r.MinWindowHitRate),
			fmt.Sprintf("%.3f", r.FinalHitRate),
			fmt.Sprintf("%.0f", r.ReadP99Micros),
			fmt.Sprintf("%.0f", r.ScanKeysPerSec),
			fmt.Sprintf("%d", r.Prewarmed),
			fmt.Sprintf("%d", r.Compactions),
		)
	}
	t.Note("hit-rate drop through compactions: baseline %.1f points, pre-warm %.1f points; scan speedup %.0f%%, p99 reduction %.0f%%",
		cmp.BaselineHitRateDrop*100, cmp.PreWarmHitRateDrop*100,
		cmp.ScanSpeedup*100, cmp.P99Reduction*100)
	return t, nil
}
