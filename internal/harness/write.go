package harness

import (
	"fmt"
	"sync"
	"time"

	"pcplsm/internal/lsm"
)

// WriteConfig describes one concurrent-commit experiment: Writers
// goroutines splitting Ops synchronous Puts against a store whose
// background work is disabled and whose memtable never fills, so elapsed
// time measures the commit path (WAL append + fsync + memtable insert)
// and nothing else.
type WriteConfig struct {
	Device    string
	TimeScale float64
	Writers   int
	Ops       int // total Puts, split evenly across writers
	SyncWAL   bool
	Serial    bool // disable group commit (pre-pipeline behavior)
}

// WriteResult records one run's throughput and grouping behavior.
type WriteResult struct {
	Writers        int     `json:"writers"`
	Ops            int     `json:"ops"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	WriteGroups    int64   `json:"write_groups"`
	GroupedWrites  int64   `json:"grouped_writes"`
	MaxWriteGroup  int64   `json:"max_write_group"`
	WALSyncs       int64   `json:"wal_syncs"`
	// SyncsPerCommit is WALSyncs / GroupedWrites: 1.0 means every commit
	// paid its own fsync; group commit drives it toward 1/groupsize.
	SyncsPerCommit float64 `json:"syncs_per_commit"`
}

// RunWrite loads the commit-path workload into a fresh simulated store.
func RunWrite(cfg WriteConfig) (WriteResult, error) {
	env, err := newSimEnv(cfg.Device, 1, false, cfg.TimeScale)
	if err != nil {
		return WriteResult{}, err
	}
	db, err := lsm.Open(lsm.Options{
		FS: env.fs,
		// Big enough that the workload never rotates the memtable: no
		// flushes, no compactions, no stalls — only commits.
		MemtableSize:          256 << 20,
		TableSize:             defaultTableSize,
		BlockSize:             defaultBlockSize,
		SyncWAL:               cfg.SyncWAL,
		DisableGroupCommit:    cfg.Serial,
		DisableAutoCompaction: true,
	})
	if err != nil {
		return WriteResult{}, err
	}
	defer db.Close()

	writers := cfg.Writers
	if writers <= 0 {
		writers = 1
	}
	per := cfg.Ops / writers
	errs := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := make([]byte, defaultKeySize)
			val := make([]byte, defaultValueSize)
			for i := 0; i < per; i++ {
				copy(key, fmt.Sprintf("w%03d-%010d", w, i))
				if err := db.Put(key, val); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return WriteResult{}, err
	default:
	}

	st := db.Stats()
	res := WriteResult{
		Writers:        writers,
		Ops:            per * writers,
		ElapsedSeconds: elapsed.Seconds(),
		OpsPerSec:      float64(per*writers) / elapsed.Seconds(),
		WriteGroups:    st.WriteGroups,
		GroupedWrites:  st.GroupedWrites,
		MaxWriteGroup:  st.MaxWriteGroup,
		WALSyncs:       st.WALSyncs,
	}
	if st.GroupedWrites > 0 {
		res.SyncsPerCommit = float64(st.WALSyncs) / float64(st.GroupedWrites)
	}
	return res, nil
}

// WriteComparison is the recorded artifact (BENCH_PR2.json): the same
// synchronous-commit workload with group commit on vs off, swept over
// writer counts.
type WriteComparison struct {
	Experiment string  `json:"experiment"`
	Device     string  `json:"device"`
	TimeScale  float64 `json:"time_scale"`
	SyncWAL    bool    `json:"sync_wal"`
	Writers    []int   `json:"writers"`
	// Grouped[i] and Serial[i] ran with Writers[i] goroutines.
	Grouped []WriteResult `json:"grouped"`
	Serial  []WriteResult `json:"serial"`
	// ThroughputGains[i] is grouped/serial ops per second − 1 at Writers[i].
	ThroughputGains []float64 `json:"throughput_gains"`
}

// RunWriteComparison sweeps writer counts with group commit on and off.
func RunWriteComparison(sc Scale, dev string, ops int, syncWAL bool) (WriteComparison, error) {
	cmp := WriteComparison{
		Experiment: "concurrent synchronous writers, grouped vs serial commit",
		Device:     dev,
		TimeScale:  sc.TimeScale,
		SyncWAL:    syncWAL,
		Writers:    []int{1, 4, 16},
	}
	for _, writers := range cmp.Writers {
		base := WriteConfig{
			Device:    dev,
			TimeScale: sc.TimeScale,
			Writers:   writers,
			Ops:       ops,
			SyncWAL:   syncWAL,
		}
		grouped, err := RunWrite(base)
		if err != nil {
			return cmp, err
		}
		serial := base
		serial.Serial = true
		serialRes, err := RunWrite(serial)
		if err != nil {
			return cmp, err
		}
		cmp.Grouped = append(cmp.Grouped, grouped)
		cmp.Serial = append(cmp.Serial, serialRes)
		gain := 0.0
		if serialRes.OpsPerSec > 0 {
			gain = grouped.OpsPerSec/serialRes.OpsPerSec - 1
		}
		cmp.ThroughputGains = append(cmp.ThroughputGains, gain)
	}
	return cmp, nil
}

// FigWrite renders the group-commit comparison as a pcpbench table.
func FigWrite(sc Scale) (*Table, error) {
	cmp, err := RunWriteComparison(sc, "ssd", sc.Fig12Entries/2, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "group commit: concurrent synchronous writers, grouped vs serial (SyncWAL=true)",
		Columns: []string{"writers", "mode", "ops/s", "groups", "max_group", "syncs/commit", "gain"},
	}
	for i, writers := range cmp.Writers {
		g, s := cmp.Grouped[i], cmp.Serial[i]
		t.AddRow(fmt.Sprintf("%d", writers), "serial",
			fmt.Sprintf("%.0f", s.OpsPerSec), fmt.Sprintf("%d", s.WriteGroups),
			fmt.Sprintf("%d", s.MaxWriteGroup), fmt.Sprintf("%.3f", s.SyncsPerCommit), "")
		t.AddRow(fmt.Sprintf("%d", writers), "grouped",
			fmt.Sprintf("%.0f", g.OpsPerSec), fmt.Sprintf("%d", g.WriteGroups),
			fmt.Sprintf("%d", g.MaxWriteGroup), fmt.Sprintf("%.3f", g.SyncsPerCommit),
			fmt.Sprintf("%+.0f%%", cmp.ThroughputGains[i]*100))
	}
	t.Note("one fsync per commit group: concurrent writers amortize WAL syncs they would each pay serially")
	return t, nil
}
