package harness

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// crashSeedBase lets CI shift the seed matrix without editing the test.
func crashSeedBase(t *testing.T) int64 {
	if s := os.Getenv("PCPLSM_CRASH_SEED_BASE"); s != "" {
		base, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PCPLSM_CRASH_SEED_BASE %q: %v", s, err)
		}
		return base
	}
	return 1
}

// crashPolicy selects the compaction policy for cycle i: the CI policy
// matrix pins one via PCPLSM_CRASH_POLICY, otherwise cycles rotate through
// auto + every pinned policy.
func crashPolicy(i int) string {
	if p := os.Getenv("PCPLSM_CRASH_POLICY"); p != "" {
		return p
	}
	return crashPolicyCycle[i%len(crashPolicyCycle)]
}

// TestCrashCycles is the acceptance gate: many seeded power-cut/reopen
// cycles across the commit-mode × compaction-procedure × compaction-policy
// matrix (grouped and serial commits, parallel-PCP and SCP compactions,
// auto-tuned and pinned policies), zero lost acknowledged writes and zero
// torn batches. Cycles are sharded into parallel subtests so -race runs
// stay within test timeouts.
func TestCrashCycles(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 40
	}
	base := crashSeedBase(t)
	const shard = 25
	for lo := 0; lo < cycles; lo += shard {
		lo := lo
		n := shard
		if lo+n > cycles {
			n = cycles - lo
		}
		t.Run(fmt.Sprintf("seeds%d-%d", lo, lo+n-1), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < n; i++ {
				seed := base + int64(lo+i)
				res, err := RunCrashCycle(CrashConfig{
					Seed:   seed,
					Serial: (lo+i)%2 == 1,
					SCP:    (lo+i)%4 >= 2,
					Policy: crashPolicy(lo + i),
				})
				if err != nil {
					t.Errorf("cycle failed: %v", err)
					continue
				}
				if res.AckedBatch == 0 && res.Inflight == 0 {
					t.Errorf("seed %d: workload wrote nothing before the cut", seed)
				}
			}
		})
	}
}

// TestCrashCycleEarlyCut cuts power during Open's own setup I/O: the store
// must either fail to open (acceptable — nothing was acknowledged) or
// recover cleanly on the image.
func TestCrashCycleEarlyCut(t *testing.T) {
	for cut := 1; cut <= 12; cut++ {
		// A cut this early can land inside the initial Open; the cycle then
		// legitimately errors on "initial open" with nothing acknowledged,
		// which RunCrashCycle reports. Arm the cut post-open instead by
		// using the smallest workload cut the config allows.
		res, err := RunCrashCycle(CrashConfig{Seed: int64(9000 + cut), CutOps: cut})
		if err != nil {
			t.Errorf("cut at op %d: %v", cut, err)
		}
		_ = res
	}
}

// TestCrashMatrixAggregates sanity-checks the pcpbench artifact path.
func TestCrashMatrixAggregates(t *testing.T) {
	sum := RunCrashMatrix(500, 6)
	if sum.Cycles != 6 || sum.Survived+sum.Failed != 6 {
		t.Fatalf("inconsistent summary: %+v", sum)
	}
	if sum.Failed > 0 {
		t.Fatalf("matrix failures: %+v", sum)
	}
	if sum.AckedBatches == 0 {
		t.Fatalf("matrix acknowledged nothing: %+v", sum)
	}
}
