package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pcplsm/internal/compress"
	"pcplsm/internal/storage"
)

func buildTable(t testing.TB, fs storage.FS, name string, opts WriterOptions, kvs [][2]string) TableMeta {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for _, kv := range kvs {
		if err := w.Add([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return meta
}

func openTable(t testing.TB, fs storage.FS, name string) *Reader {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func genKVs(n int, valLen int, seed int64) [][2]string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var kvs [][2]string
	for len(kvs) < n {
		k := fmt.Sprintf("user%010d", rng.Intn(n*10))
		if seen[k] {
			continue
		}
		seen[k] = true
		v := make([]byte, valLen)
		rng.Read(v)
		kvs = append(kvs, [2]string{k, string(v)})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i][0] < kvs[j][0] })
	return kvs
}

func TestWriteReadScan(t *testing.T) {
	for _, kind := range []compress.Kind{compress.None, compress.Snappy, compress.Flate} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := storage.NewMemFS()
			kvs := genKVs(2000, 100, 1)
			meta := buildTable(t, fs, "t", WriterOptions{Codec: compress.MustByKind(kind)}, kvs)

			if meta.Entries != int64(len(kvs)) {
				t.Fatalf("Entries = %d, want %d", meta.Entries, len(kvs))
			}
			if string(meta.Smallest) != kvs[0][0] || string(meta.Largest) != kvs[len(kvs)-1][0] {
				t.Fatalf("bounds [%q,%q]", meta.Smallest, meta.Largest)
			}
			if meta.DataBlocks < 10 {
				t.Fatalf("expected many blocks, got %d", meta.DataBlocks)
			}

			r := openTable(t, fs, "t")
			defer r.Close()
			if r.NumBlocks() != meta.DataBlocks {
				t.Fatalf("NumBlocks = %d, want %d", r.NumBlocks(), meta.DataBlocks)
			}
			it := r.NewIter()
			i := 0
			for ok := it.First(); ok; ok = it.Next() {
				if string(it.Key()) != kvs[i][0] || string(it.Value()) != kvs[i][1] {
					t.Fatalf("entry %d mismatch: key %q", i, it.Key())
				}
				i++
			}
			if it.Err() != nil {
				t.Fatal(it.Err())
			}
			if i != len(kvs) {
				t.Fatalf("scanned %d, want %d", i, len(kvs))
			}
		})
	}
}

func TestSeekAcrossBlocks(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(3000, 50, 2)
	buildTable(t, fs, "t", WriterOptions{BlockSize: 512}, kvs)
	r := openTable(t, fs, "t")
	defer r.Close()

	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv[0]
	}
	it := r.NewIter()
	f := func(raw string) bool {
		target := "user" + raw
		idx := sort.SearchStrings(keys, target)
		ok := it.Seek([]byte(target))
		if idx == len(keys) {
			return !ok
		}
		return ok && string(it.Key()) == keys[idx] && string(it.Value()) == kvs[idx][1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Exact seeks on every 37th key.
	for i := 0; i < len(kvs); i += 37 {
		if !it.Seek([]byte(kvs[i][0])) || string(it.Key()) != kvs[i][0] {
			t.Fatalf("exact seek %q failed", kvs[i][0])
		}
	}
}

func TestSeekThenScanToEnd(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(500, 20, 3)
	buildTable(t, fs, "t", WriterOptions{BlockSize: 256}, kvs)
	r := openTable(t, fs, "t")
	defer r.Close()
	it := r.NewIter()
	mid := len(kvs) / 3
	if !it.Seek([]byte(kvs[mid][0])) {
		t.Fatal("seek failed")
	}
	for i := mid; i < len(kvs); i++ {
		if string(it.Key()) != kvs[i][0] {
			t.Fatalf("at %d: got %q want %q", i, it.Key(), kvs[i][0])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("should be exhausted")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestEmptyTable(t *testing.T) {
	fs := storage.NewMemFS()
	meta := buildTable(t, fs, "t", WriterOptions{}, nil)
	if meta.Entries != 0 || meta.DataBlocks != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	r := openTable(t, fs, "t")
	defer r.Close()
	if r.NewIter().First() {
		t.Fatal("empty table yielded entry")
	}
	if r.Largest() != nil {
		t.Fatal("Largest should be nil")
	}
	if s, err := r.Smallest(); err != nil || s != nil {
		t.Fatalf("Smallest = %q, %v", s, err)
	}
}

func TestSingleEntryTable(t *testing.T) {
	fs := storage.NewMemFS()
	buildTable(t, fs, "t", WriterOptions{}, [][2]string{{"k", "v"}})
	r := openTable(t, fs, "t")
	defer r.Close()
	sm, err := r.Smallest()
	if err != nil || string(sm) != "k" {
		t.Fatalf("Smallest = %q, %v", sm, err)
	}
	if string(r.Largest()) != "k" {
		t.Fatalf("Largest = %q", r.Largest())
	}
	k, v, ok, err := r.Get([]byte("k"))
	if err != nil || !ok || string(k) != "k" || string(v) != "v" {
		t.Fatalf("Get = %q %q %v %v", k, v, ok, err)
	}
	if _, _, ok, _ := r.Get([]byte("z")); ok {
		t.Fatal("Get past end should miss")
	}
}

func TestRawBlockStepHelpers(t *testing.T) {
	// Exercise the per-step helpers the compaction pipeline uses: S1 read
	// raw, S2 verify, S3 decompress; S5 compress, S6 checksum.
	fs := storage.NewMemFS()
	kvs := genKVs(1000, 100, 4)
	buildTable(t, fs, "t", WriterOptions{}, kvs)
	r := openTable(t, fs, "t")
	defer r.Close()

	total := 0
	for _, e := range r.IndexEntries() {
		physical, err := r.ReadRaw(nil, e.Handle) // S1
		if err != nil {
			t.Fatal(err)
		}
		payload, err := VerifyBlockChecksum(physical) // S2
		if err != nil {
			t.Fatal(err)
		}
		plain, err := DecompressBlock(nil, payload) // S3
		if err != nil {
			t.Fatal(err)
		}
		// Re-seal (S5+S6) and verify the new physical block opens to the
		// same plain bytes.
		resealed := SealBlock(nil, plain, compress.MustByKind(compress.Snappy))
		plain2, err := OpenBlock(nil, resealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, plain2) {
			t.Fatal("re-seal round trip mismatch")
		}
		total++
	}
	if total != r.NumBlocks() {
		t.Fatalf("visited %d blocks, want %d", total, r.NumBlocks())
	}
}

func TestIncompressibleBlockStoredRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plain := make([]byte, 4096)
	rng.Read(plain)
	sealed := SealBlock(nil, plain, compress.MustByKind(compress.Snappy))
	payload, err := VerifyBlockChecksum(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if kind := compress.Kind(payload[len(payload)-1]); kind != compress.None {
		t.Fatalf("incompressible block stored with codec %v", kind)
	}
	out, err := DecompressBlock(nil, payload)
	if err != nil || !bytes.Equal(out, plain) {
		t.Fatal("raw fallback round trip failed")
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(200, 50, 6)
	buildTable(t, fs, "t", WriterOptions{}, kvs)

	data, _ := storage.ReadAll(fs, "t")
	// Flip a byte inside the first data block.
	mut := append([]byte{}, data...)
	mut[10] ^= 0xff
	if err := storage.WriteFile(fs, "bad", mut); err != nil {
		t.Fatal(err)
	}
	r := openTable(t, fs, "bad")
	defer r.Close()
	it := r.NewIter()
	if it.First() {
		// First block is corrupt; iterator must surface an error, not data.
		t.Fatal("corrupt block yielded entries")
	}
	if it.Err() == nil {
		t.Fatal("expected checksum error")
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	fs := storage.NewMemFS()
	buildTable(t, fs, "t", WriterOptions{}, [][2]string{{"a", "1"}})
	data, _ := storage.ReadAll(fs, "t")

	for name, mangle := range map[string]func([]byte) []byte{
		"truncated":  func(d []byte) []byte { return d[:len(d)-10] },
		"bad magic":  func(d []byte) []byte { d = append([]byte{}, d...); d[len(d)-1] ^= 0xff; return d },
		"tiny":       func(d []byte) []byte { return d[:5] },
		"bad handle": func(d []byte) []byte { d = append([]byte{}, d...); d[len(d)-FooterLen] = 0xff; return d },
	} {
		t.Run(name, func(t *testing.T) {
			if err := storage.WriteFile(fs, "bad-"+name, mangle(data)); err != nil {
				t.Fatal(err)
			}
			f, err := fs.Open("bad-" + name)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := NewReader(f, nil); err == nil {
				t.Fatal("mangled table opened without error")
			}
		})
	}
}

func TestHandleRoundTripQuick(t *testing.T) {
	f := func(off, length uint32) bool {
		h := BlockHandle{Offset: int64(off), Length: int64(length)}
		enc := h.EncodeTo(nil)
		got, rest, err := DecodeHandle(enc)
		return err == nil && len(rest) == 0 && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawWriterRejectsAfterFinish(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("t")
	w := NewRawWriter(f, nil)
	sealed := SealBlock(nil, []byte{0, 0, 0, 0, 1, 0, 0, 0}, compress.MustByKind(compress.None))
	if err := w.AddSealedBlock([]byte("a"), []byte("a"), sealed, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSealedBlock([]byte("b"), []byte("b"), sealed, 1); err == nil {
		t.Fatal("AddSealedBlock after Finish should fail")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("double Finish should fail")
	}
}

func TestReadRawBadHandle(t *testing.T) {
	fs := storage.NewMemFS()
	buildTable(t, fs, "t", WriterOptions{}, [][2]string{{"a", "1"}})
	r := openTable(t, fs, "t")
	defer r.Close()
	for _, h := range []BlockHandle{
		{Offset: -1, Length: 10},
		{Offset: 0, Length: 2},
		{Offset: 1 << 40, Length: 10},
		{Offset: 0, Length: 1 << 40},
	} {
		if _, err := r.ReadRaw(nil, h); err == nil {
			t.Errorf("handle %+v should be rejected", h)
		}
	}
}

func TestBlockSizeRespected(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(1000, 100, 7)
	buildTable(t, fs, "small", WriterOptions{BlockSize: 1 << 10, Codec: compress.MustByKind(compress.None)}, kvs)
	buildTable(t, fs, "large", WriterOptions{BlockSize: 16 << 10, Codec: compress.MustByKind(compress.None)}, kvs)
	rs := openTable(t, fs, "small")
	rl := openTable(t, fs, "large")
	defer rs.Close()
	defer rl.Close()
	if rs.NumBlocks() <= rl.NumBlocks()*4 {
		t.Fatalf("block size had no effect: %d vs %d blocks", rs.NumBlocks(), rl.NumBlocks())
	}
}

func BenchmarkWriter4KBlocks(b *testing.B) {
	fs := storage.NewMemFS()
	kvs := genKVs(10000, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := fs.Create(fmt.Sprintf("t%d", i))
		w := NewWriter(f, WriterOptions{})
		for _, kv := range kvs {
			w.Add([]byte(kv[0]), []byte(kv[1]))
		}
		w.Finish()
		f.Close()
	}
}

func BenchmarkIterFullScan(b *testing.B) {
	fs := storage.NewMemFS()
	kvs := genKVs(10000, 100, 9)
	var n int64
	for _, kv := range kvs {
		n += int64(len(kv[0]) + len(kv[1]))
	}
	f, _ := fs.Create("t")
	w := NewWriter(f, WriterOptions{})
	for _, kv := range kvs {
		w.Add([]byte(kv[0]), []byte(kv[1]))
	}
	w.Finish()
	f.Close()
	rf, _ := fs.Open("t")
	r, err := NewReader(rf, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.NewIter()
		for ok := it.First(); ok; ok = it.Next() {
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
	}
}
