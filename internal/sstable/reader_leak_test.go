package sstable

import (
	"errors"
	"testing"

	"pcplsm/internal/storage"
)

// closeCountingFile wraps a storage.File and counts Close calls, so tests
// can prove NewReader neither leaks nor double-closes the handle it owns.
type closeCountingFile struct {
	storage.File
	closes *int
}

func (f *closeCountingFile) Close() error {
	*f.closes++
	return f.File.Close()
}

// TestNewReaderClosesHandleOnFailure: NewReader owns the handle it is
// given; every early-return path — an injected read fault at any of the
// reads open performs, a truncated file, a corrupted footer — must close
// it exactly once. A leaked handle here pins the file (and its memory on
// MemFS) for the life of the process every time a scrub, iterator, or
// verify pass trips over a damaged table.
func TestNewReaderClosesHandleOnFailure(t *testing.T) {
	inner := storage.NewMemFS()
	kvs := genKVs(500, 64, 7)
	buildTable(t, inner, "t", WriterOptions{BlockSize: 512}, kvs)

	// Probe every read NewReader performs: arm a one-shot fault at read
	// N = 1, 2, ... until open succeeds without tripping one.
	fault := storage.NewFaultFS(inner)
	failures := 0
	for n := 1; ; n++ {
		fault.ArmFault(storage.Fault{Op: storage.FaultRead, N: n})
		f, err := fault.Open("t")
		if err != nil {
			t.Fatal(err)
		}
		closes := 0
		r, rerr := NewReader(&closeCountingFile{File: f, closes: &closes}, nil)
		if rerr == nil {
			r.Close()
			if hits := fault.Hits(storage.FaultRead); hits != 0 {
				t.Fatalf("read %d: open succeeded but the armed fault fired %d times", n, hits)
			}
			break
		}
		failures++
		if !errors.Is(rerr, storage.ErrInjected) {
			t.Fatalf("read %d: error %v does not wrap the injected fault", n, rerr)
		}
		if closes != 1 {
			t.Fatalf("read %d failed: handle closed %d times, want exactly 1", n, closes)
		}
		fault.Disarm(storage.FaultRead)
	}
	if failures == 0 {
		t.Fatal("fault plan never fired: NewReader performed no reads?")
	}

	// Structural failures (no injected I/O error): truncated file and a
	// corrupted footer must also close the handle.
	data, err := storage.ReadAll(inner, "t")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := storage.WriteFile(inner, name, mutate(append([]byte(nil), data...))); err != nil {
			t.Fatal(err)
		}
		f, err := inner.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		closes := 0
		if r, rerr := NewReader(&closeCountingFile{File: f, closes: &closes}, nil); rerr == nil {
			r.Close()
			t.Fatalf("%s: NewReader accepted a damaged table", name)
		}
		if closes != 1 {
			t.Fatalf("%s: handle closed %d times, want exactly 1", name, closes)
		}
	}
	corrupt("truncated", func(b []byte) []byte { return b[:FooterLen/2] })
	corrupt("bad-footer", func(b []byte) []byte {
		for i := len(b) - FooterLen; i < len(b); i++ {
			b[i] ^= 0xff
		}
		return b
	})
	corrupt("bad-index", func(b []byte) []byte {
		// Damage the bytes just ahead of the footer: the index block.
		for i := len(b) - FooterLen - 32; i < len(b)-FooterLen; i++ {
			b[i] ^= 0xff
		}
		return b
	})

	// And the success path closes exactly once, via Reader.Close.
	f, err := inner.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	closes := 0
	r, err := NewReader(&closeCountingFile{File: f, closes: &closes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if closes != 0 {
		t.Fatalf("NewReader closed the handle %d times on success", closes)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if closes != 1 {
		t.Fatalf("Reader.Close closed the handle %d times, want 1", closes)
	}
}
