package sstable

import (
	"fmt"
	"testing"

	"pcplsm/internal/cache"
	"pcplsm/internal/storage"
)

// multiBlockKVs builds enough entries to span many data blocks at a small
// block size.
func multiBlockKVs(n int) [][2]string {
	kvs := make([][2]string, n)
	for i := range kvs {
		kvs[i] = [2]string{
			fmt.Sprintf("key%08d", i),
			fmt.Sprintf("value-%08d-%064d", i, i),
		}
	}
	return kvs
}

// TestReadaheadMatchesPlainScan: a readahead scan visits exactly the same
// entries as a plain scan, across block boundaries.
func TestReadaheadMatchesPlainScan(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := multiBlockKVs(2000)
	buildTable(t, fs, "t.sst", WriterOptions{BlockSize: 512}, kvs)
	r := openTable(t, fs, "t.sst")
	defer r.Close()
	if r.NumBlocks() < 20 {
		t.Fatalf("want a many-block table, got %d blocks", r.NumBlocks())
	}

	for _, ra := range []int{1, 3, 8} {
		it := r.NewIter()
		it.SetReadahead(ra)
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key()) != kvs[i][0] || string(it.Value()) != kvs[i][1] {
				t.Fatalf("ra=%d entry %d = %q/%q, want %q/%q",
					ra, i, it.Key(), it.Value(), kvs[i][0], kvs[i][1])
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("ra=%d: %v", ra, err)
		}
		if i != len(kvs) {
			t.Fatalf("ra=%d visited %d entries, want %d", ra, i, len(kvs))
		}
		it.Close()
	}
}

// TestReadaheadSeekMidScan: seeking while prefetches are in flight drops
// the stale fetches and continues correctly from the new position.
func TestReadaheadSeekMidScan(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := multiBlockKVs(2000)
	buildTable(t, fs, "t.sst", WriterOptions{BlockSize: 512}, kvs)
	r := openTable(t, fs, "t.sst")
	defer r.Close()

	it := r.NewIter()
	it.SetReadahead(4)
	defer it.Close()
	if !it.First() {
		t.Fatal("First failed")
	}
	for j := 0; j < 50; j++ { // run into the pipeline
		if !it.Next() {
			t.Fatal("Next failed early")
		}
	}
	// Jump far ahead, then far back, then scan to the end.
	target := kvs[1500][0]
	if !it.Seek([]byte(target)) || string(it.Key()) != target {
		t.Fatalf("Seek(%q) landed on %q", target, it.Key())
	}
	if !it.Seek([]byte(kvs[100][0])) || string(it.Key()) != kvs[100][0] {
		t.Fatalf("backward Seek landed on %q", it.Key())
	}
	i := 100
	for ok := true; ok; ok = it.Next() {
		if string(it.Key()) != kvs[i][0] {
			t.Fatalf("entry %d = %q, want %q", i, it.Key(), kvs[i][0])
		}
		i++
		if i == len(kvs) {
			break
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReadaheadWithBlockCache: prefetched blocks land in the shared cache;
// a second scan over the same table is served from it.
func TestReadaheadWithBlockCache(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := multiBlockKVs(1000)
	buildTable(t, fs, "t.sst", WriterOptions{BlockSize: 512}, kvs)
	r := openTable(t, fs, "t.sst")
	defer r.Close()
	bc := cache.New(4 << 20)
	r.SetBlockCache(bc, 42)

	scan := func(ra int) {
		it := r.NewIter()
		it.SetReadahead(ra)
		defer it.Close()
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if n != len(kvs) {
			t.Fatalf("scan visited %d entries, want %d", n, len(kvs))
		}
	}
	scan(4)
	hits0, _ := bc.Stats()
	scan(4)
	hits1, misses1 := bc.Stats()
	if hits1-hits0 < int64(r.NumBlocks()) {
		t.Fatalf("warm scan hit only %d of %d blocks (misses now %d)",
			hits1-hits0, r.NumBlocks(), misses1)
	}
}

// TestAccessHookFiresPerBlockLoad: the heat hook sees each block's last
// key when the read path loads it.
func TestAccessHookFiresPerBlockLoad(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := multiBlockKVs(500)
	buildTable(t, fs, "t.sst", WriterOptions{BlockSize: 512}, kvs)
	r := openTable(t, fs, "t.sst")
	defer r.Close()

	var touched []string
	r.SetAccessHook(func(last []byte) { touched = append(touched, string(last)) })
	it := r.NewIter()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if len(touched) != r.NumBlocks() {
		t.Fatalf("hook fired %d times over %d blocks", len(touched), r.NumBlocks())
	}
	if touched[0] != string(r.IndexEntries()[0].LastKey) {
		t.Fatalf("first touch %q != first block last key", touched[0])
	}

	// A point Seek loads exactly one block (plus none beyond).
	touched = nil
	it2 := r.NewIter()
	if !it2.Seek([]byte(kvs[250][0])) {
		t.Fatal("Seek failed")
	}
	if len(touched) != 1 {
		t.Fatalf("point seek touched %d blocks, want 1", len(touched))
	}
}
