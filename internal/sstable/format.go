// Package sstable implements the on-disk sorted-table format (Figure 1(b) of
// the paper): a sequence of data blocks followed by an index block that
// records the start key, end key and offset of every data block, and a fixed
// footer locating the index.
//
// Physical block encoding — each block (data or index) is stored as
//
//	| compressed payload | codec kind (1B) | masked CRC32-C (4B LE) |
//
// where the CRC covers payload+kind. The helpers CompressBlock /
// ChecksumBlock / VerifyBlockChecksum / DecompressBlock correspond exactly
// to compaction steps S5, S6, S2 and S3, so the compaction engine can time
// each step the way the paper's profiling does.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pcplsm/internal/checksum"
	"pcplsm/internal/compress"
)

const (
	// BlockTrailerLen is the codec byte plus the checksum.
	BlockTrailerLen = 5
	// FooterLen is the fixed footer size: a padded index handle plus magic.
	FooterLen = 48
	// Magic marks the end of a complete table file.
	Magic = 0x70637073_7374626c // "pcps" "stbl"
)

// ErrBadTable reports a structurally invalid table file.
var ErrBadTable = errors.New("sstable: invalid table")

// BlockHandle locates a physical block (including its trailer) in the file.
type BlockHandle struct {
	Offset int64
	Length int64 // physical length including the 5-byte trailer
}

// EncodeTo appends the handle's uvarint encoding.
func (h BlockHandle) EncodeTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Offset))
	return binary.AppendUvarint(dst, uint64(h.Length))
}

// DecodeHandle parses a handle and returns the remaining bytes.
func DecodeHandle(src []byte) (BlockHandle, []byte, error) {
	off, n1 := binary.Uvarint(src)
	if n1 <= 0 {
		return BlockHandle{}, nil, fmt.Errorf("%w: bad handle offset", ErrBadTable)
	}
	length, n2 := binary.Uvarint(src[n1:])
	if n2 <= 0 {
		return BlockHandle{}, nil, fmt.Errorf("%w: bad handle length", ErrBadTable)
	}
	return BlockHandle{Offset: int64(off), Length: int64(length)}, src[n1+n2:], nil
}

// CompressBlock (paper step S5) appends codec's compression of plain to dst,
// followed by the codec kind byte. If compression does not shrink the block,
// it is stored raw under the None codec — the standard format-level guard
// against incompressible data.
func CompressBlock(dst, plain []byte, codec compress.Codec) []byte {
	mark := len(dst)
	dst = codec.Compress(dst, plain)
	if codec.Kind() != compress.None && len(dst)-mark >= len(plain) {
		dst = append(dst[:mark], plain...)
		return append(dst, byte(compress.None))
	}
	return append(dst, byte(codec.Kind()))
}

// ChecksumBlock (paper step S6) appends the masked CRC32-C trailer covering
// payload (which must already end with its codec kind byte).
func ChecksumBlock(payload []byte) []byte {
	return checksum.Append(payload, payload)
}

// SealBlock runs S5 then S6, producing a complete physical block.
func SealBlock(dst, plain []byte, codec compress.Codec) []byte {
	mark := len(dst)
	dst = CompressBlock(dst, plain, codec)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], checksum.Mask(checksum.Sum(dst[mark:])))
	return append(dst, tr[:]...)
}

// VerifyBlockChecksum (paper step S2) checks a physical block's trailer and
// returns the payload (compressed bytes plus kind byte).
func VerifyBlockChecksum(physical []byte) ([]byte, error) {
	if len(physical) < BlockTrailerLen {
		return nil, fmt.Errorf("%w: physical block of %d bytes", ErrBadTable, len(physical))
	}
	payload, err := checksum.VerifyTrailer(physical)
	if err != nil {
		return nil, fmt.Errorf("sstable: block checksum: %w", err)
	}
	return payload, nil
}

// DecompressBlock (paper step S3) decodes a verified payload (compressed
// bytes plus trailing kind byte), appending the plain block to dst.
func DecompressBlock(dst, payload []byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty block payload", ErrBadTable)
	}
	kind := compress.Kind(payload[len(payload)-1])
	codec, err := compress.ByKind(kind)
	if err != nil {
		return nil, err
	}
	return codec.Decompress(dst, payload[:len(payload)-1])
}

// OpenBlock runs S2 then S3 on a physical block.
func OpenBlock(dst, physical []byte) ([]byte, error) {
	payload, err := VerifyBlockChecksum(physical)
	if err != nil {
		return nil, err
	}
	return DecompressBlock(dst, payload)
}

// encodeFooter produces the fixed-size footer: the index handle, then the
// (possibly zero) Bloom filter handle, zero padding, and the magic. A zero
// filter handle means the table carries no filter.
func encodeFooter(index, filter BlockHandle) []byte {
	buf := make([]byte, 0, FooterLen)
	buf = index.EncodeTo(buf)
	buf = filter.EncodeTo(buf)
	for len(buf) < FooterLen-8 {
		buf = append(buf, 0)
	}
	return binary.LittleEndian.AppendUint64(buf, Magic)
}

// decodeFooter parses the footer and returns the index and filter handles
// (filter.Length == 0 when the table has no filter).
func decodeFooter(buf []byte) (index, filter BlockHandle, err error) {
	if len(buf) != FooterLen {
		return BlockHandle{}, BlockHandle{}, fmt.Errorf("%w: footer is %d bytes", ErrBadTable, len(buf))
	}
	if binary.LittleEndian.Uint64(buf[FooterLen-8:]) != Magic {
		return BlockHandle{}, BlockHandle{}, fmt.Errorf("%w: bad magic", ErrBadTable)
	}
	index, rest, err := DecodeHandle(buf)
	if err != nil {
		return BlockHandle{}, BlockHandle{}, err
	}
	filter, _, err = DecodeHandle(rest)
	if err != nil {
		return BlockHandle{}, BlockHandle{}, err
	}
	return index, filter, nil
}
