package sstable

import (
	"math/rand"
	"testing"

	"pcplsm/internal/storage"
)

// TestReaderNeverPanicsOnCorruption hammers the table reader with random
// mutations of a valid table: every open/scan/seek must either succeed or
// fail with an error — never panic, never read out of bounds. This is the
// robustness contract the compaction pipeline's S2 checksum step depends
// on.
func TestReaderNeverPanicsOnCorruption(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(500, 60, 42)
	buildTable(t, fs, "t", WriterOptions{BlockSize: 512, FilterBitsPerKey: 10}, kvs)
	orig, err := storage.ReadAll(fs, "t")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte{}, orig...)
		switch trial % 4 {
		case 0: // single bit flip
			mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		case 1: // byte splat
			for i, n := rng.Intn(len(mut)), rng.Intn(32)+1; i < len(mut) && n > 0; i, n = i+1, n-1 {
				mut[i] = byte(rng.Intn(256))
			}
		case 2: // truncation
			mut = mut[:rng.Intn(len(mut))]
		case 3: // zero a region
			start := rng.Intn(len(mut))
			end := start + rng.Intn(len(mut)-start)
			for i := start; i < end; i++ {
				mut[i] = 0
			}
		}
		name := "mut"
		fs.Remove(name)
		if err := storage.WriteFile(fs, name, mut); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			f, err := fs.Open(name)
			if err != nil {
				return
			}
			defer f.Close()
			r, err := NewReader(f, nil)
			if err != nil {
				return // rejected cleanly
			}
			// Scan everything, seek a few keys, probe the filter.
			it := r.NewIter()
			for ok := it.First(); ok; ok = it.Next() {
				_, _ = it.Key(), it.Value()
			}
			for i := 0; i < 5; i++ {
				it.Seek([]byte(kvs[rng.Intn(len(kvs))][0]))
			}
			r.MayContain([]byte("probe"))
			r.Smallest()
		}()
	}
}

// TestWriterRejectsMisuse: defensive API contracts hold.
func TestWriterRejectsMisuse(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("t")
	w := NewRawWriter(f, nil)
	if err := w.AddSealedBlock([]byte("a"), []byte("a"), []byte{1, 2}, 1); err == nil {
		t.Fatal("undersized sealed block accepted")
	}
}
