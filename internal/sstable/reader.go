package sstable

import (
	"fmt"
	"io"
	"sync"

	"pcplsm/internal/block"
	"pcplsm/internal/bloom"
	"pcplsm/internal/cache"
	"pcplsm/internal/storage"
)

// IndexEntry describes one data block: the last key it contains and where
// its physical bytes live. The compaction partitioner consumes these to cut
// sub-key-ranges at block boundaries.
type IndexEntry struct {
	LastKey []byte
	Handle  BlockHandle
}

// Reader provides random access to a finished table.
type Reader struct {
	f       storage.File
	size    int64
	cmp     block.Compare
	entries []IndexEntry

	filterHandle BlockHandle
	filterOnce   sync.Once
	filter       []byte // loaded lazily; nil if absent or unreadable

	bcache  *cache.Cache
	cacheID uint64
}

// SetBlockCache attaches a shared block cache; id must uniquely identify
// this table (the LSM layer uses the file number). Cached blocks are the
// decompressed contents, shared across readers — callers of ReadBlockData
// must never modify returned slices once a cache is attached.
func (r *Reader) SetBlockCache(c *cache.Cache, id uint64) {
	r.bcache = c
	r.cacheID = id
}

// NewReader opens a table: it reads the footer, loads and parses the index
// block, and keeps the file handle for data-block reads. cmp must match the
// comparator the table was written with (nil = bytes.Compare).
func NewReader(f storage.File, cmp block.Compare) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < FooterLen {
		return nil, fmt.Errorf("%w: file of %d bytes", ErrBadTable, size)
	}
	footer := make([]byte, FooterLen)
	if _, err := f.ReadAt(footer, size-FooterLen); err != nil && err != io.EOF {
		return nil, err
	}
	ih, fh, err := decodeFooter(footer)
	if err != nil {
		return nil, err
	}
	if ih.Offset+ih.Length > size-FooterLen {
		return nil, fmt.Errorf("%w: index handle out of range", ErrBadTable)
	}
	physical := make([]byte, ih.Length)
	if _, err := f.ReadAt(physical, ih.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	plain, err := OpenBlock(nil, physical)
	if err != nil {
		return nil, fmt.Errorf("sstable: opening index: %w", err)
	}
	it, err := block.NewIter(plain, cmp)
	if err != nil {
		return nil, fmt.Errorf("sstable: parsing index: %w", err)
	}
	var entries []IndexEntry
	for ok := it.First(); ok; ok = it.Next() {
		h, rest, err := DecodeHandle(it.Value())
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes in index value", ErrBadTable)
		}
		entries = append(entries, IndexEntry{
			LastKey: append([]byte(nil), it.Key()...),
			Handle:  h,
		})
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	return &Reader{f: f, size: size, cmp: cmp, entries: entries, filterHandle: fh}, nil
}

// MayContain probes the table's Bloom filter with a filter key (the same
// key form the writer's FilterKey produced — user keys, for LSM tables).
// It returns true when the table has no filter or the filter cannot be
// read: the filter is an optimization, never an authority.
func (r *Reader) MayContain(filterKey []byte) bool {
	if r.filterHandle.Length == 0 {
		return true
	}
	r.filterOnce.Do(func() {
		physical, err := r.ReadRaw(nil, r.filterHandle)
		if err != nil {
			return
		}
		plain, err := OpenBlock(nil, physical)
		if err != nil {
			return
		}
		r.filter = plain
	})
	if r.filter == nil {
		return true
	}
	return bloom.MayContain(r.filter, filterKey)
}

// HasFilter reports whether the table carries a Bloom filter.
func (r *Reader) HasFilter() bool { return r.filterHandle.Length > 0 }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// NumBlocks returns the number of data blocks.
func (r *Reader) NumBlocks() int { return len(r.entries) }

// IndexEntries exposes the parsed index. Callers must not mutate it.
func (r *Reader) IndexEntries() []IndexEntry { return r.entries }

// Largest returns the table's largest key (the last index key), or nil for
// an empty table.
func (r *Reader) Largest() []byte {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[len(r.entries)-1].LastKey
}

// Smallest returns the table's smallest key by opening the first block.
func (r *Reader) Smallest() ([]byte, error) {
	if len(r.entries) == 0 {
		return nil, nil
	}
	plain, err := r.ReadBlockData(nil, r.entries[0].Handle)
	if err != nil {
		return nil, err
	}
	it, err := block.NewIter(plain, r.cmp)
	if err != nil {
		return nil, err
	}
	if !it.First() {
		return nil, fmt.Errorf("%w: empty first block", ErrBadTable)
	}
	return append([]byte(nil), it.Key()...), nil
}

// ReadRaw performs paper step S1 for one block: it returns the physical
// bytes (compressed payload + trailer) without verifying or decompressing.
func (r *Reader) ReadRaw(dst []byte, h BlockHandle) ([]byte, error) {
	if h.Offset < 0 || h.Length < BlockTrailerLen || h.Offset+h.Length > r.size {
		return nil, fmt.Errorf("%w: block handle {%d,%d} out of range", ErrBadTable, h.Offset, h.Length)
	}
	if cap(dst) < int(h.Length) {
		dst = make([]byte, h.Length)
	} else {
		dst = dst[:h.Length]
	}
	if _, err := r.f.ReadAt(dst, h.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	return dst, nil
}

// ReadBlockData runs S1+S2+S3 and returns the plain block contents. With a
// block cache attached, hot blocks skip both the I/O and the decompression;
// the returned slice is then shared and must not be modified.
func (r *Reader) ReadBlockData(dst []byte, h BlockHandle) ([]byte, error) {
	if r.bcache != nil {
		key := cache.Key{ID: r.cacheID, Offset: h.Offset}
		if v := r.bcache.Get(key); v != nil {
			return v, nil
		}
		physical, err := r.ReadRaw(nil, h)
		if err != nil {
			return nil, err
		}
		plain, err := OpenBlock(nil, physical)
		if err != nil {
			return nil, err
		}
		r.bcache.Put(key, plain)
		return plain, nil
	}
	physical, err := r.ReadRaw(nil, h)
	if err != nil {
		return nil, err
	}
	return OpenBlock(dst, physical)
}

// Get returns the value of the first entry with key >= target if that
// entry's key equals target under the comparator... it returns the entry
// found at or after target: (key, value, true). ok is false when target is
// past the end of the table. The LSM layer interprets the internal key.
func (r *Reader) Get(target []byte) (key, value []byte, ok bool, err error) {
	it := r.NewIter()
	if !it.Seek(target) {
		return nil, nil, false, it.Err()
	}
	return it.Key(), it.Value(), true, nil
}

// Iter is a two-level iterator over the table.
type Iter struct {
	r        *Reader
	blockIdx int // current data block, -1 before start
	bi       *block.Iter
	buf      []byte
	err      error
}

// NewIter returns an iterator positioned before the first entry.
func (r *Reader) NewIter() *Iter {
	return &Iter{r: r, blockIdx: -1}
}

// Valid reports whether the iterator is on an entry.
func (it *Iter) Valid() bool { return it.err == nil && it.bi != nil && it.bi.Valid() }

// Err returns the first error encountered.
func (it *Iter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.bi != nil {
		return it.bi.Err()
	}
	return nil
}

// Key returns the current key (owned by the iterator).
func (it *Iter) Key() []byte { return it.bi.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.bi.Value() }

// loadBlock opens data block i.
func (it *Iter) loadBlock(i int) bool {
	// Reuse the scratch buffer only when no cache is attached: cached
	// blocks are shared and must never be appended into.
	var dst []byte
	if it.r.bcache == nil {
		dst = it.buf[:0]
	}
	plain, err := it.r.ReadBlockData(dst, it.r.entries[i].Handle)
	if err != nil {
		it.err = err
		return false
	}
	if it.r.bcache == nil {
		it.buf = plain
	}
	bi, err := block.NewIter(plain, it.r.cmp)
	if err != nil {
		it.err = err
		return false
	}
	it.blockIdx = i
	it.bi = bi
	return true
}

// First positions at the first entry of the table.
func (it *Iter) First() bool {
	if len(it.r.entries) == 0 {
		return false
	}
	if !it.loadBlock(0) {
		return false
	}
	return it.bi.First()
}

// Next advances one entry, moving across block boundaries.
func (it *Iter) Next() bool {
	if it.err != nil || it.bi == nil {
		return false
	}
	if it.bi.Next() {
		return true
	}
	if it.bi.Err() != nil {
		it.err = it.bi.Err()
		return false
	}
	for it.blockIdx+1 < len(it.r.entries) {
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
		if it.bi.First() {
			return true
		}
		if it.bi.Err() != nil {
			it.err = it.bi.Err()
			return false
		}
	}
	return false
}

// Seek positions at the first entry with key >= target.
func (it *Iter) Seek(target []byte) bool {
	if it.err != nil {
		return false
	}
	cmp := it.r.cmp
	if cmp == nil {
		cmp = defaultCompare
	}
	// Binary search the index: first block whose LastKey >= target.
	lo, hi := 0, len(it.r.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(it.r.entries[mid].LastKey, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(it.r.entries) {
		it.bi = nil
		return false
	}
	if !it.loadBlock(lo) {
		return false
	}
	if it.bi.Seek(target) {
		return true
	}
	if it.bi.Err() != nil {
		it.err = it.bi.Err()
		return false
	}
	// Target falls in the gap after this block's last key (can happen only
	// if LastKey comparisons and block contents disagree — defensive).
	for it.blockIdx+1 < len(it.r.entries) {
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
		if it.bi.First() {
			return true
		}
	}
	return false
}

func defaultCompare(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	default:
		return 0
	}
}
