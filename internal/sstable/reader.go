package sstable

import (
	"fmt"
	"io"
	"sync"

	"pcplsm/internal/block"
	"pcplsm/internal/bloom"
	"pcplsm/internal/cache"
	"pcplsm/internal/checksum"
	"pcplsm/internal/storage"
)

// IndexEntry describes one data block: the last key it contains and where
// its physical bytes live. The compaction partitioner consumes these to cut
// sub-key-ranges at block boundaries.
type IndexEntry struct {
	LastKey []byte
	Handle  BlockHandle
}

// Reader provides random access to a finished table.
type Reader struct {
	f       storage.File
	size    int64
	cmp     block.Compare
	entries []IndexEntry

	filterHandle BlockHandle
	filterOnce   sync.Once
	filter       []byte // loaded lazily; nil if absent or unreadable

	bcache   *cache.Cache
	cacheID  uint64
	onAccess func(blockLastKey []byte)
}

// SetBlockCache attaches a shared block cache; id must uniquely identify
// this table (the LSM layer uses the file number). Cached blocks are the
// decompressed contents, shared across readers — callers of ReadBlockData
// must never modify returned slices once a cache is attached.
func (r *Reader) SetBlockCache(c *cache.Cache, id uint64) {
	r.bcache = c
	r.cacheID = id
}

// SetAccessHook installs a callback invoked with a block's last key each
// time the read path loads that data block (cache hit or miss). The LSM
// layer uses it to feed the key-range heat map that guides compaction-time
// cache pre-warming. The hook must be cheap and safe for concurrent use;
// the key slice is owned by the reader and must not be retained.
func (r *Reader) SetAccessHook(f func(blockLastKey []byte)) {
	r.onAccess = f
}

// NewReader opens a table: it reads the footer, loads and parses the index
// block, and keeps the file handle for data-block reads. cmp must match the
// comparator the table was written with (nil = bytes.Compare). NewReader
// takes ownership of f: on failure the file is closed before returning, so
// a rejected open never leaks the handle.
func NewReader(f storage.File, cmp block.Compare) (*Reader, error) {
	r, err := newReader(f, cmp)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f storage.File, cmp block.Compare) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < FooterLen {
		return nil, fmt.Errorf("%w: file of %d bytes", ErrBadTable, size)
	}
	footer := make([]byte, FooterLen)
	if _, err := f.ReadAt(footer, size-FooterLen); err != nil && err != io.EOF {
		return nil, err
	}
	ih, fh, err := decodeFooter(footer)
	if err != nil {
		return nil, err
	}
	if ih.Offset+ih.Length > size-FooterLen {
		return nil, fmt.Errorf("%w: index handle out of range", ErrBadTable)
	}
	physical := make([]byte, ih.Length)
	if _, err := f.ReadAt(physical, ih.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	plain, err := OpenBlock(nil, physical)
	if err != nil {
		return nil, fmt.Errorf("sstable: opening index: %w", err)
	}
	it, err := block.NewIter(plain, cmp)
	if err != nil {
		return nil, fmt.Errorf("sstable: parsing index: %w", err)
	}
	var entries []IndexEntry
	for ok := it.First(); ok; ok = it.Next() {
		h, rest, err := DecodeHandle(it.Value())
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes in index value", ErrBadTable)
		}
		entries = append(entries, IndexEntry{
			LastKey: append([]byte(nil), it.Key()...),
			Handle:  h,
		})
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	return &Reader{f: f, size: size, cmp: cmp, entries: entries, filterHandle: fh}, nil
}

// MayContain probes the table's Bloom filter with a filter key (the same
// key form the writer's FilterKey produced — user keys, for LSM tables).
// It returns true when the table has no filter or the filter cannot be
// read: the filter is an optimization, never an authority.
func (r *Reader) MayContain(filterKey []byte) bool {
	if r.filterHandle.Length == 0 {
		return true
	}
	r.filterOnce.Do(func() {
		physical, err := r.ReadRaw(nil, r.filterHandle)
		if err != nil {
			return
		}
		plain, err := OpenBlock(nil, physical)
		if err != nil {
			return
		}
		r.filter = plain
	})
	if r.filter == nil {
		return true
	}
	return bloom.MayContain(r.filter, filterKey)
}

// HasFilter reports whether the table carries a Bloom filter.
func (r *Reader) HasFilter() bool { return r.filterHandle.Length > 0 }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// VerifyStats reports what one full-table verification covered.
type VerifyStats struct {
	Entries  int64  // key/value entries decoded
	Blocks   int    // data blocks read and verified
	Bytes    int64  // physical file bytes digested
	Digest   uint32 // CRC32-C over the whole file image
	Smallest []byte // first key observed
	Largest  []byte // last key observed
}

// Verify reads the whole table back through the untrusted path: the raw
// file image is digested byte for byte (CRC32-C, comparable against
// TableMeta.Digest), then every data block is re-read from the device,
// checksum-verified, decompressed, and its entries walked checking strict
// key order under the reader's comparator and agreement with the index.
// It deliberately bypasses any attached block cache — the point is to
// observe what is on the device now, not what was cached when it was
// healthy. The returned stats are valid even on error, describing how far
// verification got.
func (r *Reader) Verify() (VerifyStats, error) {
	var vs VerifyStats
	buf := make([]byte, 64<<10)
	for off := int64(0); off < r.size; {
		n := int64(len(buf))
		if r.size-off < n {
			n = r.size - off
		}
		if _, err := r.f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return vs, err
		}
		vs.Digest = checksum.SumWithSeed(vs.Digest, buf[:n])
		vs.Bytes += n
		off += n
	}
	cmp := r.cmp
	if cmp == nil {
		cmp = defaultCompare
	}
	var prev []byte
	for _, e := range r.entries {
		physical, err := r.ReadRaw(buf[:0], e.Handle)
		if err != nil {
			return vs, err
		}
		buf = physical
		plain, err := OpenBlock(nil, physical)
		if err != nil {
			return vs, err
		}
		it, err := block.NewIter(plain, r.cmp)
		if err != nil {
			return vs, err
		}
		for ok := it.First(); ok; ok = it.Next() {
			if vs.Entries > 0 && cmp(prev, it.Key()) >= 0 {
				return vs, fmt.Errorf("%w: keys out of order (%q after %q)", ErrBadTable, it.Key(), prev)
			}
			if vs.Entries == 0 {
				vs.Smallest = append([]byte(nil), it.Key()...)
			}
			prev = append(prev[:0], it.Key()...)
			vs.Entries++
		}
		if it.Err() != nil {
			return vs, it.Err()
		}
		if vs.Entries > 0 && cmp(prev, e.LastKey) != 0 {
			return vs, fmt.Errorf("%w: index last key %q disagrees with block last key %q",
				ErrBadTable, e.LastKey, prev)
		}
		vs.Blocks++
	}
	vs.Largest = append([]byte(nil), prev...)
	return vs, nil
}

// NumBlocks returns the number of data blocks.
func (r *Reader) NumBlocks() int { return len(r.entries) }

// IndexEntries exposes the parsed index. Callers must not mutate it.
func (r *Reader) IndexEntries() []IndexEntry { return r.entries }

// Largest returns the table's largest key (the last index key), or nil for
// an empty table.
func (r *Reader) Largest() []byte {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[len(r.entries)-1].LastKey
}

// Smallest returns the table's smallest key by opening the first block.
func (r *Reader) Smallest() ([]byte, error) {
	if len(r.entries) == 0 {
		return nil, nil
	}
	plain, err := r.ReadBlockData(nil, r.entries[0].Handle)
	if err != nil {
		return nil, err
	}
	it, err := block.NewIter(plain, r.cmp)
	if err != nil {
		return nil, err
	}
	if !it.First() {
		return nil, fmt.Errorf("%w: empty first block", ErrBadTable)
	}
	return append([]byte(nil), it.Key()...), nil
}

// ReadRaw performs paper step S1 for one block: it returns the physical
// bytes (compressed payload + trailer) without verifying or decompressing.
func (r *Reader) ReadRaw(dst []byte, h BlockHandle) ([]byte, error) {
	if h.Offset < 0 || h.Length < BlockTrailerLen || h.Offset+h.Length > r.size {
		return nil, fmt.Errorf("%w: block handle {%d,%d} out of range", ErrBadTable, h.Offset, h.Length)
	}
	if cap(dst) < int(h.Length) {
		dst = make([]byte, h.Length)
	} else {
		dst = dst[:h.Length]
	}
	if _, err := r.f.ReadAt(dst, h.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	return dst, nil
}

// physPool recycles buffers for physical (still-compressed) block reads.
// Decompression never aliases its source (every codec appends into dst), so
// a physical buffer is dead as soon as OpenBlock returns and can go straight
// back to the pool.
var physPool = sync.Pool{New: func() any { return new([]byte) }}

// ReadBlockData runs S1+S2+S3 and returns the plain block contents. With a
// block cache attached, hot blocks skip both the I/O and the decompression;
// the returned slice is then shared and must not be modified.
func (r *Reader) ReadBlockData(dst []byte, h BlockHandle) ([]byte, error) {
	if r.bcache != nil {
		key := cache.Key{ID: r.cacheID, Offset: h.Offset}
		if v := r.bcache.Get(key); v != nil {
			return v, nil
		}
		bp := physPool.Get().(*[]byte)
		physical, err := r.ReadRaw((*bp)[:0], h)
		if err != nil {
			physPool.Put(bp)
			return nil, err
		}
		// The decompressed block must be freshly allocated — it is handed to
		// the cache and shared — but the physical bytes are scratch.
		plain, err := OpenBlock(nil, physical)
		*bp = physical
		physPool.Put(bp)
		if err != nil {
			return nil, err
		}
		r.bcache.Put(key, plain)
		return plain, nil
	}
	bp := physPool.Get().(*[]byte)
	physical, err := r.ReadRaw((*bp)[:0], h)
	if err != nil {
		physPool.Put(bp)
		return nil, err
	}
	plain, err := OpenBlock(dst, physical)
	*bp = physical
	physPool.Put(bp)
	return plain, err
}

// Get returns the value of the first entry with key >= target if that
// entry's key equals target under the comparator... it returns the entry
// found at or after target: (key, value, true). ok is false when target is
// past the end of the table. The LSM layer interprets the internal key.
func (r *Reader) Get(target []byte) (key, value []byte, ok bool, err error) {
	it := r.NewIter()
	if !it.Seek(target) {
		return nil, nil, false, it.Err()
	}
	return it.Key(), it.Value(), true, nil
}

// Iter is a two-level iterator over the table. Iterators are pooled: Close
// returns the iterator (with its block-iterator scratch and decode buffer)
// to a package pool, which is what makes a cached point read allocation-free
// — so Key/Value aliases must not be used after Close.
type Iter struct {
	r        *Reader
	blockIdx int        // current data block, -1 before start
	bi       block.Iter // embedded by value and Reset per block, never reallocated
	biSet    bool       // bi is bound to the current block
	closed   bool       // guards against double-Close returning the iter to the pool twice
	buf      []byte
	err      error

	// Readahead pipeline: while the caller consumes the blocks of one
	// fetched span, a single goroutine fetches + verifies + decompresses the
	// next ra blocks with ONE contiguous read, so a scan overlaps its I/O
	// with iteration (the paper's pipelining idea applied to the read path)
	// and the device sees one large sequential request per span instead of
	// ra competing small ones. The fetch owns a 1-buffered channel, so an
	// abandoned span (after Seek, or at Close) completes and is collected
	// without blocking anyone.
	ra        int
	fetched   [][]byte // decoded blocks fetchedLo … fetchedLo+len−1
	fetchedLo int
	inflight  *prefetch
	stale     []*prefetch // abandoned fetches, drained at Close
}

// prefetch is one in-flight span fetch covering blocks [lo, hi].
type prefetch struct {
	lo, hi int
	ch     chan prefetchResult
}

type prefetchResult struct {
	plains [][]byte // per block lo…hi
	err    error
}

// iterPool recycles table iterators and their scratch buffers (block
// iterator key buffer, decode buffer) across point reads and scans.
var iterPool = sync.Pool{New: func() any { return new(Iter) }}

// NewIter returns an iterator positioned before the first entry, drawn from
// the iterator pool. Close returns it; an iterator that is never closed is
// simply collected by the GC.
func (r *Reader) NewIter() *Iter {
	it := iterPool.Get().(*Iter)
	it.r = r
	it.blockIdx = -1
	it.closed = false
	return it
}

// SetReadahead sets the number of data blocks the iterator prefetches
// (fetch + verify + decompress, concurrently) ahead of its position during
// forward iteration. 0 disables readahead. Callers that enable it should
// Close the iterator so outstanding prefetches are drained before the
// underlying file is closed.
func (it *Iter) SetReadahead(n int) {
	if n < 0 {
		n = 0
	}
	it.ra = n
}

// Close drains outstanding prefetches and returns the iterator to the pool.
// The iterator — including slices obtained from Key/Value — must not be used
// afterwards. It never returns an error; the signature exists so callers can
// defer it alongside reader closes. Close is idempotent.
func (it *Iter) Close() {
	if it.closed {
		return
	}
	if it.inflight != nil {
		<-it.inflight.ch // each fetch always sends exactly one result
		it.inflight = nil
	}
	for _, p := range it.stale {
		<-p.ch
	}
	it.stale = it.stale[:0]
	it.fetched = nil
	it.fetchedLo = 0
	it.bi.Release() // drop block references so pooling doesn't pin cached blocks
	it.biSet = false
	it.r = nil
	it.err = nil
	it.ra = 0
	it.closed = true
	iterPool.Put(it)
}

// scheduleReadahead keeps one span fetch in flight covering the ra blocks
// after whatever is already fetched, starting no earlier than cur+1.
func (it *Iter) scheduleReadahead(cur int) {
	if it.ra <= 0 || it.inflight != nil {
		return
	}
	next := cur + 1
	if end := it.fetchedLo + len(it.fetched); it.fetched != nil && it.fetchedLo <= next && next < end {
		next = end
	}
	if next >= len(it.r.entries) {
		return
	}
	hi := next + it.ra - 1
	if hi >= len(it.r.entries) {
		hi = len(it.r.entries) - 1
	}
	p := &prefetch{lo: next, hi: hi, ch: make(chan prefetchResult, 1)}
	go it.r.fetchSpan(p.lo, p.hi, p.ch)
	it.inflight = p
}

// takePrefetched returns the decoded contents of block i from the fetched
// span or the in-flight fetch (waiting for it), or nil when no prefetch
// covers i. A fetch error is returned and invalidates nothing else.
func (it *Iter) takePrefetched(i int) ([]byte, error) {
	if it.fetched != nil && it.fetchedLo <= i && i < it.fetchedLo+len(it.fetched) {
		return it.fetched[i-it.fetchedLo], nil
	}
	if p := it.inflight; p != nil {
		if p.lo <= i && i <= p.hi {
			res := <-p.ch
			it.inflight = nil
			if res.err != nil {
				return nil, res.err
			}
			it.fetched, it.fetchedLo = res.plains, p.lo
			return it.fetched[i-p.lo], nil
		}
		// The iterator jumped; let the fetch finish on its own.
		it.stale = append(it.stale, p)
		it.inflight = nil
	}
	return nil, nil
}

// fetchSpan reads blocks [lo, hi] for a readahead pipeline: cached blocks
// are taken from the block cache, and each contiguous uncached run is read
// with a single ReadAt — one large sequential request instead of hi−lo+1
// small ones — then verified, decompressed, and (when a cache is attached)
// inserted block by block. Exactly one result is always sent on ch.
func (r *Reader) fetchSpan(lo, hi int, ch chan prefetchResult) {
	// Span buffers are scratch: every decoded block is a fresh allocation
	// (cache-shared or handed to the consumer), so the raw bytes recycle.
	bp := physPool.Get().(*[]byte)
	defer physPool.Put(bp)
	plains := make([][]byte, hi-lo+1)
	var cached [][]byte
	if r.bcache != nil {
		cached = make([][]byte, hi-lo+1)
		for i := lo; i <= hi; i++ {
			cached[i-lo] = r.bcache.Get(cache.Key{ID: r.cacheID, Offset: r.entries[i].Handle.Offset})
		}
	}
	for i := lo; i <= hi; {
		if cached != nil && cached[i-lo] != nil {
			plains[i-lo] = cached[i-lo]
			i++
			continue
		}
		j := i
		for j <= hi && (cached == nil || cached[j-lo] == nil) {
			j++
		}
		first, last := r.entries[i].Handle, r.entries[j-1].Handle
		start, end := first.Offset, last.Offset+last.Length
		if first.Offset < 0 || first.Length < BlockTrailerLen || end > r.size || end < start {
			ch <- prefetchResult{err: fmt.Errorf("%w: block span {%d,%d} out of range", ErrBadTable, start, end-start)}
			return
		}
		raw := *bp
		if cap(raw) < int(end-start) {
			raw = make([]byte, end-start)
			*bp = raw
		} else {
			raw = raw[:end-start]
		}
		if _, err := r.f.ReadAt(raw, start); err != nil && err != io.EOF {
			ch <- prefetchResult{err: err}
			return
		}
		for k := i; k < j; k++ {
			h := r.entries[k].Handle
			if h.Offset < start || h.Offset+h.Length > end {
				ch <- prefetchResult{err: fmt.Errorf("%w: block handle {%d,%d} outside its span", ErrBadTable, h.Offset, h.Length)}
				return
			}
			plain, err := OpenBlock(nil, raw[h.Offset-start:h.Offset-start+h.Length])
			if err != nil {
				ch <- prefetchResult{err: err}
				return
			}
			plains[k-lo] = plain
			if r.bcache != nil {
				r.bcache.Put(cache.Key{ID: r.cacheID, Offset: h.Offset}, plain)
			}
		}
		i = j
	}
	ch <- prefetchResult{plains: plains}
}

// Valid reports whether the iterator is on an entry.
func (it *Iter) Valid() bool { return it.err == nil && it.biSet && it.bi.Valid() }

// Err returns the first error encountered.
func (it *Iter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.biSet {
		return it.bi.Err()
	}
	return nil
}

// Key returns the current key (owned by the iterator).
func (it *Iter) Key() []byte { return it.bi.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.bi.Value() }

// loadBlock opens data block i, consuming a completed prefetch when one is
// pending for it.
func (it *Iter) loadBlock(i int) bool {
	plain, perr := it.takePrefetched(i)
	if perr != nil {
		it.err = perr
		return false
	}
	if plain == nil {
		// Reuse the scratch buffer only when no cache is attached: cached
		// blocks are shared and must never be appended into.
		var dst []byte
		if it.r.bcache == nil {
			dst = it.buf[:0]
		}
		p, err := it.r.ReadBlockData(dst, it.r.entries[i].Handle)
		if err != nil {
			it.err = err
			return false
		}
		plain = p
		if it.r.bcache == nil {
			// Adopt the freshly decoded block as the scratch buffer: by the
			// time the next direct read decodes over it, it is no longer
			// referenced. Blocks served from a fetched span must NOT be
			// adopted — the span still holds them and may serve them again
			// after a backward Seek.
			it.buf = plain
		}
	}
	// Rebinding the embedded block iterator reuses its key scratch — moving
	// across the blocks of a scan allocates nothing.
	if err := it.bi.Reset(plain, it.r.cmp); err != nil {
		it.err = err
		it.biSet = false
		return false
	}
	it.blockIdx = i
	it.biSet = true
	if it.r.onAccess != nil {
		it.r.onAccess(it.r.entries[i].LastKey)
	}
	it.scheduleReadahead(i)
	return true
}

// First positions at the first entry of the table.
func (it *Iter) First() bool {
	if len(it.r.entries) == 0 {
		return false
	}
	if !it.loadBlock(0) {
		return false
	}
	return it.bi.First()
}

// Next advances one entry, moving across block boundaries.
func (it *Iter) Next() bool {
	if it.err != nil || !it.biSet {
		return false
	}
	if it.bi.Next() {
		return true
	}
	if it.bi.Err() != nil {
		it.err = it.bi.Err()
		return false
	}
	for it.blockIdx+1 < len(it.r.entries) {
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
		if it.bi.First() {
			return true
		}
		if it.bi.Err() != nil {
			it.err = it.bi.Err()
			return false
		}
	}
	return false
}

// Seek positions at the first entry with key >= target.
func (it *Iter) Seek(target []byte) bool {
	if it.err != nil {
		return false
	}
	cmp := it.r.cmp
	if cmp == nil {
		cmp = defaultCompare
	}
	// Binary search the index: first block whose LastKey >= target.
	lo, hi := 0, len(it.r.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(it.r.entries[mid].LastKey, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(it.r.entries) {
		it.biSet = false
		return false
	}
	if !it.loadBlock(lo) {
		return false
	}
	if it.bi.Seek(target) {
		return true
	}
	if it.bi.Err() != nil {
		it.err = it.bi.Err()
		return false
	}
	// Target falls in the gap after this block's last key (can happen only
	// if LastKey comparisons and block contents disagree — defensive).
	for it.blockIdx+1 < len(it.r.entries) {
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
		if it.bi.First() {
			return true
		}
	}
	return false
}

func defaultCompare(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	default:
		return 0
	}
}
