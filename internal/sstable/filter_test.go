package sstable

import (
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

func TestTableFilterRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(2000, 50, 77)
	buildTable(t, fs, "t", WriterOptions{FilterBitsPerKey: 10}, kvs)
	r := openTable(t, fs, "t")
	defer r.Close()

	if !r.HasFilter() {
		t.Fatal("table should carry a filter")
	}
	// No false negatives.
	for _, kv := range kvs {
		if !r.MayContain([]byte(kv[0])) {
			t.Fatalf("filter rejected present key %q", kv[0])
		}
	}
	// Mostly-true negatives.
	fp := 0
	const probes = 5000
	for i := 0; i < probes; i++ {
		if r.MayContain([]byte(fmt.Sprintf("absent-%06d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestTableFilterKeyMapping(t *testing.T) {
	// FilterKey strips a suffix; probes must use the mapped form.
	fs := storage.NewMemFS()
	f, _ := fs.Create("t")
	w := NewWriter(f, WriterOptions{
		FilterBitsPerKey: 10,
		FilterKey:        func(k []byte) []byte { return k[:len(k)-4] },
	})
	for i := 0; i < 100; i++ {
		w.Add([]byte(fmt.Sprintf("key%04d-sfx", i)), []byte("v"))
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openTable(t, fs, "t")
	defer r.Close()
	if !r.MayContain([]byte("key0042")) {
		t.Fatal("mapped filter key rejected")
	}
}

func TestTableWithoutFilterFailsOpen(t *testing.T) {
	fs := storage.NewMemFS()
	kvs := genKVs(100, 20, 78)
	buildTable(t, fs, "t", WriterOptions{}, kvs) // no filter
	r := openTable(t, fs, "t")
	defer r.Close()
	if r.HasFilter() {
		t.Fatal("unexpected filter")
	}
	if !r.MayContain([]byte("anything")) {
		t.Fatal("filterless table must fail open")
	}
}

func TestEmptyTableWithFilterOption(t *testing.T) {
	fs := storage.NewMemFS()
	buildTable(t, fs, "t", WriterOptions{FilterBitsPerKey: 10}, nil)
	r := openTable(t, fs, "t")
	defer r.Close()
	// Zero entries → no filter block is written; probes fail open.
	if !r.MayContain([]byte("x")) {
		t.Fatal("empty table should fail open")
	}
}

func TestFilterSurvivesScanAndSeek(t *testing.T) {
	// The filter block must not disturb normal iteration (it sits between
	// data blocks and the index).
	fs := storage.NewMemFS()
	kvs := genKVs(1500, 40, 79)
	buildTable(t, fs, "t", WriterOptions{FilterBitsPerKey: 10, BlockSize: 512}, kvs)
	r := openTable(t, fs, "t")
	defer r.Close()
	it := r.NewIter()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Key()) != kvs[i][0] {
			t.Fatalf("entry %d: %q", i, it.Key())
		}
		i++
	}
	if i != len(kvs) || it.Err() != nil {
		t.Fatalf("scan: %d entries, err %v", i, it.Err())
	}
	mid := kvs[len(kvs)/2][0]
	if !it.Seek([]byte(mid)) || string(it.Key()) != mid {
		t.Fatal("seek broken with filter present")
	}
}
