package sstable

import (
	"fmt"

	"pcplsm/internal/block"
	"pcplsm/internal/bloom"
	"pcplsm/internal/checksum"
	"pcplsm/internal/compress"
	"pcplsm/internal/storage"
)

// WriterOptions configure table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed data block target size (default 4 KiB,
	// the paper's setting).
	BlockSize int
	// RestartInterval for data blocks (default block.DefaultRestartInterval).
	RestartInterval int
	// Codec compresses data blocks (default Snappy, the paper's setting).
	Codec compress.Codec
	// Compare orders keys (default bytes.Compare semantics via nil).
	Compare block.Compare
	// FilterBitsPerKey, when positive, builds a Bloom filter over the
	// table's filter keys (10 is the classic choice: ~0.8% false
	// positives).
	FilterBitsPerKey int
	// FilterKey maps a stored key to the key the filter indexes (e.g.
	// internal key → user key). nil uses the stored key verbatim.
	FilterKey func(key []byte) []byte
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = block.DefaultRestartInterval
	}
	if o.Codec == nil {
		o.Codec = compress.MustByKind(compress.Snappy)
	}
	return o
}

// TableMeta summarizes a finished table.
type TableMeta struct {
	Entries    int64
	DataBlocks int
	FileSize   int64
	Smallest   []byte // first key in the table
	Largest    []byte // last key in the table
	// Digest is the CRC32-C of the complete file image (every byte from
	// offset 0 through the footer), accumulated incrementally as the writer
	// lands bytes — no extra read pass. Scrubbing and verify-before-install
	// recompute it from the file and compare. 0 means "unknown" (tables
	// written before digests existed).
	Digest uint32
}

// RawWriter appends pre-sealed physical blocks to a table file and builds
// the index. It is the write-stage half of the compaction pipeline: the
// compute stage seals blocks (S5+S6) and the write stage lands them (S7).
type RawWriter struct {
	f        storage.File
	off      int64
	digest   uint32 // running CRC32-C over every byte written so far
	index    *block.Builder
	meta     TableMeta
	finished bool

	// FilterBitsPerKey enables a Bloom filter over the hashes passed to
	// AddFilterHashes. Set it before Finish.
	FilterBitsPerKey int
	filterHashes     []uint32
}

// NewRawWriter starts a table at the beginning of f (which must be empty).
// cmp defines the key order (nil = bytes.Compare); it must match the order
// of the sealed blocks being added.
func NewRawWriter(f storage.File, cmp block.Compare) *RawWriter {
	return &RawWriter{f: f, index: block.NewBuilder(1, cmp)}
}

// AddFilterHashes records filter-key hashes (bloom.Hash of each entry's
// filter key) to include in the table's Bloom filter.
func (w *RawWriter) AddFilterHashes(hs []uint32) {
	w.filterHashes = append(w.filterHashes, hs...)
}

// AddFilterHash records a single filter-key hash.
func (w *RawWriter) AddFilterHash(h uint32) {
	w.filterHashes = append(w.filterHashes, h)
}

// AddSealedBlock appends one physical (compressed + trailer) data block
// whose plain contents span [firstKey, lastKey] and hold entries entries.
// Blocks must arrive in key order.
func (w *RawWriter) AddSealedBlock(firstKey, lastKey, physical []byte, entries int64) error {
	if w.finished {
		return fmt.Errorf("%w: writer already finished", ErrBadTable)
	}
	if len(physical) < BlockTrailerLen {
		return fmt.Errorf("%w: sealed block of %d bytes", ErrBadTable, len(physical))
	}
	if _, err := w.f.Write(physical); err != nil {
		return err
	}
	w.digest = checksum.SumWithSeed(w.digest, physical)
	h := BlockHandle{Offset: w.off, Length: int64(len(physical))}
	w.index.Add(lastKey, h.EncodeTo(nil))
	w.off += int64(len(physical))
	if w.meta.DataBlocks == 0 {
		w.meta.Smallest = append([]byte(nil), firstKey...)
	}
	w.meta.Largest = append(w.meta.Largest[:0], lastKey...)
	w.meta.DataBlocks++
	w.meta.Entries += entries
	return nil
}

// Offset returns the current file offset (bytes of sealed data so far).
func (w *RawWriter) Offset() int64 { return w.off }

// Finish writes the index block and footer, syncs, and returns the table
// metadata. The file is left open; the caller closes it.
func (w *RawWriter) Finish() (TableMeta, error) {
	if w.finished {
		return TableMeta{}, fmt.Errorf("%w: writer already finished", ErrBadTable)
	}
	w.finished = true
	// Optional Bloom filter block, stored uncompressed between the data
	// blocks and the index.
	var filterHandle BlockHandle
	if w.FilterBitsPerKey > 0 && len(w.filterHashes) > 0 {
		physical := SealBlock(nil, bloom.BuildFromHashes(w.filterHashes, w.FilterBitsPerKey),
			compress.MustByKind(compress.None))
		if _, err := w.f.Write(physical); err != nil {
			return TableMeta{}, err
		}
		w.digest = checksum.SumWithSeed(w.digest, physical)
		filterHandle = BlockHandle{Offset: w.off, Length: int64(len(physical))}
		w.off += int64(len(physical))
	}
	// The index block is sealed uncompressed: it is small, and keeping it
	// cheap to open matters more than its size.
	physical := SealBlock(nil, w.index.Finish(), compress.MustByKind(compress.None))
	if _, err := w.f.Write(physical); err != nil {
		return TableMeta{}, err
	}
	w.digest = checksum.SumWithSeed(w.digest, physical)
	indexHandle := BlockHandle{Offset: w.off, Length: int64(len(physical))}
	w.off += int64(len(physical))
	footer := encodeFooter(indexHandle, filterHandle)
	if _, err := w.f.Write(footer); err != nil {
		return TableMeta{}, err
	}
	w.digest = checksum.SumWithSeed(w.digest, footer)
	w.off += int64(len(footer))
	if err := w.f.Sync(); err != nil {
		return TableMeta{}, err
	}
	w.meta.FileSize = w.off
	w.meta.Digest = w.digest
	return w.meta, nil
}

// Writer builds a table from sorted key/value pairs, handling block
// formation, compression and checksumming internally. It is the path used
// by memtable flushes; compaction uses RawWriter so the pipeline stages stay
// explicit.
type Writer struct {
	raw       *RawWriter
	opts      WriterOptions
	builder   *block.Builder
	cmp       block.Compare
	firstKey  []byte
	lastKey   []byte
	blockN    int64
	sealBuf   []byte
	haveEntry bool
}

// NewWriter starts a table at the beginning of f.
func NewWriter(f storage.File, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	return &Writer{
		raw:     NewRawWriter(f, opts.Compare),
		opts:    opts,
		builder: block.NewBuilder(opts.RestartInterval, opts.Compare),
		cmp:     opts.Compare,
	}
}

// Add appends a key/value pair. Keys must be strictly ascending under the
// writer's comparator.
func (w *Writer) Add(key, value []byte) error {
	if w.builder.Empty() {
		w.firstKey = append(w.firstKey[:0], key...)
	}
	w.builder.Add(key, value)
	if w.opts.FilterBitsPerKey > 0 {
		fk := key
		if w.opts.FilterKey != nil {
			fk = w.opts.FilterKey(key)
		}
		w.raw.AddFilterHash(bloom.Hash(fk))
	}
	w.lastKey = append(w.lastKey[:0], key...)
	w.blockN++
	w.haveEntry = true
	if w.builder.SizeEstimate() >= w.opts.BlockSize {
		return w.flush()
	}
	return nil
}

// flush seals the current block and hands it to the raw writer.
func (w *Writer) flush() error {
	if w.builder.Empty() {
		return nil
	}
	plain := w.builder.Finish()
	w.sealBuf = SealBlock(w.sealBuf[:0], plain, w.opts.Codec)
	err := w.raw.AddSealedBlock(w.firstKey, w.lastKey, w.sealBuf, w.blockN)
	w.builder.Reset()
	w.blockN = 0
	return err
}

// EstimatedSize returns the approximate final file size so far.
func (w *Writer) EstimatedSize() int64 {
	return w.raw.Offset() + int64(w.builder.SizeEstimate()) + FooterLen
}

// Empty reports whether nothing has been added.
func (w *Writer) Empty() bool { return !w.haveEntry }

// Finish flushes the final block, writes index and footer, and returns the
// table metadata.
func (w *Writer) Finish() (TableMeta, error) {
	if err := w.flush(); err != nil {
		return TableMeta{}, err
	}
	w.raw.FilterBitsPerKey = w.opts.FilterBitsPerKey
	return w.raw.Finish()
}
