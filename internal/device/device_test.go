package device

import (
	"sync"
	"testing"
	"time"
)

func TestPresets(t *testing.T) {
	for _, name := range []string{"hdd", "ssd", "nvme", "null"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := ByName("floppy"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestServiceTimeShape(t *testing.T) {
	hdd := HDD()
	// Random read of 512KB on HDD: dominated by seek.
	r := hdd.serviceTime(false, false, 512<<10)
	if r < hdd.ReadLatency {
		t.Fatalf("random read %v < seek %v", r, hdd.ReadLatency)
	}
	// Sequential read must be much cheaper than random.
	seq := hdd.serviceTime(false, true, 512<<10)
	if seq >= r {
		t.Fatalf("sequential %v not cheaper than random %v", seq, r)
	}
	// HDD write has lower fixed cost than read (write buffer).
	w := hdd.serviceTime(true, false, 512<<10)
	if w >= r {
		t.Fatalf("hdd write %v should be cheaper than read %v", w, r)
	}

	ssd := SSD()
	// SSD write slower than read at same size (write-after-erase).
	sr := ssd.serviceTime(false, false, 512<<10)
	sw := ssd.serviceTime(true, false, 512<<10)
	if sw <= sr {
		t.Fatalf("ssd write %v should exceed read %v", sw, sr)
	}
	// SSD is far faster than HDD for small random I/O (paper: "the
	// bandwidth of SSD may be over five times larger than HDD especially
	// for random I/Os").
	ssdSmall := ssd.serviceTime(false, false, 4<<10)
	hddSmall := hdd.serviceTime(false, false, 4<<10)
	if ssdSmall*5 > hddSmall {
		t.Fatalf("ssd random 4K read %v not ≥5x faster than hdd %v", ssdSmall, hddSmall)
	}
}

func TestSSDBandwidthRampsWithIOSize(t *testing.T) {
	ssd := SSD()
	// Per-byte cost should decrease as I/O size grows toward saturation.
	perByte := func(n int) float64 {
		return float64(ssd.serviceTime(false, false, n)) / float64(n)
	}
	small := perByte(16 << 10)
	mid := perByte(128 << 10)
	big := perByte(1 << 20)
	if !(small > mid && mid > big) {
		t.Fatalf("per-byte cost not decreasing: 16K=%v 128K=%v 1M=%v", small, mid, big)
	}
}

func TestNullModelChargesNothing(t *testing.T) {
	if Null().serviceTime(true, false, 1<<20) != 0 {
		t.Fatal("null model should charge zero")
	}
}

func TestDeviceAccountsStats(t *testing.T) {
	d := New(SSD(), 0) // scale 0: account durations, never sleep
	d.Access(false, 1, 0, 1000)
	d.Access(true, 2, 0, 2000)
	d.Access(true, 2, 2000, 3000)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ReadBytes != 1000 || s.WriteBytes != 5000 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.Busy() != 0 {
		t.Fatalf("scale 0 should charge no busy time, got %v", s.Busy())
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.WriteBytes != 0 {
		t.Fatalf("ResetStats did not clear: %+v", st)
	}
}

func TestDeviceBusyTimeScales(t *testing.T) {
	m := Model{Name: "test", ReadLatency: 3 * time.Millisecond, ReadBandwidth: 1e9, WriteBandwidth: 1e9}
	d := New(m, 1.0)
	start := time.Now()
	d.Access(false, 1, 0, 0)
	if el := time.Since(start); el < 2700*time.Microsecond {
		t.Fatalf("3ms access returned after %v", el)
	}
	if busy := d.Stats().BusyRead; busy < 2700*time.Microsecond {
		t.Fatalf("busy time %v", busy)
	}
}

func TestDeviceSleepDebtAmortizes(t *testing.T) {
	// 1000 requests of ~200µs must take ~200ms total, not 1000 × the OS
	// sleep granularity.
	m := Model{Name: "test", ReadLatency: 200 * time.Microsecond, ReadBandwidth: 1e12, WriteBandwidth: 1e12}
	d := New(m, 1.0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Access(false, 1, int64(i*100+1), 1) // non-contiguous: always random
	}
	el := time.Since(start)
	if el < 150*time.Millisecond || el > 400*time.Millisecond {
		t.Fatalf("1000×200µs accesses took %v, want ~200ms", el)
	}
}

func TestDeviceSerializesConcurrentAccess(t *testing.T) {
	m := Model{Name: "test", ReadLatency: 2 * time.Millisecond, ReadBandwidth: 1e12, WriteBandwidth: 1e12}
	d := New(m, 1.0)
	const n = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Access(false, uint64(i), 0, 0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < n*2*time.Millisecond*8/10 {
		t.Fatalf("8 concurrent 2ms accesses finished in %v; device did not serialize", elapsed)
	}
	if qw := d.Stats().QueueWait; qw == 0 {
		t.Fatal("expected queue wait under contention")
	}
}

func TestSequentialDetection(t *testing.T) {
	m := Model{Name: "test", ReadLatency: 10 * time.Millisecond, SeqLatency: 0,
		ReadBandwidth: 1e12, WriteBandwidth: 1e12}
	d := New(m, 1.0)
	d.Access(false, 7, 0, 100) // random: pays 10ms
	start := time.Now()
	d.Access(false, 7, 100, 100) // sequential continuation: ~free
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("sequential access took %v", el)
	}
	start = time.Now()
	d.Access(false, 7, 500, 100) // gap: random again
	if el := time.Since(start); el < 8*time.Millisecond {
		t.Fatalf("non-contiguous access took only %v", el)
	}
}

func TestInterleavedReadWriteBreaksSequentiality(t *testing.T) {
	m := Model{Name: "test", ReadLatency: 5 * time.Millisecond, WriteLatency: 5 * time.Millisecond,
		SeqLatency: 0, ReadBandwidth: 1e12, WriteBandwidth: 1e12}
	d := New(m, 1.0)
	d.Access(false, 1, 0, 100)
	start := time.Now()
	d.Access(true, 1, 100, 100) // direction change: full latency, like a disk-arm seek
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("read→write switch took only %v; should pay full latency", el)
	}
}

func TestNegativeScaleClamped(t *testing.T) {
	d := New(HDD(), -5)
	start := time.Now()
	d.Access(false, 1, 0, 1<<20)
	if time.Since(start) > 2*time.Millisecond {
		t.Fatal("negative scale should disable sleeping")
	}
}
