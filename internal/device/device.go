// Package device models storage devices (HDD, SSD) with enough fidelity to
// reproduce the paper's experimental regimes.
//
// The paper's results hinge on where time goes: on HDDs, Step 1 READ plus
// Step 7 WRITE take >60% of compaction time (I/O-bound); on SSDs the
// computation steps take >60% (CPU-bound), and SSD writes are slower than
// reads because of write-after-erase. The experiments also depend on two
// second-order effects: HDD seeks when read and write streams interleave,
// and SSD bandwidth that ramps with I/O size (internal parallelism).
//
// A Device charges simulated service time for each access by sleeping while
// holding the device lock, so concurrent requests queue exactly as they
// would on one spindle/controller. Accesses from different goroutines to
// different Devices proceed in parallel — which is precisely what S-PPCP
// exploits.
package device

import (
	"fmt"
	"sync"
	"time"
)

// Model holds the performance parameters of a device class.
type Model struct {
	// Name identifies the model in logs and experiment output.
	Name string
	// ReadLatency is the fixed per-request cost of a non-sequential read
	// (HDD: seek + rotation; SSD: command overhead).
	ReadLatency time.Duration
	// WriteLatency is the fixed per-request cost of a non-sequential write.
	WriteLatency time.Duration
	// SeqLatency is the fixed cost of a request that continues the previous
	// request's stream (same file, same direction, contiguous offset).
	SeqLatency time.Duration
	// ReadBandwidth and WriteBandwidth are sustained transfer rates in
	// bytes per second at saturating I/O sizes.
	ReadBandwidth  float64
	WriteBandwidth float64
	// SaturationIOSize, when positive, models SSD internal parallelism:
	// requests smaller than this reach only a proportional fraction of the
	// sustained bandwidth (floored at MinBandwidthFraction).
	SaturationIOSize int
	// MinBandwidthFraction floors the small-I/O bandwidth ramp (default 1/8).
	MinBandwidthFraction float64
}

// HDD returns parameters for a 7200RPM SATA disk like the paper's testbed.
// Positioning costs a few milliseconds (compaction reads seek between the
// two or three input files, which sit near each other, so the average is
// below a full-stroke seek); writes complete into the drive's write buffer
// (low effective latency), matching the paper's observation that step
// write is cheaper than step read on HDD. Calibrated so that compactions
// of snappy-compressed 4KiB blocks land in the paper's Figure 5(a) regime:
// read > 40%, read+write > 60% (I/O-bound).
func HDD() Model {
	return Model{
		Name:           "hdd",
		ReadLatency:    1500 * time.Microsecond,
		WriteLatency:   300 * time.Microsecond,
		SeqLatency:     50 * time.Microsecond,
		ReadBandwidth:  120e6,
		WriteBandwidth: 140e6,
	}
}

// SSD returns parameters for a SATA-era flash SSD like the Intel X25-M:
// microsecond access, reads faster than writes (write-after-erase), and
// bandwidth that ramps with I/O size as the internal channels fill.
// Calibrated to the paper's Figure 5(b) regime: computation > 60% of
// compaction time (CPU-bound) and step write slower than step read.
func SSD() Model {
	return Model{
		Name:                 "ssd",
		ReadLatency:          80 * time.Microsecond,
		WriteLatency:         150 * time.Microsecond,
		SeqLatency:           20 * time.Microsecond,
		ReadBandwidth:        500e6,
		WriteBandwidth:       140e6,
		SaturationIOSize:     256 << 10,
		MinBandwidthFraction: 0.25,
	}
}

// NVMe returns parameters for a modern NVMe drive — far faster than the
// paper's hardware; with it the pipeline is deeply CPU-bound, a useful
// extension experiment.
func NVMe() Model {
	return Model{
		Name:                 "nvme",
		ReadLatency:          15 * time.Microsecond,
		WriteLatency:         25 * time.Microsecond,
		SeqLatency:           5 * time.Microsecond,
		ReadBandwidth:        3000e6,
		WriteBandwidth:       2000e6,
		SaturationIOSize:     1 << 20,
		MinBandwidthFraction: 0.25,
	}
}

// Null returns a model that charges no time at all (for pure-CPU tests).
func Null() Model { return Model{Name: "null", ReadBandwidth: 1, WriteBandwidth: 1} }

// ByName returns a preset model.
func ByName(name string) (Model, error) {
	switch name {
	case "hdd":
		return HDD(), nil
	case "ssd":
		return SSD(), nil
	case "nvme":
		return NVMe(), nil
	case "null":
		return Null(), nil
	default:
		return Model{}, fmt.Errorf("device: unknown model %q", name)
	}
}

// serviceTime computes the unscaled duration of one access.
func (m Model) serviceTime(write, sequential bool, n int) time.Duration {
	if m.Name == "null" {
		return 0
	}
	lat := m.ReadLatency
	bw := m.ReadBandwidth
	if write {
		lat = m.WriteLatency
		bw = m.WriteBandwidth
	}
	if sequential {
		lat = m.SeqLatency
	}
	if m.SaturationIOSize > 0 && n < m.SaturationIOSize {
		frac := float64(n) / float64(m.SaturationIOSize)
		minFrac := m.MinBandwidthFraction
		if minFrac <= 0 {
			minFrac = 0.125
		}
		if frac < minFrac {
			frac = minFrac
		}
		bw *= frac
	}
	if bw <= 0 {
		bw = 1
	}
	transfer := time.Duration(float64(n) / bw * float64(time.Second))
	return lat + transfer
}

// Stats aggregates a device's activity.
type Stats struct {
	Reads      int64
	Writes     int64
	ReadBytes  int64
	WriteBytes int64
	// BusyRead/BusyWrite are the (scaled) durations the device spent
	// servicing requests; Busy is their sum. With the device lock held for
	// the whole service time, Busy/elapsed is the device utilization.
	BusyRead  time.Duration
	BusyWrite time.Duration
	// QueueWait is the total time requests waited for the device lock —
	// contention between, e.g., the read and write stages sharing one disk.
	QueueWait time.Duration
}

// Busy returns the total busy time.
func (s Stats) Busy() time.Duration { return s.BusyRead + s.BusyWrite }

// Device is a single simulated device instance.
type Device struct {
	model Model
	scale float64 // multiplies all charged durations; 0 disables sleeping

	mu        sync.Mutex
	lastFile  uint64
	lastEnd   int64
	lastWrite bool
	haveLast  bool
	// credit banks sleep overshoot. OS sleeps overshoot their target by up
	// to ~1ms, far more than a small request's service time; each access
	// therefore sleeps (serviceTime − credit) and banks whatever the OS
	// oversleeps. Long-run charged time equals modeled time, and each
	// access pays (almost all of) its own cost, keeping per-step
	// attribution accurate.
	credit time.Duration
	stats  Stats
}

// New returns a Device with the given model. scale multiplies every charged
// duration: 1.0 is real-time fidelity, smaller values run experiments
// proportionally faster, and 0 disables time charging entirely (for fast
// functional tests; byte/op counters still accumulate).
func New(m Model, scale float64) *Device {
	if scale < 0 {
		scale = 0
	}
	return &Device{model: m, scale: scale}
}

// Model returns the device's model parameters.
func (d *Device) Model() Model { return d.model }

// Access charges one request against the device and blocks for its scaled
// service time. file identifies the stream (any stable per-file value);
// off/n give the byte range.
func (d *Device) Access(write bool, file uint64, off int64, n int) {
	start := time.Now()
	d.mu.Lock()
	wait := time.Since(start)

	seq := d.haveLast && d.lastFile == file && d.lastWrite == write && d.lastEnd == off
	dur := d.model.serviceTime(write, seq, n)
	scaled := time.Duration(float64(dur) * d.scale)
	if scaled > 0 {
		if d.credit >= scaled {
			d.credit -= scaled
		} else {
			target := scaled - d.credit
			t0 := time.Now()
			time.Sleep(target)
			d.credit = time.Since(t0) - target
		}
	}

	d.lastFile, d.lastEnd, d.lastWrite, d.haveLast = file, off+int64(n), write, true
	d.stats.QueueWait += wait
	if write {
		d.stats.Writes++
		d.stats.WriteBytes += int64(n)
		d.stats.BusyWrite += scaled
	} else {
		d.stats.Reads++
		d.stats.ReadBytes += int64(n)
		d.stats.BusyRead += scaled
	}
	d.mu.Unlock()
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (between experiment phases).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.haveLast = false
	d.credit = 0
}
