package cache

import (
	"bytes"
	"sort"
	"sync"
)

// Heat tracks read-path access frequency over block key spans. Each data
// block the read path loads contributes one sample — its last key — so the
// map approximates "which key ranges are hot" at block granularity while
// staying independent of table file numbers: when a compaction rewrites hot
// data into new files, the samples still describe the key space and can be
// matched against the output blocks' key ranges.
//
// Counts decay by halving every decayInterval touches per shard, so the map
// tracks the current working set rather than all history, and stale samples
// (key ranges that went cold or were deleted) fade out and are pruned.
// Memory is bounded by maxSamples per shard. Safe for concurrent use.
type Heat struct {
	shards [numShards]heatShard
}

type heatShard struct {
	mu     sync.Mutex
	counts map[string]uint32
	ops    int
}

const (
	// decayInterval is the per-shard touch count between halvings.
	decayInterval = 4096
	// maxSamples bounds each shard's sample map; beyond it, decay runs
	// early and (if still full) pseudo-random samples are dropped.
	maxSamples = 4096
)

// NewHeat returns an empty heat map.
func NewHeat() *Heat {
	h := &Heat{}
	for i := range h.shards {
		h.shards[i].counts = map[string]uint32{}
	}
	return h
}

// Touch records one access to the block whose span ends at key. The caller
// chooses the key form (the LSM layer passes user keys) and must use the
// same form when querying the snapshot.
func (h *Heat) Touch(key []byte) {
	s := &h.shards[hashBytes(key)%numShards]
	s.mu.Lock()
	s.counts[string(key)]++
	s.ops++
	if s.ops >= decayInterval || len(s.counts) > maxSamples {
		s.decayLocked()
	}
	s.mu.Unlock()
}

// decayLocked halves every count, prunes zeros, and enforces maxSamples.
func (s *heatShard) decayLocked() {
	s.ops = 0
	for k, c := range s.counts {
		c /= 2
		if c == 0 {
			delete(s.counts, k)
		} else {
			s.counts[k] = c
		}
	}
	// Still over budget (every sample hot): drop pseudo-random samples.
	// Losing a few hot samples only costs a missed pre-warm, never
	// correctness.
	for k := range s.counts {
		if len(s.counts) <= maxSamples {
			break
		}
		delete(s.counts, k)
	}
}

// Len returns the current number of samples (for tests and gauges).
func (h *Heat) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		n += len(s.counts)
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns the sorted set of up to limit sample keys whose count is
// at least minCount, hottest first when truncating — the "hot set" a
// compaction consults when deciding which output blocks to pre-warm. The
// limit is the admission guard: sized to a fraction of the block cache, it
// keeps a compaction from warming the long tail of mildly-touched ranges
// and flushing the true working set. limit <= 0 means unlimited. The
// snapshot is immutable and safe to query while touches continue.
func (h *Heat) Snapshot(minCount uint32, limit int) *HotSet {
	type sample struct {
		key   []byte
		count uint32
	}
	var all []sample
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for k, c := range s.counts {
			if c >= minCount {
				all = append(all, sample{[]byte(k), c})
			}
		}
		s.mu.Unlock()
	}
	if limit > 0 && len(all) > limit {
		sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
		all = all[:limit]
	}
	hs := &HotSet{keys: make([][]byte, len(all))}
	for i, s := range all {
		hs.keys[i] = s.key
	}
	sort.Slice(hs.keys, func(i, j int) bool {
		return bytes.Compare(hs.keys[i], hs.keys[j]) < 0
	})
	return hs
}

// HotSet is an immutable sorted snapshot of hot sample keys.
type HotSet struct {
	keys [][]byte
}

// Len returns the number of hot samples.
func (hs *HotSet) Len() int { return len(hs.keys) }

// AnyInRange reports whether some hot sample falls inside [first, last]
// (inclusive, bytewise order — the LSM layer passes user keys).
func (hs *HotSet) AnyInRange(first, last []byte) bool {
	idx := sort.Search(len(hs.keys), func(i int) bool {
		return bytes.Compare(hs.keys[i], first) >= 0
	})
	return idx < len(hs.keys) && bytes.Compare(hs.keys[idx], last) <= 0
}

// hashBytes is FNV-1a, inlined to keep Touch allocation-free.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
