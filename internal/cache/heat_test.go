package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHeatHotSetRange(t *testing.T) {
	h := NewHeat()
	for i := 0; i < 5; i++ {
		h.Touch([]byte("key050")) // hot
	}
	h.Touch([]byte("key200")) // touched once: below threshold 2

	hs := h.Snapshot(2, 0)
	if hs.Len() != 1 {
		t.Fatalf("hot set has %d samples, want 1", hs.Len())
	}
	cases := []struct {
		first, last string
		want        bool
	}{
		{"key000", "key100", true},  // spans the hot sample
		{"key050", "key050", true},  // exact bounds
		{"key051", "key300", false}, // starts past it (key200 is cold)
		{"key000", "key049", false}, // ends before it
	}
	for _, c := range cases {
		if got := hs.AnyInRange([]byte(c.first), []byte(c.last)); got != c.want {
			t.Errorf("AnyInRange(%q, %q) = %v, want %v", c.first, c.last, got, c.want)
		}
	}
}

func TestHeatSnapshotLimitKeepsHottest(t *testing.T) {
	h := NewHeat()
	touch := func(key string, n int) {
		for i := 0; i < n; i++ {
			h.Touch([]byte(key))
		}
	}
	touch("key300", 10)
	touch("key100", 6)
	touch("key200", 3)

	hs := h.Snapshot(2, 2)
	if hs.Len() != 2 {
		t.Fatalf("hot set has %d samples, want 2", hs.Len())
	}
	// The two hottest survive the cap and stay queryable in key order.
	if !hs.AnyInRange([]byte("key100"), []byte("key100")) ||
		!hs.AnyInRange([]byte("key300"), []byte("key300")) {
		t.Fatal("a top-2 sample missing from the capped hot set")
	}
	if hs.AnyInRange([]byte("key200"), []byte("key200")) {
		t.Fatal("coldest sample survived a limit-2 snapshot")
	}
}

func TestHeatDecayFadesStaleSamples(t *testing.T) {
	h := NewHeat()
	for i := 0; i < 8; i++ {
		h.Touch([]byte("hot"))
	}
	h.Touch([]byte("stale"))
	s := &h.shards[hashBytes([]byte("stale"))%numShards]
	s.mu.Lock()
	s.decayLocked() // stale: 1 → pruned; hot (if same shard): 8 → 4
	_, alive := s.counts["stale"]
	s.mu.Unlock()
	if alive {
		t.Fatal("count-1 sample survived a decay")
	}
	hs := h.Snapshot(2, 0)
	if !hs.AnyInRange([]byte("hot"), []byte("hot")) {
		t.Fatal("repeatedly-touched sample fell out of the hot set after one decay")
	}
}

func TestHeatBoundedSamples(t *testing.T) {
	h := NewHeat()
	for i := 0; i < 40*maxSamples; i++ {
		h.Touch([]byte(fmt.Sprintf("key%08d", i)))
	}
	if n := h.Len(); n > numShards*maxSamples {
		t.Fatalf("heat map grew to %d samples (cap %d)", n, numShards*maxSamples)
	}
}

func TestHeatConcurrent(t *testing.T) {
	h := NewHeat()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Touch([]byte(fmt.Sprintf("key%06d", (seed*31+i)%997)))
				if i%100 == 0 {
					h.Snapshot(2, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Snapshot(1, 0).Len() == 0 {
		t.Fatal("no samples after concurrent touches")
	}
}
