package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	k := Key{ID: 1, Offset: 0}
	if c.Get(k) != nil {
		t.Fatal("empty cache hit")
	}
	c.Put(k, []byte("block-contents"))
	if got := c.Get(k); string(got) != "block-contents" {
		t.Fatalf("Get = %q", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if c.Len() != 1 || c.Size() != int64(len("block-contents")) {
		t.Fatalf("Len=%d Size=%d", c.Len(), c.Size())
	}
}

func TestReplaceSameKey(t *testing.T) {
	c := New(1 << 20)
	k := Key{ID: 1, Offset: 8}
	c.Put(k, []byte("aaaa"))
	c.Put(k, []byte("bb"))
	if got := c.Get(k); string(got) != "bb" {
		t.Fatalf("Get = %q", got)
	}
	if c.Len() != 1 || c.Size() != 2 {
		t.Fatalf("Len=%d Size=%d after replace", c.Len(), c.Size())
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := newWithShardCap(1024) // 1 KiB per shard
	val := make([]byte, 256)
	for i := 0; i < 1000; i++ {
		c.Put(Key{ID: 1, Offset: int64(i * 16)}, val)
	}
	if sz := c.Size(); sz > 16*1024 {
		t.Fatalf("size %d exceeds capacity", sz)
	}
	if c.Len() == 0 {
		t.Fatal("cache evicted everything")
	}
}

func TestLRUOrder(t *testing.T) {
	// Single-shard behavior: use keys that map to one shard by capacity
	// accounting — easiest to verify through global properties instead:
	// recently-touched keys survive, untouched ones are evicted first.
	c := newWithShardCap(1024) // 1 KiB per shard
	val := make([]byte, 300)   // 3 fit per shard

	// Fill one logical stream of keys.
	keys := make([]Key, 12)
	for i := range keys {
		keys[i] = Key{ID: 7, Offset: int64(i * 4096)}
		c.Put(keys[i], val)
	}
	// Touch the most recent insertions' predecessors won't survive;
	// instead verify: any key that Get returns non-nil stays retrievable
	// after touching it repeatedly while inserting new ones into other IDs.
	var live []Key
	for _, k := range keys {
		if c.Get(k) != nil {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		t.Fatal("nothing survived initial fill")
	}
	pinned := live[0]
	for i := 0; i < 100; i++ {
		c.Get(pinned) // keep hot
		c.Put(Key{ID: 9, Offset: int64(i * 4096)}, val)
	}
	if c.Get(pinned) == nil {
		t.Fatal("hot entry evicted while cold entries churned")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := newWithShardCap(100) // 100 B per shard
	c.Put(Key{ID: 1}, make([]byte, 200))
	if c.Len() != 0 {
		t.Fatal("oversized value cached")
	}
}

func TestEvictID(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 50; i++ {
		c.Put(Key{ID: 1, Offset: int64(i)}, []byte("a"))
		c.Put(Key{ID: 2, Offset: int64(i)}, []byte("b"))
	}
	c.EvictID(1)
	for i := 0; i < 50; i++ {
		if c.Get(Key{ID: 1, Offset: int64(i)}) != nil {
			t.Fatal("evicted table still cached")
		}
	}
	found := 0
	for i := 0; i < 50; i++ {
		if c.Get(Key{ID: 2, Offset: int64(i)}) != nil {
			found++
		}
	}
	if found == 0 {
		t.Fatal("EvictID removed other tables' blocks")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	c.Put(Key{ID: 1}, []byte("x"))
	if c.Get(Key{ID: 1}) != nil {
		t.Fatal("zero-capacity cache stored data")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, 128)
			for i := 0; i < 5000; i++ {
				k := Key{ID: uint64(rng.Intn(4)), Offset: int64(rng.Intn(100) * 4096)}
				if rng.Intn(2) == 0 {
					c.Put(k, val)
				} else {
					c.Get(k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if c.Size() < 0 {
		t.Fatal("negative size")
	}
}

// TestTinyCapacityClamped: a positive capacity too small to hold a block
// per shard is clamped instead of silently caching nothing (the old
// integer-division bug: BlockCacheBytes below 16 bytes/shard cached zero
// blocks while counting misses forever).
func TestTinyCapacityClamped(t *testing.T) {
	c := New(100) // 6 bytes/shard before clamping
	if got := c.Capacity(); got != numShards*MinShardBytes {
		t.Fatalf("Capacity() = %d, want %d", got, numShards*MinShardBytes)
	}
	c.Put(Key{ID: 1}, make([]byte, 4096))
	if c.Get(Key{ID: 1}) == nil {
		t.Fatal("clamped cache still refuses a 4 KiB block")
	}
}

func TestEvictionCounters(t *testing.T) {
	c := newWithShardCap(1024)
	val := make([]byte, 512)
	for i := 0; i < 100; i++ {
		c.Put(Key{ID: 1, Offset: int64(i * 4096)}, val)
	}
	if c.Evictions() == 0 {
		t.Fatal("capacity churn recorded no evictions")
	}
	before := c.Evictions()
	kept := c.Len()
	c.EvictID(1)
	if c.Len() != 0 {
		t.Fatal("EvictID left blocks behind")
	}
	if got := c.Evictions() - before; got != int64(kept) {
		t.Fatalf("EvictID counted %d evictions, want %d", got, kept)
	}
}

func TestPutWarmCounted(t *testing.T) {
	c := New(1 << 20)
	c.PutWarm(Key{ID: 3, Offset: 0}, []byte("hot-block"))
	if c.Prewarmed() != 1 {
		t.Fatalf("Prewarmed() = %d, want 1", c.Prewarmed())
	}
	if got := c.Get(Key{ID: 3, Offset: 0}); string(got) != "hot-block" {
		t.Fatalf("Get after PutWarm = %q", got)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(64 << 20)
	val := make([]byte, 4096)
	keys := make([]Key, 1000)
	for i := range keys {
		keys[i] = Key{ID: uint64(i % 8), Offset: int64(i * 4096)}
		c.Put(keys[i], val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Get(keys[i%len(keys)]) == nil {
			b.Fatal(fmt.Sprintf("miss at %d", i))
		}
	}
}
