// Package cache provides the sharded LRU block cache that point reads use
// to avoid re-reading and re-decompressing hot data blocks (LevelDB's
// block cache). Compaction reads deliberately bypass it: they stream each
// block exactly once, and letting them in would evict the read path's
// working set.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies a cached block: the owning table's number and the block's
// file offset (unique and stable because tables are immutable).
type Key struct {
	ID     uint64
	Offset int64
}

// Cache is a byte-capacity-bounded sharded LRU. Safe for concurrent use.
type Cache struct {
	shards    [numShards]shard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	prewarmed atomic.Int64
}

const numShards = 16

// MinShardBytes is the floor each shard's capacity is clamped to: a
// configured capacity small enough to hold no blocks (capacity/numShards
// rounding to a few bytes) would silently cache nothing, so any positive
// capacity guarantees at least a few blocks per shard.
const MinShardBytes = 64 << 10

type shard struct {
	mu   sync.Mutex
	m    map[Key]*list.Element
	lru  list.List // front = most recent
	size int64
	cap  int64
}

type entry struct {
	key Key
	val []byte
}

// New returns a cache holding up to capacity bytes of block data
// (capacity/numShards per shard). Any positive capacity is clamped to at
// least MinShardBytes per shard, so a small configured capacity yields a
// cache that actually holds blocks instead of silently caching nothing;
// the effective total is Capacity(). A capacity <= 0 caches nothing.
func New(capacity int64) *Cache {
	per := capacity / numShards
	if capacity > 0 && per < MinShardBytes {
		per = MinShardBytes
	}
	return newWithShardCap(per)
}

// newWithShardCap builds a cache with an exact per-shard byte capacity
// (no clamping; tests use it to exercise eviction with tiny shards).
func newWithShardCap(per int64) *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = map[Key]*list.Element{}
		c.shards[i].cap = per
		c.shards[i].lru.Init()
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	// Mix table id and offset; offsets are block-aligned so shift them.
	h := k.ID*0x9e3779b97f4a7c15 ^ uint64(k.Offset)>>4*0xc2b2ae3d27d4eb4f
	return &c.shards[h%numShards]
}

// Get returns the cached block for k, or nil. The returned slice is shared:
// callers must not modify it.
func (c *Cache) Get(k Key) []byte {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry).val
	}
	c.misses.Add(1)
	return nil
}

// Put inserts a block, evicting least-recently-used entries to stay under
// capacity. Values larger than a shard's capacity are not cached. The
// cache takes ownership of val; callers must not modify it afterwards.
func (c *Cache) Put(k Key, val []byte) {
	s := c.shard(k)
	n := int64(len(val))
	if n > s.cap {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		// Replace in place (same immutable block content in practice).
		s.size += n - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		s.lru.MoveToFront(el)
	} else {
		s.m[k] = s.lru.PushFront(&entry{key: k, val: val})
		s.size += n
	}
	for s.size > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.m, e.key)
		s.size -= int64(len(e.val))
		c.evictions.Add(1)
	}
}

// PutWarm inserts a pre-warmed block: a compaction output block whose key
// range was hot among the inputs, cached under the new table's identity
// before the table becomes readable, so hot data never goes cold across the
// compaction. Identical to Put except that the insertion is counted in the
// pre-warm gauge. The admission policy (only hot ranges, bounded total
// bytes per compaction) is enforced by the caller.
func (c *Cache) PutWarm(k Key, val []byte) {
	c.prewarmed.Add(1)
	c.Put(k, val)
}

// EvictID drops every block belonging to table id (called when a table is
// deleted after compaction).
func (c *Cache) EvictID(id uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.m {
			if k.ID == id {
				s.size -= int64(len(el.Value.(*entry).val))
				s.lru.Remove(el)
				delete(s.m, k)
				c.evictions.Add(1)
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the cumulative count of entries dropped — by capacity
// pressure in Put or by EvictID when a table is deleted.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Prewarmed returns the cumulative count of blocks inserted via PutWarm.
func (c *Cache) Prewarmed() int64 { return c.prewarmed.Load() }

// Capacity returns the effective total byte capacity (after per-shard
// clamping).
func (c *Cache) Capacity() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].cap
	}
	return total
}

// Size returns the current cached byte volume.
func (c *Cache) Size() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.size
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
