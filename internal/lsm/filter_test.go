package lsm

import (
	"errors"
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// TestBloomFiltersSkipTables: misses against flushed and compacted tables
// are mostly answered by filters, without changing any result.
func TestBloomFiltersSkipTables(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	ref := loadKeys(t, db, 3000, 55, 80)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	// All present keys still found (no false negatives end to end).
	verifyAll(t, db, ref)

	before := db.Stats().FilterSkips
	const misses = 2000
	for i := 0; i < misses; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("user%08dx", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing key returned %v", err)
		}
	}
	skips := db.Stats().FilterSkips - before
	if skips == 0 {
		t.Fatal("no filter skips recorded for in-range misses against table data")
	}
	t.Logf("filters answered %d probes across %d misses", skips, misses)
}

// TestBloomDisabled: negative BloomBitsPerKey writes no filters and
// records no skips.
func TestBloomDisabled(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.BloomBitsPerKey = -1
	db := mustOpen(t, opts)
	defer db.Close()
	ref := loadKeys(t, db, 1500, 56, 80)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, ref)
	for i := 0; i < 500; i++ {
		db.Get([]byte(fmt.Sprintf("user%08dx", i)))
	}
	if got := db.Stats().FilterSkips; got != 0 {
		t.Fatalf("FilterSkips = %d with filters disabled", got)
	}
}

// TestBloomAcrossReopen: filters work on tables opened after recovery.
func TestBloomAcrossReopen(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	db := mustOpen(t, opts)
	ref := loadKeys(t, db, 2000, 57, 80)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	verifyAll(t, db2, ref)
	for i := 0; i < 1000; i++ {
		db2.Get([]byte(fmt.Sprintf("user%08dx", i)))
	}
	if db2.Stats().FilterSkips == 0 {
		t.Fatal("filters inactive after reopen")
	}
}
