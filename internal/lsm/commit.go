package lsm

import (
	"encoding/binary"
	"fmt"

	"pcplsm/internal/ikey"
	"pcplsm/internal/memtable"
)

// Group-commit write pipeline.
//
// Concurrent writers enqueue their batches in a FIFO; the writer at the
// front is the leader. The leader makes room (possibly stalling for
// background work), merges the queue — itself first — up to
// Options.WriteGroupMaxCount/MaxBytes into ONE WAL record, appends it (one
// fsync for the whole group when SyncWAL is on), applies every entry to the
// memtable, and only then allocates the group's sequence numbers and
// publishes them as the visible-sequence watermark. Followers sleep the
// whole time and wake with the leader's verdict, so one commit's device
// time is amortized over the group and a writer stalled in
// makeRoomForWrite no longer serializes everyone behind it one-at-a-time.
//
// Locking. Three locks with a strict order commitMu → db.mu (writeMu is a
// leaf, never held across either):
//
//   - writeMu guards only the writer queue.
//   - commitMu serializes commit groups with each other and with every
//     other WAL mutation (rotation in Flush/makeRoomForWrite, Close). The
//     leader holds it across WAL I/O and the memtable apply — both happen
//     OUTSIDE db.mu, so reads (which need only the memtable pointers, the
//     current version and the visible watermark) never wait on commit I/O.
//   - db.mu covers the shared DB state as before; the commit path takes it
//     only for the brief makeRoomForWrite / publish sections.
//
// Visibility. Entries inserted by an in-flight group carry sequences above
// the published watermark, and every read path (Get, snapshots, iterators)
// clamps its view to db.visibleSeq — so a half-applied group is invisible
// exactly the way entries above a snapshot's sequence are. The watermark
// moves only after the whole group is in the memtable.
//
// Durability and sequence allocation. The leader reads the next sequence
// but does not advance db.seq until wal.Append (and Sync, when configured)
// succeeds. On failure nothing was allocated — recovery replays the WAL to
// the exact pre-group state with no sequence gap — and the DB is poisoned
// (bgErr): after a failed append the wal.Writer's block alignment no longer
// matches the file, so appending more records could make an otherwise-clean
// tail unrecoverable.
//
// Recovery equivalence. A merged record is byte-identical to the record of
// one batch holding the group's entries in queue order, so replay assigns
// base+i to the i-th entry — the same sequences the writers were
// acknowledged with individually.

// commitWriter is one queued Write call.
type commitWriter struct {
	batch *Batch
	err   error
	done  bool          // set before ready is signaled when a leader finished this write
	ready chan struct{} // buffered(1): signaled on completion or promotion to leader
}

// Write commits a batch atomically.
func (db *DB) Write(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if db.opts.DisableGroupCommit {
		return db.writeSerial(b)
	}
	w := &commitWriter{batch: b, ready: make(chan struct{}, 1)}
	db.writeMu.Lock()
	db.writers = append(db.writers, w)
	leader := len(db.writers) == 1
	db.writeMu.Unlock()
	if !leader {
		<-w.ready
		if w.done {
			// A leader committed (or failed) this batch on our behalf.
			return w.err
		}
		// Promoted: the previous leader finished and we are now at the
		// front with our batch still pending.
	}
	return db.commitAsLeader(w)
}

// commitAsLeader runs the group-commit protocol with leader at the front of
// the queue. It always finishes its group (signalling followers and
// promoting the next leader) before returning.
func (db *DB) commitAsLeader(leader *commitWriter) error {
	db.commitMu.Lock()

	db.mu.Lock()
	var err error
	switch {
	case db.closed:
		err = ErrClosed
	case db.bgErr != nil:
		err = db.bgErr
	default:
		err = db.makeRoomForWrite()
	}
	mem, w, base := db.mem, db.wal, db.seq+1
	db.mu.Unlock()
	if err != nil {
		// The group was never formed: fail the leader alone and let each
		// follower observe the state itself when promoted.
		db.commitMu.Unlock()
		db.finishGroup([]*commitWriter{leader}, err)
		return err
	}

	group := db.buildGroup(leader)

	// One record for the whole group, built in a reused scratch buffer
	// pre-sized from the summed batch lengths.
	count := 0
	need := 2 * binary.MaxVarintLen64
	for _, gw := range group {
		count += gw.batch.Len()
		need += gw.batch.entriesSize()
	}
	if cap(db.commitBuf) < need {
		db.commitBuf = make([]byte, 0, need)
	}
	buf := binary.AppendUvarint(db.commitBuf[:0], base)
	buf = binary.AppendUvarint(buf, uint64(count))
	for _, gw := range group {
		buf = gw.batch.appendEntries(buf)
	}
	db.commitBuf = buf

	err = w.Append(buf)
	synced := false
	if err == nil && db.opts.SyncWAL {
		err = w.Sync()
		synced = err == nil
	}
	if err != nil {
		err = fmt.Errorf("lsm: group commit (%d writers): %w", len(group), err)
		db.poisonCommits(err)
		db.commitMu.Unlock()
		db.finishGroup(group, err)
		return err
	}

	// Apply to the memtable. Only the leader applies (rotation is excluded
	// by commitMu), preserving the per-shard single-writer contract even
	// when Apply fans the group out to parallel shard goroutines; concurrent
	// readers cannot see these entries yet because their sequences are above
	// the visible watermark, which moves only after every shard has landed.
	var puts, dels int64
	ops := db.applyOps[:0]
	seq := base
	for _, gw := range group {
		for _, e := range gw.batch.entries {
			ops = append(ops, memtable.Op{Seq: seq, Kind: e.kind, Key: e.key, Val: e.val})
			if e.kind == ikey.KindDelete {
				dels++
			} else {
				puts++
			}
			seq++
		}
	}
	db.applyOps = ops
	shards, parallel := mem.Apply(ops)

	// Publish: allocate the sequences and move the watermark. db.seq stays
	// mu-guarded (recovery checkpoints read it); the watermark is the
	// lock-free view reads use.
	db.mu.Lock()
	db.seq = seq - 1
	db.mu.Unlock()
	db.visibleSeq.Store(seq - 1)
	db.commitMu.Unlock()

	db.stats.addPutsDeletes(puts, dels)
	db.stats.addCommit(int64(len(group)), synced)
	db.stats.addApply(int64(shards), parallel)
	db.finishGroup(group, nil)
	return nil
}

// buildGroup merges the queue prefix — leader first — up to the group caps.
// A group always contains at least the leader.
func (db *DB) buildGroup(leader *commitWriter) []*commitWriter {
	maxCount := db.opts.WriteGroupMaxCount
	maxBytes := db.opts.WriteGroupMaxBytes
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	group := make([]*commitWriter, 1, min(len(db.writers), maxCount))
	group[0] = leader
	bytes := leader.batch.size
	for _, w := range db.writers[1:] {
		if len(group) >= maxCount || bytes+w.batch.size > maxBytes {
			break
		}
		group = append(group, w)
		bytes += w.batch.size
	}
	return group
}

// finishGroup pops the group (always the queue prefix) from the writer
// queue, delivers the verdict to every follower in it, and promotes the new
// front — if any — to leader. The leader itself is the caller and takes its
// error from the return path.
func (db *DB) finishGroup(group []*commitWriter, err error) {
	db.writeMu.Lock()
	n := copy(db.writers, db.writers[len(group):])
	for i := n; i < len(db.writers); i++ {
		db.writers[i] = nil // release popped writers to the GC
	}
	db.writers = db.writers[:n]
	var next *commitWriter
	if len(db.writers) > 0 {
		next = db.writers[0]
	}
	db.writeMu.Unlock()
	for _, gw := range group[1:] {
		gw.err = err
		gw.done = true
		gw.ready <- struct{}{}
	}
	if next != nil {
		next.ready <- struct{}{}
	}
}

// poisonCommits records a commit-path WAL failure as the sticky background
// error and wakes any stalled writers so they observe it. WAL-append
// failures are always permanent: after a failed append the wal.Writer's
// block alignment no longer matches the file, so retrying could make an
// otherwise-clean tail unrecoverable.
func (db *DB) poisonCommits(err error) {
	db.setBgErr(&backgroundError{cause: err})
}

// writeSerial is the DisableGroupCommit fallback: the original LevelDB-style
// commit that holds db.mu across WAL append, optional fsync and memtable
// insert. It produces bit-for-bit the same WAL as the pre-pipeline code;
// only the error path differs (sequences are allocated after a successful
// append, so a failed append leaves no gap).
func (db *DB) writeSerial(b *Batch) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}
	base := db.seq + 1
	db.commitBuf = b.encodeTo(db.commitBuf[:0], base)
	if err := db.wal.Append(db.commitBuf); err != nil {
		err = fmt.Errorf("lsm: appending to WAL: %w", err)
		// Same poisoning rule as the group path.
		db.setBgErrLocked(&backgroundError{cause: err})
		return err
	}
	synced := false
	if db.opts.SyncWAL {
		if err := db.wal.Sync(); err != nil {
			db.setBgErrLocked(&backgroundError{cause: err})
			return err
		}
		synced = true
	}
	var puts, dels int64
	ops := db.applyOps[:0]
	for i, e := range b.entries {
		ops = append(ops, memtable.Op{Seq: base + uint64(i), Kind: e.kind, Key: e.key, Val: e.val})
		if e.kind == ikey.KindDelete {
			dels++
		} else {
			puts++
		}
	}
	db.applyOps = ops
	shards, parallel := db.mem.Apply(ops)
	db.seq = base + uint64(b.Len()) - 1
	db.visibleSeq.Store(db.seq)
	db.stats.addPutsDeletes(puts, dels)
	db.stats.addCommit(1, synced)
	db.stats.addApply(int64(shards), parallel)
	return nil
}
