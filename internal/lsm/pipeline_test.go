package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"pcplsm/internal/core"
	"pcplsm/internal/metrics"
	"pcplsm/internal/storage"
)

// pipelineWorkload writes a deterministic key/value sequence with explicit
// flush points, then drains L0 and L1 through manual compactions. Returns
// every on-disk table's bytes tagged by level, sorted by (level, smallest
// key) — table *numbering* may permute under parallel pipeline writers,
// table *contents* and boundaries may not.
func pipelineWorkload(t *testing.T, opts Options) []levelTable {
	t.Helper()
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("key%05d", (batch*7+i*13)%2500)
			if batch > 0 && i%23 == 0 {
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			v := fmt.Sprintf("value-%02d-%04d", batch, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	if len(db.Version().Levels[1]) > 0 {
		if err := db.CompactLevel(1); err != nil {
			t.Fatal(err)
		}
	}

	v := db.Version()
	var out []levelTable
	for level, tables := range v.Levels {
		for _, tm := range tables {
			data, err := storage.ReadAll(opts.FS, TableFileName(tm.Num))
			if err != nil {
				t.Fatalf("read L%d table %d: %v", level, tm.Num, err)
			}
			out = append(out, levelTable{
				level:    level,
				smallest: string(tm.Smallest),
				data:     data,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].level != out[j].level {
			return out[i].level < out[j].level
		}
		return out[i].smallest < out[j].smallest
	})
	return out
}

type levelTable struct {
	level    int
	smallest string
	data     []byte
}

// TestPCPOutputsMatchSCPByteForByte is the live-path equivalence check: the
// same workload driven through a ModeSCP DB and a ModePCP DB (parallel
// stage workers, adaptive pilot enabled) must leave bit-for-bit identical
// tables at every level.
func TestPCPOutputsMatchSCPByteForByte(t *testing.T) {
	scpOpts := smallOpts(storage.NewMemFS())
	scpOpts.Compaction.Mode = core.ModeSCP
	ref := pipelineWorkload(t, scpOpts)

	pcpOpts := smallOpts(storage.NewMemFS())
	pcpOpts.Compaction.Mode = core.ModePCP
	pcpOpts.Compaction.ComputeParallel = 3
	pcpOpts.Compaction.IOParallel = 2
	pcpOpts.PipelineComputeTokens = 8
	pcpOpts.PipelineIOTokens = 8
	got := pipelineWorkload(t, pcpOpts)

	if len(got) == 0 {
		t.Fatal("workload produced no tables")
	}
	if len(got) != len(ref) {
		t.Fatalf("PCP produced %d tables, SCP %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].level != ref[i].level || got[i].smallest != ref[i].smallest {
			t.Fatalf("table %d: PCP (L%d, %q) vs SCP (L%d, %q)",
				i, got[i].level, got[i].smallest, ref[i].level, ref[i].smallest)
		}
		if !bytes.Equal(got[i].data, ref[i].data) {
			t.Fatalf("table %d (L%d, smallest %q): PCP bytes differ from SCP",
				i, got[i].level, got[i].smallest)
		}
	}
}

// TestGovernorGaugesAndStats drives background compactions under the default
// (PCP) mode and checks the observability surface: pipelined-compaction
// counts, stage busy clocks, token pool gauges and governor counters in both
// Stats() and Metrics().
func TestGovernorGaugesAndStats(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.MemtableSize = 8 << 10
	opts.PipelineComputeTokens = 3
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key%06d", (i*37)%2000)
		v := fmt.Sprintf("value-%08d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	s := db.Stats()
	if s.Compactions == 0 {
		t.Fatal("workload too small: no compactions ran")
	}
	if s.PipelinedCompactions != s.Compactions {
		t.Fatalf("PipelinedCompactions = %d, want %d (every compaction is PCP by default)",
			s.PipelinedCompactions, s.Compactions)
	}
	if s.PipelineComputeTokens != 3 || s.PipelineIOTokens != 4 {
		t.Fatalf("token pools = %d/%d, want 3/4", s.PipelineComputeTokens, s.PipelineIOTokens)
	}
	if s.PipelineComputeLeased != 0 || s.PipelineIOLeased != 0 {
		t.Fatalf("leased = %d/%d after WaitIdle, want 0/0",
			s.PipelineComputeLeased, s.PipelineIOLeased)
	}
	if s.CompactionStageBusy.Compute <= 0 || s.CompactionStageBusy.Write <= 0 {
		t.Fatalf("stage busy clocks not populated: %+v", s.CompactionStageBusy)
	}
	if s.CompactionStageIdle.Read < 0 || s.CompactionStageIdle.Compute < 0 ||
		s.CompactionStageIdle.Write < 0 {
		t.Fatalf("negative stage idle: %+v", s.CompactionStageIdle)
	}
	lp := s.LastCompaction.Pipeline
	if lp.InitialComputeWorkers < 1 || lp.InitialIOWorkers < 1 {
		t.Fatalf("LastCompaction pipeline widths = %d/%d, want >= 1/1",
			lp.InitialComputeWorkers, lp.InitialIOWorkers)
	}

	snap := db.Metrics().Snapshot()
	for gauge, want := range map[string]int64{
		"lsm_pipeline_compute_tokens": 3,
		"lsm_pipeline_io_tokens":      4,
		"lsm_pipeline_compute_leased": 0,
		"lsm_pipeline_io_leased":      0,
		"lsm_compactions_pipelined":   s.PipelinedCompactions,
		"lsm_governor_grows":          s.GovernorGrows,
		"lsm_governor_shrinks":        s.GovernorShrinks,
		"lsm_governor_denials":        s.GovernorDenials,
	} {
		got, ok := snap[gauge]
		if !ok {
			t.Fatalf("gauge %s missing from Metrics snapshot", gauge)
		}
		if got != want {
			t.Fatalf("gauge %s = %d, want %d", gauge, got, want)
		}
	}
	for _, gauge := range []string{
		"lsm_compaction_stage_busy_read_ns",
		"lsm_compaction_stage_busy_compute_ns",
		"lsm_compaction_stage_busy_write_ns",
		"lsm_compaction_stage_idle_read_ns",
		"lsm_compaction_stage_idle_compute_ns",
		"lsm_compaction_stage_idle_write_ns",
		"lsm_compaction_queue_hw_compute",
		"lsm_compaction_queue_hw_write",
	} {
		if _, ok := snap[gauge]; !ok {
			t.Fatalf("gauge %s missing from Metrics snapshot", gauge)
		}
	}
	if snap["lsm_compaction_stage_busy_compute_ns"] <= 0 {
		t.Fatal("lsm_compaction_stage_busy_compute_ns not positive")
	}
}

// TestGovernorDisabled: PipelineComputeTokens < 0 turns the governor off —
// no leases, zero pool stats, compactions still run pipelined at their
// configured fixed widths.
func TestGovernorDisabled(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.MemtableSize = 8 << 10
	opts.PipelineComputeTokens = -1
	db := mustOpen(t, opts)
	defer db.Close()
	if db.governor != nil {
		t.Fatal("governor constructed despite PipelineComputeTokens < 0")
	}

	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%06d", (i*31)%1500)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Compactions == 0 || s.PipelinedCompactions != s.Compactions {
		t.Fatalf("compactions=%d pipelined=%d", s.Compactions, s.PipelinedCompactions)
	}
	if s.PipelineComputeTokens != 0 || s.PipelineComputeLeased != 0 {
		t.Fatalf("pool stats nonzero with governor disabled: %d/%d",
			s.PipelineComputeTokens, s.PipelineComputeLeased)
	}
}

// TestCompactionOptionsClamped covers the Options validation satellite:
// absurd pipeline knobs are clamped, ModeAuto resolves to PCP, and the
// SubtaskSize<0 escape hatch survives withDefaults untouched.
func TestCompactionOptionsClamped(t *testing.T) {
	o := Options{
		FS: storage.NewMemFS(),
		Compaction: core.Config{
			QueueDepth:      1000,
			ComputeParallel: -5,
			IOParallel:      99,
			SubtaskSize:     -1,
		},
	}
	d := o.withDefaults()
	if d.Compaction.Mode != core.ModePCP {
		t.Fatalf("Mode = %v, want pcp (auto must resolve to PCP)", d.Compaction.Mode)
	}
	if d.Compaction.QueueDepth != 32 {
		t.Fatalf("QueueDepth = %d, want clamp to 32", d.Compaction.QueueDepth)
	}
	if d.Compaction.ComputeParallel != 0 {
		t.Fatalf("ComputeParallel = %d, want 0 (negative maps to core default)",
			d.Compaction.ComputeParallel)
	}
	if d.Compaction.IOParallel != 16 {
		t.Fatalf("IOParallel = %d, want clamp to 16", d.Compaction.IOParallel)
	}
	if d.Compaction.SubtaskSize != -1 {
		t.Fatalf("SubtaskSize = %d, want -1 (escape hatch must pass through)",
			d.Compaction.SubtaskSize)
	}
	if d.PipelineComputeTokens < 1 {
		t.Fatalf("PipelineComputeTokens default = %d, want >= 1", d.PipelineComputeTokens)
	}
	if d.PipelineIOTokens != 4 {
		t.Fatalf("PipelineIOTokens default = %d, want 4", d.PipelineIOTokens)
	}
	// Negative compute tokens (governor off) must survive withDefaults.
	o.PipelineComputeTokens = -1
	if d2 := o.withDefaults(); d2.PipelineComputeTokens != -1 {
		t.Fatalf("PipelineComputeTokens = %d, want -1 preserved", d2.PipelineComputeTokens)
	}
}

// TestGovernorLeasePools exercises the token pool accounting directly:
// baseline grants always succeed (even overcommitted), extras are gated on
// headroom, releases return everything, and the live gauges track it all.
func TestGovernorLeasePools(t *testing.T) {
	reg := metrics.NewRegistry()
	g := newPipelineGovernor(2, 2, reg)

	l1 := g.acquire(3, 3)
	if c, io := l1.widths(); c != 2 || io != 2 {
		t.Fatalf("lease1 widths = %d/%d, want 2/2 (pool caps extras)", c, io)
	}
	// Pool exhausted: a second lease still gets its baseline — overcommit is
	// visible as leased > total.
	l2 := g.acquire(2, 2)
	if c, io := l2.widths(); c != 1 || io != 1 {
		t.Fatalf("lease2 widths = %d/%d, want baseline 1/1", c, io)
	}
	if ct, _, cl, _ := g.snapshot(); ct != 2 || cl != 3 {
		t.Fatalf("pool = %d leased %d, want total 2 leased 3 (baseline overcommit)", ct, cl)
	}
	if l2.tryGrowCompute() {
		t.Fatal("tryGrowCompute succeeded on an exhausted pool")
	}
	snap := reg.Snapshot()
	if snap["lsm_pipeline_compute_tokens"] != 2 || snap["lsm_pipeline_compute_leased"] != 3 {
		t.Fatalf("gauges = total %d leased %d, want 2/3",
			snap["lsm_pipeline_compute_tokens"], snap["lsm_pipeline_compute_leased"])
	}

	l1.release()
	if _, _, cl, il := g.snapshot(); cl != 1 || il != 1 {
		t.Fatalf("after release leased = %d/%d, want 1/1", cl, il)
	}
	if !l2.tryGrowCompute() {
		t.Fatal("tryGrowCompute failed with headroom available")
	}
	l2.shrinkCompute()
	l2.shrinkCompute() // baseline: no-op
	if c, _ := l2.widths(); c != 1 {
		t.Fatalf("shrink below baseline: compute = %d, want 1", c)
	}
	l2.release()
	l2.release() // idempotent
	if _, _, cl, il := g.snapshot(); cl != 0 || il != 0 {
		t.Fatalf("leaked tokens: leased = %d/%d after all releases", cl, il)
	}
}

// TestAdaptivePilotClassification feeds the pilot synthetic telemetry and
// checks each classification branch: compute-bound grows compute, I/O-bound
// grows I/O, overprovisioned stages shrink, exhausted pools count denials,
// and the hysteresis window suppresses back-to-back actions.
func TestAdaptivePilotClassification(t *testing.T) {
	reg := metrics.NewRegistry()
	g := newPipelineGovernor(4, 4, reg)
	lease := g.acquire(1, 1)
	var sc statsCollector
	pilot := &adaptivePilot{lease: lease, stats: &sc}

	tel := func(done, cw, iow, compQ, writeQ int, busy core.Breakdown) core.PipelineTelemetry {
		return core.PipelineTelemetry{
			Subtasks: 100, SubtasksDone: done,
			ComputeWorkers: cw, IOWorkers: iow,
			ComputeQueue: compQ, ComputeQueueCap: 4,
			WriteQueue: writeQ, WriteQueueCap: 4,
			StageBusy: busy,
		}
	}

	// Inside the warm-up window: no action even with a full queue.
	r := pilot.Adjust(tel(1, 1, 1, 4, 0, core.Breakdown{}))
	if r.Compute != 1 || r.IO != 1 {
		t.Fatalf("pilot acted during warm-up: %+v", r)
	}

	// Full compute queue, idle write queue: compute-bound, grow compute.
	r = pilot.Adjust(tel(2, 1, 1, 4, 0, core.Breakdown{}))
	if r.Compute != 2 || r.IO != 1 {
		t.Fatalf("compute-bound verdict = %+v, want compute 2", r)
	}
	// Hysteresis: the very next sub-task must not trigger another action.
	r = pilot.Adjust(tel(3, 2, 1, 4, 0, core.Breakdown{}))
	if r.Compute != 2 {
		t.Fatalf("pilot re-acted within hysteresis window: %+v", r)
	}

	// Full write queue: I/O-bound, grow I/O.
	r = pilot.Adjust(tel(5, 2, 1, 0, 4, core.Breakdown{}))
	if r.IO != 2 {
		t.Fatalf("write-bound verdict = %+v, want io 2", r)
	}

	// Empty compute queue, I/O busy dominates: compute overprovisioned.
	slow := core.Breakdown{Read: 3 * time.Millisecond, Compute: time.Millisecond,
		Write: 5 * time.Millisecond}
	r = pilot.Adjust(tel(8, 2, 2, 0, 1, slow))
	if r.Compute != 1 {
		t.Fatalf("shrink verdict = %+v, want compute 1", r)
	}

	s := sc.snapshot()
	if s.GovernorGrows != 2 || s.GovernorShrinks != 1 {
		t.Fatalf("grows/shrinks = %d/%d, want 2/1", s.GovernorGrows, s.GovernorShrinks)
	}
	lease.release()

	// Exhausted pool: a grow attempt is denied and counted.
	g2 := newPipelineGovernor(1, 1, metrics.NewRegistry())
	lease2 := g2.acquire(1, 1)
	var sc2 statsCollector
	pilot2 := &adaptivePilot{lease: lease2, stats: &sc2}
	r = pilot2.Adjust(tel(2, 1, 1, 4, 0, core.Breakdown{}))
	if r.Compute != 1 {
		t.Fatalf("denied grow changed the verdict: %+v", r)
	}
	if s2 := sc2.snapshot(); s2.GovernorDenials != 1 {
		t.Fatalf("GovernorDenials = %d, want 1", s2.GovernorDenials)
	}
	lease2.release()
}
