package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// TestPipelinedFlushEquivalence: the pipelined flush must produce a table
// with identical contents to the sequential flush.
func TestPipelinedFlushEquivalence(t *testing.T) {
	load := func(pipelined bool) (*DB, map[string]string) {
		opts := smallOpts(storage.NewMemFS())
		opts.PipelinedFlush = pipelined
		opts.DisableAutoCompaction = true
		opts.MemtableSize = 1 << 20 // hold the whole load: exactly one flush
		db := mustOpen(t, opts)
		ref := map[string]string{}
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("pf%06d", i)
			v := fmt.Sprintf("value-%d", i*7)
			db.Put([]byte(k), []byte(v))
			ref[k] = v
		}
		// A few deletes so tombstones flow through the flush too.
		for i := 0; i < 2000; i += 17 {
			k := fmt.Sprintf("pf%06d", i)
			db.Delete([]byte(k))
			delete(ref, k)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		return db, ref
	}

	seqDB, seqRef := load(false)
	defer seqDB.Close()
	pipDB, pipRef := load(true)
	defer pipDB.Close()

	// Same logical contents.
	for k, v := range seqRef {
		got, err := pipDB.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("pipelined flush lost %s: %q, %v", k, got, err)
		}
	}
	for k := range pipRef {
		if _, ok := seqRef[k]; !ok {
			t.Fatalf("reference divergence at %s", k)
		}
	}

	// Same physical table bytes (both paths are deterministic).
	dump := func(db *DB) []byte {
		v := db.Version()
		if len(v.Levels[0]) != 1 {
			t.Fatalf("expected one L0 table, got %d", len(v.Levels[0]))
		}
		data, err := storage.ReadAll(db.fs, v.Levels[0][0].FileName())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(dump(seqDB), dump(pipDB)) {
		t.Fatal("pipelined and sequential flush produced different table bytes")
	}
}

// TestPipelinedFlushFullWorkload: a complete load → compact → verify cycle
// with pipelined flushes enabled.
func TestPipelinedFlushFullWorkload(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.PipelinedFlush = true
	db := mustOpen(t, opts)
	defer db.Close()
	ref := loadKeys(t, db, 3000, 99, 100)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, ref)
	if db.Stats().Flushes == 0 {
		t.Fatal("no flushes ran")
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedFlushEmptyAndSingle covers degenerate flushes.
func TestPipelinedFlushEmptyAndSingle(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.PipelinedFlush = true
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()
	// Empty flush is a no-op.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Version().Levels[0]); got != 0 {
		t.Fatalf("empty flush created %d tables", got)
	}
	// Single entry.
	db.Put([]byte("only"), []byte("one"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("only"))
	if err != nil || string(v) != "one" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}
