package lsm

import (
	"errors"

	"pcplsm/internal/block"
	"pcplsm/internal/checksum"
	"pcplsm/internal/compress"
	"pcplsm/internal/sstable"
	"pcplsm/internal/wal"
)

// Background failures fall into three classes:
//
//   - transient: flush/compaction I/O errors. The work is idempotent (the
//     half-written output is discarded, the input tables are still live), so
//     the scheduler retries with capped exponential backoff instead of
//     poisoning the store.
//   - corruption: a checksum or structural failure in data already on disk.
//     Retrying cannot help and continuing to write could compound the
//     damage, so the DB degrades to read-only with ErrCorruption sticky.
//   - permanent: a failure after which the write path's durability state is
//     unknown — a WAL append that may have half-written a record, or a
//     manifest append whose partial line cannot be truncated away until the
//     next recovery. These poison writes with ErrBackgroundError sticky.
//
// In the sticky states reads keep working: Get and iterators never consult
// the background error.

// ErrBackgroundError marks a sticky background failure: the store has
// degraded to read-only. Errors returned by write paths in this state match
// it with errors.Is.
var ErrBackgroundError = errors.New("lsm: background error, store is read-only")

// ErrCorruption marks detected on-disk corruption (checksum or structural
// failure in an SSTable or the WAL). It implies ErrBackgroundError.
var ErrCorruption = errors.New("lsm: corruption detected")

// ErrQuarantined marks a read whose key range is covered by a quarantined
// table: one that failed integrity verification (scrub or a read trip) and
// was isolated without degrading the rest of the store. Reads over other
// ranges, and all writes, keep working. It matches ErrCorruption (the data
// under it is corrupt) but NOT ErrBackgroundError — the store is not
// read-only.
var ErrQuarantined = errors.New("lsm: key range covered by quarantined table")

// quarantinedError carries the offending table number; it matches
// ErrQuarantined and ErrCorruption with errors.Is.
type quarantinedError struct{ num uint64 }

func (e *quarantinedError) Error() string {
	return "lsm: key range covered by quarantined table " + TableFileName(e.num)
}

func (e *quarantinedError) Is(target error) bool {
	return target == ErrQuarantined || target == ErrCorruption
}

// outputVerifyError marks a paranoid verify-before-install rejection: a
// freshly written flush/compaction output failed re-verification before the
// manifest referenced it. The inputs are intact and the output is deleted,
// so the work is retryable like any transient failure — it must NOT be
// classified as on-disk corruption even though the underlying cause is a
// checksum or structural error in the (discarded) output file.
type outputVerifyError struct{ err error }

func (e *outputVerifyError) Error() string {
	return "lsm: output failed verify-before-install: " + e.err.Error()
}

func (e *outputVerifyError) Unwrap() error { return e.err }

func isOutputVerifyErr(err error) bool {
	var ov *outputVerifyError
	return errors.As(err, &ov)
}

// quarantineHandledError marks a background corruption failure whose
// damaged table(s) were identified and quarantined in scope. The store
// must NOT degrade to read-only: the next pick skips the quarantined
// tables, so the worker treats the step like a transient failure.
type quarantineHandledError struct{ err error }

func (e *quarantineHandledError) Error() string {
	return "lsm: corruption quarantined in scope: " + e.err.Error()
}

func (e *quarantineHandledError) Unwrap() error { return e.err }

func isQuarantineHandledErr(err error) bool {
	var qh *quarantineHandledError
	return errors.As(err, &qh)
}

// backgroundError is the sticky error stored in db.bgErr. It matches
// ErrBackgroundError always and ErrCorruption when corruption is set, while
// unwrapping to the underlying cause for errors.Is on e.g. an injected
// fault sentinel.
type backgroundError struct {
	cause      error
	corruption bool
}

func (e *backgroundError) Error() string {
	if e.corruption {
		return "lsm: corruption detected (store is read-only): " + e.cause.Error()
	}
	return "lsm: background error (store is read-only): " + e.cause.Error()
}

func (e *backgroundError) Unwrap() error { return e.cause }

func (e *backgroundError) Is(target error) bool {
	if target == ErrBackgroundError {
		return true
	}
	return target == ErrCorruption && e.corruption
}

// permanentError marks a failure that must not be retried by the
// background workers even though it is not corruption.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// markPermanent wraps err so the retry policy treats it as non-retryable.
func markPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

func isPermanentErr(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// corruptionSentinels are the typed errors the lower layers raise for
// checksum or structural failures in on-disk data.
var corruptionSentinels = []error{
	sstable.ErrBadTable,
	block.ErrBlockTooShort,
	block.ErrBlockCorrupt,
	compress.ErrSnappyCorrupt,
	compress.ErrSnappyTooLarge,
	wal.ErrCorrupt,
}

// isCorruptionErr reports whether err stems from on-disk corruption.
func isCorruptionErr(err error) bool {
	for _, s := range corruptionSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	var cm *checksum.ErrMismatch
	return errors.As(err, &cm)
}
