//go:build !race

package lsm

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
