package lsm

import (
	"fmt"
	"sync"
	"time"

	"pcplsm/internal/core"
)

// Stats aggregates DB activity. All counters are cumulative since Open.
type Stats struct {
	// Puts/Deletes/Gets count user operations.
	Puts    int64
	Deletes int64
	Gets    int64
	// FilterSkips counts table probes that a Bloom filter answered without
	// any block I/O.
	FilterSkips int64
	// BlockCacheHits/Misses count block-cache lookups on the read path.
	BlockCacheHits   int64
	BlockCacheMisses int64

	// Flushes counts memtable→L0 dumps; FlushBytes their output volume.
	Flushes    int64
	FlushBytes int64
	// FlushWall is the cumulative time spent flushing.
	FlushWall time.Duration

	// Compactions counts background merges.
	Compactions int64
	// CompactionInputBytes/OutputBytes total the data volumes.
	CompactionInputBytes  int64
	CompactionOutputBytes int64
	// CompactionWall is the cumulative compaction time.
	CompactionWall time.Duration
	// CompactionSteps sums the per-step times across all compactions —
	// the data behind the paper's breakdown figures.
	CompactionSteps core.StepTimes

	// StallCount/StallTime measure write pauses (full memtable backlog or
	// too many L0 tables).
	StallCount int64
	StallTime  time.Duration

	// LastCompaction holds the most recent compaction's full statistics.
	LastCompaction core.Stats
}

// CompactionBandwidth returns bytes of compaction input processed per
// second of compaction wall time — the paper's headline metric, aggregated.
func (s Stats) CompactionBandwidth() float64 {
	if s.CompactionWall <= 0 {
		return 0
	}
	return float64(s.CompactionInputBytes) / s.CompactionWall.Seconds()
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("puts=%d gets=%d flushes=%d compactions=%d cbw=%.1fMiB/s stall=%v [%v]",
		s.Puts, s.Gets, s.Flushes, s.Compactions,
		s.CompactionBandwidth()/(1<<20), s.StallTime.Round(time.Millisecond),
		s.CompactionSteps.Breakdown())
}

// statsCollector guards mutation of Stats.
type statsCollector struct {
	mu sync.Mutex
	s  Stats
}

func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

func (c *statsCollector) update(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.s)
}

// addCompaction folds one compaction's stats into the totals.
func (c *statsCollector) addCompaction(cs core.Stats) {
	c.update(func(s *Stats) {
		s.Compactions++
		s.CompactionInputBytes += cs.InputBytes
		s.CompactionOutputBytes += cs.OutputBytes
		s.CompactionWall += cs.Wall
		for st := core.S1Read; st <= core.S7Write; st++ {
			s.CompactionSteps[st] += cs.Steps.Get(st)
		}
		s.LastCompaction = cs
	})
}
