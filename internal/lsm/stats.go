package lsm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pcplsm/internal/core"
)

// Stats aggregates DB activity. All counters are cumulative since Open.
type Stats struct {
	// Puts/Deletes/Gets count user operations.
	Puts    int64
	Deletes int64
	Gets    int64
	// FilterSkips counts table probes that a Bloom filter answered without
	// any block I/O.
	FilterSkips int64
	// BlockCacheHits/Misses count block-cache lookups on the read path.
	BlockCacheHits   int64
	BlockCacheMisses int64
	// BlockCacheEvictions counts blocks dropped from the cache (capacity
	// pressure plus dead-table eviction); BlockCachePrewarmed counts
	// compaction output blocks the pre-warm path inserted.
	BlockCacheEvictions int64
	BlockCachePrewarmed int64
	// BlockCacheBytes/Capacity are the cache's current fill and limit.
	BlockCacheBytes    int64
	BlockCacheCapacity int64

	// Flushes counts memtable→L0 dumps; FlushBytes their output volume.
	Flushes    int64
	FlushBytes int64
	// FlushWall is the cumulative time spent flushing.
	FlushWall time.Duration

	// Compactions counts background merges.
	Compactions int64
	// TrivialMoves counts picked inputs with no next-level overlap that
	// were installed as metadata-only edits instead of being rewritten
	// through the pipeline; TrivialMoveBytes totals the table bytes those
	// moves spared from rewriting.
	TrivialMoves     int64
	TrivialMoveBytes int64
	// CompactionInputBytes/OutputBytes total the data volumes.
	CompactionInputBytes  int64
	CompactionOutputBytes int64
	// CompactionWall is the cumulative compaction time.
	CompactionWall time.Duration
	// CompactionSteps sums the per-step times across all compactions —
	// the data behind the paper's breakdown figures.
	CompactionSteps core.StepTimes
	// PipelinedCompactions counts the compactions that ran under ModePCP
	// (Compactions − PipelinedCompactions ran sequentially).
	PipelinedCompactions int64
	// CompactionStageBusy/StageIdle attribute cumulative compaction time to
	// the pipeline stages: busy is time a stage worker spent working, idle
	// is worker lifetime spent waiting on the inter-stage queues (zero for
	// SCP, which has no waiting workers). A stall investigation reads these
	// as "which stage was the choke": the bottleneck stage is busy while
	// the others idle.
	CompactionStageBusy core.Breakdown
	CompactionStageIdle core.Breakdown

	// StallCount/StallTime measure write pauses (full memtable backlog or
	// too many L0 tables).
	StallCount int64
	StallTime  time.Duration

	// Commit-pipeline counters. WriteGroups counts WAL records written by
	// the commit path (one per group); GroupedWrites counts the Write calls
	// those groups carried, so GroupedWrites/WriteGroups is the mean group
	// size. WALSyncs counts commit-path fsyncs: with SyncWAL on,
	// WALSyncs/GroupedWrites is the sync amortization (1.0 serial, → 1/N as
	// grouping kicks in). MaxWriteGroup is the largest group committed.
	WriteGroups   int64
	GroupedWrites int64
	WALSyncs      int64
	MaxWriteGroup int64

	// Memtable gauges (the live memtable at the instant of the snapshot) and
	// apply counters. MemtableShards is the configured shard count;
	// MemtableEntries the live entry count; MemtableMaxShardEntries/
	// MinShardEntries expose hash skew across shards. MemtableArenaReserved
	// is the bytes held by arena chunks and node slabs, MemtableArenaUsed
	// the bytes actually carved out of them — reserved-used is the
	// allocator's current slack. ApplyShardRuns sums the shards touched per
	// committed group (ApplyShardRuns/WriteGroups is the mean apply fan-out)
	// and ParallelApplies counts groups applied by concurrent shard
	// goroutines rather than inline.
	MemtableShards          int64
	MemtableEntries         int64
	MemtableMaxShardEntries int64
	MemtableMinShardEntries int64
	MemtableArenaReserved   int64
	MemtableArenaUsed       int64
	ApplyShardRuns          int64
	ParallelApplies         int64

	// Compaction-policy state. ActivePolicy names the policy in effect at
	// the instant of the snapshot; PolicySwitches counts runtime switches
	// applied by the self-tuner (zero when a policy is pinned).
	ActivePolicy   string
	PolicySwitches int64

	// Error-policy counters. BackgroundRetries counts transient background
	// failures that were retried; BackgroundErrors counts failures that
	// turned sticky (retries exhausted, WAL/manifest poison);
	// CorruptionsDetected counts checksum/structural failures observed in
	// on-disk data (each detection event, not distinct files).
	BackgroundRetries   int64
	BackgroundErrors    int64
	CorruptionsDetected int64

	// Integrity-subsystem counters. ScrubTablesVerified/ScrubBytesVerified
	// total the tables and physical bytes the scrubber has read back and
	// checked; ScrubCycles counts completed passes over the whole tree;
	// ScrubCorruptions counts tables a scrub found damaged (each was
	// quarantined). QuarantinedTables is the number of tables currently
	// quarantined (a gauge, not cumulative). ParanoidVerifies counts
	// verify-before-install passes over fresh flush/compaction outputs and
	// ParanoidRejections the outputs those passes discarded.
	ScrubTablesVerified int64
	ScrubBytesVerified  int64
	ScrubCycles         int64
	ScrubCorruptions    int64
	QuarantinedTables   int64
	ParanoidVerifies    int64
	ParanoidRejections  int64

	// LastCompaction holds the most recent compaction's full statistics
	// (including its Pipeline block: worker counts, resizes, queue
	// high-water marks).
	LastCompaction core.Stats

	// Pipeline-governor counters and pool gauges. The token totals/leases
	// are zero when the governor is disabled (PipelineComputeTokens < 0).
	// GovernorGrows/Shrinks count adaptive-pilot resizes applied across all
	// compactions; GovernorDenials counts grow attempts the shared pools
	// rejected — sustained denials mean concurrent background work is
	// contending for the same tokens.
	PipelineComputeTokens int64
	PipelineIOTokens      int64
	PipelineComputeLeased int64
	PipelineIOLeased      int64
	GovernorGrows         int64
	GovernorShrinks       int64
	GovernorDenials       int64

	// Scheduler gauges: a snapshot of the concurrent background work in
	// flight at the instant Stats() was called.
	//
	// FlushesInFlight is 0 or 1 (flushes conflict with each other).
	FlushesInFlight int64
	// CompactionsInFlight counts compactions currently claimed.
	CompactionsInFlight int64
	// CompactionsInFlightByLevel breaks CompactionsInFlight down by source
	// level (an entry at L covers the L→L+1 level pair).
	CompactionsInFlightByLevel [NumLevels]int64
	// ClaimedBytes totals the input+overlap table bytes claimed by
	// in-flight compactions.
	ClaimedBytes int64
	// MaxConcurrentBackground is the high-water mark of simultaneous
	// background units (flushes + compactions) since Open.
	MaxConcurrentBackground int64
}

// CompactionBandwidth returns bytes of compaction input processed per
// second of compaction wall time — the paper's headline metric, aggregated.
func (s Stats) CompactionBandwidth() float64 {
	if s.CompactionWall <= 0 {
		return 0
	}
	return float64(s.CompactionInputBytes) / s.CompactionWall.Seconds()
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("puts=%d gets=%d flushes=%d compactions=%d cbw=%.1fMiB/s stall=%v [%v]",
		s.Puts, s.Gets, s.Flushes, s.Compactions,
		s.CompactionBandwidth()/(1<<20), s.StallTime.Round(time.Millisecond),
		s.CompactionSteps.Breakdown())
}

// statsCollector guards mutation of Stats. The pure operation counters and
// scheduler gauges live in atomics so the read/write hot paths never take a
// lock or allocate; the mutex only covers the cold aggregates (durations,
// step breakdowns, per-compaction stats).
type statsCollector struct {
	puts        atomic.Int64
	deletes     atomic.Int64
	gets        atomic.Int64
	filterSkips atomic.Int64

	flushesInFlight     atomic.Int64
	compactionsInFlight atomic.Int64
	compactionsByLevel  [NumLevels]atomic.Int64
	claimedBytes        atomic.Int64
	maxConcurrent       atomic.Int64

	writeGroups   atomic.Int64
	groupedWrites atomic.Int64
	walSyncs      atomic.Int64
	maxWriteGroup atomic.Int64

	applyShardRuns  atomic.Int64
	parallelApplies atomic.Int64

	bgRetries   atomic.Int64
	bgErrors    atomic.Int64
	corruptions atomic.Int64

	scrubTables      atomic.Int64
	scrubBytes       atomic.Int64
	scrubCycles      atomic.Int64
	scrubCorruptions atomic.Int64
	quarantined      atomic.Int64
	paranoidVerifies atomic.Int64
	paranoidRejects  atomic.Int64

	governorGrows   atomic.Int64
	governorShrinks atomic.Int64
	governorDenials atomic.Int64

	trivialMoves     atomic.Int64
	trivialMoveBytes atomic.Int64
	policySwitches   atomic.Int64

	mu sync.Mutex
	s  Stats
}

func (c *statsCollector) addPutsDeletes(puts, dels int64) {
	if puts != 0 {
		c.puts.Add(puts)
	}
	if dels != 0 {
		c.deletes.Add(dels)
	}
}

func (c *statsCollector) addGet()        { c.gets.Add(1) }
func (c *statsCollector) addFilterSkip() { c.filterSkips.Add(1) }

func (c *statsCollector) addBackgroundRetry() { c.bgRetries.Add(1) }
func (c *statsCollector) addBackgroundError() { c.bgErrors.Add(1) }
func (c *statsCollector) addCorruption()      { c.corruptions.Add(1) }

// addScrubbedTable records one table verified by a scrub (bytes of physical
// file image read back).
func (c *statsCollector) addScrubbedTable(bytes int64) {
	c.scrubTables.Add(1)
	c.scrubBytes.Add(bytes)
}

func (c *statsCollector) addScrubCycle()      { c.scrubCycles.Add(1) }
func (c *statsCollector) addScrubCorruption() { c.scrubCorruptions.Add(1) }

// setQuarantined publishes the current quarantined-table count.
func (c *statsCollector) setQuarantined(n int64) { c.quarantined.Store(n) }

func (c *statsCollector) addParanoidVerify() { c.paranoidVerifies.Add(1) }
func (c *statsCollector) addParanoidReject() { c.paranoidRejects.Add(1) }

func (c *statsCollector) addGovernorGrow()   { c.governorGrows.Add(1) }
func (c *statsCollector) addGovernorShrink() { c.governorShrinks.Add(1) }
func (c *statsCollector) addGovernorDenial() { c.governorDenials.Add(1) }

// addTrivialMove records one metadata-only table move of size bytes.
func (c *statsCollector) addTrivialMove(size int64) {
	c.trivialMoves.Add(1)
	c.trivialMoveBytes.Add(size)
}

func (c *statsCollector) addPolicySwitch() { c.policySwitches.Add(1) }

// addCommit records one committed group of groupSize writers, synced with
// one fsync when synced is set.
func (c *statsCollector) addCommit(groupSize int64, synced bool) {
	c.writeGroups.Add(1)
	c.groupedWrites.Add(groupSize)
	if synced {
		c.walSyncs.Add(1)
	}
	for {
		max := c.maxWriteGroup.Load()
		if groupSize <= max || c.maxWriteGroup.CompareAndSwap(max, groupSize) {
			return
		}
	}
}

// addApply records how one committed group was distributed across memtable
// shards and whether shard appliers ran in parallel.
func (c *statsCollector) addApply(shardsTouched int64, parallel bool) {
	c.applyShardRuns.Add(shardsTouched)
	if parallel {
		c.parallelApplies.Add(1)
	}
}

// beginFlush/endFlush and beginCompaction/endCompaction maintain the
// scheduler gauges around each background unit.
func (c *statsCollector) beginFlush() {
	c.flushesInFlight.Add(1)
	c.noteConcurrency()
}

func (c *statsCollector) endFlush() { c.flushesInFlight.Add(-1) }

func (c *statsCollector) beginCompaction(level int, claimedBytes int64) {
	c.compactionsInFlight.Add(1)
	c.compactionsByLevel[level].Add(1)
	c.claimedBytes.Add(claimedBytes)
	c.noteConcurrency()
}

func (c *statsCollector) endCompaction(level int, claimedBytes int64) {
	c.compactionsInFlight.Add(-1)
	c.compactionsByLevel[level].Add(-1)
	c.claimedBytes.Add(-claimedBytes)
}

// noteConcurrency ratchets the high-water mark of concurrent units.
func (c *statsCollector) noteConcurrency() {
	cur := c.flushesInFlight.Load() + c.compactionsInFlight.Load()
	for {
		max := c.maxConcurrent.Load()
		if cur <= max || c.maxConcurrent.CompareAndSwap(max, cur) {
			return
		}
	}
}

func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	s := c.s
	c.mu.Unlock()
	s.Puts = c.puts.Load()
	s.Deletes = c.deletes.Load()
	s.Gets = c.gets.Load()
	s.FilterSkips = c.filterSkips.Load()
	s.FlushesInFlight = c.flushesInFlight.Load()
	s.CompactionsInFlight = c.compactionsInFlight.Load()
	for l := range s.CompactionsInFlightByLevel {
		s.CompactionsInFlightByLevel[l] = c.compactionsByLevel[l].Load()
	}
	s.ClaimedBytes = c.claimedBytes.Load()
	s.MaxConcurrentBackground = c.maxConcurrent.Load()
	s.WriteGroups = c.writeGroups.Load()
	s.GroupedWrites = c.groupedWrites.Load()
	s.WALSyncs = c.walSyncs.Load()
	s.MaxWriteGroup = c.maxWriteGroup.Load()
	s.ApplyShardRuns = c.applyShardRuns.Load()
	s.ParallelApplies = c.parallelApplies.Load()
	s.BackgroundRetries = c.bgRetries.Load()
	s.BackgroundErrors = c.bgErrors.Load()
	s.CorruptionsDetected = c.corruptions.Load()
	s.ScrubTablesVerified = c.scrubTables.Load()
	s.ScrubBytesVerified = c.scrubBytes.Load()
	s.ScrubCycles = c.scrubCycles.Load()
	s.ScrubCorruptions = c.scrubCorruptions.Load()
	s.QuarantinedTables = c.quarantined.Load()
	s.ParanoidVerifies = c.paranoidVerifies.Load()
	s.ParanoidRejections = c.paranoidRejects.Load()
	s.GovernorGrows = c.governorGrows.Load()
	s.GovernorShrinks = c.governorShrinks.Load()
	s.GovernorDenials = c.governorDenials.Load()
	s.TrivialMoves = c.trivialMoves.Load()
	s.TrivialMoveBytes = c.trivialMoveBytes.Load()
	s.PolicySwitches = c.policySwitches.Load()
	return s
}

func (c *statsCollector) update(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.s)
}

// addCompaction folds one compaction's stats into the totals.
func (c *statsCollector) addCompaction(cs core.Stats) {
	c.update(func(s *Stats) {
		s.Compactions++
		s.CompactionInputBytes += cs.InputBytes
		s.CompactionOutputBytes += cs.OutputBytes
		s.CompactionWall += cs.Wall
		for st := core.S1Read; st <= core.S7Write; st++ {
			s.CompactionSteps[st] += cs.Steps.Get(st)
		}
		if cs.Mode == core.ModePCP || cs.Mode == core.ModeDeepPCP {
			s.PipelinedCompactions++
		}
		s.CompactionStageBusy.Read += cs.StageBusy.Read
		s.CompactionStageBusy.Compute += cs.StageBusy.Compute
		s.CompactionStageBusy.Write += cs.StageBusy.Write
		s.CompactionStageIdle.Read += cs.Pipeline.StageIdle.Read
		s.CompactionStageIdle.Compute += cs.Pipeline.StageIdle.Compute
		s.CompactionStageIdle.Write += cs.Pipeline.StageIdle.Write
		s.LastCompaction = cs
	})
}
