package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"pcplsm/internal/ikey"
	"pcplsm/internal/storage"
)

// gateFS wraps an FS and can be armed to block the next Create of a ".sst"
// file until released — the deterministic hook the scheduler tests use to
// hold a compaction in flight at a known point.
type gateFS struct {
	storage.FS
	mu      sync.Mutex
	armed   bool
	entered chan string   // receives the blocked file's name
	release chan struct{} // closed to let the blocked Create proceed
}

func newGateFS(inner storage.FS) *gateFS {
	return &gateFS{
		FS:      inner,
		entered: make(chan string, 1),
		release: make(chan struct{}),
	}
}

// arm makes the next .sst Create block (one-shot).
func (g *gateFS) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

func (g *gateFS) Create(name string) (storage.File, error) {
	g.mu.Lock()
	hit := g.armed && strings.HasSuffix(name, ".sst")
	if hit {
		g.armed = false
	}
	g.mu.Unlock()
	if hit {
		g.entered <- name
		<-g.release
	}
	return g.FS.Create(name)
}

// fillTables writes n incompressible entries under the given key prefix and
// flushes them into an L0 table, then compacts L0 into L1.
func fillLevel1(t *testing.T, db *DB, rng *rand.Rand, prefix string, n int) {
	t.Helper()
	val := make([]byte, 64)
	for i := 0; i < n; i++ {
		rng.Read(val)
		k := fmt.Sprintf("%s%06d", prefix, i)
		if err := db.Put([]byte(k), append([]byte(nil), val...)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
}

// drainLevel compacts level until it is empty, pushing its tables down.
func drainLevel(t *testing.T, db *DB, level int) {
	t.Helper()
	for len(db.Version().Levels[level]) > 0 {
		if err := db.CompactLevel(level); err != nil {
			t.Fatal(err)
		}
	}
}

// overloadLevel1 loads enough data that L1 exceeds its size threshold and
// the picker wants an L1→L2 compaction.
func overloadLevel1(t *testing.T, db *DB, rng *rand.Rand) {
	t.Helper()
	for round := 0; db.Version().LevelSize(1) < smallOpts(nil).BaseLevelSize; round++ {
		if round > 20 {
			t.Fatal("could not overload L1")
		}
		fillLevel1(t, db, rng, fmt.Sprintf("key%02d-", round), 700)
	}
}

// TestFlushOverlapsCompaction holds a background L1→L2 compaction at its
// first output Create and proves a memtable flush starts and completes
// while the compaction is still in flight (BackgroundWorkers=2).
func TestFlushOverlapsCompaction(t *testing.T) {
	gate := newGateFS(storage.NewMemFS())
	opts := smallOpts(gate)
	opts.BackgroundWorkers = 2
	opts.DisableAutoCompaction = true // manual control while loading
	opts.DisableTrivialMove = true    // L2 is empty: force a rewrite so Create fires
	db := mustOpen(t, opts)
	defer db.Close()
	rng := rand.New(rand.NewSource(42))

	overloadLevel1(t, db, rng)

	// Block the next table Create, then let the scheduler find the pending
	// L1→L2 compaction.
	gate.arm()
	db.mu.Lock()
	db.opts.DisableAutoCompaction = false
	db.mu.Unlock()
	db.nudge()

	select {
	case name := <-gate.entered:
		t.Logf("compaction blocked creating %s", name)
	case <-time.After(10 * time.Second):
		t.Fatal("background compaction never started")
	}
	if got := db.Stats().CompactionsInFlight; got != 1 {
		t.Fatalf("CompactionsInFlight = %d, want 1", got)
	}

	// A flush must proceed while the compaction is stuck.
	flushesBefore := db.Stats().Flushes
	if err := db.Put([]byte("overlap-key"), []byte("overlap-val")); err != nil {
		t.Fatal(err)
	}
	flushDone := make(chan error, 1)
	go func() { flushDone <- db.Flush() }()
	select {
	case err := <-flushDone:
		if err != nil {
			t.Fatalf("flush failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush did not complete while compaction in flight: scheduler serialized them")
	}

	s := db.Stats()
	if s.CompactionsInFlight != 1 {
		t.Fatalf("after flush: CompactionsInFlight = %d, want 1 (still blocked)", s.CompactionsInFlight)
	}
	if s.CompactionsInFlightByLevel[1] != 1 {
		t.Fatalf("per-level gauge: L1 in-flight = %d, want 1", s.CompactionsInFlightByLevel[1])
	}
	if s.Flushes <= flushesBefore {
		t.Fatalf("flush did not run: %d -> %d", flushesBefore, s.Flushes)
	}
	if s.MaxConcurrentBackground < 2 {
		t.Fatalf("MaxConcurrentBackground = %d, want >= 2", s.MaxConcurrentBackground)
	}
	if s.ClaimedBytes <= 0 {
		t.Fatalf("ClaimedBytes = %d, want > 0 while compaction in flight", s.ClaimedBytes)
	}

	close(gate.release)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("overlap-key"))
	if err != nil || string(got) != "overlap-val" {
		t.Fatalf("Get(overlap-key) = %q, %v", got, err)
	}
}

// TestConflictingCompactionsSerialize proves that a second compaction on
// the same level pair does NOT start while the first is in flight, and
// proceeds once the first releases its claim.
func TestConflictingCompactionsSerialize(t *testing.T) {
	gate := newGateFS(storage.NewMemFS())
	opts := smallOpts(gate)
	opts.BackgroundWorkers = 2
	opts.DisableAutoCompaction = true
	opts.DisableTrivialMove = true // L2 is empty: force a rewrite so Create fires
	db := mustOpen(t, opts)
	defer db.Close()
	rng := rand.New(rand.NewSource(43))

	overloadLevel1(t, db, rng)

	gate.arm()
	db.mu.Lock()
	db.opts.DisableAutoCompaction = false
	db.mu.Unlock()
	db.nudge()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("background compaction never started")
	}

	// A manual compaction of the same level pair must wait for the claim.
	second := make(chan error, 1)
	go func() { second <- db.CompactLevel(1) }()
	time.Sleep(200 * time.Millisecond) // give a buggy scheduler time to misbehave
	select {
	case err := <-second:
		t.Fatalf("conflicting L1 compaction completed while L1→L2 in flight (err=%v)", err)
	default:
	}
	if got := db.Stats().CompactionsInFlight; got != 1 {
		t.Fatalf("CompactionsInFlight = %d, want 1 (conflict must not start)", got)
	}

	close(gate.release)
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("second compaction after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second compaction never ran after claim release")
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDisjointCompactionsOverlap proves two compactions on disjoint level
// pairs (L1→L2 and L3→L4) run concurrently.
func TestDisjointCompactionsOverlap(t *testing.T) {
	gate := newGateFS(storage.NewMemFS())
	opts := smallOpts(gate)
	opts.BackgroundWorkers = 2
	opts.DisableAutoCompaction = true
	opts.DisableTrivialMove = true // empty target levels: force rewrites so Create fires
	db := mustOpen(t, opts)
	defer db.Close()
	rng := rand.New(rand.NewSource(44))

	// Set A down to L3, then set B (same key range, newer versions) to L1.
	fillLevel1(t, db, rng, "key", 600)
	drainLevel(t, db, 1)
	drainLevel(t, db, 2)
	if len(db.Version().Levels[3]) == 0 {
		t.Fatal("setup: L3 is empty")
	}
	fillLevel1(t, db, rng, "key", 600)
	if len(db.Version().Levels[1]) == 0 {
		t.Fatal("setup: L1 is empty")
	}

	// Block an L1→L2 compaction at its output Create.
	gate.arm()
	first := make(chan error, 1)
	go func() { first <- db.CompactLevel(1) }()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first compaction never reached its output Create")
	}

	// An L3→L4 compaction claims a disjoint pair: it must complete while
	// the first is still blocked.
	disjoint := make(chan error, 1)
	go func() { disjoint <- db.CompactLevel(3) }()
	select {
	case err := <-disjoint:
		if err != nil {
			t.Fatalf("disjoint compaction: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint L3→L4 compaction did not run while L1→L2 in flight")
	}
	select {
	case err := <-first:
		t.Fatalf("first compaction finished early (err=%v): gate broken", err)
	default:
	}
	if got := db.Stats().MaxConcurrentBackground; got < 2 {
		t.Fatalf("MaxConcurrentBackground = %d, want >= 2", got)
	}

	close(gate.release)
	if err := <-first; err != nil {
		t.Fatalf("first compaction: %v", err)
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Latest (set B) values must win everywhere.
	for _, i := range []int{0, 123, 599} {
		k := fmt.Sprintf("key%06d", i)
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
}

// TestSerialWorkerBackCompat verifies BackgroundWorkers=1 never runs two
// background units at once (the pre-scheduler serial behaviour).
func TestSerialWorkerBackCompat(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.BackgroundWorkers = 1
	opts.MemtableSize = 8 << 10
	db := mustOpen(t, opts)
	defer db.Close()

	rng := rand.New(rand.NewSource(45))
	val := make([]byte, 64)
	for i := 0; i < 4000; i++ {
		rng.Read(val)
		k := fmt.Sprintf("key%06d", rng.Intn(2000))
		if err := db.Put([]byte(k), append([]byte(nil), val...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Flushes == 0 || s.Compactions == 0 {
		t.Fatalf("workload too small: flushes=%d compactions=%d", s.Flushes, s.Compactions)
	}
	if s.MaxConcurrentBackground != 1 {
		t.Fatalf("MaxConcurrentBackground = %d, want exactly 1 with a single worker", s.MaxConcurrentBackground)
	}
}

// TestSchedulerStressRandom hammers the concurrent scheduler with parallel
// writers, readers, snapshots and iterators (run it under -race). Each
// writer owns a disjoint key prefix so the final state is verifiable.
func TestSchedulerStressRandom(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.BackgroundWorkers = 3
	opts.MemtableSize = 16 << 10
	db := mustOpen(t, opts)

	const writers = 4
	opsPerWriter := 2500
	if testing.Short() {
		opsPerWriter = 600
	}
	finals := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		finals[w] = map[string]string{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < opsPerWriter; i++ {
				k := fmt.Sprintf("w%d-%04d", w, rng.Intn(400))
				if rng.Intn(10) == 0 {
					if err := db.Delete([]byte(k)); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					delete(finals[w], k)
				} else {
					v := fmt.Sprintf("v%d-%d", w, i)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Errorf("writer %d put: %v", w, err)
						return
					}
					finals[w][k] = v
				}
			}
		}()
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	// Point readers: values churn, but errors other than not-found are bugs.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("w%d-%04d", rng.Intn(writers), rng.Intn(400))
			if _, err := db.Get([]byte(k)); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("reader: Get(%s): %v", k, err)
				return
			}
		}
	}()
	// Snapshots: a pinned read view must be stable across re-reads.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		rng := rand.New(rand.NewSource(8))
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := db.GetSnapshot()
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			k := []byte(fmt.Sprintf("w%d-%04d", rng.Intn(writers), rng.Intn(400)))
			v1, err1 := snap.Get(k)
			time.Sleep(time.Millisecond)
			v2, err2 := snap.Get(k)
			if (err1 == nil) != (err2 == nil) || string(v1) != string(v2) {
				var layout strings.Builder
				v := db.vs.Current()
				for l := 0; l < NumLevels; l++ {
					for _, tm := range v.Levels[l] {
						if userInRange(k, tm) {
							fmt.Fprintf(&layout, " L%d:%d[%s..%s]", l, tm.Num,
								ikey.UserKey(tm.Smallest), ikey.UserKey(tm.Largest))
						}
					}
				}
				v3, err3 := snap.Get(k)
				t.Errorf("snapshot unstable: key=%s seq=%d: %q,%v then %q,%v then %q,%v; layout:%s",
					k, snap.Seq(), v1, err1, v2, err2, v3, err3, layout.String())
				snap.Release()
				return
			}
			snap.Release()
		}
	}()
	// Iterators: scans must be strictly ascending whatever the tree does.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := db.NewIterator()
			if err != nil {
				t.Errorf("iterator: %v", err)
				return
			}
			prev := ""
			for ok := it.First(); ok; ok = it.Next() {
				k := string(it.Key())
				if prev != "" && k <= prev {
					t.Errorf("iterator out of order: %q after %q", k, prev)
					break
				}
				prev = k
			}
			if err := it.Err(); err != nil {
				t.Errorf("iterator error: %v", err)
			}
			it.Close()
		}
	}()

	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		db.Close()
		return
	}

	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	verify := func() {
		t.Helper()
		for w := 0; w < writers; w++ {
			for k, want := range finals[w] {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != want {
					t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, want)
				}
			}
		}
	}
	verify()
	if s := db.Stats(); s.MaxConcurrentBackground < 2 {
		t.Errorf("stress never overlapped background work: max concurrent = %d", s.MaxConcurrentBackground)
	}

	// Survive a restart: the concurrently-written manifest must replay.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, opts)
	defer db.Close()
	verify()
}

// TestAdaptivePCPStress runs two disjoint-level adaptive PCP compactions
// concurrently with point readers and an in-flight memtable flush (run it
// under -race): the resizable pipelines, the shared token pools and the
// adaptive pilots must tolerate concurrent background work without races,
// token leaks or lost data.
func TestAdaptivePCPStress(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.BackgroundWorkers = 3
	opts.DisableAutoCompaction = true
	opts.Compaction.ComputeParallel = 3
	opts.Compaction.IOParallel = 2
	opts.PipelineComputeTokens = 4
	opts.PipelineIOTokens = 4
	db := mustOpen(t, opts)
	defer db.Close()
	rng := rand.New(rand.NewSource(46))

	// Set A down to L3, then set B (same keys, newer versions) to L1 — the
	// L1→L2 and L3→L4 compactions then claim disjoint level pairs and their
	// leases contend for the same token pools.
	fillLevel1(t, db, rng, "key", 600)
	drainLevel(t, db, 1)
	drainLevel(t, db, 2)
	fillLevel1(t, db, rng, "key", 600)
	if len(db.Version().Levels[1]) == 0 || len(db.Version().Levels[3]) == 0 {
		t.Fatal("setup: need tables at both L1 and L3")
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key%06d", rng.Intn(600))
				if _, err := db.Get([]byte(k)); err != nil {
					t.Errorf("reader: Get(%s): %v", k, err)
					return
				}
			}
		}(int64(60 + r))
	}

	var work sync.WaitGroup
	errs := make(chan error, 3)
	work.Add(3)
	go func() { defer work.Done(); errs <- db.CompactLevel(1) }()
	go func() { defer work.Done(); errs <- db.CompactLevel(3) }()
	go func() {
		// A memtable flush in flight alongside both compactions.
		defer work.Done()
		for i := 0; i < 400; i++ {
			if err := db.Put([]byte(fmt.Sprintf("flush%05d", i)), []byte("v")); err != nil {
				errs <- err
				return
			}
		}
		errs <- db.Flush()
	}()
	work.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.PipelinedCompactions < 2 {
		t.Fatalf("PipelinedCompactions = %d, want >= 2", s.PipelinedCompactions)
	}
	if s.PipelineComputeLeased != 0 || s.PipelineIOLeased != 0 {
		t.Fatalf("leaked pipeline tokens: leased = %d/%d after all work drained",
			s.PipelineComputeLeased, s.PipelineIOLeased)
	}
	for _, i := range []int{0, 123, 599} {
		k := fmt.Sprintf("key%06d", i)
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	for _, i := range []int{0, 399} {
		k := fmt.Sprintf("flush%05d", i)
		if got, err := db.Get([]byte(k)); err != nil || string(got) != "v" {
			t.Fatalf("Get(%s) = %q, %v", k, got, err)
		}
	}
}
