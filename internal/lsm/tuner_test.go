package lsm

import (
	"testing"
	"time"
)

// readHeavySample and writePressureSample are canonical window entries for
// the two non-default verdicts.
func readHeavySample() tunerSample {
	return tunerSample{Gets: 1000, Writes: 10}
}

func writePressureSample() tunerSample {
	return tunerSample{
		Writes:           1000,
		FlushBytes:       1 << 20,
		CompactionOutput: 4 << 20, // amp (1+4)/1 = 5 ≥ lazyWriteAmpThreshold
		StallCount:       1,
	}
}

// TestTunerVerdicts pins the classifier on aggregated windows.
func TestTunerVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		hasHeat bool
		sample  tunerSample
		want    string
	}{
		{"balanced", true, tunerSample{Writes: 100, Gets: 100}, PolicyLeveling},
		{"read-heavy", true, readHeavySample(), PolicyColdestRange},
		{"read-heavy-no-heat", false, readHeavySample(), PolicyLeveling},
		{"write-pressure-high-amp", true, writePressureSample(), PolicyLazyLeveling},
		{"stalls-but-low-amp", true, tunerSample{
			Writes: 1000, FlushBytes: 1 << 20, CompactionOutput: 1 << 20, StallCount: 3,
		}, PolicyLeveling}, // amp 2.0 < 2.5: stalls alone don't escalate
		{"high-amp-no-pressure", true, tunerSample{
			Writes: 1000, FlushBytes: 1 << 20, CompactionOutput: 4 << 20,
		}, PolicyLeveling}, // amp without stalls/denials/retries is healthy throughput
		{"retries-and-amp", true, tunerSample{
			Writes: 1000, FlushBytes: 1 << 20, CompactionOutput: 4 << 20, BackgroundRetries: 1,
		}, PolicyLazyLeveling},
		{"denials-and-amp", true, tunerSample{
			Writes: 1000, FlushBytes: 1 << 20, CompactionOutput: 4 << 20, GovernorDenials: 2,
		}, PolicyLazyLeveling},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tu := newPolicyTuner(PolicyLeveling, 4, tc.hasHeat)
			tu.window[0], tu.window[1] = tc.sample, tc.sample
			tu.filled = 2
			if got := tu.evaluate(); got != tc.want {
				t.Fatalf("evaluate() = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestTunerHysteresis: a verdict must repeat on consecutive evaluations
// before the tuner switches, and a single contradicting window resets the
// pending confirmation count.
func TestTunerHysteresis(t *testing.T) {
	tu := newPolicyTuner(PolicyLeveling, 2, true)

	// First two samples fill the window; evaluation starts at the second.
	if got := tu.observe(readHeavySample()); got != PolicyLeveling {
		t.Fatalf("before min samples: %s", got)
	}
	// Second sample: first read-heavy verdict → pending, not yet switched.
	if got := tu.observe(readHeavySample()); got != PolicyLeveling {
		t.Fatalf("single confirmation switched early to %s", got)
	}
	// Third: second consecutive verdict → switch.
	if got := tu.observe(readHeavySample()); got != PolicyColdestRange {
		t.Fatalf("after %d confirmations: %s, want %s", tunerConfirmations, got, PolicyColdestRange)
	}

	// An evaluation that re-confirms the current policy clears any pending
	// verdict: the confirmation count restarts from scratch afterwards.
	tu.pending, tu.pendingN = PolicyLazyLeveling, tunerConfirmations-1
	if got := tu.observe(readHeavySample()); got != PolicyColdestRange {
		t.Fatalf("current-policy window flipped to %s", got)
	}
	if tu.pending != "" || tu.pendingN != 0 {
		t.Fatalf("pending verdict not cleared: %q ×%d", tu.pending, tu.pendingN)
	}
}

// TestTunerWindowSlides: old samples age out of the ring, so a sustained
// new phase flips the verdict even after a long prior phase.
func TestTunerWindowSlides(t *testing.T) {
	tu := newPolicyTuner(PolicyLeveling, 3, true)
	for i := 0; i < 10; i++ {
		tu.observe(tunerSample{Writes: 100, Gets: 100})
	}
	if tu.current != PolicyLeveling {
		t.Fatalf("balanced phase: %s", tu.current)
	}
	got := tu.current
	for i := 0; i < 6; i++ {
		got = tu.observe(readHeavySample())
	}
	if got != PolicyColdestRange {
		t.Fatalf("sustained read-heavy phase: %s, want %s", got, PolicyColdestRange)
	}
}

// TestDeltaSample pins the Stats-to-sample subtraction.
func TestDeltaSample(t *testing.T) {
	prev := Stats{Puts: 10, Deletes: 5, Gets: 100, FlushBytes: 1000,
		CompactionInputBytes: 2000, CompactionOutputBytes: 3000,
		StallCount: 1, StallTime: time.Second, BackgroundRetries: 2, GovernorDenials: 3}
	cur := Stats{Puts: 30, Deletes: 10, Gets: 400, FlushBytes: 1500,
		CompactionInputBytes: 2600, CompactionOutputBytes: 3700,
		StallCount: 2, StallTime: 3 * time.Second, BackgroundRetries: 2, GovernorDenials: 7}
	d := deltaSample(prev, cur)
	want := tunerSample{Writes: 25, Gets: 300, FlushBytes: 500,
		CompactionInput: 600, CompactionOutput: 700,
		StallCount: 1, StallTime: 2 * time.Second, BackgroundRetries: 0, GovernorDenials: 4}
	if d != want {
		t.Fatalf("deltaSample = %+v, want %+v", d, want)
	}
}
