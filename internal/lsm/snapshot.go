package lsm

import (
	"errors"

	"pcplsm/internal/ikey"
)

// ErrSnapshotReleased is returned by reads on a released snapshot.
var ErrSnapshotReleased = errors.New("lsm: snapshot already released")

// Snapshot is a consistent read-only view of the store at the sequence
// number it was taken. While a snapshot is live, compactions retain every
// version it can read (the merge step's retention rule), so reads stay
// stable no matter how much the tree churns. Release it when done —
// long-lived snapshots pin old versions and grow the tree.
type Snapshot struct {
	db       *DB
	seq      uint64
	released bool
}

// GetSnapshot captures the store's current state.
func (db *DB) GetSnapshot() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	// The watermark, not db.seq: a commit group that is mid-apply must not
	// become visible to the snapshot.
	seq := db.visibleSeq.Load()
	db.snapshots[seq]++
	return &Snapshot{db: db, seq: seq}, nil
}

// Release drops the snapshot's retention pin. Safe to call twice.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	db := s.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.snapshots[s.seq]; n > 1 {
		db.snapshots[s.seq] = n - 1
	} else {
		delete(db.snapshots, s.seq)
	}
}

// Seq returns the snapshot's sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Get returns the value key had when the snapshot was taken.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, ErrSnapshotReleased
	}
	return s.db.getAt(key, s.seq)
}

// NewIterator scans the store as of the snapshot.
func (s *Snapshot) NewIterator() (*Iterator, error) {
	if s.released {
		return nil, ErrSnapshotReleased
	}
	return s.db.newIteratorAt(s.seq)
}

// smallestSnapshot returns the sequence compactions must retain versions
// for, or 0 when no snapshots are live. Called with db.mu held.
func (db *DB) smallestSnapshot() uint64 {
	if len(db.snapshots) == 0 {
		return 0
	}
	min := ikey.MaxSeq
	for seq := range db.snapshots {
		if seq < min {
			min = seq
		}
	}
	return min
}
