package lsm

import (
	"encoding/binary"
	"fmt"

	"pcplsm/internal/ikey"
)

// Batch collects writes that commit atomically: one WAL record, one
// sequence-number range, applied to the memtable together.
type Batch struct {
	entries []batchEntry
	size    int64
}

type batchEntry struct {
	kind ikey.Kind
	key  []byte
	val  []byte
}

// Put queues a set operation. The key and value are copied.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, batchEntry{
		kind: ikey.KindSet,
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), value...),
	})
	b.size += int64(len(key) + len(value))
}

// Delete queues a deletion. The key is copied.
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, batchEntry{
		kind: ikey.KindDelete,
		key:  append([]byte(nil), key...),
	})
	b.size += int64(len(key))
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.entries) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.entries = b.entries[:0]
	b.size = 0
}

// encode serializes the batch as a WAL record with base sequence seq:
//
//	uvarint seq | uvarint count | count × (kind byte | klen | key | [vlen | value])
func (b *Batch) encode(seq uint64) []byte {
	return b.encodeTo(nil, seq)
}

// encodeTo appends the encoded record to dst (usually a reused scratch
// buffer) and returns the extended slice. The layout is the one encode
// documents; a record holding the entries of several merged batches is
// produced by one header (base seq, total count) followed by each batch's
// appendEntries, and is indistinguishable from a single large batch.
func (b *Batch) encodeTo(dst []byte, seq uint64) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(b.entries)))
	return b.appendEntries(dst)
}

// appendEntries appends only the entry bodies (no seq/count header).
func (b *Batch) appendEntries(dst []byte) []byte {
	for _, e := range b.entries {
		dst = append(dst, byte(e.kind))
		dst = binary.AppendUvarint(dst, uint64(len(e.key)))
		dst = append(dst, e.key...)
		if e.kind == ikey.KindSet {
			dst = binary.AppendUvarint(dst, uint64(len(e.val)))
			dst = append(dst, e.val...)
		}
	}
	return dst
}

// entriesSize returns the exact encoded length of appendEntries' output,
// so a merged group record can be pre-sized instead of grown piecemeal.
func (b *Batch) entriesSize() int {
	n := 0
	for _, e := range b.entries {
		n += 1 + uvarintLen(uint64(len(e.key))) + len(e.key)
		if e.kind == ikey.KindSet {
			n += uvarintLen(uint64(len(e.val))) + len(e.val)
		}
	}
	return n
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeBatch parses a WAL record back into operations.
func decodeBatch(rec []byte) (seq uint64, entries []batchEntry, err error) {
	bad := func(what string) (uint64, []batchEntry, error) {
		return 0, nil, fmt.Errorf("lsm: corrupt batch record: %s", what)
	}
	seq, n := binary.Uvarint(rec)
	if n <= 0 {
		return bad("seq")
	}
	rec = rec[n:]
	count, n := binary.Uvarint(rec)
	if n <= 0 {
		return bad("count")
	}
	rec = rec[n:]
	for i := uint64(0); i < count; i++ {
		if len(rec) < 1 {
			return bad("kind")
		}
		kind := ikey.Kind(rec[0])
		if kind != ikey.KindSet && kind != ikey.KindDelete {
			return bad("unknown kind")
		}
		rec = rec[1:]
		klen, n := binary.Uvarint(rec)
		if n <= 0 || uint64(len(rec)-n) < klen {
			return bad("key")
		}
		key := rec[n : n+int(klen)]
		rec = rec[n+int(klen):]
		var val []byte
		if kind == ikey.KindSet {
			vlen, n := binary.Uvarint(rec)
			if n <= 0 || uint64(len(rec)-n) < vlen {
				return bad("value")
			}
			val = rec[n : n+int(vlen)]
			rec = rec[n+int(vlen):]
		}
		entries = append(entries, batchEntry{kind: kind, key: key, val: val})
	}
	if len(rec) != 0 {
		return bad("trailing bytes")
	}
	return seq, entries, nil
}
