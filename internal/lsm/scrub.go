package lsm

import (
	"bytes"
	"fmt"
	"time"

	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
)

// Integrity subsystem: every table records a whole-file digest in the
// manifest at creation (computed incrementally by the writers — no extra
// read pass). Three consumers re-read tables through the untrusted path and
// compare against that record:
//
//   - the background scrub worker (scrubLoop), which cycles over live
//     tables detecting at-rest bit-rot before a foreground read trips on
//     it — rate-limited, yielding to compaction I/O via the governor's
//     token pool, resumable across reopen via a manifest-journaled cursor;
//   - verify-before-install (verifyOutput), the Options.ParanoidChecks
//     re-read of every fresh flush/compaction output before the version
//     edit references it;
//   - compaction-input attribution (quarantineCorruptInputs), which turns
//     a mid-merge corruption failure into a scoped quarantine of the
//     specific damaged input instead of a store-wide degradation.
//
// A table that fails verification is quarantined (quarantineTable in
// db.go): reads over its range fail with ErrQuarantined, the policy layer
// stops picking it, everything else keeps serving.

// TableScrubResult is the outcome of verifying one table.
type TableScrubResult struct {
	Num     uint64 `json:"num"`
	Level   int    `json:"level"`
	Size    int64  `json:"size"`
	Entries int64  `json:"entries"`
	// BytesVerified is how much of the physical file image was read back
	// and digested (equals Size on a complete pass).
	BytesVerified int64 `json:"bytes_verified"`
	OK            bool  `json:"ok"`
	// Quarantined reports that this verification failed and isolated the
	// table; Skipped that the table was already quarantined and not re-read.
	Quarantined bool   `json:"quarantined,omitempty"`
	Skipped     bool   `json:"skipped,omitempty"`
	Err         string `json:"err,omitempty"`
}

// ScrubReport summarizes one full manual scrub cycle (DB.Scrub).
type ScrubReport struct {
	Tables      []TableScrubResult `json:"tables"`
	Verified    int                `json:"verified"`
	Bytes       int64              `json:"bytes"`
	Corruptions int                `json:"corruptions"`
	Skipped     int                `json:"skipped"`
}

// verifyTableFile re-reads one table from the device and checks it against
// its manifest metadata: block checksums, decompression, strict internal
// key order, index agreement (all via sstable.Verify), then entry count,
// file size, bounds, and the whole-file digest recorded at creation. It
// opens a private handle so the verification observes what is on the
// device now, not what the table cache retained from when the file was
// healthy.
func (db *DB) verifyTableFile(meta *TableMeta) (sstable.VerifyStats, error) {
	f, err := db.fs.Open(meta.FileName())
	if err != nil {
		return sstable.VerifyStats{}, err
	}
	// NewReader owns f: on failure it closes the handle itself.
	r, err := sstable.NewReader(f, ikey.Compare)
	if err != nil {
		return sstable.VerifyStats{}, err
	}
	defer r.Close()
	vs, err := r.Verify()
	if err != nil {
		return vs, err
	}
	return vs, checkTableMeta(meta, vs)
}

// checkTableMeta compares a verification pass against the manifest record.
// Mismatches wrap sstable.ErrBadTable so they classify as corruption.
func checkTableMeta(meta *TableMeta, vs sstable.VerifyStats) error {
	switch {
	case vs.Entries != meta.Entries:
		return fmt.Errorf("%w: %s holds %d entries, manifest records %d",
			sstable.ErrBadTable, meta.FileName(), vs.Entries, meta.Entries)
	case meta.Size != 0 && vs.Bytes != meta.Size:
		return fmt.Errorf("%w: %s is %d bytes, manifest records %d",
			sstable.ErrBadTable, meta.FileName(), vs.Bytes, meta.Size)
	case meta.Digest != 0 && vs.Digest != meta.Digest:
		// Digest 0 means the table predates digest recording; every block
		// checksum still verified above, so the pass is not weakened much.
		return fmt.Errorf("%w: %s file digest %#08x, manifest records %#08x",
			sstable.ErrBadTable, meta.FileName(), vs.Digest, meta.Digest)
	case vs.Entries > 0 && (!bytes.Equal(vs.Smallest, meta.Smallest) || !bytes.Equal(vs.Largest, meta.Largest)):
		return fmt.Errorf("%w: %s bounds [%q, %q] disagree with manifest [%q, %q]",
			sstable.ErrBadTable, meta.FileName(), vs.Smallest, vs.Largest,
			meta.Smallest, meta.Largest)
	}
	return nil
}

// verifyOutput is the Options.ParanoidChecks verify-before-install pass: a
// freshly written flush/compaction output is re-read from the device and
// checked against the metadata the write stage produced, so a pipeline
// bug, torn write, or lying device is caught before the manifest ever
// references the file. Any failure is wrapped as a retryable
// outputVerifyError — the caller deletes the rejected output and the
// inputs are still intact, so the unit reruns like a transient failure.
func (db *DB) verifyOutput(meta *TableMeta) error {
	db.stats.addParanoidVerify()
	if _, err := db.verifyTableFile(meta); err != nil {
		db.stats.addParanoidReject()
		db.opts.logf("lsm: paranoid check rejected output %s: %v", meta.FileName(), err)
		return &outputVerifyError{err: err}
	}
	return nil
}

// quarantineCorruptInputs attributes a corruption error raised mid-merge:
// each input table is re-verified and the ones that fail are quarantined.
// Returns how many tables were quarantined; zero means the damage could
// not be pinned on an input (the caller then falls back to the store-wide
// degradation).
func (db *DB) quarantineCorruptInputs(tables []*TableMeta, cause error) int {
	n := 0
	for _, t := range tables {
		if _, err := db.verifyTableFile(t); err != nil && isCorruptionErr(err) {
			db.stats.addCorruption()
			db.quarantineTable(t.Num, err)
			n++
		}
	}
	if n > 0 {
		db.opts.logf("lsm: compaction corruption attributed: %d input table(s) quarantined (%v)", n, cause)
	}
	return n
}

// scrubTable verifies one live table, quarantining it on corruption. The
// caller must hold a version pin covering t so the file cannot be deleted
// mid-verification.
func (db *DB) scrubTable(t *TableMeta, level int) TableScrubResult {
	res := TableScrubResult{Num: t.Num, Level: level, Size: t.Size, Entries: t.Entries}
	vs, err := db.verifyTableFile(t)
	res.BytesVerified = vs.Bytes
	db.stats.addScrubbedTable(vs.Bytes)
	if err == nil {
		res.OK = true
		return res
	}
	res.Err = err.Error()
	if isCorruptionErr(err) {
		db.stats.addScrubCorruption()
		db.stats.addCorruption()
		db.quarantineTable(t.Num, err)
		res.Quarantined = true
	}
	// Non-corruption errors (a transient injected read fault, say) leave
	// the table alone; the next cycle re-verifies it.
	return res
}

// persistScrubCursor journals the scrub worker's position so a cycle
// resumes where it left off across reopen instead of restarting at the
// lowest-numbered table.
func (db *DB) persistScrubCursor(num uint64) {
	db.mu.Lock()
	db.scrubCursor = num
	db.mu.Unlock()
	db.installMu.Lock()
	err := db.man.append(&manifestRecord{ScrubCursor: num})
	db.installMu.Unlock()
	if err != nil {
		// append marks manifest I/O failures permanent: the journal may hold
		// a torn line nothing can truncate until recovery, so later appends
		// must not run. Same degradation as any other manifest failure.
		db.setBgErr(&backgroundError{cause: err})
	}
}

// nextScrubTarget picks the live, non-quarantined table with the smallest
// number above the cursor; with none left it wraps to the smallest overall
// and reports the wrap (one full cycle completed). Called with db.mu held.
func nextScrubTarget(v *Version, cursor uint64, quar map[uint64]struct{}) (t *TableMeta, level int, wrapped bool) {
	var above, any *TableMeta
	var aboveLevel, anyLevel int
	for l := range v.Levels {
		for _, tt := range v.Levels[l] {
			if _, q := quar[tt.Num]; q {
				continue
			}
			if any == nil || tt.Num < any.Num {
				any, anyLevel = tt, l
			}
			if tt.Num > cursor && (above == nil || tt.Num < above.Num) {
				above, aboveLevel = tt, l
			}
		}
	}
	if above != nil {
		return above, aboveLevel, false
	}
	return any, anyLevel, any != nil
}

// scrubStep verifies the next table in cursor order, returning how many
// bytes it read (0 when there was nothing to do or the governor had no
// I/O headroom — scrubbing always yields to compaction and flush I/O).
func (db *DB) scrubStep() int64 {
	if db.governor != nil {
		if !db.governor.tryLeaseIO() {
			db.stats.addGovernorDenial()
			return 0
		}
		defer db.governor.returnIO()
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return 0
	}
	v := db.vs.Acquire()
	t, level, wrapped := nextScrubTarget(v, db.scrubCursor, db.quarantine)
	db.mu.Unlock()
	// The pin keeps t's file on disk even if a concurrent compaction drops
	// it from the current version mid-verification.
	defer func() {
		db.vs.Release(v)
		db.sweepZombies()
	}()
	if t == nil {
		return 0
	}
	if wrapped {
		db.stats.addScrubCycle()
	}
	res := db.scrubTable(t, level)
	db.persistScrubCursor(t.Num)
	return res.BytesVerified
}

// scrubLoop is the background scrub worker, started by Open when
// Options.ScrubInterval > 0. Between tables it sleeps the configured
// interval plus whatever ScrubBytesPerSec demands for the bytes just read,
// so verification cannot monopolize device bandwidth.
func (db *DB) scrubLoop() {
	defer db.bgWg.Done()
	timer := time.NewTimer(db.opts.ScrubInterval)
	defer timer.Stop()
	for {
		select {
		case <-db.bgQuit:
			return
		case <-timer.C:
		}
		read := db.scrubStep()
		pause := db.opts.ScrubInterval
		if read > 0 && db.opts.ScrubBytesPerSec > 0 {
			if throttle := time.Duration(read * int64(time.Second) / db.opts.ScrubBytesPerSec); throttle > pause {
				pause = throttle
			}
		}
		timer.Reset(pause)
	}
}

// Scrub runs one full manual integrity cycle over every live table,
// synchronously and unthrottled (an explicit request should finish as fast
// as the device allows; only the background worker rate-limits and yields
// tokens). Tables that fail verification are quarantined exactly as the
// background scrubber would, and the scrub cursor is advanced past every
// table verified so a subsequent background cycle starts fresh.
func (db *DB) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return rep, ErrClosed
	}
	v := db.vs.Acquire()
	quar := db.quarantine // copy-on-write map: safe to read without mu
	db.mu.Unlock()
	defer func() {
		db.vs.Release(v)
		db.sweepZombies()
	}()
	var maxNum uint64
	for level := 0; level < NumLevels; level++ {
		for _, t := range v.Levels[level] {
			if _, q := quar[t.Num]; q {
				rep.Tables = append(rep.Tables, TableScrubResult{
					Num: t.Num, Level: level, Size: t.Size, Entries: t.Entries,
					Skipped: true, Err: "already quarantined",
				})
				rep.Skipped++
				continue
			}
			res := db.scrubTable(t, level)
			rep.Tables = append(rep.Tables, res)
			rep.Verified++
			rep.Bytes += res.BytesVerified
			if res.Quarantined {
				rep.Corruptions++
			}
			if t.Num > maxNum {
				maxNum = t.Num
			}
		}
	}
	db.stats.addScrubCycle()
	if maxNum > 0 {
		db.persistScrubCursor(maxNum)
	}
	return rep, nil
}
