package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pcplsm/internal/cache"
	"pcplsm/internal/ikey"
	"pcplsm/internal/storage"
)

// testTab builds a TableMeta spanning the user-key range [lo, hi].
func testTab(num uint64, lo, hi string, size int64) *TableMeta {
	return &TableMeta{
		Num:      num,
		Size:     size,
		Entries:  1,
		Smallest: ikey.Make([]byte(lo), ikey.MaxSeq, ikey.KindSet),
		Largest:  ikey.Make([]byte(hi), 0, ikey.KindSet),
	}
}

// testPolicyEnv builds a synthetic picker environment with every level
// pair free and empty cursors.
func testPolicyEnv(opts Options) *policyEnv {
	o := opts
	return &policyEnv{
		opts:   &o,
		free:   func(int) bool { return true },
		cursor: &[NumLevels][]byte{},
	}
}

// TestPickPriorityNormalizedScores pins the priority order of the fixed
// picker: scores are dimensionless fullness ratios, so a deeply oversized
// L1 outranks a barely-over-trigger L0 (the old picker compared a file
// count against byte ratios and let either starve the other), while an L0
// run count past the urgent threshold wins outright because it is
// marching writers toward the stall trigger.
func TestPickPriorityNormalizedScores(t *testing.T) {
	opts := smallOpts(nil) // trigger 4, stall 8, base 64K → urgent at 6
	env := testPolicyEnv(opts)
	pol := levelingPolicy{}

	l1Oversized := []*TableMeta{ // 3× the 64K L1 budget
		testTab(10, "a", "f", 96<<10),
		testTab(11, "g", "p", 96<<10),
	}

	// L0 exactly at trigger (score 1.0) vs L1 at 3.0: L1 must win.
	v := &Version{}
	for i := uint64(0); i < 4; i++ {
		v.Levels[0] = append(v.Levels[0], testTab(i, "a", "z", 4<<10))
	}
	v.Levels[1] = l1Oversized
	pc := pol.Pick(env, v)
	if pc == nil || pc.level != 1 {
		t.Fatalf("oversized L1 vs at-trigger L0: picked %+v, want level 1", pc)
	}

	// L0 at the urgent threshold (6 ≥ (4+8)/2) wins even against L1 at 3.0.
	for i := uint64(4); i < 6; i++ {
		v.Levels[0] = append(v.Levels[0], testTab(i, "a", "z", 4<<10))
	}
	pc = pol.Pick(env, v)
	if pc == nil || pc.level != 0 {
		t.Fatalf("urgent L0 vs oversized L1: picked %+v, want level 0", pc)
	}
	if len(pc.inputs) != 6 {
		t.Fatalf("L0 pick took %d runs, want all 6", len(pc.inputs))
	}

	// Equal fullness ratios tie to the shallower level.
	v = &Version{}
	v.Levels[1] = []*TableMeta{testTab(20, "a", "m", 128<<10)}   // 2.0
	v.Levels[2] = []*TableMeta{testTab(21, "a", "m", 2*256<<10)} // 2.0
	if pc = pol.Pick(env, v); pc == nil || pc.level != 1 {
		t.Fatalf("equal scores: picked %+v, want shallower level 1", pc)
	}

	// Nothing over threshold → nil.
	v = &Version{}
	v.Levels[0] = []*TableMeta{testTab(30, "a", "b", 4<<10)}
	v.Levels[1] = []*TableMeta{testTab(31, "c", "d", 4<<10)}
	if pc = pol.Pick(env, v); pc != nil {
		t.Fatalf("under-threshold tree: picked %+v, want nil", pc)
	}

	// A claimed level pair is skipped in favor of the runner-up.
	v = &Version{}
	v.Levels[1] = []*TableMeta{testTab(40, "a", "m", 3*64<<10)}  // 3.0
	v.Levels[2] = []*TableMeta{testTab(41, "n", "z", 2*256<<10)} // 2.0
	busy := testPolicyEnv(opts)
	busy.free = func(level int) bool { return level != 1 }
	if pc = pol.Pick(busy, v); pc == nil || pc.level != 2 {
		t.Fatalf("claimed L1: picked %+v, want level 2", pc)
	}
}

// TestLazyLevelingDefersUpperLevels verifies the tiering posture: levels
// above the deepest populated one tolerate the slack factor before
// compacting, L0 accumulates twice the configured trigger, and the
// deepest populated level keeps strict leveling thresholds.
func TestLazyLevelingDefersUpperLevels(t *testing.T) {
	opts := smallOpts(nil)
	env := testPolicyEnv(opts)
	lazy := lazyLevelingPolicy{}
	strict := levelingPolicy{}

	// L1 at 1.5× with data below it: leveling compacts, lazy defers
	// (1.5 / lazySlack = 0.75).
	v := &Version{}
	v.Levels[1] = []*TableMeta{testTab(1, "a", "m", 96<<10)}
	v.Levels[2] = []*TableMeta{testTab(2, "n", "z", 8<<10)}
	if pc := strict.Pick(env, v); pc == nil || pc.level != 1 {
		t.Fatalf("leveling: picked %+v, want level 1", pc)
	}
	if pc := lazy.Pick(env, v); pc != nil {
		t.Fatalf("lazy-leveling: picked level %d, want deferral", pc.level)
	}

	// Past the slack (2× threshold) lazy compacts too.
	v.Levels[1] = []*TableMeta{testTab(1, "a", "m", 128<<10)}
	if pc := lazy.Pick(env, v); pc == nil || pc.level != 1 {
		t.Fatalf("lazy-leveling past slack: picked %+v, want level 1", pc)
	}

	// The deepest populated level is not deferred: same 1.5× ratio on L2
	// with nothing below it must compact under both policies.
	v = &Version{}
	v.Levels[2] = []*TableMeta{testTab(3, "a", "m", 384<<10)} // 1.5 × 256K
	if pc := lazy.Pick(env, v); pc == nil || pc.level != 2 {
		t.Fatalf("lazy-leveling deepest level: picked %+v, want level 2", pc)
	}

	// L0 at the configured trigger is deferred, at 2× it merges.
	v = &Version{}
	for i := uint64(0); i < 4; i++ {
		v.Levels[0] = append(v.Levels[0], testTab(i, "a", "z", 4<<10))
	}
	v.Levels[1] = []*TableMeta{testTab(9, "a", "z", 4<<10)}
	if pc := lazy.Pick(env, v); pc != nil {
		t.Fatalf("lazy-leveling L0 at trigger: picked level %d, want deferral", pc.level)
	}
	for i := uint64(4); i < 8; i++ {
		v.Levels[0] = append(v.Levels[0], testTab(i, "a", "z", 4<<10))
	}
	if pc := lazy.Pick(env, v); pc == nil || pc.level != 0 {
		t.Fatalf("lazy-leveling L0 at 2× trigger: picked %+v, want level 0", pc)
	}
}

// TestColdestRangePickAvoidsHotTables verifies the heat-map-driven file
// picker skips tables whose range holds read-hot keys and degrades to the
// round-robin pick when everything is hot or no heat data exists.
func TestColdestRangePickAvoidsHotTables(t *testing.T) {
	opts := smallOpts(nil)
	env := testPolicyEnv(opts)
	heat := cache.NewHeat()
	env.heat = heat

	v := &Version{}
	v.Levels[1] = []*TableMeta{
		testTab(1, "a", "c", 64<<10),
		testTab(2, "d", "f", 64<<10),
		testTab(3, "g", "i", 64<<10),
	}

	// Heat up tables 1 and 2 (heatHotThreshold touches each).
	for i := 0; i < int(heatHotThreshold); i++ {
		heat.Touch([]byte("b"))
		heat.Touch([]byte("e"))
	}
	if got := coldestPick(env, v, 1); got == nil || got.Num != 3 {
		t.Fatalf("coldestPick = %+v, want cold table 3", got)
	}

	// All tables hot → degrade to the cursor pick (first table, nil cursor).
	for i := 0; i < int(heatHotThreshold); i++ {
		heat.Touch([]byte("h"))
	}
	if got := coldestPick(env, v, 1); got == nil || got.Num != 1 {
		t.Fatalf("coldestPick all-hot = %+v, want cursor fallback table 1", got)
	}

	// No heat source at all → cursor pick.
	env.heat = nil
	if got := coldestPick(env, v, 1); got == nil || got.Num != 1 {
		t.Fatalf("coldestPick without heat = %+v, want table 1", got)
	}
}

// TestCursorPickRotates pins the round-robin picker: the cursor selects
// the first table starting strictly after it and wraps to the front.
func TestCursorPickRotates(t *testing.T) {
	opts := smallOpts(nil)
	env := testPolicyEnv(opts)
	v := &Version{}
	v.Levels[1] = []*TableMeta{
		testTab(1, "a", "c", 1),
		testTab(2, "d", "f", 1),
		testTab(3, "g", "i", 1),
	}

	if got := cursorPick(env, v, 1); got.Num != 1 {
		t.Fatalf("nil cursor: picked %d, want 1", got.Num)
	}
	env.cursor[1] = v.Levels[1][0].Largest
	if got := cursorPick(env, v, 1); got.Num != 2 {
		t.Fatalf("cursor after table 1: picked %d, want 2", got.Num)
	}
	env.cursor[1] = v.Levels[1][2].Largest
	if got := cursorPick(env, v, 1); got.Num != 1 {
		t.Fatalf("cursor past the end: picked %d, want wrap to 1", got.Num)
	}
}

// fillDisjointL1 loads several disjoint key bands and pushes each through
// L0 so L1 accumulates multiple tables.
func fillDisjointL1(t *testing.T, db *DB, bands int) {
	t.Helper()
	val := bytes.Repeat([]byte("v"), 64)
	for band := 0; band < bands; band++ {
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("band%02d-%05d", band, i)
			if err := db.Put([]byte(k), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactLevel(0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactPtrPersistsAcrossReopen proves the round-robin cursor is
// journaled in the manifest and keeps advancing after a restart instead
// of resetting to the start of the level (the latent bug this PR fixes).
func TestCompactPtrPersistsAcrossReopen(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)

	fillDisjointL1(t, db, 4)
	if n := len(db.Version().Levels[1]); n < 3 {
		t.Fatalf("setup: L1 has %d tables, want ≥ 3", n)
	}

	// One manual L1 compaction advances the cursor past the first table.
	if err := db.CompactLevel(1); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	cursor1 := append([]byte(nil), db.compactPtr[1]...)
	db.mu.Unlock()
	if cursor1 == nil {
		t.Fatal("cursor not set after L1 compaction")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the cursor must survive, not reset.
	db = mustOpen(t, opts)
	defer db.Close()
	db.mu.Lock()
	cursor2 := append([]byte(nil), db.compactPtr[1]...)
	db.mu.Unlock()
	if !bytes.Equal(cursor1, cursor2) {
		t.Fatalf("cursor reset across reopen: %q → %q",
			ikey.String(cursor1), ikey.String(cursor2))
	}

	// The next compaction continues the rotation monotonically: the new
	// cursor (the compacted table's largest key) lies strictly beyond the
	// persisted one.
	if err := db.CompactLevel(1); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	cursor3 := append([]byte(nil), db.compactPtr[1]...)
	db.mu.Unlock()
	if ikey.Compare(cursor3, cursor2) <= 0 {
		t.Fatalf("cursor did not advance monotonically after reopen: %q → %q",
			ikey.String(cursor2), ikey.String(cursor3))
	}
}

// TestTrivialMoveInstallsMetadataOnly drives runTrivialMove directly: a
// single L1 table with no L2 overlap must descend as a pure version edit —
// same file number, no new table files, counted in Stats — and the move
// must survive a reopen via its manifest record.
func TestTrivialMoveInstallsMetadataOnly(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)

	fillDisjointL1(t, db, 1)
	v := db.Version()
	if len(v.Levels[1]) == 0 {
		t.Fatal("setup: L1 empty")
	}
	target := v.Levels[1][0]
	tablesBefore := countTableFiles(t, fs)

	db.mu.Lock()
	pc := pickInputs(db.penv, v, 1, cursorPick)
	if pc == nil || len(pc.overlap) != 0 {
		db.mu.Unlock()
		t.Fatalf("setup: expected overlap-free pick, got %+v", pc)
	}
	claim := db.tryClaimCompaction(pc)
	if claim == nil {
		db.mu.Unlock()
		t.Fatal("claim failed")
	}
	if !db.trivialMoveOK(pc) {
		db.mu.Unlock()
		t.Fatal("trivialMoveOK = false for an overlap-free single input")
	}
	db.mu.Unlock()

	if err := db.runTrivialMove(pc); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	db.releaseCompaction(claim)
	db.mu.Unlock()

	v = db.Version()
	for _, tab := range v.Levels[1] {
		if tab.Num == target.Num {
			t.Fatal("moved table still present in L1")
		}
	}
	found := false
	for _, tab := range v.Levels[2] {
		if tab.Num == target.Num {
			found = true
		}
	}
	if !found {
		t.Fatalf("table %d not found in L2 after trivial move", target.Num)
	}
	if err := v.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.TrivialMoves != 1 || s.TrivialMoveBytes != target.Size {
		t.Fatalf("TrivialMoves=%d bytes=%d, want 1/%d", s.TrivialMoves, s.TrivialMoveBytes, target.Size)
	}
	if got := countTableFiles(t, fs); got != tablesBefore {
		t.Fatalf("table file count changed %d → %d: a trivial move must not write tables",
			tablesBefore, got)
	}

	// The move is journaled: reopen and verify layout and reads.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, opts)
	defer db.Close()
	found = false
	for _, tab := range db.Version().Levels[2] {
		if tab.Num == target.Num {
			found = true
		}
	}
	if !found {
		t.Fatal("trivial move lost across reopen")
	}
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("band%02d-%05d", 0, i)
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s) after move+reopen: %v", k, err)
		}
	}
}

// countTableFiles counts .sst files in the store.
func countTableFiles(t *testing.T, fs storage.FS) int {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if _, err := parseTableNum(name); err == nil {
			n++
		}
	}
	return n
}

// TestTrivialMoveGuards pins the denial cases: disabled via Options, a
// multi-input pick, an overlapping pick, and a move into the bottom level
// while no snapshot is open (the rewrite is the only tombstone-drop
// opportunity there).
func TestTrivialMoveGuards(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	tab := testTab(99, "a", "b", 1<<10)
	single := &pickedCompaction{level: 1, inputs: []*TableMeta{tab}}

	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.trivialMoveOK(single) {
		t.Fatal("baseline single overlap-free pick should be movable")
	}
	if db.trivialMoveOK(&pickedCompaction{level: 1, inputs: []*TableMeta{tab, tab}}) {
		t.Fatal("multi-input pick must not move")
	}
	if db.trivialMoveOK(&pickedCompaction{level: 1, inputs: []*TableMeta{tab}, overlap: []*TableMeta{tab}}) {
		t.Fatal("overlapping pick must not move")
	}
	if db.trivialMoveOK(&pickedCompaction{level: NumLevels - 2, inputs: []*TableMeta{tab}}) {
		t.Fatal("move into the bottom level must rewrite to drop tombstones")
	}
	db.opts.DisableTrivialMove = true
	if db.trivialMoveOK(single) {
		t.Fatal("DisableTrivialMove must force the rewrite path")
	}
	db.opts.DisableTrivialMove = false
}

// TestTrivialMovesHappenOnSequentialLoad is the end-to-end check: a
// sequential insert load creates non-overlapping tables all the way down,
// so the background scheduler should install some of them as trivial
// moves instead of rewriting.
func TestTrivialMovesHappenOnSequentialLoad(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.CompactionPolicy = PolicyLeveling
	db := mustOpen(t, opts)
	defer db.Close()

	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seq%08d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.TrivialMoves == 0 {
		t.Fatalf("sequential load produced no trivial moves (compactions=%d)", s.Compactions)
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyEquivalenceRandomOps drives every policy (and the self-tuned
// auto mode) through the same seeded random workload — puts, deletes,
// reads, flushes, reopens — against a reference map. Policies decide only
// when and what to compact, never merge semantics, so read results must be
// identical regardless of policy.
func TestPolicyEquivalenceRandomOps(t *testing.T) {
	policies := []string{"auto", PolicyLeveling, PolicyLazyLeveling, PolicyColdestRange}
	for _, polName := range policies {
		polName := polName
		t.Run(polName, func(t *testing.T) {
			t.Parallel()
			fs := storage.NewMemFS()
			opts := smallOpts(fs)
			opts.BlockCacheBytes = 128 << 10 // enable the heat map for coldest-range
			if polName != "auto" {
				opts.CompactionPolicy = polName
			} else {
				opts.PolicyTunerWindow = 4
			}

			db := mustOpen(t, opts)
			defer func() { db.Close() }()
			ref := map[string]string{}
			rng := rand.New(rand.NewSource(0xBEEF))
			key := func() string { return fmt.Sprintf("key%06d", rng.Intn(2000)) }

			const steps = 6000
			for step := 0; step < steps; step++ {
				switch r := rng.Intn(100); {
				case r < 40: // put
					k, v := key(), fmt.Sprintf("v%d", step)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatalf("step %d put: %v", step, err)
					}
					ref[k] = v
				case r < 50: // delete
					k := key()
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					delete(ref, k)
				case r < 94: // point read
					k := key()
					got, err := db.Get([]byte(k))
					want, ok := ref[k]
					if ok {
						if err != nil || string(got) != want {
							t.Fatalf("step %d: Get(%s) = %q,%v want %q", step, k, got, err, want)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: Get(%s) = %q,%v want not-found", step, k, got, err)
					}
				case r < 97: // flush
					if err := db.Flush(); err != nil {
						t.Fatalf("step %d: flush: %v", step, err)
					}
				default: // close + reopen (crash-free restart)
					if err := db.Close(); err != nil {
						t.Fatalf("step %d: close: %v", step, err)
					}
					db = mustOpen(t, opts)
				}
			}

			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			if err := db.Version().checkInvariants(); err != nil {
				t.Fatal(err)
			}
			verifyAll(t, db, ref)
		})
	}
}

// TestTunerSwitchesPolicyOnWorkloadShift scripts a workload shift through
// the production sampling path (maybeTunePolicy reads the same stats
// collector the read/write paths feed) and asserts the auto-tuner reacts:
// a read-dominated phase selects coldest-range, a stalling write-heavy
// phase with high write amplification selects lazy-leveling.
func TestTunerSwitchesPolicyOnWorkloadShift(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.BlockCacheBytes = 128 << 10 // heat map on → coldest-range reachable
	opts.PolicyTunerWindow = 2       // smallest window: reacts fastest
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	if got := db.ActivePolicy(); got != PolicyLeveling {
		t.Fatalf("initial policy = %s, want %s", got, PolicyLeveling)
	}

	// Read-heavy phase: gets outnumber writes far beyond readHeavyFactor.
	for i := 0; i < 6 && db.ActivePolicy() != PolicyColdestRange; i++ {
		db.stats.gets.Add(5000)
		db.stats.puts.Add(10)
		db.maybeTunePolicy()
	}
	if got := db.ActivePolicy(); got != PolicyColdestRange {
		t.Fatalf("after read-heavy phase: policy = %s, want %s", got, PolicyColdestRange)
	}

	// Write-pressure phase: stalls plus write-amp past the threshold.
	for i := 0; i < 8 && db.ActivePolicy() != PolicyLazyLeveling; i++ {
		db.stats.puts.Add(5000)
		db.stats.update(func(s *Stats) {
			s.StallCount++
			s.FlushBytes += 1 << 20
			s.CompactionOutputBytes += 4 << 20 // amp (1+4)/1 = 5 ≥ 2.5
		})
		db.maybeTunePolicy()
	}
	if got := db.ActivePolicy(); got != PolicyLazyLeveling {
		t.Fatalf("after write-pressure phase: policy = %s, want %s", got, PolicyLazyLeveling)
	}

	s := db.Stats()
	if s.PolicySwitches < 2 {
		t.Fatalf("PolicySwitches = %d, want ≥ 2", s.PolicySwitches)
	}
	if s.ActivePolicy != PolicyLazyLeveling {
		t.Fatalf("Stats().ActivePolicy = %s, want %s", s.ActivePolicy, PolicyLazyLeveling)
	}
	if got := db.Metrics().Gauge("lsm_policy_active").Load(); got != policyIndex(PolicyLazyLeveling) {
		t.Fatalf("lsm_policy_active = %d, want %d", got, policyIndex(PolicyLazyLeveling))
	}
}

// TestPinnedPolicyDisablesTuner: naming a policy in Options must pin it —
// no tuner, no switches, whatever the workload does.
func TestPinnedPolicyDisablesTuner(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.CompactionPolicy = PolicyLazyLeveling
	opts.BlockCacheBytes = 128 << 10
	db := mustOpen(t, opts)
	defer db.Close()

	if db.tuner != nil {
		t.Fatal("pinned policy must not construct a tuner")
	}
	db.stats.gets.Add(100000)
	db.maybeTunePolicy()
	db.maybeTunePolicy()
	if got := db.ActivePolicy(); got != PolicyLazyLeveling {
		t.Fatalf("pinned policy drifted to %s", got)
	}
	if db.Stats().PolicySwitches != 0 {
		t.Fatal("pinned policy recorded switches")
	}
}

// TestUnknownPolicyRejected: a typo in Options.CompactionPolicy must fail
// Open, not silently fall back.
func TestUnknownPolicyRejected(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.CompactionPolicy = "tiering-turbo"
	if _, err := Open(opts); err == nil {
		t.Fatal("Open accepted an unknown compaction policy")
	}
}

// TestUrgentL0OverridesPolicyScore is the stall-deadlock regression: the
// urgent-L0 override must be count-based, not score-based. Lazy-leveling
// halves L0's fullness score, so at the urgent run count its score can
// still be under 1.0 — if the override consulted the score, a store with
// a tight stall trigger would stall its writers on an L0 the policy was
// never going to drain (writers add no flushes while stalled, so the
// count could never grow to lazy-leveling's own threshold: deadlock).
func TestUrgentL0OverridesPolicyScore(t *testing.T) {
	opts := smallOpts(nil) // trigger 4, stall 8 → urgent at 6
	env := testPolicyEnv(opts)
	v := &Version{}
	for i := uint64(0); i < 6; i++ {
		v.Levels[0] = append(v.Levels[0], testTab(i, "a", "z", 4<<10))
	}
	// Lazy-leveling's scaled L0 score is 6/4/2 = 0.75 < 1.0, but six runs
	// are at the urgent threshold: the pick must still drain L0.
	pc := lazyLevelingPolicy{}.Pick(env, v)
	if pc == nil || pc.level != 0 {
		t.Fatalf("lazy-leveling at urgent L0 count: picked %+v, want level 0", pc)
	}

	// End to end: lazy-leveling pinned with the stall trigger clamped down
	// to the compaction trigger. Before the fix this deadlocked — writers
	// stalled at 2 L0 runs while the policy wanted 4 — so completing the
	// load at all is the assertion.
	dopts := smallOpts(storage.NewMemFS())
	dopts.CompactionPolicy = PolicyLazyLeveling
	dopts.L0CompactionTrigger = 2
	dopts.L0StallTrigger = 2
	db := mustOpen(t, dopts)
	defer db.Close()
	ref := loadKeys(t, db, 2000, 11, 64)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, ref)
}

// TestStallTriggerClampedToCompactionTrigger: a stall trigger below the
// compaction trigger would stall writers on an L0 nothing will drain;
// withDefaults must lift it to the trigger.
func TestStallTriggerClampedToCompactionTrigger(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.L0CompactionTrigger = 6
	opts.L0StallTrigger = 2
	db := mustOpen(t, opts)
	defer db.Close()
	if got := db.opts.L0StallTrigger; got != 6 {
		t.Fatalf("L0StallTrigger = %d, want clamped to 6", got)
	}
}
