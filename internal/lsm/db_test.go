package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/storage"
)

// smallOpts returns options scaled down so tests exercise flushes and
// multi-level compactions with tiny data volumes.
func smallOpts(fs storage.FS) Options {
	return Options{
		FS:                  fs,
		MemtableSize:        32 << 10,
		TableSize:           16 << 10,
		BlockSize:           1 << 10,
		BaseLevelSize:       64 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 4,
		L0StallTrigger:      8,
		Compaction:          core.Config{Mode: core.ModePCP, SubtaskSize: 8 << 10},
	}
}

func mustOpen(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()

	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k1"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Get([]byte("k1")); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
	// Delete.
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	// Missing key.
	if _, err := db.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("bk%03d", i)), []byte("bv"))
	}
	b.Delete([]byte("bk050"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("bk%03d", i)
		_, err := db.Get([]byte(k))
		if i == 50 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("bk050 should be deleted (batch order), got %v", err)
			}
		} else if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	if db.Seq() != 101 {
		t.Fatalf("Seq = %d, want 101", db.Seq())
	}
}

// loadKeys inserts n keys and returns the reference map.
func loadKeys(t testing.TB, db *DB, n int, seed int64, valLen int) map[string]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := map[string]string{}
	val := make([]byte, valLen)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%08d", rng.Intn(n*4))
		rng.Read(val)
		v := fmt.Sprintf("%x", val[:8])
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	return ref
}

func verifyAll(t testing.TB, db *DB, ref map[string]string) {
	t.Helper()
	for k, v := range ref {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%s) = %q, want %q", k, got, v)
		}
	}
}

func TestFlushAndCompactionPreserveData(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"scp", core.Config{Mode: core.ModeSCP, SubtaskSize: 8 << 10}},
		{"pcp", core.Config{Mode: core.ModePCP, SubtaskSize: 8 << 10}},
		{"c-ppcp", core.Config{Mode: core.ModePCP, SubtaskSize: 8 << 10, ComputeParallel: 3}},
		{"s-ppcp", core.Config{Mode: core.ModePCP, SubtaskSize: 8 << 10, IOParallel: 3}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			opts := smallOpts(storage.NewMemFS())
			opts.Compaction = mode.cfg
			db := mustOpen(t, opts)
			defer db.Close()

			ref := loadKeys(t, db, 4000, 42, 100)
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			st := db.Stats()
			if st.Flushes == 0 {
				t.Fatal("no flushes happened; test not exercising the tree")
			}
			if st.Compactions == 0 {
				t.Fatal("no compactions happened")
			}
			if err := db.Version().checkInvariants(); err != nil {
				t.Fatal(err)
			}
			verifyAll(t, db, ref)

			// Data must live in deeper levels, not just L0.
			v := db.Version()
			deeper := 0
			for l := 1; l < NumLevels; l++ {
				deeper += len(v.Levels[l])
			}
			if deeper == 0 {
				t.Fatal("no tables below L0 after compactions")
			}
		})
	}
}

func TestDeletesSurviveCompaction(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	// Write keys, flush to tables, then delete half and compact again.
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), bytes.Repeat([]byte{'v'}, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 2 {
		db.Delete([]byte(fmt.Sprintf("key%06d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key%06d", i)
		_, err := db.Get([]byte(k))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %s still visible: %v", k, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving %s lost: %v", k, err)
		}
	}
}

func TestIterator(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%06d", (i*37)%3000)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		ref[k] = v
	}
	// Delete a stripe.
	for i := 0; i < 3000; i += 5 {
		k := fmt.Sprintf("key%06d", i)
		db.Delete([]byte(k))
		delete(ref, k)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	var wantKeys []string
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if i >= len(wantKeys) {
			t.Fatalf("iterator yielded extra key %q", it.Key())
		}
		if string(it.Key()) != wantKeys[i] {
			t.Fatalf("position %d: got %q want %q", i, it.Key(), wantKeys[i])
		}
		if string(it.Value()) != ref[wantKeys[i]] {
			t.Fatalf("value of %q: got %q want %q", it.Key(), it.Value(), ref[wantKeys[i]])
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(wantKeys) {
		t.Fatalf("scanned %d keys, want %d", i, len(wantKeys))
	}

	// Seek semantics.
	mid := wantKeys[len(wantKeys)/2]
	if !it.Seek([]byte(mid)) || string(it.Key()) != mid {
		t.Fatalf("Seek(%q) landed on %q", mid, it.Key())
	}
	if it.Seek([]byte("zzzz")) {
		t.Fatal("Seek past end should be invalid")
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("1"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Writes after iterator creation must be invisible.
	db.Put([]byte("a"), []byte("2"))
	db.Put([]byte("c"), []byte("2"))
	db.Delete([]byte("b"))

	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, fmt.Sprintf("%s=%s", it.Key(), it.Value()))
	}
	want := []string{"a=1", "b=1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("snapshot scan = %v, want %v", got, want)
	}
}

func TestIteratorSurvivesConcurrentCompaction(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), bytes.Repeat([]byte{'x'}, 64))
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Kick off heavy churn while scanning.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			db.Put([]byte(fmt.Sprintf("key%06d", i)), bytes.Repeat([]byte{'y'}, 64))
		}
		db.Flush()
	}()
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		count++
	}
	<-done
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != 3000 {
		t.Fatalf("scan under churn saw %d keys, want 3000", count)
	}
}

func TestRecoveryAfterClose(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	db := mustOpen(t, opts)
	ref := loadKeys(t, db, 3000, 7, 80)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	verifyAll(t, db2, ref)
	if err := db2.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryFromWALOnly(t *testing.T) {
	// Simulate a crash: writes only in the WAL (no flush), then reopen
	// without Close by cloning the FS state... MemFS shares state, so just
	// abandon the first DB (no Close) and open a second one on the same FS.
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.MemtableSize = 1 << 30 // never flush
	db := mustOpen(t, opts)
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("wk%04d", i)), []byte("wv")); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon db (simulating a crash). Its background goroutine is idle.
	st := db.Stats()
	if st.Flushes != 0 {
		t.Fatal("unexpected flush defeats the test setup")
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 500; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("wk%04d", i))); err != nil {
			t.Fatalf("key wk%04d lost after WAL recovery: %v", i, err)
		}
	}
	if db2.Seq() < 500 {
		t.Fatalf("recovered seq %d < 500", db2.Seq())
	}
}

func TestRecoveryTornWAL(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.MemtableSize = 1 << 30
	db := mustOpen(t, opts)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("tk%04d", i)), bytes.Repeat([]byte{'v'}, 200))
	}
	// Find the live WAL and tear its tail.
	names, _ := fs.List()
	var walName string
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			walName = n
		}
	}
	data, err := storage.ReadAll(fs, walName)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(walName); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteFile(fs, walName, data[:len(data)-50]); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	// Early keys must survive; only the torn tail may be lost.
	for i := 0; i < 100; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("tk%04d", i))); err != nil {
			t.Fatalf("early key tk%04d lost: %v", i, err)
		}
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%05d", w, i)
				if err := db.Put([]byte(k), []byte(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if i%10 == 0 {
					if v, err := db.Get([]byte(k)); err != nil || string(v) != k {
						t.Errorf("readback %s: %q %v", k, v, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-%05d", w, i)
			if v, err := db.Get([]byte(k)); err != nil || string(v) != k {
				t.Fatalf("final %s: %q %v", k, v, err)
			}
		}
	}
}

func TestWriteStallAccounting(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.L0StallTrigger = 2
	opts.L0CompactionTrigger = 2
	db := mustOpen(t, opts)
	defer db.Close()
	loadKeys(t, db, 4000, 3, 120)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.StallCount == 0 {
		t.Log("no stalls recorded (compaction kept up); acceptable but unusual at these settings")
	}
}

func TestCompactLevelManual(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()
	ref := loadKeys(t, db, 2000, 9, 100)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	if len(v.Levels[0]) == 0 {
		t.Fatal("no L0 tables after flush")
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	v = db.Version()
	if len(v.Levels[0]) != 0 {
		t.Fatalf("L0 still has %d tables after manual compaction", len(v.Levels[0]))
	}
	if len(v.Levels[1]) == 0 {
		t.Fatal("L1 empty after L0 compaction")
	}
	verifyAll(t, db, ref)

	if err := db.CompactLevel(NumLevels - 1); err == nil {
		t.Fatal("compacting the bottom level should fail")
	}
	st := db.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.LastCompaction.InputBytes == 0 || st.CompactionBandwidth() <= 0 {
		t.Fatal("compaction stats not recorded")
	}
}

func TestGetFromAllLevels(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	// Layer 1: old values, pushed to L1.
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("old"))
	}
	db.Flush()
	db.CompactLevel(0)
	// Layer 2: some overwrites, in L0.
	for i := 0; i < 500; i += 2 {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("mid"))
	}
	db.Flush()
	// Layer 3: a few newest values, in the memtable.
	for i := 0; i < 500; i += 10 {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("new"))
	}

	for i := 0; i < 500; i++ {
		want := "old"
		if i%2 == 0 {
			want = "mid"
		}
		if i%10 == 0 {
			want = "new"
		}
		got, err := db.Get([]byte(fmt.Sprintf("key%05d", i)))
		if err != nil || string(got) != want {
			t.Fatalf("key%05d = %q (%v), want %q", i, got, err, want)
		}
	}
}

func TestClosedDBOperationsFail(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := db.NewIterator(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewIterator after close: %v", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenRequiresFS(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without FS should fail")
	}
}

func TestEmptyBatchWrite(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()
	var b Batch
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if db.Seq() != 0 {
		t.Fatal("empty batch consumed sequence numbers")
	}
}

func TestBatchEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var b Batch
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			k := make([]byte, rng.Intn(30))
			rng.Read(k)
			if rng.Intn(3) == 0 {
				b.Delete(k)
			} else {
				v := make([]byte, rng.Intn(100))
				rng.Read(v)
				b.Put(k, v)
			}
		}
		seq := rng.Uint64() % (1 << 50)
		rec := b.encode(seq)
		gotSeq, entries, err := decodeBatch(rec)
		if err != nil {
			t.Fatal(err)
		}
		if gotSeq != seq || len(entries) != b.Len() {
			t.Fatalf("decode mismatch: seq %d/%d, n %d/%d", gotSeq, seq, len(entries), b.Len())
		}
		for i := range entries {
			if entries[i].kind != b.entries[i].kind ||
				!bytes.Equal(entries[i].key, b.entries[i].key) ||
				!bytes.Equal(entries[i].val, b.entries[i].val) {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	}
}

func TestDecodeBatchCorrupt(t *testing.T) {
	var b Batch
	b.Put([]byte("key"), []byte("value"))
	rec := b.encode(7)
	for cut := 0; cut < len(rec); cut++ {
		if _, _, err := decodeBatch(rec[:cut]); err == nil && cut < len(rec) {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// Unknown kind byte.
	bad := append([]byte{}, rec...)
	bad[2] = 0x7f
	if _, _, err := decodeBatch(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTableFileNameRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 42, 999999, 12345678} {
		num, err := parseTableNum(TableFileName(n))
		if err != nil || num != n {
			t.Fatalf("round trip %d: %d, %v", n, num, err)
		}
	}
	if _, err := parseTableNum("garbage.sst"); err == nil {
		t.Fatal("garbage name parsed")
	}
}

func TestCodecOptionRespected(t *testing.T) {
	for _, kind := range []compress.Kind{compress.None, compress.Snappy, compress.Flate} {
		opts := smallOpts(storage.NewMemFS())
		opts.Codec = compress.MustByKind(kind)
		db := mustOpen(t, opts)
		ref := loadKeys(t, db, 1500, int64(kind)+100, 100)
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		verifyAll(t, db, ref)
		db.Close()
	}
}

func TestStatsString(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()
	loadKeys(t, db, 500, 1, 50)
	if s := db.Stats().String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestSeqSurvivesFlushAndReopen is the regression test for a recovery bug:
// a flush deletes its WAL, and if the live WAL is still empty at reopen the
// sequence counter must come from the flush's manifest checkpoint. Without
// it, post-reopen writes get lower sequence numbers than the flushed data
// and are silently shadowed (deletes stop working).
func TestSeqSurvivesFlushAndReopen(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	db := mustOpen(t, opts)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("sq%04d", i)), []byte("v1"))
	}
	if err := db.Flush(); err != nil { // deletes the WAL holding seqs 1..200
		t.Fatal(err)
	}
	seqBefore := db.Seq()
	if err := db.Close(); err != nil { // live WAL is empty at this point
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	if got := db2.Seq(); got < seqBefore {
		t.Fatalf("sequence regressed across reopen: %d < %d", got, seqBefore)
	}
	// New writes must shadow the flushed data, and deletes must stick.
	db2.Put([]byte("sq0000"), []byte("v2"))
	db2.Delete([]byte("sq0001"))
	if v, err := db2.Get([]byte("sq0000")); err != nil || string(v) != "v2" {
		t.Fatalf("overwrite after reopen: %q, %v", v, err)
	}
	if _, err := db2.Get([]byte("sq0001")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete after reopen ineffective: %v", err)
	}
}
