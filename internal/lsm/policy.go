package lsm

// Compaction policies: which compaction runs, as opposed to how it runs
// (the procedure — SCP vs the paper's pipelined PCP — configured in
// Options.Compaction). Sarkar et al.'s design-space analysis (PAPERS.md)
// factors a compaction strategy into orthogonal axes: the trigger (when a
// level is due), the data-layout posture (leveling vs tiering hybrids),
// the file-picking policy (which table of a due level moves), and the
// granularity shortcuts (trivial moves of non-overlapping tables). The
// CompactionPolicy interface captures exactly those axes; the DB consults
// the active policy on every scheduler pass and the self-tuner
// (tuner.go) may swap policies at runtime as the workload shifts.
//
// All policies operate on the same leveled on-disk invariants (levels ≥ 1
// sorted and disjoint), so the read path, the version-edit machinery, and
// the crash-recovery contract are policy-independent — a policy decides
// only *when* and *what*, never the merge semantics. This is what makes
// the policies interchangeable mid-run and byte-equivalent in read
// results (see TestPolicyEquivalenceRandomOps).

import (
	"fmt"
	"sort"

	"pcplsm/internal/cache"
	"pcplsm/internal/ikey"
)

// Policy names accepted by Options.CompactionPolicy.
const (
	// PolicyLeveling is the LevelDB-style default: compact the level with
	// the highest normalized fullness ratio, round-robin file picking.
	PolicyLeveling = "leveling"
	// PolicyLazyLeveling is a tiering posture at the upper levels: L0
	// accumulates more runs and the levels above the deepest populated one
	// tolerate a slack factor before compacting, concentrating merge work
	// at the tree's bottom. Fewer, larger merges — lower write
	// amplification at the cost of read amplification.
	PolicyLazyLeveling = "lazy-leveling"
	// PolicyColdestRange triggers like leveling but picks the table whose
	// key range is coldest per the block-cache heat map, so compactions
	// churn cold data and hot ranges keep their cached blocks.
	PolicyColdestRange = "coldest-range"
)

// CompactionPolicy decides which compaction to run: trigger scoring (is
// any level due, and which is most urgent), input selection (which table
// of the due level moves), and trivial-move eligibility. Pick is called
// with db.mu held on every scheduler pass; implementations must be cheap
// and must not retain env or v.
type CompactionPolicy interface {
	// Name returns the policy's Options.CompactionPolicy name.
	Name() string
	// Pick selects the next compaction, or nil when no unclaimed level is
	// over its threshold under this policy's triggers.
	Pick(env *policyEnv, v *Version) *pickedCompaction
	// AllowTrivialMove reports whether a picked input with no next-level
	// overlap may be installed as a metadata-only move instead of being
	// rewritten through the compaction pipeline.
	AllowTrivialMove() bool
}

// policyEnv is the picker's view of the engine, assembled once at Open
// and handed to every Pick call (under db.mu, so the cursor array and the
// claim state are stable for the duration of the call).
type policyEnv struct {
	opts   *Options
	free   func(level int) bool // levelPairFree: is the {L, L+1} pair unclaimed
	cursor *[NumLevels][]byte   // per-level round-robin compaction cursors
	heat   *cache.Heat          // nil without a block cache or with pre-warm disabled
	// quarantined reports whether a table failed integrity verification and
	// was isolated; the pickers skip such tables and refuse any pick whose
	// overlap would merge through one. Nil means "nothing quarantined".
	quarantined func(num uint64) bool
}

// isQuarantined is the nil-tolerant form of env.quarantined.
func (env *policyEnv) isQuarantined(num uint64) bool {
	return env.quarantined != nil && env.quarantined(num)
}

// newPolicy resolves a policy name to its implementation.
func newPolicy(name string) (CompactionPolicy, error) {
	switch name {
	case PolicyLeveling:
		return levelingPolicy{}, nil
	case PolicyLazyLeveling:
		return lazyLevelingPolicy{}, nil
	case PolicyColdestRange:
		return coldestRangePolicy{}, nil
	}
	return nil, fmt.Errorf("lsm: unknown compaction policy %q", name)
}

// policyIndex maps a policy name to the stable lsm_policy_active gauge
// value (0 leveling, 1 lazy-leveling, 2 coldest-range).
func policyIndex(name string) int64 {
	switch name {
	case PolicyLazyLeveling:
		return 1
	case PolicyColdestRange:
		return 2
	default:
		return 0
	}
}

// levelScores returns each level's compaction urgency in commensurate
// units: every score is a dimensionless fullness ratio where 1.0 means
// exactly at trigger. L0's ratio is file-count based (every L0 run costs
// a read-path probe), deeper levels are size based — dividing each by its
// own trigger is what makes them comparable, fixing the old picker's
// incommensurate count-vs-bytes comparison.
func levelScores(opts *Options, v *Version) [NumLevels]float64 {
	var s [NumLevels]float64
	s[0] = float64(len(v.Levels[0])) / float64(opts.L0CompactionTrigger)
	for l := 1; l < NumLevels-1; l++ {
		s[l] = float64(v.LevelSize(l)) / float64(opts.maxLevelSize(l))
	}
	return s
}

// l0UrgentThreshold is the L0 file count at which L0 wins outright,
// regardless of deeper levels' fullness ratios: past the midpoint between
// the compaction trigger and the stall trigger, every flush is marching
// writers toward a stall, and a stalled writer is strictly worse than an
// oversized level.
func l0UrgentThreshold(opts *Options) int {
	return max(opts.L0CompactionTrigger, (opts.L0CompactionTrigger+opts.L0StallTrigger)/2)
}

// chooseLevel applies the shared priority rule to a score vector: the
// urgent-L0 override first, then the highest fullness ratio ≥ 1.0 among
// unclaimed level pairs, ties to the shallower level (strict > keeps the
// first maximum).
//
// The urgent override is deliberately count-based, not score-based: a
// policy that scales L0's score down (lazy-leveling) must still drain L0
// once the run count marches toward the stall trigger, because a stalled
// writer adds no more flushes — if the policy waited for its own relaxed
// threshold past the stall point, writers and picker would deadlock.
// withDefaults guarantees L0StallTrigger ≥ L0CompactionTrigger, so the
// urgent threshold (at most the trigger/stall midpoint) is always reached
// at or before the stall.
func chooseLevel(env *policyEnv, v *Version, scores [NumLevels]float64) int {
	if env.free(0) && len(v.Levels[0]) >= l0UrgentThreshold(env.opts) {
		return 0
	}
	best, bestScore := -1, 0.0
	for l := 0; l < NumLevels-1; l++ {
		if scores[l] < 1.0 || !env.free(l) || len(v.Levels[l]) == 0 {
			continue
		}
		if scores[l] > bestScore {
			best, bestScore = l, scores[l]
		}
	}
	return best
}

// pickInputs assembles the inputs for a compaction at level: every L0 run
// (they may overlap each other), or the single table of a deeper level
// chosen by pickFile, plus the next level's overlap. A pick that would
// read a quarantined table is refused: merging through one would only
// re-read the damage (and fail the compaction), so its slice of the key
// space stays frozen until the quarantine is lifted.
func pickInputs(env *policyEnv, v *Version, level int,
	pickFile func(env *policyEnv, v *Version, level int) *TableMeta) *pickedCompaction {
	pc := &pickedCompaction{level: level}
	if level == 0 {
		// An L0 compaction takes every run; one quarantined run blocks them
		// all (dropping just it would merge stale data over newer versions).
		for _, t := range v.Levels[0] {
			if env.isQuarantined(t.Num) {
				return nil
			}
		}
		pc.inputs = append(pc.inputs, v.Levels[0]...)
	} else {
		t := pickFile(env, v, level)
		if t == nil {
			return nil
		}
		pc.inputs = append(pc.inputs, t)
	}
	smallest, largest := keyRange(pc.inputs)
	pc.overlap = v.overlapping(level+1, smallest, largest)
	for _, t := range pc.overlap {
		if env.isQuarantined(t.Num) {
			return nil
		}
	}
	return pc
}

// cursorPick is the round-robin file picker: the first table starting
// after the level's persisted cursor, wrapping to the start. The cursor
// is advanced at install time and journaled in the manifest, so the
// rotation survives reopen.
func cursorPick(env *policyEnv, v *Version, level int) *TableMeta {
	tables := v.Levels[level]
	if len(tables) == 0 {
		return nil
	}
	ptr := env.cursor[level]
	idx := 0
	if ptr != nil {
		idx = sort.Search(len(tables), func(i int) bool {
			return ikey.Compare(tables[i].Smallest, ptr) > 0
		})
		if idx == len(tables) {
			idx = 0
		}
	}
	// Rotate past quarantined tables so one frozen range does not stop the
	// rest of the level from compacting.
	for i := 0; i < len(tables); i++ {
		if t := tables[(idx+i)%len(tables)]; !env.isQuarantined(t.Num) {
			return t
		}
	}
	return nil
}

// levelingPolicy is the default: normalized max-fullness triggers,
// round-robin file picking.
type levelingPolicy struct{}

func (levelingPolicy) Name() string           { return PolicyLeveling }
func (levelingPolicy) AllowTrivialMove() bool { return true }

func (levelingPolicy) Pick(env *policyEnv, v *Version) *pickedCompaction {
	level := chooseLevel(env, v, levelScores(env.opts, v))
	if level < 0 {
		return nil
	}
	return pickInputs(env, v, level, cursorPick)
}

// Lazy-leveling knobs: L0 merges after lazyL0Factor× the configured
// trigger (more runs per merge — tiering's batching at level 0), and
// levels above the deepest populated one tolerate lazySlack× their
// leveling threshold so merge work concentrates at the bottom. The
// deepest populated level stays strictly leveled, which is the
// lazy-leveling corner of the design space approximated by threshold
// re-parameterization: levels ≥ 1 keep the disjointness invariant, so the
// read path and recovery are untouched.
const (
	lazyL0Factor = 2.0
	lazySlack    = 2.0
)

type lazyLevelingPolicy struct{}

func (lazyLevelingPolicy) Name() string           { return PolicyLazyLeveling }
func (lazyLevelingPolicy) AllowTrivialMove() bool { return true }

func (lazyLevelingPolicy) Pick(env *policyEnv, v *Version) *pickedCompaction {
	scores := levelScores(env.opts, v)
	deepest := 0
	for l := NumLevels - 1; l > 0; l-- {
		if len(v.Levels[l]) > 0 {
			deepest = l
			break
		}
	}
	scores[0] /= lazyL0Factor
	for l := 1; l < deepest; l++ {
		scores[l] /= lazySlack
	}
	level := chooseLevel(env, v, scores)
	if level < 0 {
		return nil
	}
	return pickInputs(env, v, level, cursorPick)
}

// coldestHotLimit caps how many heat samples a coldest-range pick
// consults; beyond the hottest few hundred ranges the signal is noise.
const coldestHotLimit = 1024

type coldestRangePolicy struct{}

func (coldestRangePolicy) Name() string           { return PolicyColdestRange }
func (coldestRangePolicy) AllowTrivialMove() bool { return true }

func (coldestRangePolicy) Pick(env *policyEnv, v *Version) *pickedCompaction {
	level := chooseLevel(env, v, levelScores(env.opts, v))
	if level < 0 {
		return nil
	}
	return pickInputs(env, v, level, coldestPick)
}

// coldestPick prefers a table whose key range holds no read-hot keys per
// the block-cache heat map, so compaction rewrites (which renumber files
// and churn the cache) land on cold data and the hot working set keeps
// its cached blocks. The scan starts at the round-robin cursor so
// equally-cold tables still rotate; with no heat data, or when every
// table covers a hot range, it degrades to the plain cursor pick.
func coldestPick(env *policyEnv, v *Version, level int) *TableMeta {
	first := cursorPick(env, v, level)
	tables := v.Levels[level]
	if env.heat == nil || first == nil || len(tables) < 2 {
		return first
	}
	hot := env.heat.Snapshot(heatHotThreshold, coldestHotLimit)
	if hot.Len() == 0 {
		return first
	}
	idx := 0
	for i, t := range tables {
		if t == first {
			idx = i
			break
		}
	}
	for i := 0; i < len(tables); i++ {
		t := tables[(idx+i)%len(tables)]
		if env.isQuarantined(t.Num) {
			continue
		}
		if !hot.AnyInRange(ikey.UserKey(t.Smallest), ikey.UserKey(t.Largest)) {
			return t
		}
	}
	return first
}
