package lsm

import (
	"bytes"

	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
)

// internalIterator is the movement contract shared by memtable and table
// iterators over internal keys.
type internalIterator interface {
	First() bool
	Next() bool
	Seek(internalKey []byte) bool
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
}

// memIterAdapter adds the (always-nil) Err method to a memtable iterator.
type memIterAdapter struct {
	it interface {
		First() bool
		Next() bool
		Seek([]byte) bool
		Valid() bool
		Key() []byte
		Value() []byte
	}
}

func (a memIterAdapter) First() bool        { return a.it.First() }
func (a memIterAdapter) Next() bool         { return a.it.Next() }
func (a memIterAdapter) Seek(k []byte) bool { return a.it.Seek(k) }
func (a memIterAdapter) Valid() bool        { return a.it.Valid() }
func (a memIterAdapter) Key() []byte        { return a.it.Key() }
func (a memIterAdapter) Value() []byte      { return a.it.Value() }
func (a memIterAdapter) Err() error         { return nil }

// quarRange is the user-key span of a quarantined table the scan must not
// silently step over.
type quarRange struct {
	lo, hi []byte
	num    uint64
}

// Iterator is a forward scan over the user-visible key space at a fixed
// snapshot: one (newest) version per user key, tombstones elided.
type Iterator struct {
	db      *DB // for corruption classification on source errors
	sources []internalIterator
	srcNum  []uint64          // table number per source (0 = memtable)
	readers []*sstable.Reader // owned table readers, closed on Close
	titers  []*sstable.Iter   // table iterators, closed (prefetches drained) first
	snap    uint64

	// quar holds the ranges of quarantined tables in the snapshot. A scan
	// whose window touches one fails with ErrQuarantined rather than
	// emitting a view that silently omits the quarantined data. low is the
	// scan window's lower bound (the Seek target); lowSet false means
	// unbounded (First). See touchesQuarantine.
	quar   []quarRange
	low    []byte
	lowSet bool

	key, val []byte
	skip     []byte // scratch for the just-emitted user key in Next
	valid    bool
	err      error
}

// fail records a source error (classifying corruption via the DB, scoped
// to the offending table when known) and invalidates the iterator.
func (it *Iterator) fail(err error, num uint64) bool {
	if it.db != nil {
		if num != 0 {
			err = it.db.noteTableReadError(num, err)
		} else {
			err = it.db.noteReadError(err)
		}
	}
	it.err = err
	it.valid = false
	return false
}

// NewIterator returns a scan over the DB at the current sequence number.
// The iterator sees a consistent snapshot regardless of concurrent writes
// and compactions. Close must be called to release table handles.
func (db *DB) NewIterator() (*Iterator, error) { return db.newIteratorAt(seqLatest) }

// newIteratorAt builds a scan at sequence seq (seqLatest = newest).
func (db *DB) newIteratorAt(seq uint64) (*Iterator, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mem, imm, v, snap := db.mem, db.imm, db.vs.Acquire(), db.visibleSeq.Load()
	quar := db.quarantine // copy-on-write map: safe to read without mu
	if seq != seqLatest {
		snap = seq
	}
	db.mu.Unlock()
	// Pin v while the private table handles are opened: a concurrent
	// compaction must not delete a table between the version capture and
	// its Open below. Once the handles exist they outlive file removal on
	// every FS implementation, so the pin can be dropped on return.
	defer func() {
		db.vs.Release(v)
		db.sweepZombies()
	}()

	it := &Iterator{db: db, snap: snap}
	it.sources = append(it.sources, memIterAdapter{it: mem.NewIter()})
	it.srcNum = append(it.srcNum, 0)
	if imm != nil {
		it.sources = append(it.sources, memIterAdapter{it: imm.NewIter()})
		it.srcNum = append(it.srcNum, 0)
	}
	// The iterator opens private readers so that compactions deleting input
	// tables cannot invalidate it mid-scan (open handles outlive removal on
	// every FS implementation). Quarantined tables get no reader — their
	// user-key ranges are recorded instead, and any scan window touching
	// one fails with ErrQuarantined (see touchesQuarantine).
	for level := 0; level < NumLevels; level++ {
		for _, t := range v.Levels[level] {
			if _, q := quar[t.Num]; q {
				it.quar = append(it.quar, quarRange{
					lo:  append([]byte(nil), ikey.UserKey(t.Smallest)...),
					hi:  append([]byte(nil), ikey.UserKey(t.Largest)...),
					num: t.Num,
				})
				continue
			}
			f, err := db.fs.Open(t.FileName())
			if err != nil {
				it.Close()
				return nil, err
			}
			// NewReader owns f: on failure it closes the handle itself.
			r, err := sstable.NewReader(f, ikey.Compare)
			if err != nil {
				it.Close()
				return nil, db.noteTableReadError(t.Num, err)
			}
			it.readers = append(it.readers, r)
			ti := r.NewIter()
			ti.SetReadahead(db.opts.ScanReadahead)
			it.titers = append(it.titers, ti)
			it.sources = append(it.sources, ti)
			it.srcNum = append(it.srcNum, t.Num)
		}
	}
	return it, nil
}

// Close releases the iterator's table handles. Table iterators are closed
// first: that drains their in-flight readahead fetches, so no prefetch can
// race a reader close below.
func (it *Iterator) Close() error {
	var first error
	for _, ti := range it.titers {
		ti.Close()
	}
	it.titers = nil
	for _, r := range it.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	it.readers = nil
	it.sources = nil
	it.srcNum = nil
	it.valid = false
	return first
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Key returns the current user key (owned by the iterator).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (owned by the iterator).
func (it *Iterator) Value() []byte { return it.val }

// First positions at the smallest user key.
func (it *Iterator) First() bool {
	it.low, it.lowSet = nil, false
	for i, s := range it.sources {
		s.First()
		if err := s.Err(); err != nil {
			return it.fail(err, it.srcNum[i])
		}
	}
	return it.findNext(nil)
}

// Seek positions at the first user key >= target.
func (it *Iterator) Seek(target []byte) bool {
	it.low = append(it.low[:0], target...)
	it.lowSet = true
	sk := ikey.SearchKey(target, it.snap)
	for i, s := range it.sources {
		s.Seek(sk)
		if err := s.Err(); err != nil {
			return it.fail(err, it.srcNum[i])
		}
	}
	return it.findNext(nil)
}

// Next advances to the next user key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	it.skip = append(it.skip[:0], it.key...)
	return it.findNext(it.skip)
}

// minSource returns the index of the source with the smallest current
// internal key, or -1 when all are exhausted.
func (it *Iterator) minSource() int {
	best := -1
	for i, s := range it.sources {
		if !s.Valid() {
			continue
		}
		if best < 0 || ikey.Compare(s.Key(), it.sources[best].Key()) < 0 {
			best = i
		}
	}
	return best
}

// findNext advances to the newest visible version of the next user key,
// skipping the key skipUser (the one just emitted), versions newer than the
// snapshot, shadowed versions, and tombstones.
func (it *Iterator) findNext(skipUser []byte) bool {
	for {
		i := it.minSource()
		if i < 0 {
			// Exhausted: the scan walked to the end of the key space, so it
			// crossed every quarantined range at or beyond its start.
			if r := it.touchesQuarantine(nil, true); r != nil {
				return it.failQuarantined(r)
			}
			it.valid = false
			return false
		}
		s := it.sources[i]
		k := s.Key()
		user := ikey.UserKey(k)
		switch {
		case ikey.Seq(k) > it.snap,
			skipUser != nil && string(user) == string(skipUser):
			s.Next()
		case ikey.KindOf(k) == ikey.KindDelete:
			// Tombstone: skip every remaining version of this user key.
			skipUser = append(skipUser[:0], user...)
			s.Next()
		default:
			// Emitting this key certifies every key in [low, user] was merged
			// from all sources — impossible if a quarantined range sits in
			// that window (its table has no source), so fail instead of
			// silently omitting the quarantined data.
			if r := it.touchesQuarantine(user, false); r != nil {
				return it.failQuarantined(r)
			}
			it.key = append(it.key[:0], user...)
			it.val = append(it.val[:0], s.Value()...)
			it.valid = true
			return true
		}
		if err := s.Err(); err != nil {
			return it.fail(err, it.srcNum[i])
		}
	}
}

// touchesQuarantine returns a quarantined range intersecting the scan
// window [low, upper] (upperInf = unbounded above), or nil. Emitted keys
// only grow, so checking the latest upper bound covers the whole scan: the
// first touch fails the iterator permanently.
func (it *Iterator) touchesQuarantine(upper []byte, upperInf bool) *quarRange {
	for i := range it.quar {
		r := &it.quar[i]
		if it.lowSet && bytes.Compare(r.hi, it.low) < 0 {
			continue // entirely below the scan window
		}
		if upperInf || bytes.Compare(r.lo, upper) <= 0 {
			return r
		}
	}
	return nil
}

// failQuarantined invalidates the iterator with a scoped ErrQuarantined.
// The table was already quarantined, so no DB-level classification runs.
func (it *Iterator) failQuarantined(r *quarRange) bool {
	it.err = &quarantinedError{num: r.num}
	it.valid = false
	return false
}
