package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pcplsm/internal/storage"
)

// scrubKey is the key layout shared by the scrub tests: two flushes produce
// two L0 tables with disjoint ranges (keys 0..half-1 and half..n-1).
func scrubKey(i int) []byte { return []byte(fmt.Sprintf("sk%05d", i)) }

// fillTwoTables writes n keys as two flushed L0 tables with disjoint
// ranges and returns n. Values are small enough that each flush stays
// under smallOpts' TableSize and yields exactly one table.
func fillTwoTables(t *testing.T, db *DB) int {
	t.Helper()
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put(scrubKey(i), make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		if i == n/2-1 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return n
}

// lowestTable returns the name of the lowest-numbered .sst on fs — the
// first flush's table, holding the lower half of the key space.
func lowestTable(t *testing.T, fs storage.FS) string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	for _, nm := range names {
		if strings.HasSuffix(nm, ".sst") {
			return nm
		}
	}
	t.Fatal("no table on disk after flush")
	return ""
}

// TestScrubCleanPass: a manual scrub over a healthy tree verifies every
// table, quarantines nothing, and every table carries a recorded digest.
func TestScrubCleanPass(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	fillTwoTables(t, db)
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}

	db.mu.Lock()
	v := db.vs.Acquire()
	db.mu.Unlock()
	total := v.NumTables()
	for l := range v.Levels {
		for _, tm := range v.Levels[l] {
			if tm.Digest == 0 {
				t.Errorf("table %s has no recorded digest", tm.FileName())
			}
		}
	}
	db.vs.Release(v)
	if total == 0 {
		t.Fatal("no live tables after compaction")
	}

	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != total || rep.Corruptions != 0 || rep.Skipped != 0 {
		t.Fatalf("clean scrub: verified=%d corruptions=%d skipped=%d, want %d/0/0",
			rep.Verified, rep.Corruptions, rep.Skipped, total)
	}
	if rep.Bytes == 0 {
		t.Fatal("clean scrub verified 0 bytes")
	}
	s := db.Stats()
	if s.ScrubTablesVerified < int64(total) || s.ScrubBytesVerified == 0 || s.ScrubCycles < 1 {
		t.Fatalf("scrub stats not recorded: %+v", s)
	}
	if s.QuarantinedTables != 0 || s.ScrubCorruptions != 0 {
		t.Fatalf("clean tree shows quarantine: %+v", s)
	}
}

// TestScrubDetectsRotAndQuarantines: seeded at-rest bit-rot in one table is
// caught by a manual scrub; only that table is quarantined — its range
// fails with ErrQuarantined, the other half and writes keep working — and
// the quarantine plus scrub cursor survive reopen.
func TestScrubDetectsRotAndQuarantines(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewSeededFaultFS(inner, 42)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	n := fillTwoTables(t, db)

	sst := lowestTable(t, fault)
	if _, err := fault.RotBytes(sst, 4); err != nil {
		t.Fatal(err)
	}

	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corruptions != 1 {
		t.Fatalf("scrub over rotted table found %d corruptions, want 1; report %+v", rep.Corruptions, rep)
	}
	var quarantined int
	for _, r := range rep.Tables {
		if r.Quarantined {
			quarantined++
			if TableFileName(r.Num) != sst {
				t.Fatalf("scrub quarantined %s, rot was injected into %s", TableFileName(r.Num), sst)
			}
		}
	}
	if quarantined != 1 {
		t.Fatalf("report marks %d tables quarantined, want 1", quarantined)
	}
	if s := db.Stats(); s.QuarantinedTables != 1 || s.ScrubCorruptions != 1 {
		t.Fatalf("stats after rot scrub: %+v", s)
	}

	// Scoped degradation: the rotted table's range fails typed, the rest of
	// the key space and the write path keep working.
	checkScoped := func(db *DB) {
		t.Helper()
		for _, i := range []int{0, n/2 - 1} {
			if _, err := db.Get(scrubKey(i)); !errors.Is(err, ErrQuarantined) {
				t.Fatalf("Get(%s) over quarantined range: err=%v, want ErrQuarantined", scrubKey(i), err)
			} else if errors.Is(err, ErrBackgroundError) {
				t.Fatalf("quarantine error %v implies ErrBackgroundError (store-wide degradation)", err)
			}
		}
		for _, i := range []int{n / 2, n - 1} {
			if _, err := db.Get(scrubKey(i)); err != nil {
				t.Fatalf("Get(%s) outside quarantined range: %v", scrubKey(i), err)
			}
		}
		if err := db.Put([]byte("post-rot"), []byte("v")); err != nil {
			t.Fatalf("store not writable after scoped quarantine: %v", err)
		}
	}
	checkScoped(db)

	// A second pass skips the quarantined table instead of re-reading it.
	rep2, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != 1 || rep2.Corruptions != 0 {
		t.Fatalf("second scrub: skipped=%d corruptions=%d, want 1/0", rep2.Skipped, rep2.Corruptions)
	}

	db.mu.Lock()
	cursor := db.scrubCursor
	db.mu.Unlock()
	if cursor == 0 {
		t.Fatal("scrub cursor not advanced")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The quarantine and the cursor are manifest state: both survive reopen.
	db = mustOpen(t, opts)
	defer db.Close()
	if s := db.Stats(); s.QuarantinedTables != 1 {
		t.Fatalf("QuarantinedTables after reopen = %d, want 1", s.QuarantinedTables)
	}
	db.mu.Lock()
	recovered := db.scrubCursor
	db.mu.Unlock()
	if recovered != cursor {
		t.Fatalf("scrub cursor after reopen = %d, want %d", recovered, cursor)
	}
	checkScoped(db)
}

// TestScrubBackgroundWorkerDetectsRot: the background scrub loop — governed,
// rate-limited, no manual Scrub call — finds injected rot within one cycle.
func TestScrubBackgroundWorkerDetectsRot(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewSeededFaultFS(inner, 7)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	fillTwoTables(t, db)
	sst := lowestTable(t, fault)
	if _, err := fault.RotBytes(sst, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	opts.ScrubInterval = 1 // aggressive cycle for the test
	opts.ScrubBytesPerSec = -1
	db = mustOpen(t, opts)
	defer db.Close()
	deadline := time.Now().Add(10 * time.Second)
	for db.Stats().QuarantinedTables == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrub never quarantined the rotted table")
		}
		time.Sleep(time.Millisecond)
	}
	if s := db.Stats(); s.ScrubCorruptions != 1 || s.QuarantinedTables != 1 {
		t.Fatalf("background scrub stats: %+v", s)
	}
}

// TestParanoidChecksRejectGarbledOutput: with ParanoidChecks on, a lying
// device that silently flips a bit in a flush output gets caught by the
// verify-before-install pass — the output is discarded before the manifest
// references it and the retried flush succeeds with clean data.
func TestParanoidChecksRejectGarbledOutput(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	opts.ParanoidChecks = true
	opts.BackgroundRetry = fastRetry()
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 200; i++ {
		if err := db.Put(scrubKey(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// One write to the next .sst silently persists a flipped bit.
	fault.ArmFault(storage.Fault{Op: storage.FaultWrite, Suffix: ".sst", N: 1, Garble: true})
	if err := db.Flush(); err != nil {
		t.Fatalf("flush with one garbled output attempt: %v", err)
	}

	s := db.Stats()
	if s.ParanoidRejections < 1 {
		t.Fatalf("ParanoidRejections = %d, want >= 1 (garbled output not caught)", s.ParanoidRejections)
	}
	if s.ParanoidVerifies < 2 {
		t.Fatalf("ParanoidVerifies = %d, want >= 2 (reject + clean retry)", s.ParanoidVerifies)
	}
	if s.QuarantinedTables != 0 {
		t.Fatalf("verify-before-install quarantined a live table: %+v", s)
	}
	// The manifest must only reference the clean retry: a full scrub of the
	// installed tree finds nothing.
	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corruptions != 0 {
		t.Fatalf("scrub after paranoid reject found %d corruptions: %+v", rep.Corruptions, rep)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Get(scrubKey(i)); err != nil {
			t.Fatalf("Get(%s) after paranoid retry: %v", scrubKey(i), err)
		}
	}
}

// TestCompactionQuarantinesRottedInput: a compaction whose input table rots
// at rest attributes the corruption to that table, quarantines it in scope,
// and leaves the store writable — no sticky background error.
func TestCompactionQuarantinesRottedInput(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewSeededFaultFS(inner, 11)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	n := fillTwoTables(t, db)
	sst := lowestTable(t, fault)
	if _, err := fault.RotBytes(sst, 4); err != nil {
		t.Fatal(err)
	}
	// Reopen so the table cache holds no pre-rot handle (an open MemFS
	// handle keeps serving the healthy bytes, like a populated page cache).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, opts)
	defer db.Close()

	err := db.CompactLevel(0)
	if err == nil {
		t.Fatal("compaction over rotted input reported success")
	}
	if !isQuarantineHandledErr(err) || !isCorruptionErr(err) {
		t.Fatalf("compaction error %v is not an in-scope quarantined corruption", err)
	}
	if errors.Is(err, ErrBackgroundError) {
		t.Fatalf("compaction error %v implies ErrBackgroundError (store-wide degradation)", err)
	}
	if s := db.Stats(); s.QuarantinedTables != 1 {
		t.Fatalf("QuarantinedTables after rotted compaction = %d, want 1", s.QuarantinedTables)
	}
	// Scoped, not sticky: the intact half serves and writes proceed.
	if _, err := db.Get(scrubKey(n - 1)); err != nil {
		t.Fatalf("Get outside rotted range after compaction failure: %v", err)
	}
	if err := db.Put([]byte("after-rot"), []byte("v")); err != nil {
		t.Fatalf("store degraded to read-only, want scoped quarantine: %v", err)
	}
	// With the culprit out of the run, the retried compaction succeeds on
	// the remaining table.
	if err := db.CompactLevel(0); err != nil {
		t.Fatalf("compaction retry after quarantine: %v", err)
	}
}

// TestIteratorFailsOverQuarantinedRange: a scan refuses to silently omit a
// quarantined table's keys — windows touching the range fail with
// ErrQuarantined, windows past it scan normally.
func TestIteratorFailsOverQuarantinedRange(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()
	n := fillTwoTables(t, db)

	// Quarantine the first table (lower half of the key space) directly.
	db.mu.Lock()
	v := db.vs.Acquire()
	db.mu.Unlock()
	var lowNum uint64
	for l := range v.Levels {
		for _, tm := range v.Levels[l] {
			if lowNum == 0 || tm.Num < lowNum {
				lowNum = tm.Num
			}
		}
	}
	db.vs.Release(v)
	db.quarantineTable(lowNum, errors.New("test quarantine"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.First() {
		t.Fatal("First over a quarantined range emitted a key")
	}
	if !errors.Is(it.Err(), ErrQuarantined) {
		t.Fatalf("First err = %v, want ErrQuarantined", it.Err())
	}

	// A fresh scan starting past the quarantined range works end to end.
	it2, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	count := 0
	for ok := it2.Seek(scrubKey(n / 2)); ok; ok = it2.Next() {
		count++
	}
	if err := it2.Err(); err != nil {
		t.Fatalf("scan past quarantined range: %v", err)
	}
	if count != n/2 {
		t.Fatalf("scan past quarantined range saw %d keys, want %d", count, n/2)
	}

	// A seek into the quarantined range fails on its first emission.
	it3, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it3.Close()
	if it3.Seek(scrubKey(10)) {
		t.Fatal("Seek into a quarantined range emitted a key")
	}
	if !errors.Is(it3.Err(), ErrQuarantined) {
		t.Fatalf("Seek err = %v, want ErrQuarantined", it3.Err())
	}
}

// TestPolicySkipsQuarantinedTables: the compaction picker refuses to touch a
// quarantined table — CompactLevel over an L0 containing one is a no-op
// instead of merging damaged data downward.
func TestPolicySkipsQuarantinedTables(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()
	fillTwoTables(t, db)

	db.mu.Lock()
	v := db.vs.Acquire()
	db.mu.Unlock()
	var lowNum uint64
	l0Before := len(v.Levels[0])
	for _, tm := range v.Levels[0] {
		if lowNum == 0 || tm.Num < lowNum {
			lowNum = tm.Num
		}
	}
	db.vs.Release(v)
	if l0Before != 2 {
		t.Fatalf("setup: L0 holds %d tables, want 2", l0Before)
	}
	db.quarantineTable(lowNum, errors.New("test quarantine"))

	if err := db.CompactLevel(0); err != nil {
		t.Fatalf("CompactLevel over quarantined L0: %v", err)
	}
	db.mu.Lock()
	v = db.vs.Acquire()
	db.mu.Unlock()
	l0After := len(v.Levels[0])
	db.vs.Release(v)
	if l0After != l0Before {
		t.Fatalf("picker compacted an L0 containing a quarantined table: %d -> %d tables", l0Before, l0After)
	}
}
