package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pcplsm/internal/core"
	"pcplsm/internal/storage"
)

// TestRandomOpsAgainstModel drives the store with a long random operation
// sequence — puts, deletes, batches, point reads, scans, flushes, manual
// compactions and full close/reopen cycles — and checks every read against
// a reference map. This is the broadest integration property test in the
// suite: it exercises every layer (WAL, memtable, flush, all compaction
// engines, manifest recovery, iterators) under one oracle.
func TestRandomOpsAgainstModel(t *testing.T) {
	configs := map[string]core.Config{
		"scp":    {Mode: core.ModeSCP, SubtaskSize: 8 << 10},
		"pcp":    {Mode: core.ModePCP, SubtaskSize: 8 << 10},
		"deep":   {Mode: core.ModeDeepPCP, SubtaskSize: 8 << 10},
		"c-ppcp": {Mode: core.ModePCP, SubtaskSize: 8 << 10, ComputeParallel: 2, IOParallel: 2},
	}
	for name, cc := range configs {
		cc := cc
		t.Run(name, func(t *testing.T) {
			fs := storage.NewMemFS()
			opts := smallOpts(fs)
			opts.Compaction = cc
			opts.PipelinedFlush = name == "pcp" // exercise both flush paths

			db := mustOpen(t, opts)
			defer func() { db.Close() }()
			ref := map[string]string{}
			rng := rand.New(rand.NewSource(0xD1CE))
			key := func() string { return fmt.Sprintf("key%06d", rng.Intn(3000)) }

			const steps = 12000
			for step := 0; step < steps; step++ {
				switch r := rng.Intn(100); {
				case r < 45: // put
					k, v := key(), fmt.Sprintf("v%d", step)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatalf("step %d put: %v", step, err)
					}
					ref[k] = v
				case r < 55: // delete
					k := key()
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					delete(ref, k)
				case r < 60: // batch
					var b Batch
					n := rng.Intn(20) + 1
					type op struct {
						k, v string
						del  bool
					}
					var ops []op
					for i := 0; i < n; i++ {
						k := key()
						if rng.Intn(4) == 0 {
							b.Delete([]byte(k))
							ops = append(ops, op{k: k, del: true})
						} else {
							v := fmt.Sprintf("b%d-%d", step, i)
							b.Put([]byte(k), []byte(v))
							ops = append(ops, op{k: k, v: v})
						}
					}
					if err := db.Write(&b); err != nil {
						t.Fatalf("step %d batch: %v", step, err)
					}
					for _, o := range ops {
						if o.del {
							delete(ref, o.k)
						} else {
							ref[o.k] = o.v
						}
					}
				case r < 90: // point read
					k := key()
					got, err := db.Get([]byte(k))
					want, ok := ref[k]
					if ok {
						if err != nil || string(got) != want {
							t.Fatalf("step %d: Get(%s) = %q,%v want %q", step, k, got, err, want)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: Get(%s) = %q,%v want not-found", step, k, got, err)
					}
				case r < 93: // short scan
					it, err := db.NewIterator()
					if err != nil {
						t.Fatalf("step %d: iterator: %v", step, err)
					}
					start := key()
					var gotKeys []string
					for ok := it.Seek([]byte(start)); ok && len(gotKeys) < 10; ok = it.Next() {
						gotKeys = append(gotKeys, string(it.Key()))
					}
					it.Close()
					var wantKeys []string
					for k := range ref {
						if k >= start {
							wantKeys = append(wantKeys, k)
						}
					}
					sort.Strings(wantKeys)
					if len(wantKeys) > 10 {
						wantKeys = wantKeys[:10]
					}
					if len(gotKeys) != len(wantKeys) {
						t.Fatalf("step %d: scan from %s: %d keys, want %d", step, start, len(gotKeys), len(wantKeys))
					}
					for i := range wantKeys {
						if gotKeys[i] != wantKeys[i] {
							t.Fatalf("step %d: scan[%d] = %s, want %s", step, i, gotKeys[i], wantKeys[i])
						}
					}
				case r < 96: // flush
					if err := db.Flush(); err != nil {
						t.Fatalf("step %d: flush: %v", step, err)
					}
				case r < 98: // manual compaction of a random non-empty level
					v := db.Version()
					for l := 0; l < NumLevels-1; l++ {
						if len(v.Levels[l]) > 0 && rng.Intn(2) == 0 {
							if err := db.CompactLevel(l); err != nil {
								t.Fatalf("step %d: compact L%d: %v", step, l, err)
							}
							break
						}
					}
				default: // close + reopen (crash-free restart)
					if err := db.Close(); err != nil {
						t.Fatalf("step %d: close: %v", step, err)
					}
					db = mustOpen(t, opts)
				}
			}

			// Final full verification, including a complete scan.
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			if err := db.Version().checkInvariants(); err != nil {
				t.Fatal(err)
			}
			verifyAll(t, db, ref)
			it, err := db.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			count := 0
			for ok := it.First(); ok; ok = it.Next() {
				if want, ok := ref[string(it.Key())]; !ok || want != string(it.Value()) {
					t.Fatalf("final scan: %s=%q not in reference", it.Key(), it.Value())
				}
				count++
			}
			if count != len(ref) {
				t.Fatalf("final scan saw %d keys, reference has %d", count, len(ref))
			}
		})
	}
}
