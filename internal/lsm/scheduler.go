package lsm

// Background scheduler: a pool of Options.BackgroundWorkers goroutines runs
// flushes and compactions concurrently, subject to a claim-based conflict
// rule.
//
// Claims (all manipulated with db.mu held):
//
//   - A memtable flush conflicts only with another flush (there is at most
//     one immutable memtable, so this is a single `flushing` flag). A flush
//     writes a brand-new L0 table and deletes only its own WAL, so it can
//     never race a compaction on files.
//   - A compaction with source level L claims the level pair {L, L+1} and
//     every input/overlap table it will read. A second compaction may start
//     only if its level pair is disjoint from every in-flight pair and none
//     of its tables are already claimed.
//
// Level-pair disjointness is sufficient given the leveled invariants: a
// compaction at L only deletes tables at L and L+1 and only adds tables at
// L+1, so two compactions with disjoint pairs touch disjoint table sets and
// their version edits commute. The file-claim set is kept anyway as a
// defense-in-depth check (manual CompactRange picks arbitrary input sets)
// and so obsolete-file deletion can see exactly which tables are pinned by
// in-flight work.
//
// Version edits and their manifest records are installed under a dedicated
// installMu so the journal order always matches the in-memory version
// order, even with concurrent installers.

import (
	"time"

	"pcplsm/internal/core"
)

// compactionClaim records one in-flight compaction's reservations.
type compactionClaim struct {
	level int      // source level; the claim covers levels level and level+1
	files []uint64 // claimed input + overlap table numbers
	bytes int64    // total size of the claimed tables
	// lease is the compaction's slice of the pipeline governor's token
	// pools, granted with the claim and released with it. Nil when the
	// governor is disabled or the procedure is not ModePCP: the compaction
	// then runs with its fixed configured widths.
	lease *pipelineLease
}

// levelPairFree reports whether no in-flight compaction claims level or
// level+1. Called with db.mu held.
func (db *DB) levelPairFree(level int) bool {
	return !db.claimedLevels[level] && !db.claimedLevels[level+1]
}

// tryClaimCompaction reserves pc's level pair and tables, returning nil if
// any of them is already claimed by in-flight work. Called with db.mu held.
func (db *DB) tryClaimCompaction(pc *pickedCompaction) *compactionClaim {
	if !db.levelPairFree(pc.level) {
		return nil
	}
	c := &compactionClaim{level: pc.level}
	for _, t := range append(append([]*TableMeta(nil), pc.inputs...), pc.overlap...) {
		if _, busy := db.claimedFiles[t.Num]; busy {
			return nil
		}
		c.files = append(c.files, t.Num)
		c.bytes += t.Size
	}
	db.claimedLevels[pc.level] = true
	db.claimedLevels[pc.level+1] = true
	for _, num := range c.files {
		db.claimedFiles[num] = struct{}{}
	}
	db.compactionsInFlight++
	db.stats.beginCompaction(pc.level, c.bytes)
	db.gaugeCompactions(pc.level, +1, c.bytes)
	if db.governor != nil && db.opts.Compaction.Mode == core.ModePCP {
		// Hand the claim a stage-worker budget: the baseline 1+1 is always
		// granted (the governor's leaf mutex is safe under db.mu), extras
		// only while the shared pools have headroom.
		c.lease = db.governor.acquire(
			max(1, db.opts.Compaction.ComputeParallel),
			max(1, db.opts.Compaction.IOParallel))
	}
	return c
}

// releaseCompaction drops a claim and wakes anything waiting on the
// scheduler (stalled writers, WaitIdle, conflicting manual compactions).
// Called with db.mu held.
func (db *DB) releaseCompaction(c *compactionClaim) {
	if c.lease != nil {
		c.lease.release()
	}
	db.claimedLevels[c.level] = false
	db.claimedLevels[c.level+1] = false
	for _, num := range c.files {
		delete(db.claimedFiles, num)
	}
	db.compactionsInFlight--
	db.stats.endCompaction(c.level, c.bytes)
	db.gaugeCompactions(c.level, -1, -c.bytes)
	db.cond.Broadcast()
}

// backgroundBusy reports whether any background unit is in flight. Called
// with db.mu held.
func (db *DB) backgroundBusy() bool {
	return db.flushing || db.compactionsInFlight > 0
}

// backgroundWorker is one scheduler goroutine: it sleeps until nudged, then
// drains work units until none can start. A step error never kills the
// worker: transient failures back off and retry (the failed unit is still
// claimable — a failed flush leaves db.imm set, a failed compaction is
// re-picked), and sticky failures leave the worker idle but alive, serving
// any later reopened work.
func (db *DB) backgroundWorker() {
	defer db.bgWg.Done()
	for {
		select {
		case <-db.bgQuit:
			return
		case <-db.bgWork:
		}
		for {
			select {
			case <-db.bgQuit:
				return
			default:
			}
			did, err := db.backgroundStep()
			if err != nil {
				if db.retryBackgroundError(err) {
					continue
				}
				break
			}
			if !did {
				break
			}
			db.noteBackgroundSuccess()
			// One tuner sample per completed background unit: flushes and
			// compactions are the events that change the shape of the tree, so
			// they pace the policy self-tuning.
			db.maybeTunePolicy()
		}
	}
}

// retryBackgroundError applies the error policy to one failed background
// step, returning whether the worker should retry. Corruption and permanent
// failures turn sticky immediately; transient I/O errors consume the
// consecutive-failure budget (Options.BackgroundRetry.Max) with exponential
// backoff before escalating. Two corruption-adjacent classes stay in the
// transient lane even though a checksum sentinel sits under them: a
// verify-before-install rejection (the bad output was discarded, the
// inputs are intact) and a corruption already quarantined in scope (the
// next pick skips the isolated table). Both are checked before the
// corruption branch — their unwrap chains would otherwise match it.
func (db *DB) retryBackgroundError(err error) bool {
	switch {
	case isOutputVerifyErr(err), isQuarantineHandledErr(err):
		// Retryable: handled below with the transient budget.
	case isCorruptionErr(err):
		db.stats.addCorruption()
		db.setBgErr(&backgroundError{cause: err, corruption: true})
		return false
	case isPermanentErr(err):
		db.setBgErr(&backgroundError{cause: err})
		return false
	}

	db.mu.Lock()
	db.bgFailures++
	failures := db.bgFailures
	db.mu.Unlock()
	if failures > db.opts.BackgroundRetry.Max {
		db.setBgErr(&backgroundError{cause: err})
		return false
	}
	db.stats.addBackgroundRetry()

	delay := db.opts.BackgroundRetry.BaseDelay
	for i := 1; i < failures && i < 7; i++ { // cap the shift at 64×
		delay *= 2
	}
	if delay > time.Second {
		delay = time.Second
	}
	db.opts.logf("lsm: background step failed (attempt %d/%d, retrying in %v): %v",
		failures, db.opts.BackgroundRetry.Max, delay, err)
	select {
	case <-db.bgQuit:
		// Shutting down: report "retry" so the worker loop's bgQuit check
		// exits cleanly without poisoning the store.
		return true
	case <-time.After(delay):
		return true
	}
}

// noteBackgroundSuccess resets the consecutive-failure budget after a
// completed background unit.
func (db *DB) noteBackgroundSuccess() {
	db.mu.Lock()
	db.bgFailures = 0
	db.mu.Unlock()
}

// backgroundStep claims and performs one unit of background work (a flush
// in preference to a compaction), returning whether anything was done.
// After claiming it nudges the pool so a sibling worker can look for a
// concurrent, non-conflicting unit.
func (db *DB) backgroundStep() (bool, error) {
	db.mu.Lock()
	if db.closed || db.bgErr != nil {
		db.mu.Unlock()
		return false, nil
	}
	if db.imm != nil && !db.flushing {
		imm, walNum := db.imm, db.immWalNum
		db.flushing = true
		db.stats.beginFlush()
		db.gaugeFlushes(+1)
		db.mu.Unlock()
		db.nudge() // a compaction may be runnable alongside this flush
		err := db.flushMemtable(imm, walNum)
		db.mu.Lock()
		db.flushing = false
		db.stats.endFlush()
		db.gaugeFlushes(-1)
		if err == nil {
			db.imm = nil
		}
		db.cond.Broadcast()
		db.mu.Unlock()
		return true, err
	}
	if db.opts.DisableAutoCompaction {
		db.mu.Unlock()
		return false, nil
	}
	pc := db.pickCompaction(db.vs.Current())
	if pc == nil {
		db.mu.Unlock()
		return false, nil
	}
	claim := db.tryClaimCompaction(pc)
	if claim == nil {
		// pickCompaction already excludes claimed level pairs, so this only
		// triggers on a lost race; treat it as "no work right now".
		db.mu.Unlock()
		return false, nil
	}
	trivial := db.trivialMoveOK(pc)
	db.mu.Unlock()
	db.nudge() // more disjoint work may be runnable in parallel
	var err error
	if trivial {
		err = db.runTrivialMove(pc)
	} else {
		err = db.runCompaction(pc, claim)
	}
	db.mu.Lock()
	db.releaseCompaction(claim)
	db.mu.Unlock()
	return true, err
}

// waitClaimCompaction blocks until pc (rebuilt by pick on every retry, since
// the version may change while waiting) can be claimed, the DB closes, or
// background work fails. pick returns nil when there is nothing to do.
// Called with db.mu held; returns with db.mu held.
func (db *DB) waitClaimCompaction(pick func(v *Version) *pickedCompaction) (*pickedCompaction, *compactionClaim, error) {
	for {
		if db.closed {
			return nil, nil, ErrClosed
		}
		pc := pick(db.vs.Current())
		if pc == nil {
			return nil, nil, nil
		}
		if claim := db.tryClaimCompaction(pc); claim != nil {
			return pc, claim, nil
		}
		db.cond.Wait()
	}
}
