package lsm

import (
	"errors"
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

func TestCompactRangeFull(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	ref := map[string]string{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("mr%05d", i)
			v := fmt.Sprintf("v%d-%d", round, i)
			db.Put([]byte(k), []byte(v))
			ref[k] = v
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 4 {
		k := fmt.Sprintf("mr%05d", i)
		db.Delete([]byte(k))
		delete(ref, k)
	}

	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}

	// Everything must have moved off L0, invariants hold, data correct.
	v := db.Version()
	if len(v.Levels[0]) != 0 {
		t.Fatalf("L0 still has %d tables after major compaction", len(v.Levels[0]))
	}
	if err := v.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, ref)
	for i := 0; i < 1000; i += 4 {
		if _, err := db.Get([]byte(fmt.Sprintf("mr%05d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key mr%05d visible after major compaction", i)
		}
	}

	// A major compaction collapses versions: total entries ≈ live keys
	// (tombstones survive only if a deeper level could hold the key, which
	// cannot be the case after compacting level by level to the bottom-most
	// populated level... allow tombstones at non-terminal levels).
	var entries int64
	for l := 0; l < NumLevels; l++ {
		for _, tm := range v.Levels[l] {
			entries += tm.Entries
		}
	}
	if entries > int64(len(ref))+250 {
		t.Fatalf("major compaction left %d entries for %d live keys", entries, len(ref))
	}
}

func TestCompactRangePartial(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("pr%05d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	l0Before := len(db.Version().Levels[0])
	if l0Before == 0 {
		t.Fatal("setup: no L0 tables")
	}

	// Compact only a narrow range; data outside may stay shallow.
	if err := db.CompactRange([]byte("pr00100"), []byte("pr00200")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("pr%05d", i))); err != nil {
			t.Fatalf("key pr%05d lost after partial CompactRange: %v", i, err)
		}
	}
	if err := db.Version().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRangeEmptyDB(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatalf("CompactRange on empty store: %v", err)
	}
}
