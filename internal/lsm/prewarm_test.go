package lsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pcplsm/internal/cache"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// prewarmOpts shrinks the geometry so a single CompactLevel rewrites the
// whole key space, and keeps the cache big enough that capacity pressure
// never interferes with the pre-warm assertions.
func prewarmOpts(fs storage.FS) Options {
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	opts.BlockCacheBytes = 4 << 20
	return opts
}

// hotKey renders key i of the pre-warm tests' key space.
func hotKey(i int) []byte { return []byte(fmt.Sprintf("hk%05d", i)) }

// TestPreWarmKeepsHotSetAcrossCompaction: blocks serving a hot key range
// stay cached across the compaction that rewrites them — the compaction's
// write stage re-inserts them under the new table numbers, so the first
// post-compaction reads are cache hits, not misses.
func TestPreWarmKeepsHotSetAcrossCompaction(t *testing.T) {
	db := mustOpen(t, prewarmOpts(storage.NewMemFS()))
	defer db.Close()

	const n, hotLo, hotHi = 1200, 300, 600
	for i := 0; i < n; i++ {
		if err := db.Put(hotKey(i), []byte(fmt.Sprintf("v1-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Heat up [hotLo, hotHi): repeated reads push the covering blocks past
	// the hot threshold.
	for pass := 0; pass < 3; pass++ {
		for i := hotLo; i < hotHi; i++ {
			if _, err := db.Get(hotKey(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := db.Stats().BlockCachePrewarmed; got != 0 {
		t.Fatalf("%d blocks pre-warmed before any compaction", got)
	}

	// Rewrite the whole key space: overwrite, flush, compact L0→L1. The
	// old tables (and their cached blocks) die; without pre-warming every
	// hot block would have to be re-read from the new tables.
	for i := 0; i < n; i++ {
		if err := db.Put(hotKey(i), []byte(fmt.Sprintf("v2-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}

	st := db.Stats()
	if st.BlockCachePrewarmed == 0 {
		t.Fatal("compaction over a hot range pre-warmed nothing")
	}
	t.Logf("pre-warmed %d blocks across the compaction", st.BlockCachePrewarmed)

	// The hot range must be served from cache immediately after the
	// compaction, and with the current values.
	for i := hotLo; i < hotHi; i++ {
		got, err := db.Get(hotKey(i))
		if err != nil || string(got) != fmt.Sprintf("v2-%05d", i) {
			t.Fatalf("Get(%s) = %q, %v after compaction", hotKey(i), got, err)
		}
	}
	post := db.Stats()
	hits := post.BlockCacheHits - st.BlockCacheHits
	misses := post.BlockCacheMisses - st.BlockCacheMisses
	if hits <= misses {
		t.Fatalf("post-compaction hot reads: %d hits vs %d misses — pre-warm ineffective", hits, misses)
	}
	t.Logf("post-compaction hot reads: %d hits, %d misses", hits, misses)
}

// TestPreWarmDisabled: DisableCachePreWarm turns the path off completely.
func TestPreWarmDisabled(t *testing.T) {
	opts := prewarmOpts(storage.NewMemFS())
	opts.DisableCachePreWarm = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 1200; i++ {
		db.Put(hotKey(i), []byte("v1"))
	}
	db.Flush()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 1200; i++ {
			db.Get(hotKey(i))
		}
	}
	for i := 0; i < 1200; i++ {
		db.Put(hotKey(i), []byte("v2"))
	}
	db.Flush()
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().BlockCachePrewarmed; got != 0 {
		t.Fatalf("%d blocks pre-warmed with pre-warm disabled", got)
	}
}

// buildCacheTestTable writes one table named for table number num holding
// count keys "tc<num>-%04d".
func buildCacheTestTable(t *testing.T, fs storage.FS, num uint64, count int) {
	t.Helper()
	f, err := fs.Create(TableFileName(num))
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{BlockSize: 512, Compare: ikey.Compare})
	for i := 0; i < count; i++ {
		k := ikey.Make([]byte(fmt.Sprintf("tc%03d-%04d", num, i)), 1, ikey.KindSet)
		if err := w.Add(k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// scanLeased iterates a leased reader end to end, failing on any error.
func scanLeased(t *testing.T, h tableHandle, wantEntries int) {
	t.Helper()
	it := h.Reader().NewIter()
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Error(err)
		return
	}
	if n != wantEntries {
		t.Errorf("scan visited %d entries, want %d", n, wantEntries)
	}
}

// TestTableCacheEvictConcurrent: Evict racing leased point reads is safe —
// readers holding handles from an older version keep working (even after
// the file is removed), re-opens after eviction succeed, and once readers
// stop, evicting every table reclaims all cached block bytes.
func TestTableCacheEvictConcurrent(t *testing.T) {
	const tables, entries = 8, 400
	fs := storage.NewMemFS()
	for num := uint64(1); num <= tables; num++ {
		buildCacheTestTable(t, fs, num, entries)
	}
	bc := cache.New(8 << 20)
	tc := newTableCache(fs, bc, cache.NewHeat())
	defer tc.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				num := uint64(1 + rng.Intn(tables))
				h, err := tc.Get(num)
				if err != nil {
					t.Error(err)
					return
				}
				scanLeased(t, h, entries)
				h.Close()
			}
		}(int64(g))
	}

	// Evictor: repeatedly evict every table (and remove one file outright)
	// while the readers run. A lease taken before an Evict must stay valid
	// through it.
	for round := 0; round < 20; round++ {
		held, err := tc.Get(uint64(1 + round%tables))
		if err != nil {
			t.Fatal(err)
		}
		for num := uint64(1); num <= tables; num++ {
			tc.Evict(num)
		}
		scanLeased(t, held, entries) // post-evict read on the old lease
		held.Close()
	}
	close(stop)
	wg.Wait()

	// A deleted table's lease survives eviction plus file removal: the
	// handle pins the open reader until released.
	h, err := tc.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	tc.Evict(3)
	if err := fs.Remove(TableFileName(3)); err != nil {
		t.Fatal(err)
	}
	scanLeased(t, h, entries)
	h.Close()

	// With no leases outstanding, evicting every table must reclaim all
	// cached block bytes.
	for num := uint64(1); num <= tables; num++ {
		tc.Evict(num)
	}
	if got := bc.Size(); got != 0 {
		t.Fatalf("cache holds %d bytes after evicting every table", got)
	}
	if _, err := tc.Get(1); err != nil {
		t.Fatalf("re-open after eviction: %v", err)
	}
}
