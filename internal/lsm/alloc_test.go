package lsm

import (
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// allocDB builds a store whose keys live in flushed tables (block-cache
// resident after a warming pass) plus a tail still in the memtable — the
// shape the read-path allocation budget is written for.
func allocDB(t *testing.T) (*DB, [][]byte) {
	t.Helper()
	opts := smallOpts(storage.NewMemFS())
	opts.MemtableSize = 64 << 10
	opts.BlockCacheBytes = 8 << 20
	db := mustOpen(t, opts)
	t.Cleanup(func() { db.Close() })
	keys := make([][]byte, 4000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
		if err := db.Put(keys[i], []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	// Warm the block cache so AllocsPerRun measures the steady state.
	for _, k := range keys {
		if _, err := db.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	return db, keys
}

// TestCachedGetAllocs pins the zero-copy read path: a cache-hit point read
// costs a handful of allocations (search key, the one defensive value copy
// at the API boundary, iterator bookkeeping). The seed implementation paid 9
// allocations per cached read; the pooled-iterator path pays 4.
func TestCachedGetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is skewed by the race detector")
	}
	db, keys := allocDB(t)
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		if _, err := db.Get(keys[i%len(keys)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > 5 {
		t.Fatalf("cached point Get: %.2f allocs/op, want <= 5 (seed was 9)", avg)
	}
}

// TestIteratorNextAllocs pins the scan path: once an iterator's scratch
// buffers are warm, advancing costs well under one allocation per entry
// (block loads and occasional scratch growth amortize across the scan).
func TestIteratorNextAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is skewed by the race detector")
	}
	db, keys := allocDB(t)
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.First() {
		t.Fatal("empty iterator")
	}
	// Warm scratch buffers over a first stretch, then measure per-Next cost.
	for i := 0; i < 500; i++ {
		if !it.Next() {
			t.Fatal("iterator ended during warmup")
		}
	}
	const span = 1000
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < span; i++ {
			if !it.Next() {
				t.Fatalf("iterator ended early: %v", it.Err())
			}
		}
	}) / span
	if avg >= 1 {
		t.Fatalf("iterator Next: %.3f allocs/entry, want < 1", avg)
	}
	_ = keys
}
