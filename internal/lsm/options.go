package lsm

import (
	"runtime"
	"time"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/memtable"
	"pcplsm/internal/metrics"
	"pcplsm/internal/storage"
)

// BackgroundRetryPolicy bounds how background workers retry transient
// flush/compaction I/O errors before declaring the store poisoned.
type BackgroundRetryPolicy struct {
	// Max is the number of consecutive failures tolerated before the error
	// turns sticky and the store degrades to read-only. 0 selects the
	// default of 5; a negative value disables retries (first failure is
	// sticky, the pre-retry behaviour).
	Max int
	// BaseDelay is the backoff before the first retry; it doubles per
	// consecutive failure up to 64×, capped at one second. 0 selects the
	// default of 2ms.
	BaseDelay time.Duration
}

// Options configure a DB. The zero value plus an FS is usable; defaults
// mirror the paper's experimental setup (4 MiB memtable, 2 MiB SSTables,
// 4 KiB blocks, snappy).
type Options struct {
	// FS is the backing file system (required): a MemFS, OSFS or SimFS.
	FS storage.FS

	// MemtableSize triggers a flush when C0 exceeds it (default 4 MiB).
	MemtableSize int64
	// MemtableShards partitions the memtable into independent arena-backed
	// skiplists by user-key hash, letting the commit leader apply a write
	// group with parallel per-shard writers and point reads probe a smaller
	// structure. 0 selects the default of 4; 1 restores the single-skiplist
	// layout (observable behavior — contents, scan order, WAL bytes — is
	// identical at any setting). Values are clamped to [1, 64] and rounded
	// up to a power of two.
	MemtableShards int
	// MemtableArenaChunk is the chunk size in bytes of each shard's arena
	// (the append-only buffers that hold node, key and value bytes, freed
	// wholesale when the memtable retires). 0 selects the default of 64 KiB;
	// other values are clamped to [4 KiB, 8 MiB].
	MemtableArenaChunk int
	// TableSize caps SSTable file size (default 2 MiB).
	TableSize int64
	// BlockSize is the data block size (default 4 KiB).
	BlockSize int
	// RestartInterval for data blocks.
	RestartInterval int
	// Codec compresses data blocks (default Snappy).
	Codec compress.Codec

	// CompactionPolicy pins which compaction runs (as opposed to how it
	// runs — that is Compaction below) by name: "leveling" (LevelDB-style
	// normalized fullness triggers, round-robin file picking),
	// "lazy-leveling" (a tiering posture at the upper levels: fewer,
	// larger merges, lower write amplification), or "coldest-range"
	// (leveling triggers, but file picking steered by the block-cache
	// heat map so compactions churn cold data). Empty selects leveling
	// with the metrics-driven self-tuner enabled: the DB samples its own
	// stall/write-amp/read-mix counters over a sliding window and
	// switches policies as the workload shifts. Naming a policy disables
	// the tuner — the escape hatch to pin behaviour.
	CompactionPolicy string

	// PolicyTunerWindow is the self-tuner's sliding-window length in
	// samples (one sample per completed flush or compaction). 0 selects
	// the default of 8; values are clamped to [2, 64]. Ignored when
	// CompactionPolicy pins a policy.
	PolicyTunerWindow int

	// DisableTrivialMove forces every picked compaction through the full
	// read-merge-write pipeline even when its input has no next-level
	// overlap. By default such a table is moved down by a metadata-only
	// version edit — no bytes rewritten, the file keeps its number, and
	// its cached blocks stay valid. Disabling is mainly for benchmarks
	// isolating the effect (the policy comparison's write-amp ablation).
	DisableTrivialMove bool

	// Compaction configures the procedure (mode, sub-task size, queue depth,
	// compute/IO parallelism). Block/table/codec fields inside it are
	// overridden by the DB-level settings above. The zero-valued Mode
	// (core.ModeAuto) resolves to core.ModePCP: live compactions pipeline by
	// default; set core.ModeSCP explicitly for the sequential baseline.
	// QueueDepth is clamped to [1, 32], ComputeParallel and IOParallel to
	// [1, 16] (zero values keep core's defaults). SubtaskSize < 0 is the
	// single-sub-task escape hatch: it disables partitioning so the whole
	// compaction is one sub-task — pipelining then degenerates to SCP order,
	// useful to isolate partitioning effects in experiments.
	Compaction core.Config

	// PipelineComputeTokens sizes the engine-wide compute-token pool shared
	// by every pipelined compaction and flush: at most this many
	// compute-stage workers run beyond the per-unit baseline of one, so
	// BackgroundWorkers × ComputeParallel cannot oversubscribe the host.
	// 0 selects max(1, GOMAXPROCS−1) — one CPU of foreground headroom. A
	// negative value disables the governor entirely: compaction configs pass
	// through fixed, with no leasing and no adaptive resizing.
	PipelineComputeTokens int
	// PipelineIOTokens sizes the matching I/O-token pool (one token per
	// unit of IOParallel — a read+write worker pair). 0 selects 4.
	PipelineIOTokens int
	// DisableAdaptiveCompaction keeps each pipelined compaction's leased
	// worker widths fixed for its whole run instead of letting the adaptive
	// pilot resize the pipeline between sub-tasks from the measured stage
	// balance. The token accounting still applies.
	DisableAdaptiveCompaction bool

	// L0CompactionTrigger is the L0 table count that schedules a compaction
	// (default 4).
	L0CompactionTrigger int
	// L0StallTrigger is the L0 table count at which writers stall until the
	// backlog drains (default 12) — the paper's "write pauses".
	L0StallTrigger int
	// BaseLevelSize is the size threshold of level 1 (default 8 MiB);
	// deeper levels grow by LevelMultiplier.
	BaseLevelSize int64
	// LevelMultiplier is the per-level growth factor (default 10).
	LevelMultiplier int

	// BloomBitsPerKey sizes the per-table Bloom filters that point reads
	// use to skip tables. 0 selects the default of 10 bits/key; a negative
	// value disables filters.
	BloomBitsPerKey int
	// BlockCacheBytes caps the decompressed-block cache serving point
	// reads. 0 selects the default of 8 MiB; a negative value disables the
	// cache. Positive values are clamped to at least cache.MinShardBytes
	// per shard (1 MiB total for the 16-shard cache) — smaller settings
	// used to round to a per-shard capacity of a few bytes and silently
	// cache nothing. Compaction I/O always bypasses the cache on the read
	// side; on the write side, hot output blocks are pre-warmed into it
	// (see DisableCachePreWarm).
	BlockCacheBytes int64

	// DisableCachePreWarm turns off the compaction-surviving cache: by
	// default the DB tracks per-key-range read heat and, when a compaction
	// output block covers a hot range, inserts the block (already in memory
	// inside the compaction pipeline) into the block cache under the new
	// table's identity before the version edit installs — so hot data never
	// goes cold across a compaction. Cold output is never admitted, and at
	// most half the cache's capacity is pre-warmed per compaction, so
	// compaction output cannot flush the read working set.
	DisableCachePreWarm bool

	// ScanReadahead is the number of data blocks each table iterator in a
	// scan prefetches (fetch + verify + decompress, pipelined) ahead of the
	// current position, overlapping scan I/O with iteration. 0 selects the
	// default of 2; a negative value disables readahead. Point reads never
	// read ahead.
	ScanReadahead int

	// PipelinedFlush overlaps memtable-dump block building (CPU) with
	// table writes (I/O), extending the paper's pipelining idea to the
	// flush path (§IV-C lists flushes among the operations "not pipelined
	// by now"). Off by default to keep the faithful LevelDB-style baseline.
	PipelinedFlush bool

	// SyncWAL forces an fsync per commit group. Off by default (matching
	// the paper's insert benchmarks, which are bounded by compaction, not
	// commit latency).
	SyncWAL bool

	// DisableGroupCommit restores the strictly serial commit path: every
	// Write holds the DB mutex across WAL append, optional fsync and
	// memtable insert, exactly like the pre-pipeline (LevelDB-baseline)
	// behaviour. Group commit is on by default: concurrent writers are
	// merged by a leader into one WAL record (one fsync when SyncWAL is
	// set), and WAL I/O happens outside the DB mutex so reads never queue
	// behind commit I/O.
	DisableGroupCommit bool

	// WriteGroupMaxCount caps how many queued writers one commit group may
	// merge (default 64). 1 makes every group a single writer (grouping
	// off, but the pipelined locking still applies).
	WriteGroupMaxCount int

	// WriteGroupMaxBytes caps the summed batch payload of one commit group
	// (default 1 MiB), bounding both the merged WAL record and the latency
	// a large group adds to its first writer.
	WriteGroupMaxBytes int64

	// BackgroundWorkers sizes the background scheduler's worker pool
	// (default 2). With two or more workers a memtable flush can overlap
	// in-flight compactions, and compactions on disjoint level pairs run
	// in parallel. 1 restores the strictly serial one-unit-at-a-time
	// behaviour of the original LevelDB-style loop.
	BackgroundWorkers int

	// DisableAutoCompaction stops the background scheduler; compactions
	// then run only via CompactLevel/Flush calls. Used by experiments that
	// need precise control.
	DisableAutoCompaction bool

	// BackgroundRetry bounds the retries of transient background I/O
	// errors. Detected corruption and WAL/manifest-append failures are
	// never retried: they immediately poison the store (reads keep
	// working; writes fail with ErrBackgroundError/ErrCorruption).
	BackgroundRetry BackgroundRetryPolicy

	// ParanoidChecks re-verifies every flush and compaction output before
	// the version edit references it: the finished file is re-read from the
	// device through a verifying reader and its entry count, key order,
	// bounds and whole-file digest are compared against what the write
	// stage produced. A mismatch discards the output and retries the unit
	// (the inputs are still intact), so a pipeline bug, torn write, or
	// lying device is caught before the manifest points at bad data. Off by
	// default: it costs one extra read pass per background unit.
	ParanoidChecks bool

	// ScrubInterval enables the background integrity scrubber: the pause
	// between verifying one table and the next while cycling over live
	// tables (block checksums, key order, bounds, whole-file digest).
	// A table that fails is quarantined (see ErrQuarantined) rather than
	// degrading the whole store. 0 disables background scrubbing (the
	// default — DB.Scrub still runs manual cycles); negative also disables.
	ScrubInterval time.Duration

	// ScrubBytesPerSec rate-limits scrub reads so verification cannot
	// monopolize device bandwidth. 0 selects the default of 8 MiB/s; a
	// negative value removes the limit. Each table additionally holds a
	// governor I/O lease while being verified, so scrub reads compete with
	// compactions under the same token accounting.
	ScrubBytesPerSec int64

	// Metrics, when set, receives the DB's live gauges (scheduler in-flight
	// work, claimed bytes) and counters; nil gives the DB a private
	// registry reachable via DB.Metrics().
	Metrics *metrics.Registry

	// Logf, when set, receives progress lines (flushes, compactions).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MemtableSize <= 0 {
		o.MemtableSize = 4 << 20
	}
	if o.MemtableShards == 0 {
		o.MemtableShards = 4
	}
	o.MemtableShards = memtable.NormalShards(o.MemtableShards)
	switch {
	case o.MemtableArenaChunk == 0:
		o.MemtableArenaChunk = memtable.DefaultArenaChunk
	case o.MemtableArenaChunk < 4<<10:
		o.MemtableArenaChunk = 4 << 10
	case o.MemtableArenaChunk > 8<<20:
		o.MemtableArenaChunk = 8 << 20
	}
	if o.TableSize <= 0 {
		o.TableSize = 2 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.Codec == nil {
		o.Codec = compress.MustByKind(compress.Snappy)
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0StallTrigger <= 0 {
		o.L0StallTrigger = 12
	}
	// A stall trigger below the compaction trigger would stall writers on an
	// L0 no policy is yet due to drain: flushes stop, the count never grows,
	// and nothing ever frees the writer (the policies' urgent-L0 rule only
	// guarantees a pick at or before the stall when stall ≥ trigger).
	if o.L0StallTrigger < o.L0CompactionTrigger {
		o.L0StallTrigger = o.L0CompactionTrigger
	}
	if o.BaseLevelSize <= 0 {
		o.BaseLevelSize = 8 << 20
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = 10
	}
	switch {
	case o.PolicyTunerWindow == 0:
		o.PolicyTunerWindow = defaultTunerWindow
	case o.PolicyTunerWindow < minTunerSamples:
		o.PolicyTunerWindow = minTunerSamples
	case o.PolicyTunerWindow > 64:
		o.PolicyTunerWindow = 64
	}
	if o.BackgroundWorkers <= 0 {
		o.BackgroundWorkers = 2
	}
	if o.WriteGroupMaxCount <= 0 {
		o.WriteGroupMaxCount = 64
	}
	if o.WriteGroupMaxBytes <= 0 {
		o.WriteGroupMaxBytes = 1 << 20
	}
	switch {
	case o.BackgroundRetry.Max == 0:
		o.BackgroundRetry.Max = 5
	case o.BackgroundRetry.Max < 0:
		o.BackgroundRetry.Max = 0
	}
	if o.BackgroundRetry.BaseDelay <= 0 {
		o.BackgroundRetry.BaseDelay = 2 * time.Millisecond
	}
	if o.ScrubInterval < 0 {
		o.ScrubInterval = 0
	}
	switch {
	case o.ScrubBytesPerSec == 0:
		o.ScrubBytesPerSec = 8 << 20
	case o.ScrubBytesPerSec < 0:
		o.ScrubBytesPerSec = 0
	}
	switch {
	case o.BloomBitsPerKey == 0:
		o.BloomBitsPerKey = 10
	case o.BloomBitsPerKey < 0:
		o.BloomBitsPerKey = 0
	}
	switch {
	case o.BlockCacheBytes == 0:
		o.BlockCacheBytes = 8 << 20
	case o.BlockCacheBytes < 0:
		o.BlockCacheBytes = 0
	}
	switch {
	case o.ScanReadahead == 0:
		o.ScanReadahead = 2
	case o.ScanReadahead < 0:
		o.ScanReadahead = 0
	}
	// Push DB-level format settings into the compaction config.
	o.Compaction.BlockSize = o.BlockSize
	o.Compaction.RestartInterval = o.RestartInterval
	o.Compaction.Codec = o.Codec
	o.Compaction.TableSize = o.TableSize
	o.Compaction.BloomBitsPerKey = o.BloomBitsPerKey
	// Resolve the procedure and clamp the pipeline knobs to sane ranges.
	// SubtaskSize passes through: 0 selects core's 512 KiB default and
	// negative values are the documented single-sub-task escape hatch.
	if o.Compaction.Mode == core.ModeAuto {
		o.Compaction.Mode = core.ModePCP
	}
	o.Compaction.QueueDepth = clampInt(o.Compaction.QueueDepth, 0, 32)
	o.Compaction.ComputeParallel = clampInt(o.Compaction.ComputeParallel, 0, 16)
	o.Compaction.IOParallel = clampInt(o.Compaction.IOParallel, 0, 16)
	if o.PipelineComputeTokens == 0 {
		o.PipelineComputeTokens = max(1, runtime.GOMAXPROCS(0)-1)
	}
	if o.PipelineIOTokens == 0 {
		o.PipelineIOTokens = 4
	}
	return o
}

// clampInt bounds v to [lo, hi]. Zero and negative values map to lo, so a
// zero keeps the downstream default and a negative misconfiguration cannot
// smuggle through (core treats <= 0 as "use the default").
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// maxLevelSize returns the size threshold of a level (level >= 1).
func (o *Options) maxLevelSize(level int) int64 {
	s := o.BaseLevelSize
	for l := 1; l < level; l++ {
		s *= int64(o.LevelMultiplier)
	}
	return s
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}
