package lsm

import (
	"sync"

	"pcplsm/internal/core"
	"pcplsm/internal/metrics"
)

// Pipeline governor: engine-wide budgets for the stage workers of pipelined
// background work. Every PCP compaction and every pipelined flush runs extra
// goroutines beyond its scheduler slot — without a shared budget,
// BackgroundWorkers × ComputeParallel compute workers could oversubscribe
// the host and steal CPU from foreground reads and commits.
//
// The governor keeps two token pools:
//
//   - compute tokens, sized from GOMAXPROCS minus foreground headroom —
//     one token per concurrently-running compute-stage worker;
//   - I/O tokens — one token per unit of IOParallel (a read+write worker
//     pair), bounding concurrent request streams at the device.
//
// A background unit acquires a lease when the scheduler claims it and
// releases the lease with the claim. The baseline of one compute and one
// I/O token is always granted, even if that overcommits the pool — a
// claimed unit must be able to run, and on a 1-CPU host the alternative is
// deadlock. Only width beyond the baseline is gated on availability, so
// extras can never oversubscribe: leased > total happens only via
// baselines, and the leased-vs-total gauges make the debt visible.
//
// Mid-run, the adaptive pilot (adaptivePilot below) implements
// core.PipelineGovernor on top of a lease: between sub-tasks it classifies
// the compaction as compute- or I/O-bound from stage busy clocks and queue
// occupancy, and grows or shrinks the pipeline within the leased budget,
// returning tokens it no longer needs.

// pipelineGovernor is the engine-wide token pool pair.
type pipelineGovernor struct {
	mu            sync.Mutex
	computeTotal  int
	ioTotal       int
	computeLeased int
	ioLeased      int

	// Live gauges mirroring the pool state (also snapshotted into Stats).
	gComputeTotal  *metrics.Gauge
	gComputeLeased *metrics.Gauge
	gIOTotal       *metrics.Gauge
	gIOLeased      *metrics.Gauge
}

func newPipelineGovernor(computeTokens, ioTokens int, reg *metrics.Registry) *pipelineGovernor {
	g := &pipelineGovernor{
		computeTotal:   computeTokens,
		ioTotal:        ioTokens,
		gComputeTotal:  reg.Gauge("lsm_pipeline_compute_tokens"),
		gComputeLeased: reg.Gauge("lsm_pipeline_compute_leased"),
		gIOTotal:       reg.Gauge("lsm_pipeline_io_tokens"),
		gIOLeased:      reg.Gauge("lsm_pipeline_io_leased"),
	}
	g.gComputeTotal.Set(int64(computeTokens))
	g.gIOTotal.Set(int64(ioTokens))
	return g
}

// pipelineLease is one background unit's slice of the pools.
type pipelineLease struct {
	g       *pipelineGovernor
	mu      sync.Mutex
	compute int
	io      int
}

// acquire grants a lease: a baseline of 1+1 unconditionally, plus up to
// wantCompute-1 / wantIO-1 extra tokens while the pools have headroom.
func (g *pipelineGovernor) acquire(wantCompute, wantIO int) *pipelineLease {
	g.mu.Lock()
	defer g.mu.Unlock()
	l := &pipelineLease{g: g, compute: 1, io: 1}
	g.computeLeased++
	g.ioLeased++
	for l.compute < wantCompute && g.computeLeased < g.computeTotal {
		l.compute++
		g.computeLeased++
	}
	for l.io < wantIO && g.ioLeased < g.ioTotal {
		l.io++
		g.ioLeased++
	}
	g.publish()
	return l
}

// release returns every token the lease still holds. Safe to call once.
func (l *pipelineLease) release() {
	l.mu.Lock()
	compute, io := l.compute, l.io
	l.compute, l.io = 0, 0
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.computeLeased -= compute
	l.g.ioLeased -= io
	l.g.publish()
	l.g.mu.Unlock()
}

// tryGrowCompute leases one more compute token if the pool has headroom.
func (l *pipelineLease) tryGrowCompute() bool {
	l.g.mu.Lock()
	defer l.g.mu.Unlock()
	if l.g.computeLeased >= l.g.computeTotal {
		return false
	}
	l.g.computeLeased++
	l.g.publish()
	l.mu.Lock()
	l.compute++
	l.mu.Unlock()
	return true
}

// tryGrowIO leases one more I/O token if the pool has headroom.
func (l *pipelineLease) tryGrowIO() bool {
	l.g.mu.Lock()
	defer l.g.mu.Unlock()
	if l.g.ioLeased >= l.g.ioTotal {
		return false
	}
	l.g.ioLeased++
	l.g.publish()
	l.mu.Lock()
	l.io++
	l.mu.Unlock()
	return true
}

// shrinkCompute returns one compute token (never the baseline).
func (l *pipelineLease) shrinkCompute() {
	l.mu.Lock()
	if l.compute <= 1 {
		l.mu.Unlock()
		return
	}
	l.compute--
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.computeLeased--
	l.g.publish()
	l.g.mu.Unlock()
}

// shrinkIO returns one I/O token (never the baseline).
func (l *pipelineLease) shrinkIO() {
	l.mu.Lock()
	if l.io <= 1 {
		l.mu.Unlock()
		return
	}
	l.io--
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.ioLeased--
	l.g.publish()
	l.g.mu.Unlock()
}

// widths returns the lease's current token counts.
func (l *pipelineLease) widths() (compute, io int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compute, l.io
}

// tryLeaseIO leases a single I/O token with no baseline overcommit. Unlike
// acquire, a denial is possible: the background scrubber uses this so its
// verification reads always yield to compaction and flush I/O — a scrub
// pass is never urgent enough to oversubscribe the device.
func (g *pipelineGovernor) tryLeaseIO() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ioLeased >= g.ioTotal {
		return false
	}
	g.ioLeased++
	g.publish()
	return true
}

// returnIO gives back a token taken with tryLeaseIO.
func (g *pipelineGovernor) returnIO() {
	g.mu.Lock()
	g.ioLeased--
	g.publish()
	g.mu.Unlock()
}

// publish mirrors the pool state into the live gauges. Called with g.mu held.
func (g *pipelineGovernor) publish() {
	g.gComputeLeased.Set(int64(g.computeLeased))
	g.gIOLeased.Set(int64(g.ioLeased))
}

// snapshot reads the pool state for Stats().
func (g *pipelineGovernor) snapshot() (computeTotal, ioTotal, computeLeased, ioLeased int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.computeTotal, g.ioTotal, g.computeLeased, g.ioLeased
}

// adaptivePilot steers one compaction's pipeline within its lease. It is
// handed to core.Run as the Config.Governor; core calls Adjust between
// sub-tasks, never concurrently.
//
// Classification: a full read→compute queue means readers outrun compute
// (compute-bound — widen compute); an empty one with the read stage's busy
// clock dominating means compute starves on input (I/O-bound — widen I/O);
// a full compute→write queue means the write stage is the choke (also
// I/O-bound). When a widened stage's queue pressure inverts, the pilot
// gives the width — and the token — back, so a burst of compute-bound
// sub-tasks doesn't pin tokens for the rest of the run.
type adaptivePilot struct {
	lease *pipelineLease
	stats *statsCollector

	lastActed int // SubtasksDone when the pilot last acted (hysteresis)
}

// adjustEvery is the minimum number of completed sub-tasks between pilot
// actions: enough for the busy clocks and queues to reflect the last resize.
const adjustEvery = 2

func (a *adaptivePilot) Adjust(t core.PipelineTelemetry) core.PipelineResize {
	r := core.PipelineResize{Compute: t.ComputeWorkers, IO: t.IOWorkers}
	if t.SubtasksDone < adjustEvery || t.SubtasksDone-a.lastActed < adjustEvery {
		return r
	}
	compFull := t.ComputeQueueCap > 0 && t.ComputeQueue >= t.ComputeQueueCap
	compEmpty := t.ComputeQueue == 0
	writeFull := t.WriteQueueCap > 0 && t.WriteQueue >= t.WriteQueueCap
	writeEmpty := t.WriteQueue == 0
	b := t.StageBusy
	switch {
	case compFull && !writeFull:
		// Readers are parked on a full compute queue: compute-bound.
		if a.lease.tryGrowCompute() {
			r.Compute++
			a.stats.addGovernorGrow()
		} else {
			a.stats.addGovernorDenial()
		}
		a.lastActed = t.SubtasksDone
	case writeFull || (compEmpty && b.Read > b.Compute+b.Write):
		// Writers backed up, or compute starved behind slow reads: I/O-bound.
		if a.lease.tryGrowIO() {
			r.IO++
			a.stats.addGovernorGrow()
		} else {
			a.stats.addGovernorDenial()
		}
		a.lastActed = t.SubtasksDone
	case compEmpty && t.ComputeWorkers > 1 && b.Compute < b.Read+b.Write:
		// Compute overprovisioned: idle workers, I/O dominates. Hand the
		// token back so a sibling compaction can use it.
		a.lease.shrinkCompute()
		r.Compute--
		a.stats.addGovernorShrink()
		a.lastActed = t.SubtasksDone
	case writeEmpty && compFull && t.IOWorkers > 1:
		// I/O overprovisioned: writers drain instantly while compute chokes.
		a.lease.shrinkIO()
		r.IO--
		a.stats.addGovernorShrink()
		a.lastActed = t.SubtasksDone
	}
	return r
}
