package lsm

import (
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// TestManifestRoundTrip: records replay exactly.
func TestManifestRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	m, err := openManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*manifestRecord{
		{WALNum: 3, Seq: 100, NextFile: 4},
		{Added: map[int][]manifestTable{0: {{Num: 5, Size: 1234, Entries: 10,
			Smallest: []byte("aaa\x01\x00\x00\x00\x00\x00\x00\x00"),
			Largest:  []byte("zzz\x01\x00\x00\x00\x00\x00\x00\x00")}}}},
		{Deleted: map[int][]uint64{0: {5}}, Added: map[int][]manifestTable{1: {{Num: 6, Size: 99}}}},
	}
	for _, r := range recs {
		if err := m.append(r); err != nil {
			t.Fatal(err)
		}
	}
	m.close()

	got, err := replayManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if got[0].WALNum != 3 || got[0].Seq != 100 || got[0].NextFile != 4 {
		t.Fatalf("record 0 = %+v", got[0])
	}
	tb := got[1].Added[0][0]
	if tb.Num != 5 || tb.Size != 1234 || tb.Entries != 10 || string(tb.Smallest[:3]) != "aaa" {
		t.Fatalf("record 1 table = %+v", tb)
	}
	if got[2].Deleted[0][0] != 5 || got[2].Added[1][0].Num != 6 {
		t.Fatalf("record 2 = %+v", got[2])
	}
}

// TestManifestTornTailTolerated: a truncated final line stops replay at the
// last intact record instead of failing the open.
func TestManifestTornTailTolerated(t *testing.T) {
	fs := storage.NewMemFS()
	m, _ := openManifest(fs)
	for i := 0; i < 5; i++ {
		if err := m.append(&manifestRecord{Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	m.close()
	data, _ := storage.ReadAll(fs, manifestName)
	fs.Remove(manifestName)
	if err := storage.WriteFile(fs, manifestName, data[:len(data)-4]); err != nil {
		t.Fatal(err)
	}
	got, err := replayManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records from torn manifest, want 4", len(got))
	}
}

// TestManifestBlankLinesSkipped: whitespace-only lines do not break replay.
func TestManifestBlankLinesSkipped(t *testing.T) {
	fs := storage.NewMemFS()
	m, _ := openManifest(fs)
	m.append(&manifestRecord{Seq: 7})
	f, _ := fs.Open(manifestName)
	f.Write([]byte("\n  \n"))
	f.Close()
	m.append(&manifestRecord{Seq: 8})
	m.close()
	got, err := replayManifest(fs)
	if err != nil || len(got) != 2 {
		t.Fatalf("replay = %d records, %v", len(got), err)
	}
	if got[1].Seq != 8 {
		t.Fatalf("second record seq = %d", got[1].Seq)
	}
}

// TestManifestTableConversions covers the meta<->json mapping.
func TestManifestTableConversions(t *testing.T) {
	orig := &TableMeta{Num: 42, Size: 1000, Entries: 7,
		Smallest: []byte("s\x01\x00\x00\x00\x00\x00\x00\x00"),
		Largest:  []byte("t\x01\x00\x00\x00\x00\x00\x00\x00")}
	enc := toManifestTables([]*TableMeta{orig})
	back := fromManifestTable(enc[0])
	if back.Num != orig.Num || back.Size != orig.Size || back.Entries != orig.Entries ||
		string(back.Smallest) != string(orig.Smallest) || string(back.Largest) != string(orig.Largest) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.FileName() != fmt.Sprintf("%06d.sst", 42) {
		t.Fatalf("FileName = %s", back.FileName())
	}
}
