package lsm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"pcplsm/internal/storage"
)

// The manifest is an append-only journal of version edits plus WAL/sequence
// checkpoints, one JSON object per line. Replaying it reconstructs the
// table layout after a restart. JSON keeps the format debuggable; manifest
// volume is tiny next to table data, so encoding efficiency is irrelevant.

const manifestName = "MANIFEST"

// manifestRecord is one journal line.
type manifestRecord struct {
	// Added and Deleted mirror VersionEdit.
	Added   map[int][]manifestTable `json:"added,omitempty"`
	Deleted map[int][]uint64        `json:"deleted,omitempty"`
	// WALNum points at the live WAL file after this edit.
	WALNum uint64 `json:"wal,omitempty"`
	// Seq checkpoints the sequence number (recovery resumes above it).
	Seq uint64 `json:"seq,omitempty"`
	// NextFile checkpoints the file-number allocator.
	NextFile uint64 `json:"next_file,omitempty"`
	// CompactPtr journals per-level round-robin compaction cursors (the
	// largest key compacted from that level), so file rotation resumes
	// where it left off instead of resetting on every reopen.
	CompactPtr map[int][]byte `json:"compact_ptr,omitempty"`
	// Quarantined journals table numbers newly marked quarantined by a
	// failed verification, so the scoped degradation survives reopen.
	// Replay keeps the union of all quarantine records, intersected with
	// the tables still live at the end.
	Quarantined []uint64 `json:"quarantined,omitempty"`
	// ScrubCursor checkpoints the background scrub worker's position (the
	// last table number verified), so a cycle resumes where it left off
	// instead of restarting from the lowest-numbered table on reopen.
	ScrubCursor uint64 `json:"scrub_cursor,omitempty"`
}

// manifestTable is the JSON form of TableMeta.
type manifestTable struct {
	Num      uint64 `json:"num"`
	Size     int64  `json:"size"`
	Entries  int64  `json:"entries"`
	Smallest []byte `json:"smallest"`
	Largest  []byte `json:"largest"`
	// Digest is the whole-file CRC32-C recorded at creation; 0 for tables
	// journaled before digests existed.
	Digest uint32 `json:"digest,omitempty"`
}

// manifest appends records durably.
type manifest struct {
	mu sync.Mutex
	f  storage.File
}

// openManifest opens or creates the manifest file.
func openManifest(fs storage.FS) (*manifest, error) {
	var f storage.File
	ok, err := storage.Exists(fs, manifestName)
	if err != nil {
		return nil, fmt.Errorf("lsm: probing manifest: %w", err)
	}
	if ok {
		f, err = fs.Open(manifestName)
	} else {
		f, err = fs.Create(manifestName)
	}
	if err != nil {
		return nil, err
	}
	return &manifest{f: f}, nil
}

// append writes one record and syncs. I/O failures are marked permanent:
// the write may have left a partial line that nothing can truncate away
// until the next recovery, so retrying a later append could interleave
// records into garbage.
func (m *manifest) append(rec *manifestRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lsm: encoding manifest record: %w", err)
	}
	data = append(data, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(data); err != nil {
		return markPermanent(err)
	}
	if err := m.f.Sync(); err != nil {
		return markPermanent(err)
	}
	return nil
}

// rewriteManifest replaces the manifest with the single snapshot record rec
// via write-to-temporary, sync, and atomic rename. A crash before the
// rename leaves the old manifest (and the WALs it implies) fully intact; a
// crash after it finds the compacted snapshot.
func rewriteManifest(fs storage.FS, rec *manifestRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lsm: encoding manifest snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := storage.WriteFile(fs, manifestName, data); err != nil {
		return fmt.Errorf("lsm: rewriting manifest: %w", err)
	}
	return nil
}

func (m *manifest) close() error { return m.f.Close() }

// replayManifest reads every record, returning the reconstructed state. A
// truncated final line (torn write) is tolerated: replay stops there.
func replayManifest(fs storage.FS) (edits []*manifestRecord, err error) {
	data, err := storage.ReadAll(fs, manifestName)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec manifestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail ends replay; everything before it is intact
			// because records are appended with sync.
			break
		}
		cp := rec
		edits = append(edits, &cp)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return nil, err
	}
	return edits, nil
}

// toManifestTables converts metas for journaling.
func toManifestTables(ts []*TableMeta) []manifestTable {
	out := make([]manifestTable, len(ts))
	for i, t := range ts {
		out[i] = manifestTable{Num: t.Num, Size: t.Size, Entries: t.Entries,
			Smallest: t.Smallest, Largest: t.Largest, Digest: t.Digest}
	}
	return out
}

// fromManifestTable converts back to a TableMeta.
func fromManifestTable(t manifestTable) *TableMeta {
	return &TableMeta{Num: t.Num, Size: t.Size, Entries: t.Entries,
		Smallest: t.Smallest, Largest: t.Largest, Digest: t.Digest}
}
