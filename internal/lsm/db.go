package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pcplsm/internal/cache"
	"pcplsm/internal/core"
	"pcplsm/internal/ikey"
	"pcplsm/internal/memtable"
	"pcplsm/internal/metrics"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
	"pcplsm/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("lsm: key not found")

// heatHotThreshold is the minimum access count that marks a block key range
// hot for compaction pre-warming. 2 keeps one-pass scans (each block touched
// exactly once) from flagging the whole key space.
const heatHotThreshold = 2

// walFileName renders the name of WAL number num.
func walFileName(num uint64) string { return fmt.Sprintf("%06d.log", num) }

// DB is the LSM-tree store.
type DB struct {
	opts   Options
	fs     storage.FS
	vs     *versionSet
	bcache *cache.Cache
	heat   *cache.Heat // nil when pre-warm is disabled or there is no cache
	cache  *tableCache
	man    *manifest
	stats  statsCollector

	// governor is the engine-wide pipeline token-pool pair (see
	// governor.go); nil when Options.PipelineComputeTokens < 0.
	governor *pipelineGovernor

	// penv is the picker's stable view of the engine handed to every
	// CompactionPolicy.Pick call (see policy.go).
	penv *policyEnv

	// tuner is the metrics-driven policy self-tuner; nil when
	// Options.CompactionPolicy pins a policy. tunerMu serializes its
	// window with the last-sample snapshot (leaf lock, never held with
	// db.mu).
	tunerMu       sync.Mutex
	tuner         *policyTuner
	lastTuneStats Stats

	// installMu serializes version-edit application with the matching
	// manifest append, so the journal replays in the same order the
	// versions were installed even with concurrent installers.
	installMu sync.Mutex

	// Commit pipeline (see commit.go). commitMu serializes commit groups
	// with each other and with every WAL mutation (rotation, Close); the
	// leader holds it across WAL I/O and memtable inserts so neither
	// happens under db.mu. Lock order: commitMu → mu. writeMu guards only
	// the writer queue and is a leaf lock. commitBuf is the scratch buffer
	// for encoded records, reused across commits (commitMu in grouped mode,
	// mu in serial mode — never both in one DB). visibleSeq is the
	// watermark reads clamp to: the last sequence whose group is fully in
	// the memtable.
	commitMu   sync.Mutex
	writeMu    sync.Mutex
	writers    []*commitWriter
	commitBuf  []byte
	applyOps   []memtable.Op // scratch for staging a group's ops, reused like commitBuf
	visibleSeq atomic.Uint64

	mu        sync.Mutex
	cond      *sync.Cond
	mem       *memtable.Memtable
	imm       *memtable.Memtable
	wal       *wal.Writer
	walNum    uint64
	immWalNum uint64
	seq       uint64
	// policy is the active compaction policy; the tuner may swap it
	// mid-run (guarded by mu, like the cursors it steers).
	policy     CompactionPolicy
	compactPtr [NumLevels][]byte // round-robin compaction cursors (journaled in the manifest)
	snapshots  map[uint64]int    // live snapshot seq -> refcount
	closed     bool
	bgErr      error
	bgFailures int // consecutive transient background failures (retry budget)

	// quarantine is the set of table numbers isolated by a failed integrity
	// verification (scrub, read trip, or compaction-input attribution).
	// Mutations replace the map copy-on-write under mu, so read paths may
	// capture the reference under mu and consult it lock-free afterwards.
	// Journaled in the manifest so the scoped degradation survives reopen.
	quarantine map[uint64]struct{}
	// scrubCursor is the last table number the background scrub worker
	// verified (journaled so a cycle resumes across reopen). Guarded by mu.
	scrubCursor uint64

	// Scheduler claim state (see scheduler.go); guarded by mu.
	flushing            bool // a memtable flush is in flight
	compactionsInFlight int
	claimedLevels       [NumLevels]bool
	claimedFiles        map[uint64]struct{}
	pendingOutputs      map[uint64]struct{} // compaction outputs not yet installed

	// zombies are tables dropped from the current version whose files are
	// retained because a pinned old version may still read them; swept when
	// pins are released. Guarded by zmu (not mu: the read path releases
	// pins and must not contend with writers).
	zmu     sync.Mutex
	zombies map[uint64]struct{}

	bgWork chan struct{}
	bgQuit chan struct{}
	bgWg   sync.WaitGroup

	// Live-exported scheduler gauges (also visible via Stats()).
	reg                 *metrics.Registry
	gFlushesInFlight    *metrics.Gauge
	gCompactionsTotal   *metrics.Gauge
	gCompactionsByLevel [NumLevels]*metrics.Gauge
	gClaimedBytes       *metrics.Gauge
	gPolicyActive       *metrics.Gauge
}

// newMemtable builds an empty memtable from the DB's sharding/arena options.
func (db *DB) newMemtable() *memtable.Memtable {
	return memtable.New(memtable.Config{
		Shards:    db.opts.MemtableShards,
		ChunkSize: db.opts.MemtableArenaChunk,
	})
}

// gaugeFlushes moves the in-flight flush gauge by d.
func (db *DB) gaugeFlushes(d int64) { db.gFlushesInFlight.Add(d) }

// gaugeCompactions moves the in-flight compaction gauges: d units at the
// given source level, and bytes claimed table bytes (both signed).
func (db *DB) gaugeCompactions(level int, d, bytes int64) {
	db.gCompactionsTotal.Add(d)
	db.gCompactionsByLevel[level].Add(d)
	db.gClaimedBytes.Add(bytes)
}

// Open opens (creating or recovering) a DB on opts.FS.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	var blockCache *cache.Cache
	var heat *cache.Heat
	if opts.BlockCacheBytes > 0 {
		blockCache = cache.New(opts.BlockCacheBytes)
		if !opts.DisableCachePreWarm {
			heat = cache.NewHeat()
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	db := &DB{
		opts:           opts,
		fs:             opts.FS,
		vs:             newVersionSet(),
		bcache:         blockCache,
		heat:           heat,
		cache:          newTableCache(opts.FS, blockCache, heat),
		snapshots:      map[uint64]int{},
		quarantine:     map[uint64]struct{}{},
		claimedFiles:   map[uint64]struct{}{},
		pendingOutputs: map[uint64]struct{}{},
		zombies:        map[uint64]struct{}{},
		bgWork:         make(chan struct{}, opts.BackgroundWorkers),
		bgQuit:         make(chan struct{}),
		reg:            reg,
	}
	db.mem = db.newMemtable()
	db.cond = sync.NewCond(&db.mu)
	db.gFlushesInFlight = reg.Gauge("lsm_flushes_inflight")
	db.gCompactionsTotal = reg.Gauge("lsm_compactions_inflight")
	for l := range db.gCompactionsByLevel {
		db.gCompactionsByLevel[l] = reg.Gauge(fmt.Sprintf("lsm_compactions_inflight_l%d", l))
	}
	db.gClaimedBytes = reg.Gauge("lsm_claimed_bytes")
	db.gPolicyActive = reg.Gauge("lsm_policy_active")
	// Resolve the compaction policy. An empty name starts at leveling
	// with the self-tuner active; a pinned name disables the tuner.
	polName, tune := opts.CompactionPolicy, opts.CompactionPolicy == ""
	if polName == "" {
		polName = PolicyLeveling
	}
	pol, err := newPolicy(polName)
	if err != nil {
		return nil, err
	}
	db.policy = pol
	db.gPolicyActive.Set(policyIndex(polName))
	db.penv = &policyEnv{opts: &db.opts, free: db.levelPairFree, cursor: &db.compactPtr,
		heat: heat, quarantined: db.quarantinedLocked}
	if tune {
		db.tuner = newPolicyTuner(polName, opts.PolicyTunerWindow, heat != nil)
	}
	if opts.PipelineComputeTokens > 0 {
		db.governor = newPipelineGovernor(opts.PipelineComputeTokens,
			max(1, opts.PipelineIOTokens), reg)
	}

	if err := db.recover(); err != nil {
		return nil, err
	}

	// Start the fresh WAL.
	num := db.vs.NewFileNum()
	f, err := db.fs.Create(walFileName(num))
	if err != nil {
		return nil, err
	}
	db.wal = wal.NewWriter(f)
	db.walNum = num

	// Flush anything recovered from old WALs so the manifest snapshot below
	// supersedes every old log.
	if db.mem.Count() > 0 {
		meta, ferr := db.writeLevel0Table(db.mem)
		if ferr != nil {
			return nil, fmt.Errorf("lsm: flushing recovered memtable: %w", ferr)
		}
		edit := NewVersionEdit()
		edit.AddTable(0, meta)
		db.vs.Apply(edit)
		db.mem = db.newMemtable()
	}

	// Compact the whole recovered state into one snapshot record and install
	// it by atomic rename. A crash at any instant leaves either the old
	// manifest — with the old WALs it implies still on disk, since obsolete
	// files are only removed below — or the complete new one. This also
	// bounds manifest growth across restarts.
	rec := &manifestRecord{WALNum: num, Seq: db.seq, NextFile: db.vs.NewFileNum()}
	for level, tables := range db.vs.Current().Levels {
		if len(tables) > 0 {
			if rec.Added == nil {
				rec.Added = map[int][]manifestTable{}
			}
			rec.Added[level] = toManifestTables(tables)
		}
	}
	for level, ptr := range db.compactPtr {
		if ptr != nil {
			if rec.CompactPtr == nil {
				rec.CompactPtr = map[int][]byte{}
			}
			rec.CompactPtr[level] = ptr
		}
	}
	for num := range db.quarantine {
		rec.Quarantined = append(rec.Quarantined, num)
	}
	sort.Slice(rec.Quarantined, func(i, j int) bool { return rec.Quarantined[i] < rec.Quarantined[j] })
	rec.ScrubCursor = db.scrubCursor
	if err := rewriteManifest(db.fs, rec); err != nil {
		return nil, err
	}
	man, err := openManifest(db.fs)
	if err != nil {
		return nil, err
	}
	db.man = man
	db.visibleSeq.Store(db.seq)
	db.removeObsoleteFiles()

	for i := 0; i < opts.BackgroundWorkers; i++ {
		db.bgWg.Add(1)
		go db.backgroundWorker()
	}
	if opts.ScrubInterval > 0 {
		db.bgWg.Add(1)
		go db.scrubLoop()
	}
	return db, nil
}

// recover rebuilds state from the manifest and replays every leftover WAL
// (in file-number order) into the memtable. Open then flushes the replayed
// data and deletes the old logs.
func (db *DB) recover() error {
	haveManifest, err := storage.Exists(db.fs, manifestName)
	if err != nil {
		return fmt.Errorf("lsm: probing manifest: %w", err)
	}
	if haveManifest {
		edits, err := replayManifest(db.fs)
		if err != nil {
			return fmt.Errorf("lsm: replaying manifest: %w", err)
		}
		for _, rec := range edits {
			edit := NewVersionEdit()
			for level, tables := range rec.Added {
				for _, t := range tables {
					meta := fromManifestTable(t)
					edit.AddTable(level, meta)
					db.vs.bumpFileNum(meta.Num)
				}
			}
			for level, nums := range rec.Deleted {
				for _, n := range nums {
					edit.DeleteTable(level, n)
				}
			}
			// Restore the round-robin cursors so file picking resumes where
			// the previous incarnation left off instead of resetting to the
			// start of every level.
			for level, ptr := range rec.CompactPtr {
				if level >= 0 && level < NumLevels && len(ptr) > 0 {
					db.compactPtr[level] = append([]byte(nil), ptr...)
				}
			}
			// Quarantine replay keeps the union of every record (tables are
			// only de-quarantined by leaving the version, handled below);
			// mutating in place is fine here — recovery is single-threaded.
			for _, n := range rec.Quarantined {
				db.quarantine[n] = struct{}{}
			}
			if rec.ScrubCursor > 0 {
				db.scrubCursor = rec.ScrubCursor
			}
			db.vs.Apply(edit)
			if rec.WALNum > 0 {
				db.vs.bumpFileNum(rec.WALNum)
			}
			if rec.Seq > db.seq {
				db.seq = rec.Seq
			}
			if rec.NextFile > 0 {
				db.vs.bumpFileNum(rec.NextFile - 1)
			}
		}
		if err := db.vs.Current().checkInvariants(); err != nil {
			return err
		}
		// Quarantined tables that a later compaction or manual intervention
		// removed from the tree are no longer a hazard.
		db.pruneQuarantineLocked()
	}

	// Replay surviving logs oldest-first. Flushes delete superseded logs,
	// so whatever is on disk is live.
	names, err := db.fs.List()
	if err != nil {
		return err
	}
	var logNums []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			if n, perr := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64); perr == nil {
				logNums = append(logNums, n)
				db.vs.bumpFileNum(n)
			}
		}
		// Crash leftovers (half-written flush/compaction outputs that never
		// made the manifest) must still reserve their numbers, or a new
		// table allocation could collide with a stale file.
		if strings.HasSuffix(name, ".sst") {
			if n, perr := parseTableNum(name); perr == nil {
				db.vs.bumpFileNum(n)
			}
		}
	}
	sort.Slice(logNums, func(i, j int) bool { return logNums[i] < logNums[j] })
	for _, num := range logNums {
		recs, rerr := wal.ReadAllRecords(db.fs, walFileName(num))
		for _, rec := range recs {
			seq, entries, derr := decodeBatch(rec)
			if derr != nil {
				break
			}
			for i, e := range entries {
				s := seq + uint64(i)
				if e.kind == ikey.KindDelete {
					db.mem.Delete(s, e.key)
				} else {
					db.mem.Put(s, e.key, e.val)
				}
				if s > db.seq {
					db.seq = s
				}
			}
		}
		// A torn tail is expected after a crash: keep the prefix, stop at
		// damage, and let any structural error other than corruption fail
		// the open.
		if rerr != nil && !errors.Is(rerr, wal.ErrCorrupt) {
			return fmt.Errorf("lsm: replaying WAL %d: %w", num, rerr)
		}
	}
	return nil
}

// Close stops background work, syncs the WAL, and releases resources. Data
// already acknowledged is recoverable via WAL + manifest replay.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()

	close(db.bgQuit)
	db.bgWg.Wait()

	var first error
	// commitMu excludes an in-flight group's WAL append; any leader that
	// starts after `closed` was set bails before touching the WAL.
	db.commitMu.Lock()
	if err := db.wal.Close(); err != nil && first == nil {
		first = err
	}
	db.commitMu.Unlock()
	if err := db.man.close(); err != nil && first == nil {
		first = err
	}
	db.cache.Close()
	return first
}

// setBgErr installs the sticky background error (first one wins) and wakes
// every stalled writer and waiter so they observe the read-only state.
func (db *DB) setBgErr(err error) {
	db.mu.Lock()
	db.setBgErrLocked(err)
	db.mu.Unlock()
}

// setBgErrLocked is setBgErr with db.mu already held.
func (db *DB) setBgErrLocked(err error) {
	if db.bgErr == nil {
		db.bgErr = err
		db.stats.addBackgroundError()
		db.opts.logf("lsm: store degraded to read-only: %v", err)
	}
	db.cond.Broadcast()
}

// noteReadError classifies an error bubbling up a read path. Detected
// corruption is counted and degrades the store to read-only (sticky
// ErrCorruption); the read itself fails with an error matching both
// ErrCorruption and the underlying sentinel. Reads are never gated on the
// sticky state, so other keys stay readable.
func (db *DB) noteReadError(err error) error {
	if err == nil || errors.Is(err, ErrCorruption) {
		return err
	}
	if isCorruptionErr(err) {
		db.stats.addCorruption()
		wrapped := &backgroundError{cause: err, corruption: true}
		db.setBgErr(wrapped)
		return wrapped
	}
	return err
}

// noteTableReadError classifies an error from reading one specific table.
// Unlike noteReadError, the corruption is attributable, so only that table
// is quarantined — the store stays writable and every other range keeps
// serving — instead of the store-wide read-only degradation reserved for
// unattributable damage (WAL, manifest).
func (db *DB) noteTableReadError(num uint64, err error) error {
	if err == nil || errors.Is(err, ErrCorruption) {
		return err
	}
	if isCorruptionErr(err) {
		db.stats.addCorruption()
		db.quarantineTable(num, err)
		return &quarantinedError{num: num}
	}
	return err
}

// quarantineTable isolates table num after a failed verification: reads
// covering its range fail with ErrQuarantined, the compaction picker skips
// it, and the manifest journals it so the quarantine survives reopen. The
// quarantine set is replaced copy-on-write so read paths can keep a
// snapshot reference without locking.
func (db *DB) quarantineTable(num uint64, cause error) {
	db.mu.Lock()
	if _, dup := db.quarantine[num]; dup {
		db.mu.Unlock()
		return
	}
	next := make(map[uint64]struct{}, len(db.quarantine)+1)
	for n := range db.quarantine {
		next[n] = struct{}{}
	}
	next[num] = struct{}{}
	db.quarantine = next
	db.stats.setQuarantined(int64(len(next)))
	db.mu.Unlock()
	db.opts.logf("lsm: table %s quarantined: %v", TableFileName(num), cause)
	db.installMu.Lock()
	aerr := db.man.append(&manifestRecord{Quarantined: []uint64{num}})
	db.installMu.Unlock()
	if aerr != nil {
		// The quarantine could not be journaled: without it a reopen would
		// silently serve the damaged table again, so fall back to the
		// store-wide sticky degradation.
		db.setBgErr(aerr)
	}
}

// quarantinedLocked reports whether table num is quarantined. Called with
// db.mu held (the compaction picker runs under mu).
func (db *DB) quarantinedLocked(num uint64) bool {
	_, q := db.quarantine[num]
	return q
}

// anyQuarantinedLocked reports whether any listed table is quarantined.
// Called with db.mu held.
func (db *DB) anyQuarantinedLocked(tables []*TableMeta) bool {
	for _, t := range tables {
		if db.quarantinedLocked(t.Num) {
			return true
		}
	}
	return false
}

// pruneQuarantineLocked drops quarantine entries for tables no longer in
// the current version. Called with db.mu held (or single-threaded Open).
func (db *DB) pruneQuarantineLocked() {
	if len(db.quarantine) == 0 {
		return
	}
	next := map[uint64]struct{}{}
	v := db.vs.Current()
	for l := range v.Levels {
		for _, t := range v.Levels[l] {
			if _, q := db.quarantine[t.Num]; q {
				next[t.Num] = struct{}{}
			}
		}
	}
	db.quarantine = next
	db.stats.setQuarantined(int64(len(next)))
}

// nudge wakes the background loop.
func (db *DB) nudge() {
	select {
	case db.bgWork <- struct{}{}:
	default:
	}
}

// Put writes a key/value pair.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Write(&b)
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Write(&b)
}

// Write is implemented by the commit pipeline in commit.go.

// makeRoomForWrite rotates the memtable and stalls writers, mirroring
// LevelDB: the "write pauses" the paper attributes to slow compaction
// happen here. Called with db.mu held — by a serial writer, or by a group
// leader that also holds commitMu (WAL rotation requires both).
func (db *DB) makeRoomForWrite() error {
	for {
		switch {
		case db.bgErr != nil:
			return db.bgErr
		case db.closed:
			return ErrClosed
		case db.mem.ApproximateSize() < db.opts.MemtableSize &&
			(db.opts.DisableAutoCompaction ||
				len(db.vs.Current().Levels[0]) < db.opts.L0StallTrigger):
			// With auto-compaction disabled nothing will ever drain L0, so
			// the stall would deadlock; the caller asked for manual control.
			return nil
		case db.mem.ApproximateSize() < db.opts.MemtableSize:
			// Too many L0 tables: stall until compaction drains them.
			db.stallWait()
		case db.imm != nil:
			// Previous memtable still flushing: stall.
			db.stallWait()
		default:
			// Rotate: seal the memtable and switch to a fresh WAL.
			num := db.vs.NewFileNum()
			f, err := db.fs.Create(walFileName(num))
			if err != nil {
				return err
			}
			if err := db.wal.Close(); err != nil {
				f.Close()
				return err
			}
			db.imm = db.mem
			db.immWalNum = db.walNum
			db.mem = db.newMemtable()
			db.wal = wal.NewWriter(f)
			db.walNum = num
			db.nudge()
		}
	}
}

// stallWait blocks the writer until background work changes state.
func (db *DB) stallWait() {
	start := time.Now()
	db.nudge()
	db.cond.Wait()
	db.stats.update(func(s *Stats) {
		s.StallCount++
		s.StallTime += time.Since(start)
	})
}

// seqLatest asks getAt/newIteratorAt for the newest committed state. It is
// distinct from 0, which is a valid (empty-view) snapshot sequence: a
// snapshot taken before the first write must stay empty, not track the live
// DB.
const seqLatest = ^uint64(0)

// Get returns the current value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.getAt(key, seqLatest) }

// getAt reads key at sequence seq (seqLatest = newest). The read view is
// the memtable pointers + pinned version + the visible-sequence watermark;
// entries of an in-flight commit group sit above the watermark and are
// skipped, so reads never wait on commit I/O.
func (db *DB) getAt(key []byte, seq uint64) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mem, imm, v, snap := db.mem, db.imm, db.vs.Acquire(), db.visibleSeq.Load()
	quar := db.quarantine // copy-on-write map: safe to read without mu
	if seq != seqLatest {
		snap = seq
	}
	db.mu.Unlock()
	// The pin keeps every table file of v on disk even if a concurrent
	// compaction drops it from the current version mid-read.
	defer func() {
		db.vs.Release(v)
		db.sweepZombies()
	}()
	db.stats.addGet()

	if val, deleted, ok := mem.Get(key, snap); ok {
		if deleted {
			return nil, ErrNotFound
		}
		return append([]byte(nil), val...), nil
	}
	if imm != nil {
		if val, deleted, ok := imm.Get(key, snap); ok {
			if deleted {
				return nil, ErrNotFound
			}
			return append([]byte(nil), val...), nil
		}
	}

	search := ikey.SearchKey(key, snap)
	// L0: newest table first; ranges may overlap.
	l0 := v.Levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		t := l0[i]
		if !userInRange(key, t) {
			continue
		}
		if _, q := quar[t.Num]; q {
			return nil, &quarantinedError{num: t.Num}
		}
		val, deleted, ok, err := db.searchTable(t, key, search)
		if err != nil {
			return nil, db.noteTableReadError(t.Num, err)
		}
		if ok {
			if deleted {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}
	// Deeper levels: at most one candidate table per level.
	for level := 1; level < NumLevels; level++ {
		tables := v.Levels[level]
		idx := sort.Search(len(tables), func(i int) bool {
			return string(ikey.UserKey(tables[i].Largest)) >= string(key)
		})
		if idx == len(tables) || !userInRange(key, tables[idx]) {
			continue
		}
		if _, q := quar[tables[idx].Num]; q {
			return nil, &quarantinedError{num: tables[idx].Num}
		}
		val, deleted, ok, err := db.searchTable(tables[idx], key, search)
		if err != nil {
			return nil, db.noteTableReadError(tables[idx].Num, err)
		}
		if ok {
			if deleted {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}
	return nil, ErrNotFound
}

// userInRange reports whether user key k may be inside table t.
func userInRange(k []byte, t *TableMeta) bool {
	return string(k) >= string(ikey.UserKey(t.Smallest)) &&
		string(k) <= string(ikey.UserKey(t.Largest))
}

// searchTable looks key up in one table at snapshot search key.
func (db *DB) searchTable(t *TableMeta, key, search []byte) (val []byte, deleted, ok bool, err error) {
	h, err := db.cache.Get(t.Num)
	if err != nil {
		return nil, false, false, err
	}
	defer h.Close()
	r := h.Reader()
	if !r.MayContain(key) {
		// The Bloom filter proves the key absent: skip the block reads.
		db.stats.addFilterSkip()
		return nil, false, false, nil
	}
	// Closing the iterator returns it (and its scratch buffers) to the
	// reader's pool, so the value must be copied out before the deferred
	// Close runs — the alias may point into pooled scratch when the block
	// came straight from disk rather than the cache.
	it := r.NewIter()
	defer it.Close()
	if !it.Seek(search) {
		return nil, false, false, it.Err()
	}
	k := it.Key()
	if string(ikey.UserKey(k)) != string(key) {
		return nil, false, false, nil
	}
	if ikey.KindOf(k) == ikey.KindDelete {
		return nil, true, true, nil
	}
	return append([]byte(nil), it.Value()...), false, true, nil
}

// Stats returns a snapshot of cumulative statistics.
func (db *DB) Stats() Stats {
	s := db.stats.snapshot()
	db.mu.Lock()
	mem := db.mem
	db.mu.Unlock()
	if mem != nil {
		ms := mem.Stats()
		s.MemtableShards = int64(ms.Shards)
		s.MemtableEntries = ms.Entries
		s.MemtableMaxShardEntries = ms.MaxShardEntries
		s.MemtableMinShardEntries = ms.MinShardEntries
		s.MemtableArenaReserved = ms.ArenaReserved
		s.MemtableArenaUsed = ms.ArenaUsed
	}
	if db.bcache != nil {
		s.BlockCacheHits, s.BlockCacheMisses = db.bcache.Stats()
		s.BlockCacheEvictions = db.bcache.Evictions()
		s.BlockCachePrewarmed = db.bcache.Prewarmed()
		s.BlockCacheBytes = db.bcache.Size()
		s.BlockCacheCapacity = db.bcache.Capacity()
	}
	if db.governor != nil {
		ct, it2, cl, il := db.governor.snapshot()
		s.PipelineComputeTokens = int64(ct)
		s.PipelineIOTokens = int64(it2)
		s.PipelineComputeLeased = int64(cl)
		s.PipelineIOLeased = int64(il)
	}
	db.mu.Lock()
	s.ActivePolicy = db.policy.Name()
	db.mu.Unlock()
	return s
}

// Version returns the current table layout (for inspection and tests).
func (db *DB) Version() *Version { return db.vs.Current() }

// Metrics returns the DB's metrics registry with the operation counters
// synced from the stats snapshot. The scheduler gauges (in-flight flushes
// and compactions per level, claimed bytes) are maintained live and need no
// sync.
func (db *DB) Metrics() *metrics.Registry {
	s := db.Stats()
	db.reg.Gauge("lsm_puts").Set(s.Puts)
	db.reg.Gauge("lsm_deletes").Set(s.Deletes)
	db.reg.Gauge("lsm_gets").Set(s.Gets)
	db.reg.Gauge("lsm_filter_skips").Set(s.FilterSkips)
	db.reg.Gauge("lsm_flushes").Set(s.Flushes)
	db.reg.Gauge("lsm_compactions").Set(s.Compactions)
	db.reg.Gauge("lsm_stall_count").Set(s.StallCount)
	db.reg.Gauge("lsm_stall_ns").Set(int64(s.StallTime))
	db.reg.Gauge("lsm_max_concurrent_background").Set(s.MaxConcurrentBackground)
	db.reg.Gauge("lsm_write_groups").Set(s.WriteGroups)
	db.reg.Gauge("lsm_grouped_writes").Set(s.GroupedWrites)
	db.reg.Gauge("lsm_wal_syncs").Set(s.WALSyncs)
	db.reg.Gauge("lsm_max_write_group").Set(s.MaxWriteGroup)
	db.reg.Gauge("lsm_background_retries").Set(s.BackgroundRetries)
	db.reg.Gauge("lsm_background_errors").Set(s.BackgroundErrors)
	db.reg.Gauge("lsm_corruptions_detected").Set(s.CorruptionsDetected)
	// Integrity observability: scrub progress, paranoid verification, and the
	// scoped-quarantine gauge (see scrub.go).
	db.reg.Gauge("lsm_scrub_tables_verified").Set(s.ScrubTablesVerified)
	db.reg.Gauge("lsm_scrub_bytes_verified").Set(s.ScrubBytesVerified)
	db.reg.Gauge("lsm_scrub_cycles").Set(s.ScrubCycles)
	db.reg.Gauge("lsm_scrub_corruptions").Set(s.ScrubCorruptions)
	db.reg.Gauge("lsm_quarantined_tables").Set(s.QuarantinedTables)
	db.reg.Gauge("lsm_paranoid_verifies").Set(s.ParanoidVerifies)
	db.reg.Gauge("lsm_paranoid_rejections").Set(s.ParanoidRejections)
	db.reg.Gauge("lsm_block_cache_hits").Set(s.BlockCacheHits)
	db.reg.Gauge("lsm_block_cache_misses").Set(s.BlockCacheMisses)
	db.reg.Gauge("lsm_block_cache_evictions").Set(s.BlockCacheEvictions)
	db.reg.Gauge("lsm_block_cache_bytes").Set(s.BlockCacheBytes)
	db.reg.Gauge("lsm_block_cache_capacity").Set(s.BlockCacheCapacity)
	db.reg.Gauge("lsm_block_cache_prewarmed").Set(s.BlockCachePrewarmed)
	db.reg.Gauge("lsm_memtable_shards").Set(s.MemtableShards)
	db.reg.Gauge("lsm_memtable_entries").Set(s.MemtableEntries)
	db.reg.Gauge("lsm_memtable_shard_entries_max").Set(s.MemtableMaxShardEntries)
	db.reg.Gauge("lsm_memtable_shard_entries_min").Set(s.MemtableMinShardEntries)
	db.reg.Gauge("lsm_memtable_arena_reserved_bytes").Set(s.MemtableArenaReserved)
	db.reg.Gauge("lsm_memtable_arena_used_bytes").Set(s.MemtableArenaUsed)
	db.reg.Gauge("lsm_apply_shard_runs").Set(s.ApplyShardRuns)
	db.reg.Gauge("lsm_parallel_applies").Set(s.ParallelApplies)
	// Pipeline & governor observability. The token pool gauges
	// (lsm_pipeline_{compute,io}_{tokens,leased}) are maintained live by the
	// governor itself; the decision counters and stage-time attribution are
	// synced here from the stats snapshot.
	db.reg.Gauge("lsm_compactions_pipelined").Set(s.PipelinedCompactions)
	db.reg.Gauge("lsm_governor_grows").Set(s.GovernorGrows)
	db.reg.Gauge("lsm_governor_shrinks").Set(s.GovernorShrinks)
	db.reg.Gauge("lsm_governor_denials").Set(s.GovernorDenials)
	// Compaction-policy observability. lsm_policy_active is maintained live
	// by setPolicy/Open (see policyIndex for the value encoding).
	db.reg.Gauge("lsm_trivial_moves").Set(s.TrivialMoves)
	db.reg.Gauge("lsm_trivial_move_bytes").Set(s.TrivialMoveBytes)
	db.reg.Gauge("lsm_policy_switches").Set(s.PolicySwitches)
	db.reg.Gauge("lsm_compaction_stage_busy_read_ns").Set(int64(s.CompactionStageBusy.Read))
	db.reg.Gauge("lsm_compaction_stage_busy_compute_ns").Set(int64(s.CompactionStageBusy.Compute))
	db.reg.Gauge("lsm_compaction_stage_busy_write_ns").Set(int64(s.CompactionStageBusy.Write))
	db.reg.Gauge("lsm_compaction_stage_idle_read_ns").Set(int64(s.CompactionStageIdle.Read))
	db.reg.Gauge("lsm_compaction_stage_idle_compute_ns").Set(int64(s.CompactionStageIdle.Compute))
	db.reg.Gauge("lsm_compaction_stage_idle_write_ns").Set(int64(s.CompactionStageIdle.Write))
	db.reg.Gauge("lsm_compaction_queue_hw_compute").Set(int64(s.LastCompaction.Pipeline.ComputeQueueHighWater))
	db.reg.Gauge("lsm_compaction_queue_hw_write").Set(int64(s.LastCompaction.Pipeline.WriteQueueHighWater))
	return db.reg
}

// Seq returns the last committed (read-visible) sequence number.
func (db *DB) Seq() uint64 { return db.visibleSeq.Load() }

// Flush forces the current memtable to disk and waits for it.
//
// Rotating the memtable/WAL pair requires commitMu (a commit group may be
// appending to the live WAL and inserting into the live memtable outside
// db.mu), but commitMu must not be held while waiting on the condition
// variable — that would block every writer behind an in-flight flush. So
// the wait happens under db.mu alone and the rotation re-checks state once
// both locks are held.
func (db *DB) Flush() error {
	for {
		db.commitMu.Lock()
		db.mu.Lock()
		if db.closed || db.bgErr != nil {
			err := firstErr(db.bgErr, ErrClosed)
			db.mu.Unlock()
			db.commitMu.Unlock()
			return err
		}
		if db.imm == nil {
			break // both locks held: rotation is safe
		}
		db.mu.Unlock()
		db.commitMu.Unlock()
		db.mu.Lock()
		for db.imm != nil && db.bgErr == nil && !db.closed {
			db.nudge()
			db.cond.Wait()
		}
		db.mu.Unlock()
	}
	if db.mem.Count() > 0 {
		num := db.vs.NewFileNum()
		f, err := db.fs.Create(walFileName(num))
		if err != nil {
			db.mu.Unlock()
			db.commitMu.Unlock()
			return err
		}
		if err := db.wal.Close(); err != nil {
			f.Close()
			db.mu.Unlock()
			db.commitMu.Unlock()
			return err
		}
		db.imm = db.mem
		db.immWalNum = db.walNum
		db.mem = db.newMemtable()
		db.wal = wal.NewWriter(f)
		db.walNum = num
	}
	db.mu.Unlock()
	db.commitMu.Unlock()

	db.mu.Lock()
	defer db.mu.Unlock()
	for db.imm != nil && db.bgErr == nil && !db.closed {
		db.nudge()
		db.cond.Wait()
	}
	if db.closed {
		return firstErr(db.bgErr, ErrClosed)
	}
	return db.bgErr
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// WaitIdle blocks until no flush is pending and no level is over threshold.
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return ErrClosed
		}
		if db.imm == nil && !db.backgroundBusy() && db.pickCompaction(db.vs.Current()) == nil {
			return nil
		}
		db.nudge()
		db.cond.Wait()
	}
}

// writeLevel0Table dumps a memtable into a new table file and returns its
// metadata. (Unlike compaction outputs, a flush is always a single table,
// like LevelDB.) With Options.PipelinedFlush it overlaps block building
// with the writes. With Options.ParanoidChecks the finished table is
// re-read and verified against its metadata before the caller may
// reference it; a rejected output is deleted and the flush fails with a
// retryable outputVerifyError.
func (db *DB) writeLevel0Table(mem *memtable.Memtable) (*TableMeta, error) {
	meta, err := db.buildLevel0Table(mem)
	if err != nil || !db.opts.ParanoidChecks {
		return meta, err
	}
	if verr := db.verifyOutput(meta); verr != nil {
		db.fs.Remove(meta.FileName())
		return nil, verr
	}
	return meta, nil
}

// buildLevel0Table is writeLevel0Table without the paranoid re-read.
func (db *DB) buildLevel0Table(mem *memtable.Memtable) (*TableMeta, error) {
	if db.opts.PipelinedFlush {
		return db.writeLevel0TablePipelined(mem)
	}
	num := db.vs.NewFileNum()
	name := TableFileName(num)
	raw, err := db.fs.Create(name)
	if err != nil {
		return nil, err
	}
	// Buffer block writes so devices see large sequential requests, the
	// way LevelDB's buffered table builder behaves.
	f := storage.NewBufferedFile(raw, 0)
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:        db.opts.BlockSize,
		RestartInterval:  db.opts.RestartInterval,
		Codec:            db.opts.Codec,
		Compare:          ikey.Compare,
		FilterBitsPerKey: db.opts.BloomBitsPerKey,
		FilterKey:        ikey.UserKey,
	})
	it := mem.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			f.Close()
			db.fs.Remove(name)
			return nil, err
		}
	}
	tm, err := w.Finish()
	// The table must be durable before the manifest references it and the
	// WAL that covers its contents is deleted.
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		db.fs.Remove(name)
		return nil, err
	}
	return &TableMeta{Num: num, Size: tm.FileSize, Entries: tm.Entries,
		Smallest: tm.Smallest, Largest: tm.Largest, Digest: tm.Digest}, nil
}

// flushMemtable writes imm to L0 and installs it.
func (db *DB) flushMemtable(imm *memtable.Memtable, oldWAL uint64) error {
	if imm.Count() == 0 {
		db.fs.Remove(walFileName(oldWAL))
		return nil
	}
	start := time.Now()
	meta, err := db.writeLevel0Table(imm)
	if err != nil {
		return err
	}
	edit := NewVersionEdit()
	edit.AddTable(0, meta)
	// Checkpoint the sequence number: this flush deletes its WAL, and the
	// live WAL may stay empty until the next write, so without the
	// checkpoint a reopen would resurrect a lower sequence counter — new
	// writes would then be shadowed by the (higher-sequenced) flushed data.
	db.mu.Lock()
	seqNow := db.seq
	db.mu.Unlock()
	db.installMu.Lock()
	v := db.vs.Apply(edit)
	aerr := db.man.append(&manifestRecord{
		Added:    map[int][]manifestTable{0: toManifestTables([]*TableMeta{meta})},
		Seq:      seqNow,
		NextFile: db.vs.NewFileNum(),
	})
	db.installMu.Unlock()
	if aerr != nil {
		return aerr
	}
	db.fs.Remove(walFileName(oldWAL))
	db.stats.update(func(s *Stats) {
		s.Flushes++
		s.FlushBytes += meta.Size
		s.FlushWall += time.Since(start)
	})
	db.opts.logf("lsm: flushed memtable to %s (%d bytes, L0 now %d tables)",
		meta.FileName(), meta.Size, len(v.Levels[0]))
	// More work may now be due.
	db.nudge()
	return nil
}

// pickedCompaction describes the inputs chosen for one compaction.
type pickedCompaction struct {
	level   int // source level; outputs land on level+1
	inputs  []*TableMeta
	overlap []*TableMeta
}

// pickCompaction delegates to the active compaction policy (policy.go):
// trigger scoring and input selection are the policy's axes. Called with
// db.mu held (the policy reads compactPtr and the claim sets through
// db.penv).
func (db *DB) pickCompaction(v *Version) *pickedCompaction {
	return db.policy.Pick(db.penv, v)
}

// ActivePolicy returns the name of the compaction policy currently in
// effect (the pinned one, or whatever the self-tuner last selected).
func (db *DB) ActivePolicy() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.policy.Name()
}

// setPolicy installs the named policy if it differs from the active one.
func (db *DB) setPolicy(name string) {
	db.mu.Lock()
	if db.policy.Name() == name {
		db.mu.Unlock()
		return
	}
	pol, err := newPolicy(name)
	if err != nil {
		db.mu.Unlock()
		return
	}
	db.policy = pol
	db.mu.Unlock()
	db.stats.addPolicySwitch()
	db.gPolicyActive.Set(policyIndex(name))
	db.opts.logf("lsm: compaction policy switched to %s", name)
	db.nudge()
}

// maybeTunePolicy feeds the self-tuner one sample of metric deltas (one
// per completed background unit) and applies any policy switch it
// orders. No-op when the policy is pinned.
func (db *DB) maybeTunePolicy() {
	if db.tuner == nil {
		return
	}
	db.tunerMu.Lock()
	cur := db.stats.snapshot()
	sample := deltaSample(db.lastTuneStats, cur)
	db.lastTuneStats = cur
	want := db.tuner.observe(sample)
	db.tunerMu.Unlock()
	db.setPolicy(want)
}

// keyRange returns the union range of tables.
func keyRange(tables []*TableMeta) (smallest, largest []byte) {
	for _, t := range tables {
		if smallest == nil || ikey.Compare(t.Smallest, smallest) < 0 {
			smallest = t.Smallest
		}
		if largest == nil || ikey.Compare(t.Largest, largest) > 0 {
			largest = t.Largest
		}
	}
	return smallest, largest
}

// runCompaction executes a picked compaction with the configured procedure
// and installs the result. The claim's pipeline lease (when present)
// overrides the configured stage widths with the granted budget and, unless
// adaptive resizing is disabled, attaches the pilot that resizes the
// pipeline mid-run within that budget.
func (db *DB) runCompaction(pc *pickedCompaction, claim *compactionClaim) error {
	all := append(append([]*TableMeta(nil), pc.inputs...), pc.overlap...)
	sources := make([]*core.TableSource, 0, len(all))
	handles := make([]tableHandle, 0, len(all))
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	for _, t := range all {
		h, err := db.cache.Get(t.Num)
		if err != nil {
			// Rot in an index or footer fails the open itself, before the
			// merge reads a single block: quarantine the culprit here just as
			// a mid-merge corruption would be attributed below.
			if isCorruptionErr(err) {
				db.stats.addCorruption()
				db.quarantineTable(t.Num, err)
				return &quarantineHandledError{err: err}
			}
			return err
		}
		handles = append(handles, h)
		sources = append(sources, core.NewTableSource(h.Reader()))
	}

	cfg := db.opts.Compaction
	if claim != nil && claim.lease != nil {
		cfg.ComputeParallel, cfg.IOParallel = claim.lease.widths()
		if !db.opts.DisableAdaptiveCompaction {
			cfg.Governor = &adaptivePilot{lease: claim.lease, stats: &db.stats}
		}
	}
	db.mu.Lock()
	cfg.RetainSeq = db.smallestSnapshot()
	db.mu.Unlock()
	// Tombstones may be dropped only if no deeper level holds the key range.
	smallest, largest := keyRange(all)
	cfg.DropTombstones = true
	v := db.vs.Current()
	for level := pc.level + 2; level < NumLevels; level++ {
		if len(v.overlapping(level, smallest, largest)) > 0 {
			cfg.DropTombstones = false
			break
		}
	}

	// Compaction-surviving cache: snapshot the read heat and have the write
	// stage hand back (still in memory, already decompressed) every output
	// block covering a hot range, inserted under the new table's identity
	// before the version edit installs. Cold output is never admitted, and
	// at most half the cache may be pre-warmed by one compaction so a large
	// merge cannot flush an unrelated working set.
	if db.heat != nil {
		// Cap the hot set at a quarter of the cache's block count: only the
		// hottest ranges are worth re-admitting, and a loose set would churn
		// the cache with zipf-tail blocks that were touched a couple of times.
		hotLimit := int(db.bcache.Capacity() / int64(4*db.opts.BlockSize))
		if hotLimit < 1 {
			hotLimit = 1
		}
		if hot := db.heat.Snapshot(heatHotThreshold, hotLimit); hot.Len() > 0 {
			var warmedBytes atomic.Int64
			budget := db.bcache.Capacity() / 2
			cfg.HotRange = func(first, last []byte) bool {
				return hot.AnyInRange(ikey.UserKey(first), ikey.UserKey(last))
			}
			cfg.WarmOutput = func(name string, offset int64, plain []byte) {
				if warmedBytes.Add(int64(len(plain))) > budget {
					return
				}
				if num, perr := parseTableNum(name); perr == nil {
					db.bcache.PutWarm(cache.Key{ID: num, Offset: offset}, plain)
				}
			}
		}
	}

	// Register every output as pending so obsolete-file sweeps leave the
	// half-built tables alone; the registration is dropped once the edit is
	// installed (or the compaction fails).
	var outNums []uint64
	sink := func() (string, storage.File, error) {
		num := db.vs.NewFileNum()
		db.mu.Lock()
		db.pendingOutputs[num] = struct{}{}
		outNums = append(outNums, num)
		db.mu.Unlock()
		name := TableFileName(num)
		f, err := db.fs.Create(name)
		return name, f, err
	}
	defer func() {
		db.mu.Lock()
		for _, num := range outNums {
			delete(db.pendingOutputs, num)
		}
		db.mu.Unlock()
	}()
	res, err := core.Run(cfg, sources, sink)
	if err != nil {
		err = fmt.Errorf("lsm: compaction L%d→L%d: %w", pc.level, pc.level+1, err)
		if isCorruptionErr(err) {
			// Attribute the damage: re-verify each input table and quarantine
			// the ones that fail. If a culprit is found the failure is handled
			// in scope — the next pick skips the quarantined table — so the
			// worker retries instead of degrading the whole store.
			if db.quarantineCorruptInputs(all, err) > 0 {
				return &quarantineHandledError{err: err}
			}
		}
		return err
	}

	edit := NewVersionEdit()
	outMetas := make([]*TableMeta, 0, len(res.Outputs))
	for _, o := range res.Outputs {
		num, perr := parseTableNum(o.Name)
		if perr != nil {
			return perr
		}
		meta := &TableMeta{Num: num, Size: o.Meta.FileSize, Entries: o.Meta.Entries,
			Smallest: o.Meta.Smallest, Largest: o.Meta.Largest, Digest: o.Meta.Digest}
		outMetas = append(outMetas, meta)
		edit.AddTable(pc.level+1, meta)
	}
	if db.opts.ParanoidChecks {
		// Verify-before-install: every output must re-read clean before the
		// version edit references any of them. The inputs are still live, so
		// a rejection discards the whole output set and retries the unit.
		for _, meta := range outMetas {
			if verr := db.verifyOutput(meta); verr != nil {
				for _, m := range outMetas {
					db.fs.Remove(m.FileName())
				}
				return verr
			}
		}
	}
	for _, t := range pc.inputs {
		edit.DeleteTable(pc.level, t.Num)
	}
	for _, t := range pc.overlap {
		edit.DeleteTable(pc.level+1, t.Num)
	}

	rec := &manifestRecord{
		Added:   map[int][]manifestTable{pc.level + 1: toManifestTables(outMetas)},
		Deleted: map[int][]uint64{},
	}
	for _, t := range pc.inputs {
		rec.Deleted[pc.level] = append(rec.Deleted[pc.level], t.Num)
	}
	for _, t := range pc.overlap {
		rec.Deleted[pc.level+1] = append(rec.Deleted[pc.level+1], t.Num)
	}

	// Install version edit and manifest record as one unit: concurrent
	// installers (a flush, or a compaction on a disjoint level pair) must
	// journal in the same order their versions become current.
	db.installMu.Lock()
	db.mu.Lock()
	nv := db.vs.Apply(edit)
	if pc.level > 0 && len(pc.inputs) > 0 {
		db.compactPtr[pc.level] = append([]byte(nil),
			pc.inputs[len(pc.inputs)-1].Largest...)
		rec.CompactPtr = map[int][]byte{pc.level: db.compactPtr[pc.level]}
	}
	db.mu.Unlock()
	aerr := db.man.append(rec)
	db.installMu.Unlock()
	if aerr != nil {
		return aerr
	}
	if err := nv.checkInvariants(); err != nil {
		return err
	}

	// Defer input deletion through the zombie sweep: a pinned old version
	// (an in-flight Get) may still be reading these tables.
	db.zmu.Lock()
	for _, t := range all {
		db.zombies[t.Num] = struct{}{}
	}
	db.zmu.Unlock()
	db.sweepZombies()
	db.stats.addCompaction(res.Stats)
	db.opts.logf("lsm: compacted L%d→L%d: %v", pc.level, pc.level+1, res.Stats)
	db.nudge()
	return nil
}

// trivialMoveOK reports whether a picked compaction can be installed as a
// metadata-only move: a single input table with zero next-level overlap
// needs no merging, so rewriting it through the pipeline is pure write
// amplification. Moving into the bottom level is excluded while no
// snapshot is open, because there a rewrite is not pure waste — it is the
// only chance to drop tombstones and shadowed versions (with a snapshot
// open the rewrite would have to retain them anyway, so the move loses
// nothing). Called with db.mu held (reads db.policy and db.snapshots).
func (db *DB) trivialMoveOK(pc *pickedCompaction) bool {
	if db.opts.DisableTrivialMove || !db.policy.AllowTrivialMove() {
		return false
	}
	if len(pc.inputs) != 1 || len(pc.overlap) != 0 {
		return false
	}
	if pc.level+1 == NumLevels-1 && len(db.snapshots) == 0 {
		return false
	}
	return true
}

// runTrivialMove installs pc's single input one level down as a pure
// version edit plus manifest record — no table I/O, no new file number, no
// cache eviction. The caller holds pc's claim and releases it afterwards,
// exactly like runCompaction.
func (db *DB) runTrivialMove(pc *pickedCompaction) error {
	t := pc.inputs[0]
	edit := NewVersionEdit()
	edit.DeleteTable(pc.level, t.Num)
	edit.AddTable(pc.level+1, t)
	rec := &manifestRecord{
		Added:   map[int][]manifestTable{pc.level + 1: toManifestTables([]*TableMeta{t})},
		Deleted: map[int][]uint64{pc.level: {t.Num}},
	}

	db.installMu.Lock()
	db.mu.Lock()
	nv := db.vs.Apply(edit)
	if pc.level > 0 {
		db.compactPtr[pc.level] = append([]byte(nil), t.Largest...)
		rec.CompactPtr = map[int][]byte{pc.level: db.compactPtr[pc.level]}
	}
	db.mu.Unlock()
	aerr := db.man.append(rec)
	db.installMu.Unlock()
	if aerr != nil {
		return aerr
	}
	if err := nv.checkInvariants(); err != nil {
		return err
	}
	db.stats.addTrivialMove(t.Size)
	db.opts.logf("lsm: trivial move: table %s L%d→L%d (%d bytes, no rewrite)",
		t.FileName(), pc.level, pc.level+1, t.Size)
	db.nudge()
	return nil
}

// CompactLevel synchronously compacts one unit of work from the given level
// into the next, regardless of thresholds. It is the hook experiments use
// to measure isolated compactions.
func (db *DB) CompactLevel(level int) error {
	if level < 0 || level >= NumLevels-1 {
		return fmt.Errorf("lsm: cannot compact level %d", level)
	}
	db.mu.Lock()
	pc, claim, werr := db.waitClaimCompaction(func(v *Version) *pickedCompaction {
		if len(v.Levels[level]) == 0 {
			return nil
		}
		// The same round-robin cursor the background picker uses, so manual
		// level compactions rotate through the level (and advance the
		// persisted cursor) exactly like automatic ones.
		return pickInputs(db.penv, v, level, cursorPick)
	})
	db.mu.Unlock()
	if werr != nil || pc == nil {
		return werr
	}

	err := db.runCompaction(pc, claim)
	db.mu.Lock()
	db.releaseCompaction(claim)
	db.mu.Unlock()
	return err
}

// CompactRange synchronously compacts every table whose user-key range
// intersects [begin, end] down through the levels, level by level. Nil
// bounds are open: CompactRange(nil, nil) rewrites the whole tree, which
// drops all shadowed versions and (at the bottom) tombstones — the manual
// "major compaction" of LevelDB.
func (db *DB) CompactRange(begin, end []byte) error {
	if err := db.Flush(); err != nil {
		return err
	}
	var smallest, largest []byte
	if begin != nil {
		smallest = ikey.Make(begin, ikey.MaxSeq, ikey.KindSet)
	}
	if end != nil {
		largest = ikey.Make(end, 0, 0)
	}
	for level := 0; level < NumLevels-1; level++ {
		db.mu.Lock()
		pc, claim, werr := db.waitClaimCompaction(func(v *Version) *pickedCompaction {
			inputs := v.overlapping(level, smallest, largest)
			if len(inputs) == 0 {
				return nil
			}
			pc := &pickedCompaction{level: level, inputs: inputs}
			lo, hi := keyRange(pc.inputs)
			pc.overlap = v.overlapping(level+1, lo, hi)
			if db.anyQuarantinedLocked(pc.inputs) || db.anyQuarantinedLocked(pc.overlap) {
				// Merging through a quarantined table would only re-read the
				// damage; leave its slice of the range alone.
				return nil
			}
			return pc
		})
		db.mu.Unlock()
		if werr != nil {
			return werr
		}
		if pc == nil {
			// Nothing overlapping at this level.
			continue
		}

		err := db.runCompaction(pc, claim)
		db.mu.Lock()
		db.releaseCompaction(claim)
		db.mu.Unlock()
		if err != nil {
			return err
		}
		// One pass per level suffices: the inputs moved down.
	}
	return nil
}

// sweepZombies deletes dropped tables that no live (current or pinned)
// version references any more. Cheap no-op when nothing is pending.
func (db *DB) sweepZombies() {
	db.zmu.Lock()
	defer db.zmu.Unlock()
	for num := range db.zombies {
		if db.vs.anyLiveContains(num) {
			continue
		}
		delete(db.zombies, num)
		db.cache.Evict(num)
		db.fs.Remove(TableFileName(num))
	}
}

// parseTableNum extracts the file number from a table file name.
func parseTableNum(name string) (uint64, error) {
	base := strings.TrimSuffix(name, ".sst")
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("lsm: bad table name %q", name)
	}
	return n, nil
}

// removeObsoleteFiles deletes table and log files not referenced by the
// current version or the live WAL (crash leftovers). Tables claimed by
// in-flight compactions and their not-yet-installed outputs are pinned.
func (db *DB) removeObsoleteFiles() {
	names, err := db.fs.List()
	if err != nil {
		return
	}
	live := map[string]bool{manifestName: true, walFileName(db.walNum): true}
	db.mu.Lock()
	for num := range db.claimedFiles {
		live[TableFileName(num)] = true
	}
	for num := range db.pendingOutputs {
		live[TableFileName(num)] = true
	}
	db.mu.Unlock()
	db.zmu.Lock()
	for num := range db.zombies {
		live[TableFileName(num)] = true
	}
	db.zmu.Unlock()
	v := db.vs.Current()
	for l := range v.Levels {
		for _, t := range v.Levels[l] {
			live[t.FileName()] = true
		}
	}
	for _, name := range names {
		if live[name] {
			continue
		}
		if strings.HasSuffix(name, ".sst") || strings.HasSuffix(name, ".log") {
			db.fs.Remove(name)
		}
	}
}
