package lsm

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pcplsm/internal/storage"
)

// scanAll drains a fresh iterator into an ordered key=value slice.
func scanAll(t *testing.T, db *DB) []string {
	t.Helper()
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []string
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, fmt.Sprintf("%s=%s", it.Key(), it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedEquivalenceRandom drives two stores — one shard versus eight —
// through the same randomized workload (puts, deletes, batches, flushes,
// reopen) and requires identical reads and identical scans at every
// checkpoint. MemtableShards must be invisible to every observable behavior.
func TestShardedEquivalenceRandom(t *testing.T) {
	newDB := func(fs storage.FS, shards int) *DB {
		opts := smallOpts(fs)
		opts.MemtableShards = shards
		opts.DisableAutoCompaction = true
		return mustOpen(t, opts)
	}
	fs1, fs8 := storage.NewMemFS(), storage.NewMemFS()
	db1, db8 := newDB(fs1, 1), newDB(fs8, 8)
	defer func() { db1.Close(); db8.Close() }()

	both := func(step int, f func(db *DB) error) {
		t.Helper()
		if err := f(db1); err != nil {
			t.Fatalf("step %d (shards=1): %v", step, err)
		}
		if err := f(db8); err != nil {
			t.Fatalf("step %d (shards=8): %v", step, err)
		}
	}

	rng := rand.New(rand.NewSource(0xFEED))
	key := func() []byte { return []byte(fmt.Sprintf("key%05d", rng.Intn(1200))) }
	const steps = 4000
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 50:
			k, v := key(), []byte(fmt.Sprintf("v%d", step))
			both(step, func(db *DB) error { return db.Put(k, v) })
		case r < 62:
			k := key()
			both(step, func(db *DB) error { return db.Delete(k) })
		case r < 80:
			var b Batch
			for i, n := 0, rng.Intn(24)+1; i < n; i++ {
				if rng.Intn(6) == 0 {
					b.Delete(key())
				} else {
					b.Put(key(), []byte(fmt.Sprintf("b%d-%d", step, i)))
				}
			}
			both(step, func(db *DB) error { return db.Write(&b) })
		case r < 82:
			both(step, func(db *DB) error { return db.Flush() })
		default:
			k := key()
			v1, err1 := db1.Get(k)
			v8, err8 := db8.Get(k)
			if !errors.Is(err1, err8) && (err1 != nil || err8 != nil) {
				t.Fatalf("step %d: Get(%q) errs diverge: %v vs %v", step, k, err1, err8)
			}
			if string(v1) != string(v8) {
				t.Fatalf("step %d: Get(%q) = %q vs %q", step, k, v1, v8)
			}
		}
		if step%1000 == 999 {
			s1, s8 := scanAll(t, db1), scanAll(t, db8)
			if len(s1) != len(s8) {
				t.Fatalf("step %d: scan lengths %d vs %d", step, len(s1), len(s8))
			}
			for i := range s1 {
				if s1[i] != s8[i] {
					t.Fatalf("step %d: scan entry %d: %q vs %q", step, i, s1[i], s8[i])
				}
			}
		}
	}

	// Close/reopen: WAL replay routes through the sharded memtable too.
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db8.Close(); err != nil {
		t.Fatal(err)
	}
	db1, db8 = newDB(fs1, 1), newDB(fs8, 8)
	s1, s8 := scanAll(t, db1), scanAll(t, db8)
	if len(s1) != len(s8) {
		t.Fatalf("post-reopen scan lengths %d vs %d", len(s1), len(s8))
	}
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("post-reopen scan entry %d: %q vs %q", i, s1[i], s8[i])
		}
	}
}

// readFile slurps a whole file out of an FS.
func readFile(t *testing.T, fs storage.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

// TestWALBytesIdenticalAcrossShards pins the on-disk compatibility claim:
// sharding is purely an in-memory arrangement, so the WAL an unsharded store
// writes and the WAL an 8-shard store writes for the same operations are
// bit-for-bit identical.
func TestWALBytesIdenticalAcrossShards(t *testing.T) {
	run := func(shards int) (storage.FS, []string) {
		fs := storage.NewMemFS()
		opts := smallOpts(fs)
		opts.MemtableSize = 1 << 20 // no rotation: a single WAL holds everything
		opts.MemtableShards = shards
		opts.DisableAutoCompaction = true
		db := mustOpen(t, opts)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			k := []byte(fmt.Sprintf("key%04d", rng.Intn(300)))
			switch rng.Intn(5) {
			case 0:
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
			case 1:
				var b Batch
				for j := 0; j < rng.Intn(9)+1; j++ {
					b.Put([]byte(fmt.Sprintf("key%04d", rng.Intn(300))), []byte(fmt.Sprintf("bv%d", i)))
				}
				if err := db.Write(&b); err != nil {
					t.Fatal(err)
				}
			default:
				if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		names, err := fs.List()
		if err != nil {
			t.Fatal(err)
		}
		var wals []string
		for _, n := range names {
			if strings.HasSuffix(n, ".log") {
				wals = append(wals, n)
			}
		}
		return fs, wals
	}

	fs1, wals1 := run(1)
	fs8, wals8 := run(8)
	if len(wals1) == 0 || len(wals1) != len(wals8) {
		t.Fatalf("WAL file sets differ: %v vs %v", wals1, wals8)
	}
	for i := range wals1 {
		if wals1[i] != wals8[i] {
			t.Fatalf("WAL names differ: %v vs %v", wals1, wals8)
		}
		b1, b8 := readFile(t, fs1, wals1[i]), readFile(t, fs8, wals8[i])
		if string(b1) != string(b8) {
			t.Fatalf("WAL %s differs between shards=1 (%d bytes) and shards=8 (%d bytes)",
				wals1[i], len(b1), len(b8))
		}
	}
}

// TestShardedBatchAtomicity is the cross-shard all-or-nothing stress: writers
// commit batches whose keys hash to different shards, all carrying the same
// generation stamp, while snapshot readers verify they never see a
// generation torn across the batch. This is exactly the property the single
// visibility watermark must preserve when shard appliers run in parallel.
func TestShardedBatchAtomicity(t *testing.T) {
	// Force the parallel-apply path even on a single-CPU host (Apply gates
	// its fan-out on GOMAXPROCS).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	opts := smallOpts(storage.NewMemFS())
	opts.MemtableSize = 8 << 20 // avoid flush churn; the race is in the memtable
	opts.MemtableShards = 8
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	const (
		writers  = 4
		perBatch = 10 // spans shards and exceeds the parallel-apply threshold
		rounds   = 200
	)
	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for g := 1; g <= rounds; g++ {
				var b Batch
				for j := 0; j < perBatch; j++ {
					b.Put([]byte(fmt.Sprintf("w%d-k%02d", w, j)), []byte(fmt.Sprintf("g%06d", g)))
				}
				if err := db.Write(&b); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	readErrs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				w := rng.Intn(writers)
				snap, err := db.GetSnapshot()
				if err != nil {
					readErrs <- err
					return
				}
				var gen string
				for j := 0; j < perBatch; j++ {
					v, err := snap.Get([]byte(fmt.Sprintf("w%d-k%02d", w, j)))
					if errors.Is(err, ErrNotFound) {
						// Before this writer's first batch became visible the
						// whole set must be missing.
						if j != 0 {
							readErrs <- fmt.Errorf("writer %d: key %d missing but key 0 present (gen %q)", w, j, gen)
							snap.Release()
							return
						}
						break
					}
					if err != nil {
						readErrs <- err
						snap.Release()
						return
					}
					if j == 0 {
						gen = string(v)
					} else if string(v) != gen {
						readErrs <- fmt.Errorf("writer %d: torn batch: key 0 gen %q, key %d gen %q", w, gen, j, v)
						snap.Release()
						return
					}
				}
				snap.Release()
			}
		}(r)
	}

	// Wait for the writers, then stop the readers and check for torn reads.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		writerWG.Wait()
	}()
	select {
	case err := <-readErrs:
		stop.Store(true)
		<-writersDone
		readerWG.Wait()
		t.Fatal(err)
	case <-writersDone:
	}
	stop.Store(true)
	readerWG.Wait()
	select {
	case err := <-readErrs:
		t.Fatal(err)
	default:
	}

	// Final state: every writer's batch fully at its last generation.
	for w := 0; w < writers; w++ {
		for j := 0; j < perBatch; j++ {
			v, err := db.Get([]byte(fmt.Sprintf("w%d-k%02d", w, j)))
			if err != nil {
				t.Fatalf("writer %d key %d: %v", w, j, err)
			}
			if string(v) != fmt.Sprintf("g%06d", rounds) {
				t.Fatalf("writer %d key %d: final gen %q, want g%06d", w, j, v, rounds)
			}
		}
	}
}
