package lsm

import (
	"pcplsm/internal/block"
	"pcplsm/internal/bloom"
	"pcplsm/internal/compress"
	"pcplsm/internal/ikey"
	"pcplsm/internal/memtable"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// This file implements the pipelined memtable flush, an extension beyond
// the paper: §IV-C observes that the store's throughput gain trails the
// compaction-bandwidth gain because "there are other operations …
// which are not pipelined by now". The memtable dump is the biggest of
// those: it interleaves block building + compression + checksumming (CPU)
// with table writes (I/O) on one thread. Splitting it into the same
// compute/write stage structure as PCP overlaps the two, exactly like the
// compaction pipeline — enable with Options.PipelinedFlush.

// flushBlock is one sealed data block travelling from the build stage to
// the write stage.
type flushBlock struct {
	first, last []byte
	physical    []byte
	entries     int64
	hashes      []uint32
}

// writeLevel0TablePipelined dumps mem into a new table with a two-stage
// pipeline: a builder goroutine forms, compresses and checksums blocks
// while this goroutine appends them to the file.
func (db *DB) writeLevel0TablePipelined(mem *memtable.Memtable) (*TableMeta, error) {
	// The flush pipeline is one builder + one writer — exactly the governor
	// baseline, so the lease always grants immediately. Taking it anyway
	// keeps the leased-token gauges honest: a flush's stage workers draw
	// from the same budget the compactions share.
	if db.governor != nil {
		lease := db.governor.acquire(1, 1)
		defer lease.release()
	}
	num := db.vs.NewFileNum()
	name := TableFileName(num)
	raw, err := db.fs.Create(name)
	if err != nil {
		return nil, err
	}
	f := storage.NewBufferedFile(raw, 0)
	w := sstable.NewRawWriter(f, ikey.Compare)
	w.FilterBitsPerKey = db.opts.BloomBitsPerKey

	codec := db.opts.Codec
	if codec == nil {
		codec = compress.MustByKind(compress.Snappy)
	}

	blocks := make(chan flushBlock, 4)
	buildErr := make(chan error, 1)
	go func() {
		defer close(blocks)
		builder := block.NewBuilder(db.opts.RestartInterval, ikey.Compare)
		var first, last []byte
		var entries int64
		var hashes []uint32
		emit := func() bool {
			if builder.Empty() {
				return true
			}
			fb := flushBlock{
				first:    append([]byte(nil), first...),
				last:     append([]byte(nil), last...),
				physical: sstable.SealBlock(nil, builder.Finish(), codec),
				entries:  entries,
				hashes:   hashes,
			}
			builder.Reset()
			entries = 0
			hashes = nil
			blocks <- fb
			return true
		}
		it := mem.NewIter()
		for ok := it.First(); ok; ok = it.Next() {
			if builder.Empty() {
				first = append(first[:0], it.Key()...)
			}
			builder.Add(it.Key(), it.Value())
			if db.opts.BloomBitsPerKey > 0 {
				hashes = append(hashes, bloom.Hash(ikey.UserKey(it.Key())))
			}
			last = append(last[:0], it.Key()...)
			entries++
			if builder.SizeEstimate() >= db.opts.BlockSize {
				emit()
			}
		}
		emit()
		buildErr <- nil
	}()

	var werr error
	for fb := range blocks {
		if werr != nil {
			continue // drain; the builder has no cancel path and is bounded
		}
		if werr = w.AddSealedBlock(fb.first, fb.last, fb.physical, fb.entries); werr == nil {
			w.AddFilterHashes(fb.hashes)
		}
	}
	if err := <-buildErr; err != nil && werr == nil {
		werr = err
	}
	var tm sstable.TableMeta
	if werr == nil {
		tm, werr = w.Finish()
	}
	// The table must be durable before the manifest references it and the
	// WAL that covers its contents is deleted.
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		db.fs.Remove(name)
		return nil, werr
	}
	return &TableMeta{Num: num, Size: tm.FileSize, Entries: tm.Entries,
		Smallest: tm.Smallest, Largest: tm.Largest, Digest: tm.Digest}, nil
}
