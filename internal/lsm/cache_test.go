package lsm

import (
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// TestBlockCacheServesRepeatedReads: repeated Gets against table data hit
// the block cache instead of re-reading blocks.
func TestBlockCacheServesRepeatedReads(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	ref := loadKeys(t, db, 2000, 91, 80)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	// First pass warms the cache; second pass should be mostly hits.
	verifyAll(t, db, ref)
	mid := db.Stats()
	verifyAll(t, db, ref)
	final := db.Stats()

	newHits := final.BlockCacheHits - mid.BlockCacheHits
	newMisses := final.BlockCacheMisses - mid.BlockCacheMisses
	if newHits == 0 {
		t.Fatal("no cache hits on a repeated read pass")
	}
	if newMisses > newHits {
		t.Fatalf("warm pass: %d misses vs %d hits", newMisses, newHits)
	}
	t.Logf("warm pass: %d hits, %d misses", newHits, newMisses)
}

// TestBlockCacheDisabled: a negative capacity disables caching entirely.
func TestBlockCacheDisabled(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.BlockCacheBytes = -1
	db := mustOpen(t, opts)
	defer db.Close()
	ref := loadKeys(t, db, 1000, 92, 80)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, ref)
	verifyAll(t, db, ref)
	st := db.Stats()
	if st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 {
		t.Fatalf("cache counters active while disabled: %d/%d",
			st.BlockCacheHits, st.BlockCacheMisses)
	}
}

// TestBlockCacheCorrectAcrossCompaction: cached blocks of deleted tables
// must never serve stale data.
func TestBlockCacheCorrectAcrossCompaction(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("ck%05d", i)), []byte("v1"))
	}
	db.Flush()
	// Warm the cache with v1 reads.
	for i := 0; i < 1000; i += 10 {
		db.Get([]byte(fmt.Sprintf("ck%05d", i)))
	}
	// Overwrite and compact everything down.
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("ck%05d", i)), []byte("v2"))
	}
	db.Flush()
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		got, err := db.Get([]byte(fmt.Sprintf("ck%05d", i)))
		if err != nil || string(got) != "v2" {
			t.Fatalf("ck%05d = %q, %v after compaction", i, got, err)
		}
	}
}
