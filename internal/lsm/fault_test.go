package lsm

import (
	"errors"
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// TestFlushFailureSurfacesToWriters: a failing table write during flush
// becomes a background error that write paths report instead of hanging.
func TestFlushFailureSurfacesToWriters(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	db := mustOpen(t, opts)
	defer db.Close()

	// Let a little data in, then make every subsequent file write fail.
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fk%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	fault.Arm(storage.FaultWrite, 1, true)

	// Writing until rotation forces a flush, which must fail and surface.
	var sawErr error
	for i := 0; i < 200_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fill%08d", i)), make([]byte, 100)); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("background flush failure never surfaced to writers")
	}
	if !errors.Is(sawErr, storage.ErrInjected) {
		t.Fatalf("surfaced error %v does not wrap the injected fault", sawErr)
	}
}

// TestCompactionFailureIsReported: an injected failure inside compaction
// output writing propagates through CompactLevel.
func TestCompactionFailureIsReported(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("ck%05d", i)), make([]byte, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fail the first create after this point: the compaction's output.
	fault.Arm(storage.FaultCreate, 1, true)
	if err := db.CompactLevel(0); err == nil {
		t.Fatal("compaction with failing output creation reported success")
	}
	fault.Disarm(storage.FaultCreate)

	// The tree must still be readable and retryable after the failure.
	if _, err := db.Get([]byte("ck00042")); err != nil {
		t.Fatalf("read after failed compaction: %v", err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatalf("retry compaction failed: %v", err)
	}
	if _, err := db.Get([]byte("ck00042")); err != nil {
		t.Fatalf("read after retried compaction: %v", err)
	}
}

// TestOpenFailsCleanlyOnManifestFault: Open propagates manifest write
// failures instead of opening a half-initialized store.
func TestOpenFailsCleanlyOnManifestFault(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	fault.Arm(storage.FaultSync, 1, true) // manifest append syncs
	opts := smallOpts(fault)
	if _, err := Open(opts); err == nil {
		t.Fatal("Open with failing manifest sync should fail")
	}
}
