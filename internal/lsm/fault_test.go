package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pcplsm/internal/storage"
)

// TestFlushFailureSurfacesToWriters: a failing table write during flush
// becomes a background error that write paths report instead of hanging.
func TestFlushFailureSurfacesToWriters(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	db := mustOpen(t, opts)
	defer db.Close()

	// Let a little data in, then make every subsequent file write fail.
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fk%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	fault.Arm(storage.FaultWrite, 1, true)

	// Writing until rotation forces a flush, which must fail and surface.
	var sawErr error
	for i := 0; i < 200_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fill%08d", i)), make([]byte, 100)); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("background flush failure never surfaced to writers")
	}
	if !errors.Is(sawErr, storage.ErrInjected) {
		t.Fatalf("surfaced error %v does not wrap the injected fault", sawErr)
	}
}

// TestCompactionFailureIsReported: an injected failure inside compaction
// output writing propagates through CompactLevel.
func TestCompactionFailureIsReported(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("ck%05d", i)), make([]byte, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fail the first create after this point: the compaction's output.
	fault.Arm(storage.FaultCreate, 1, true)
	if err := db.CompactLevel(0); err == nil {
		t.Fatal("compaction with failing output creation reported success")
	}
	fault.Disarm(storage.FaultCreate)

	// The tree must still be readable and retryable after the failure.
	if _, err := db.Get([]byte("ck00042")); err != nil {
		t.Fatalf("read after failed compaction: %v", err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatalf("retry compaction failed: %v", err)
	}
	if _, err := db.Get([]byte("ck00042")); err != nil {
		t.Fatalf("read after retried compaction: %v", err)
	}
}

// TestOpenFailsCleanlyOnManifestFault: Open propagates manifest write
// failures instead of opening a half-initialized store.
func TestOpenFailsCleanlyOnManifestFault(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	fault.Arm(storage.FaultSync, 1, true) // manifest append syncs
	opts := smallOpts(fault)
	if _, err := Open(opts); err == nil {
		t.Fatal("Open with failing manifest sync should fail")
	}
}

// fastRetry is the test retry policy: a real budget with negligible backoff.
func fastRetry() BackgroundRetryPolicy {
	return BackgroundRetryPolicy{Max: 5, BaseDelay: 200 * time.Microsecond}
}

// TestTransientFlushErrorRetries: a one-shot table-write failure during a
// background flush is retried and succeeds — nothing sticky, writes resume.
func TestTransientFlushErrorRetries(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.BackgroundRetry = fastRetry()
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("tk%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	fault.ArmFault(storage.Fault{Op: storage.FaultWrite, Suffix: ".sst", N: 1})
	if err := db.Flush(); err != nil {
		t.Fatalf("flush with transient fault: %v", err)
	}
	if got := db.Stats().BackgroundRetries; got < 1 {
		t.Fatalf("BackgroundRetries = %d, want >= 1", got)
	}
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("write after retried flush: %v", err)
	}
	if _, err := db.Get([]byte("tk0000")); err != nil {
		t.Fatalf("read after retried flush: %v", err)
	}
}

// TestTransientCompactionErrorRetries: a one-shot failure creating a
// compaction output no longer bricks the store — the scheduler retries, the
// compaction completes, and writes resume.
func TestTransientCompactionErrorRetries(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.L0CompactionTrigger = 2
	opts.BackgroundRetry = fastRetry()
	db := mustOpen(t, opts)
	defer db.Close()

	put := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := db.Put([]byte(fmt.Sprintf("ck%05d", i)), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 300)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	put(300, 600)
	// The next .sst create is the second flush's table; the one after is the
	// compaction output (L0 reaches the trigger of 2), which fails once.
	fault.ArmFault(storage.Fault{Op: storage.FaultCreate, Suffix: ".sst", N: 2})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatalf("compaction with transient fault never drained: %v", err)
	}
	s := db.Stats()
	if s.BackgroundRetries < 1 {
		t.Fatalf("BackgroundRetries = %d, want >= 1", s.BackgroundRetries)
	}
	if s.Compactions < 1 {
		t.Fatalf("Compactions = %d, want >= 1 (retry must complete the work)", s.Compactions)
	}
	if s.BackgroundErrors != 0 {
		t.Fatalf("BackgroundErrors = %d after a recovered transient fault", s.BackgroundErrors)
	}
	if err := db.Put([]byte("resume"), []byte("v")); err != nil {
		t.Fatalf("write after retried compaction: %v", err)
	}
	if _, err := db.Get([]byte("ck00042")); err != nil {
		t.Fatalf("read after retried compaction: %v", err)
	}
}

// TestTransientPCPStageFaultRetries: a transient failure injected into a
// parallel PCP write-stage worker surfaces exactly once through the
// pipeline's error path, the scheduler retries under BackgroundRetry, and
// the failed attempt leaks neither pending outputs nor leased pipeline
// tokens.
func TestTransientPCPStageFaultRetries(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.L0CompactionTrigger = 2
	opts.BackgroundRetry = fastRetry()
	opts.Compaction.ComputeParallel = 2
	opts.Compaction.IOParallel = 2
	opts.PipelineComputeTokens = 8
	opts.PipelineIOTokens = 8
	db := mustOpen(t, opts)
	defer db.Close()

	put := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := db.Put([]byte(fmt.Sprintf("pk%05d", i)), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 300)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	put(300, 600)
	// The next .sst create is the second flush's table; the one after is a
	// compaction output created by one of the two PCP write workers. It
	// fails once, non-sticky.
	fault.ArmFault(storage.Fault{Op: storage.FaultCreate, Suffix: ".sst", N: 2})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatalf("PCP compaction with transient stage fault never drained: %v", err)
	}

	s := db.Stats()
	if s.BackgroundRetries < 1 {
		t.Fatalf("BackgroundRetries = %d, want >= 1", s.BackgroundRetries)
	}
	if s.Compactions < 1 || s.PipelinedCompactions < 1 {
		t.Fatalf("Compactions = %d, PipelinedCompactions = %d, want both >= 1",
			s.Compactions, s.PipelinedCompactions)
	}
	if s.BackgroundErrors != 0 {
		t.Fatalf("BackgroundErrors = %d after a recovered transient fault", s.BackgroundErrors)
	}
	if s.PipelineComputeLeased != 0 || s.PipelineIOLeased != 0 {
		t.Fatalf("leaked pipeline tokens: leased = %d/%d after WaitIdle",
			s.PipelineComputeLeased, s.PipelineIOLeased)
	}
	db.mu.Lock()
	pending := len(db.pendingOutputs)
	db.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending outputs leaked across the failed pipeline attempt", pending)
	}
	if err := db.Put([]byte("resume"), []byte("v")); err != nil {
		t.Fatalf("write after retried PCP compaction: %v", err)
	}
	if _, err := db.Get([]byte("pk00042")); err != nil {
		t.Fatalf("read after retried PCP compaction: %v", err)
	}
}

// TestRetryBudgetExhaustionTurnsSticky: a persistent transient fault
// escalates after Options.BackgroundRetry.Max consecutive failures, leaving
// the store read-only with ErrBackgroundError.
func TestRetryBudgetExhaustionTurnsSticky(t *testing.T) {
	inner := storage.NewMemFS()
	fault := storage.NewFaultFS(inner)
	opts := smallOpts(fault)
	opts.BackgroundRetry = BackgroundRetryPolicy{Max: 2, BaseDelay: 100 * time.Microsecond}
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("xk%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	fault.ArmFault(storage.Fault{Op: storage.FaultWrite, Suffix: ".sst", N: 1, Sticky: true})
	if err := db.Flush(); !errors.Is(err, ErrBackgroundError) {
		t.Fatalf("flush after retry exhaustion = %v, want ErrBackgroundError", err)
	}
	s := db.Stats()
	if s.BackgroundRetries < 2 {
		t.Fatalf("BackgroundRetries = %d, want >= 2", s.BackgroundRetries)
	}
	if s.BackgroundErrors < 1 {
		t.Fatalf("BackgroundErrors = %d, want >= 1", s.BackgroundErrors)
	}
	if err := db.Put([]byte("nope"), []byte("v")); !errors.Is(err, ErrBackgroundError) {
		t.Fatalf("Put on poisoned store = %v, want ErrBackgroundError", err)
	}
	// Reads keep working in the degraded state.
	if _, err := db.Get([]byte("xk0000")); err != nil {
		t.Fatalf("read on poisoned store: %v", err)
	}
}

// TestCorruptionQuarantinesTable: flipping bytes inside a table's data
// block surfaces as ErrCorruption/ErrQuarantined on reads of that block,
// counts in stats, and quarantines only the damaged table — reads of
// intact data keep working and the store stays writable. (Before the
// integrity subsystem this degraded the whole store to read-only; scoped
// quarantine is the replacement, with read-only reserved for WAL and
// manifest damage.)
func TestCorruptionQuarantinesTable(t *testing.T) {
	fs := storage.NewMemFS()
	opts := smallOpts(fs)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)

	const n = 400
	key := func(i int) []byte { return []byte(fmt.Sprintf("ck%05d", i)) }
	// Two flushes → two L0 tables with disjoint ranges (auto-compaction is
	// off), so quarantining the damaged one leaves the other serving.
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if i == n/2-1 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first data block of the lowest-numbered table.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var sst string
	for _, nm := range names {
		if strings.HasSuffix(nm, ".sst") {
			sst = nm
			break
		}
	}
	if sst == "" {
		t.Fatal("no table on disk after flush")
	}
	data, err := storage.ReadAll(fs, sst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 140 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := storage.WriteFile(fs, sst, data); err != nil {
		t.Fatal(err)
	}

	db = mustOpen(t, opts)
	defer db.Close()
	var sawCorruption bool
	var goodKey []byte
	for i := 0; i < n; i++ {
		_, err := db.Get(key(i))
		switch {
		case err == nil:
			goodKey = key(i)
		case errors.Is(err, ErrCorruption):
			sawCorruption = true
			if errors.Is(err, ErrBackgroundError) {
				t.Fatalf("table corruption %v implies ErrBackgroundError; want scoped quarantine, not read-only", err)
			}
			if !errors.Is(err, ErrQuarantined) {
				t.Fatalf("corruption error %v does not match ErrQuarantined", err)
			}
		case errors.Is(err, ErrNotFound):
		default:
			t.Fatalf("Get(%s): unexpected error %v", key(i), err)
		}
	}
	if !sawCorruption {
		t.Fatal("no read surfaced ErrCorruption from the damaged block")
	}
	if goodKey == nil {
		t.Fatal("corruption leaked beyond the damaged table: every read failed")
	}
	s := db.Stats()
	if s.CorruptionsDetected < 1 {
		t.Fatalf("CorruptionsDetected = %d, want >= 1", s.CorruptionsDetected)
	}
	if s.QuarantinedTables != 1 {
		t.Fatalf("QuarantinedTables = %d, want 1", s.QuarantinedTables)
	}
	// The store stays writable: only the damaged table's range degrades.
	if err := db.Put([]byte("still-writable"), []byte("v")); err != nil {
		t.Fatalf("Put on quarantined store = %v, want success", err)
	}
	if _, err := db.Get(goodKey); err != nil {
		t.Fatalf("intact key unreadable with a table quarantined: %v", err)
	}
}

// TestManifestRenameCrashWindow: a power cut between writing the new
// manifest snapshot and renaming it over the old one recovers the previous
// version with no acknowledged data lost.
func TestManifestRenameCrashWindow(t *testing.T) {
	inner := storage.NewMemFS()
	opts := smallOpts(inner)
	db := mustOpen(t, opts)
	key := func(i int) []byte { return []byte(fmt.Sprintf("mk%05d", i)) }
	val := func(i int) string { return fmt.Sprintf("mv%05d", i) }
	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), []byte(val(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 300; i++ { // these stay in the WAL
		if err := db.Put(key(i), []byte(val(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen through a FaultFS that cuts power at the manifest rename: the
	// new snapshot is fully written and synced, but never installed.
	fault := storage.NewSeededFaultFS(inner, 11)
	fault.ArmFault(storage.Fault{Op: storage.FaultRename, N: 1, Cut: true})
	if _, err := Open(smallOpts(fault)); err == nil {
		t.Fatal("Open through a power cut at the manifest rename should fail")
	}
	img, err := fault.CrashImage()
	if err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, smallOpts(img))
	defer db.Close()
	for i := 0; i < 300; i++ {
		got, err := db.Get(key(i))
		if err != nil || string(got) != val(i) {
			t.Fatalf("key %s after rename-window crash: %q, %v", key(i), got, err)
		}
	}
}

// TestWALTornTailRecovery: recovery truncates at the first damaged WAL
// record — a torn tail loses at most the final unsynced batch, atomically,
// in both commit modes.
func TestWALTornTailRecovery(t *testing.T) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"grouped", false}, {"serial", true}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, variant := range []string{"truncate", "garbage"} {
				t.Run(variant, func(t *testing.T) {
					fs := storage.NewMemFS()
					opts := smallOpts(fs)
					opts.MemtableSize = 1 << 20 // keep everything in the WAL
					opts.DisableGroupCommit = mode.serial
					db := mustOpen(t, opts)
					const batches = 50
					for i := 0; i < batches; i++ {
						var b Batch
						b.Put([]byte(fmt.Sprintf("a%02d", i)), []byte(fmt.Sprintf("va%02d", i)))
						b.Put([]byte(fmt.Sprintf("b%02d", i)), []byte(fmt.Sprintf("vb%02d", i)))
						if err := db.Write(&b); err != nil {
							t.Fatal(err)
						}
					}
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}

					names, err := fs.List()
					if err != nil {
						t.Fatal(err)
					}
					var walName string
					for _, nm := range names {
						if strings.HasSuffix(nm, ".log") {
							walName = nm
						}
					}
					if walName == "" {
						t.Fatal("no WAL on disk")
					}
					data, err := storage.ReadAll(fs, walName)
					if err != nil {
						t.Fatal(err)
					}
					switch variant {
					case "truncate":
						data = data[:len(data)-5]
					case "garbage":
						data = append(data, 0xde, 0xad, 0xbe, 0xef, 0x51, 0x52, 0x53, 0x54, 0x55)
					}
					if err := storage.WriteFile(fs, walName, data); err != nil {
						t.Fatal(err)
					}

					db = mustOpen(t, opts)
					defer db.Close()
					full := batches
					if variant == "truncate" {
						full = batches - 1
					}
					for i := 0; i < full; i++ {
						for _, pfx := range []string{"a", "b"} {
							k := fmt.Sprintf("%s%02d", pfx, i)
							got, err := db.Get([]byte(k))
							if err != nil || string(got) != "v"+k {
								t.Fatalf("batch %d key %s = %q, %v", i, k, got, err)
							}
						}
					}
					if variant == "truncate" {
						// The damaged final batch must vanish atomically.
						_, errA := db.Get([]byte(fmt.Sprintf("a%02d", batches-1)))
						_, errB := db.Get([]byte(fmt.Sprintf("b%02d", batches-1)))
						if !errors.Is(errA, ErrNotFound) || !errors.Is(errB, ErrNotFound) {
							t.Fatalf("torn final batch partially visible: a=%v b=%v", errA, errB)
						}
					}
				})
			}
		})
	}
}
