package lsm

// Self-tuning policy selection: the DB feeds the tuner one sample of
// metric deltas after every completed background unit (flush or
// compaction), and the tuner classifies the workload from a sliding
// window of those samples:
//
//   - read-heavy (point reads dominating writes, heat map available) →
//     coldest-range, so compactions stop churning the hot working set;
//   - write-pressured (stalls, governor denials, or background retries in
//     the window) with high write amplification → lazy-leveling, trading
//     read amplification for fewer, larger merges;
//   - anything else → leveling, the balanced default.
//
// A verdict must repeat on tunerConfirmations consecutive evaluations
// before the switch is applied (hysteresis), so one anomalous window
// cannot flap the policy. The tuner is pure state + arithmetic — no
// clocks, no goroutines — so tests drive it deterministically with
// scripted samples (see tuner_test.go) and the DB-level integration test
// scripts a workload shift through the same observe path the scheduler
// uses.

import "time"

// tunerSample is one window entry: deltas of the cumulative Stats
// counters since the previous sample.
type tunerSample struct {
	Writes            int64 // puts + deletes
	Gets              int64
	FlushBytes        int64
	CompactionInput   int64
	CompactionOutput  int64
	StallCount        int64
	StallTime         time.Duration
	BackgroundRetries int64
	GovernorDenials   int64
}

// deltaSample subtracts two cumulative Stats snapshots into one sample.
func deltaSample(prev, cur Stats) tunerSample {
	return tunerSample{
		Writes:            (cur.Puts + cur.Deletes) - (prev.Puts + prev.Deletes),
		Gets:              cur.Gets - prev.Gets,
		FlushBytes:        cur.FlushBytes - prev.FlushBytes,
		CompactionInput:   cur.CompactionInputBytes - prev.CompactionInputBytes,
		CompactionOutput:  cur.CompactionOutputBytes - prev.CompactionOutputBytes,
		StallCount:        cur.StallCount - prev.StallCount,
		StallTime:         cur.StallTime - prev.StallTime,
		BackgroundRetries: cur.BackgroundRetries - prev.BackgroundRetries,
		GovernorDenials:   cur.GovernorDenials - prev.GovernorDenials,
	}
}

const (
	// defaultTunerWindow is the sliding-window length in samples (one
	// sample per completed background unit).
	defaultTunerWindow = 8
	// minTunerSamples gates the first evaluation: a single sample is too
	// little signal to leave the starting policy.
	minTunerSamples = 2
	// tunerConfirmations is the hysteresis: consecutive evaluations that
	// must agree before a switch is applied.
	tunerConfirmations = 2
	// readHeavyFactor: the window is read-heavy when gets exceed this
	// multiple of writes.
	readHeavyFactor = 4
	// lazyWriteAmpThreshold: the window's (flush+compaction output)/flush
	// byte ratio above which write pressure escalates to lazy-leveling.
	// 1.0 means compactions wrote nothing beyond the flushes themselves.
	lazyWriteAmpThreshold = 2.5
)

// policyTuner holds the sliding window and the hysteresis state. It is
// not self-synchronizing: the DB serializes observe calls under tunerMu.
type policyTuner struct {
	window  []tunerSample // ring buffer
	next    int
	filled  int
	hasHeat bool // heat map available → coldest-range is meaningful

	current  string // policy the tuner currently wants active
	pending  string // candidate verdict awaiting confirmation
	pendingN int
}

func newPolicyTuner(start string, window int, hasHeat bool) *policyTuner {
	if window < minTunerSamples {
		window = minTunerSamples
	}
	return &policyTuner{window: make([]tunerSample, window), hasHeat: hasHeat, current: start}
}

// observe folds one sample into the window and returns the policy the
// tuner wants active (unchanged until a verdict survives hysteresis).
func (t *policyTuner) observe(s tunerSample) string {
	t.window[t.next] = s
	t.next = (t.next + 1) % len(t.window)
	if t.filled < len(t.window) {
		t.filled++
	}
	if t.filled < minTunerSamples {
		return t.current
	}
	verdict := t.evaluate()
	if verdict == t.current {
		t.pending, t.pendingN = "", 0
		return t.current
	}
	if verdict == t.pending {
		t.pendingN++
	} else {
		t.pending, t.pendingN = verdict, 1
	}
	if t.pendingN >= tunerConfirmations {
		t.current = verdict
		t.pending, t.pendingN = "", 0
	}
	return t.current
}

// evaluate classifies the aggregated window into a policy verdict.
func (t *policyTuner) evaluate() string {
	var agg tunerSample
	for i := 0; i < t.filled; i++ {
		s := t.window[i]
		agg.Writes += s.Writes
		agg.Gets += s.Gets
		agg.FlushBytes += s.FlushBytes
		agg.CompactionOutput += s.CompactionOutput
		agg.StallCount += s.StallCount
		agg.BackgroundRetries += s.BackgroundRetries
		agg.GovernorDenials += s.GovernorDenials
	}
	writes := agg.Writes
	if writes < 1 {
		writes = 1
	}
	readHeavy := agg.Gets >= readHeavyFactor*writes
	writePressure := agg.StallCount > 0 || agg.GovernorDenials > 0 || agg.BackgroundRetries > 0
	writeAmp := float64(agg.FlushBytes+agg.CompactionOutput) / float64(max64(1, agg.FlushBytes))
	switch {
	case readHeavy && t.hasHeat:
		return PolicyColdestRange
	case writePressure && writeAmp >= lazyWriteAmpThreshold:
		return PolicyLazyLeveling
	default:
		return PolicyLeveling
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
