package lsm

import (
	"errors"
	"fmt"
	"testing"

	"pcplsm/internal/storage"
)

// A snapshot taken before the first write has sequence 0 and must stay an
// empty view; it must not alias the "read latest" path (regression: seq 0
// used to double as the read-latest sentinel).
func TestSnapshotOnEmptyDBStaysEmpty(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()

	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	db.Put([]byte("a"), []byte("v1"))
	if _, err := snap.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty-DB snapshot Get(a) = %v, want not found", err)
	}
	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.First() {
		t.Fatalf("empty-DB snapshot iterator yields %q", it.Key())
	}
	if v, err := db.Get([]byte("a")); err != nil || string(v) != "v1" {
		t.Fatalf("live Get(a) = %q, %v", v, err)
	}
}

func TestSnapshotBasicIsolation(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	defer db.Close()

	db.Put([]byte("a"), []byte("v1"))
	db.Put([]byte("b"), []byte("v1"))
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	db.Put([]byte("a"), []byte("v2"))
	db.Delete([]byte("b"))
	db.Put([]byte("c"), []byte("v2"))

	// Snapshot still sees the old world.
	if v, err := snap.Get([]byte("a")); err != nil || string(v) != "v1" {
		t.Fatalf("snap Get(a) = %q, %v", v, err)
	}
	if v, err := snap.Get([]byte("b")); err != nil || string(v) != "v1" {
		t.Fatalf("snap Get(b) = %q, %v", v, err)
	}
	if _, err := snap.Get([]byte("c")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snap Get(c) = %v, want not found", err)
	}
	// Live reads see the new world.
	if v, _ := db.Get([]byte("a")); string(v) != "v2" {
		t.Fatalf("live Get(a) = %q", v)
	}
	if _, err := db.Get([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatal("live Get(b) should be deleted")
	}

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, fmt.Sprintf("%s=%s", it.Key(), it.Value()))
	}
	if len(got) != 2 || got[0] != "a=v1" || got[1] != "b=v1" {
		t.Fatalf("snapshot scan = %v", got)
	}
}

// TestSnapshotSurvivesFlushAndCompaction is the hard case: the snapshot's
// versions must survive memtable flushes and full compactions (the merge
// retention rule).
func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	db := mustOpen(t, opts)
	defer db.Close()

	const n = 800
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("sk%05d", i)), []byte("old"))
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Overwrite everything, delete a stripe, then force the data through
	// flushes and compactions.
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			db.Put([]byte(fmt.Sprintf("sk%05d", i)), []byte(fmt.Sprintf("new%d", round)))
		}
	}
	for i := 0; i < n; i += 3 {
		db.Delete([]byte(fmt.Sprintf("sk%05d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Compactions == 0 {
		// Force at least one real compaction through every level with data.
		for l := 0; l < NumLevels-1; l++ {
			if len(db.Version().Levels[l]) > 0 {
				if err := db.CompactLevel(l); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		k := fmt.Sprintf("sk%05d", i)
		v, err := snap.Get([]byte(k))
		if err != nil || string(v) != "old" {
			t.Fatalf("snapshot lost %s after compaction: %q, %v", k, v, err)
		}
	}
	// Live reads see the final state.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("sk%05d", i)
		v, err := db.Get([]byte(k))
		if i%3 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("live %s should be deleted, got %q %v", k, v, err)
			}
		} else if err != nil || string(v) != "new2" {
			t.Fatalf("live %s = %q, %v", k, v, err)
		}
	}
}

// TestReleasedSnapshotAllowsGC: after release, compactions may drop the old
// versions again, and the snapshot refuses reads.
func TestReleasedSnapshotAllowsGC(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("gk%05d", i)), []byte("old"))
	}
	snap, _ := db.GetSnapshot()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("gk%05d", i)), []byte("new"))
	}
	db.Flush()

	snap.Release()
	snap.Release() // double release is a no-op
	if _, err := snap.Get([]byte("gk00000")); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("released snapshot Get = %v", err)
	}
	if _, err := snap.NewIterator(); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatal("released snapshot iterator should fail")
	}

	// With the pin gone, a full compaction keeps only the newest versions:
	// entry counts shrink back to one per key.
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	var entries int64
	v := db.Version()
	for l := 0; l < NumLevels; l++ {
		for _, tm := range v.Levels[l] {
			entries += tm.Entries
		}
	}
	if entries != 500 {
		t.Fatalf("after release+compaction: %d entries on disk, want 500", entries)
	}
}

// TestSnapshotRetentionKeepsVersionsOnDisk: with a live snapshot, a
// compaction keeps both versions of each key.
func TestSnapshotRetentionKeepsVersionsOnDisk(t *testing.T) {
	opts := smallOpts(storage.NewMemFS())
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("rk%05d", i)), []byte("old"))
	}
	snap, _ := db.GetSnapshot()
	defer snap.Release()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("rk%05d", i)), []byte("new"))
	}
	db.Flush()
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}

	var entries int64
	v := db.Version()
	for l := 0; l < NumLevels; l++ {
		for _, tm := range v.Levels[l] {
			entries += tm.Entries
		}
	}
	if entries != 1000 {
		t.Fatalf("live snapshot: %d entries on disk, want 1000 (both versions)", entries)
	}
}

func TestSnapshotOnClosedDB(t *testing.T) {
	db := mustOpen(t, smallOpts(storage.NewMemFS()))
	db.Close()
	if _, err := db.GetSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetSnapshot on closed DB = %v", err)
	}
}
