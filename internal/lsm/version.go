// Package lsm implements a LevelDB-style log-structured merge-tree store on
// top of the substrates: memtable (C0), WAL, SSTables, and the pluggable
// compaction engines from internal/core.
//
// Components C1…Ck are levels of SSTables. Level 0 tables may overlap each
// other (each is one memtable flush); levels ≥ 1 hold tables with disjoint
// internal key ranges. When a level exceeds its size threshold the
// compaction picker selects a table from it plus every overlapping table
// from the next level, and the configured procedure (SCP/PCP/PPCP) merges
// them downward — the data flow of the paper's Figure 2.
package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"pcplsm/internal/cache"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// NumLevels is the number of disk components.
const NumLevels = 7

// TableMeta describes one live table in a version.
type TableMeta struct {
	Num      uint64 // file number; file name is Num.sst
	Size     int64
	Entries  int64
	Smallest []byte // internal keys
	Largest  []byte
	// Digest is the CRC32-C of the whole file image, recorded in the
	// manifest when the table is created (flushes and compaction outputs;
	// trivial moves carry it forward). The scrub worker and paranoid
	// verify-before-install recompute it from the device and compare.
	// 0 means "unknown" — tables journaled before digests existed.
	Digest uint32
}

// FileName returns the table's file name.
func (t *TableMeta) FileName() string { return TableFileName(t.Num) }

// TableFileName renders the on-disk name of table number num.
func TableFileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// userKeyCompare orders two internal keys by their user-key portion only.
// Range-overlap decisions MUST use this, not ikey.Compare: two tables that
// hold different versions of the same user key overlap logically even
// though their internal-key ranges are disjoint, and excluding one from a
// compaction would let dropped tombstones resurrect its older versions.
func userKeyCompare(a, b []byte) int {
	return bytes.Compare(ikey.UserKey(a), ikey.UserKey(b))
}

// overlaps reports whether the table's user-key range intersects that of
// [smallest, largest] (bounds given as internal keys).
func (t *TableMeta) overlaps(smallest, largest []byte) bool {
	if smallest != nil && userKeyCompare(t.Largest, smallest) < 0 {
		return false
	}
	if largest != nil && userKeyCompare(t.Smallest, largest) > 0 {
		return false
	}
	return true
}

// Version is an immutable snapshot of the table layout across levels.
type Version struct {
	Levels [NumLevels][]*TableMeta

	// refs counts read pins on this version (guarded by the owning
	// versionSet's mu). While pinned, the tables it references stay on
	// disk even if later versions dropped them.
	refs int
}

// clone copies the version's level slices (table pointers are shared;
// TableMeta is immutable once installed).
func (v *Version) clone() *Version {
	nv := &Version{}
	for l := range v.Levels {
		nv.Levels[l] = append([]*TableMeta(nil), v.Levels[l]...)
	}
	return nv
}

// LevelSize returns the total byte size of a level.
func (v *Version) LevelSize(level int) int64 {
	var s int64
	for _, t := range v.Levels[level] {
		s += t.Size
	}
	return s
}

// NumTables returns the total table count.
func (v *Version) NumTables() int {
	n := 0
	for l := range v.Levels {
		n += len(v.Levels[l])
	}
	return n
}

// overlapping returns the tables of level whose ranges intersect
// [smallest, largest].
func (v *Version) overlapping(level int, smallest, largest []byte) []*TableMeta {
	var out []*TableMeta
	for _, t := range v.Levels[level] {
		if t.overlaps(smallest, largest) {
			out = append(out, t)
		}
	}
	return out
}

// VersionEdit describes an atomic change of the table layout.
type VersionEdit struct {
	Added   map[int][]*TableMeta // level -> new tables
	Deleted map[int][]uint64     // level -> removed table numbers
}

// NewVersionEdit returns an empty edit.
func NewVersionEdit() *VersionEdit {
	return &VersionEdit{Added: map[int][]*TableMeta{}, Deleted: map[int][]uint64{}}
}

// AddTable records a table addition.
func (e *VersionEdit) AddTable(level int, t *TableMeta) {
	e.Added[level] = append(e.Added[level], t)
}

// DeleteTable records a table removal.
func (e *VersionEdit) DeleteTable(level int, num uint64) {
	e.Deleted[level] = append(e.Deleted[level], num)
}

// versionSet tracks the current version, applies edits, and keeps every
// old version that a reader still has pinned alive so its table files can
// be retained until the last reader releases it.
type versionSet struct {
	mu      sync.Mutex
	current *Version
	old     []*Version // superseded versions with refs > 0
	nextNum uint64
}

func newVersionSet() *versionSet {
	return &versionSet{current: &Version{}, nextNum: 1}
}

// Current returns the current immutable version.
func (vs *versionSet) Current() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.current
}

// Acquire returns the current version with a read pin. Callers must
// Release it; until then anyLiveContains reports its tables as live.
func (vs *versionSet) Acquire() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.current.refs++
	return vs.current
}

// Release drops a read pin taken by Acquire.
func (vs *versionSet) Release(v *Version) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v.refs--
	if v.refs > 0 || v == vs.current {
		return
	}
	for i, o := range vs.old {
		if o == v {
			vs.old = append(vs.old[:i], vs.old[i+1:]...)
			break
		}
	}
}

// anyLiveContains reports whether table num appears in the current version
// or any pinned old version.
func (vs *versionSet) anyLiveContains(num uint64) bool {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for _, v := range append([]*Version{vs.current}, vs.old...) {
		for l := range v.Levels {
			for _, t := range v.Levels[l] {
				if t.Num == num {
					return true
				}
			}
		}
	}
	return false
}

// NewFileNum allocates a fresh table file number.
func (vs *versionSet) NewFileNum() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	n := vs.nextNum
	vs.nextNum++
	return n
}

// bumpFileNum ensures future allocations are > num (used during recovery).
func (vs *versionSet) bumpFileNum(num uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if num >= vs.nextNum {
		vs.nextNum = num + 1
	}
}

// Apply installs an edit, producing a new current version. Levels ≥ 1 are
// kept sorted by smallest key; level 0 is kept in insertion (age) order,
// oldest first.
func (vs *versionSet) Apply(edit *VersionEdit) *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.current.refs > 0 {
		vs.old = append(vs.old, vs.current)
	}
	nv := vs.current.clone()
	for level, nums := range edit.Deleted {
		dead := map[uint64]bool{}
		for _, n := range nums {
			dead[n] = true
		}
		var keep []*TableMeta
		for _, t := range nv.Levels[level] {
			if !dead[t.Num] {
				keep = append(keep, t)
			}
		}
		nv.Levels[level] = keep
	}
	for level, tables := range edit.Added {
		nv.Levels[level] = append(nv.Levels[level], tables...)
		if level > 0 {
			sort.Slice(nv.Levels[level], func(i, j int) bool {
				return ikey.Compare(nv.Levels[level][i].Smallest, nv.Levels[level][j].Smallest) < 0
			})
		}
	}
	vs.current = nv
	return nv
}

// checkInvariants verifies the level invariants of v (levels ≥ 1 sorted and
// disjoint). It is used by tests and debug assertions.
func (v *Version) checkInvariants() error {
	for l := 1; l < NumLevels; l++ {
		tables := v.Levels[l]
		for i := 1; i < len(tables); i++ {
			if ikey.Compare(tables[i-1].Largest, tables[i].Smallest) >= 0 {
				return fmt.Errorf("lsm: level %d tables %d and %d overlap: %s vs %s",
					l, tables[i-1].Num, tables[i].Num,
					ikey.String(tables[i-1].Largest), ikey.String(tables[i].Smallest))
			}
		}
	}
	return nil
}

// tableCache opens table readers on demand and caches them. Tables are
// immutable, so entries never invalidate — they are only dropped when the
// table is deleted. An optional shared block cache is attached to every
// reader it opens.
//
// Entries are reference-counted: with the concurrent background scheduler a
// compaction can delete (and Evict) a table while a point read on an older
// version still holds its reader, so eviction only marks the entry dead and
// the last user's release performs the close.
type tableCache struct {
	fs     storage.FS
	blocks *cache.Cache // nil = no block cache
	heat   *cache.Heat  // nil = no read-heat tracking
	mu     sync.Mutex
	m      map[uint64]*tableEntry
}

// tableEntry is one cached reader plus its reference count. The cache
// itself holds one reference while the entry is in the map.
type tableEntry struct {
	r    *sstable.Reader
	refs int
}

// tableHandle is a caller's leased reference to a cached reader. Close it
// when done; the reader stays valid until then even if the table is evicted.
// It is a small value (no heap allocation per lease) — copy it freely, but
// Close each lease exactly once.
type tableHandle struct {
	c *tableCache
	e *tableEntry
}

// Reader returns the leased reader.
func (h tableHandle) Reader() *sstable.Reader { return h.e.r }

// Close releases the lease, closing the reader if it was evicted and this
// was the last reference.
func (h tableHandle) Close() {
	h.c.mu.Lock()
	h.e.refs--
	dead := h.e.refs == 0
	h.c.mu.Unlock()
	if dead {
		h.e.r.Close()
	}
}

func newTableCache(fs storage.FS, blocks *cache.Cache, heat *cache.Heat) *tableCache {
	return &tableCache{fs: fs, blocks: blocks, heat: heat, m: map[uint64]*tableEntry{}}
}

// Get leases a reader for table num, opening it if needed. Callers must
// Close the returned handle.
func (c *tableCache) Get(num uint64) (tableHandle, error) {
	c.mu.Lock()
	if e, ok := c.m[num]; ok {
		e.refs++
		c.mu.Unlock()
		return tableHandle{c: c, e: e}, nil
	}
	c.mu.Unlock()
	// Open outside the lock: FS opens may be slow (or simulated-slow), and
	// table numbers are never reused, so a duplicate open is only a benign
	// lost race.
	f, err := c.fs.Open(TableFileName(num))
	if err != nil {
		return tableHandle{}, err
	}
	// NewReader owns f: on failure it closes the handle itself.
	r, err := sstable.NewReader(f, ikey.Compare)
	if err != nil {
		return tableHandle{}, err
	}
	if c.blocks != nil {
		r.SetBlockCache(c.blocks, num)
	}
	if c.heat != nil {
		// Heat samples are keyed by user key, not table number, so they
		// survive the file renumbering a compaction performs.
		h := c.heat
		r.SetAccessHook(func(blockLastKey []byte) {
			h.Touch(ikey.UserKey(blockLastKey))
		})
	}
	c.mu.Lock()
	if e, ok := c.m[num]; ok {
		// Lost the open race; lease the winner and drop ours.
		e.refs++
		c.mu.Unlock()
		r.Close()
		return tableHandle{c: c, e: e}, nil
	}
	e := &tableEntry{r: r, refs: 2} // the cache's reference + the caller's
	c.m[num] = e
	c.mu.Unlock()
	return tableHandle{c: c, e: e}, nil
}

// Evict forgets the reader for a deleted table and drops its cached
// blocks. The reader is closed once the last outstanding lease is released.
func (c *tableCache) Evict(num uint64) {
	c.mu.Lock()
	var dying *tableEntry
	if e, ok := c.m[num]; ok {
		delete(c.m, num)
		e.refs--
		if e.refs == 0 {
			dying = e
		}
	}
	c.mu.Unlock()
	if dying != nil {
		dying.r.Close()
	}
	if c.blocks != nil {
		c.blocks.EvictID(num)
	}
}

// Close releases all cached readers. Outstanding leases stay valid and
// close their readers on release.
func (c *tableCache) Close() {
	c.mu.Lock()
	var dying []*tableEntry
	for num, e := range c.m {
		delete(c.m, num)
		e.refs--
		if e.refs == 0 {
			dying = append(dying, e)
		}
	}
	c.mu.Unlock()
	for _, e := range dying {
		e.r.Close()
	}
}
