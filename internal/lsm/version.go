// Package lsm implements a LevelDB-style log-structured merge-tree store on
// top of the substrates: memtable (C0), WAL, SSTables, and the pluggable
// compaction engines from internal/core.
//
// Components C1…Ck are levels of SSTables. Level 0 tables may overlap each
// other (each is one memtable flush); levels ≥ 1 hold tables with disjoint
// internal key ranges. When a level exceeds its size threshold the
// compaction picker selects a table from it plus every overlapping table
// from the next level, and the configured procedure (SCP/PCP/PPCP) merges
// them downward — the data flow of the paper's Figure 2.
package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"pcplsm/internal/cache"
	"pcplsm/internal/ikey"
	"pcplsm/internal/sstable"
	"pcplsm/internal/storage"
)

// NumLevels is the number of disk components.
const NumLevels = 7

// TableMeta describes one live table in a version.
type TableMeta struct {
	Num      uint64 // file number; file name is Num.sst
	Size     int64
	Entries  int64
	Smallest []byte // internal keys
	Largest  []byte
}

// FileName returns the table's file name.
func (t *TableMeta) FileName() string { return TableFileName(t.Num) }

// TableFileName renders the on-disk name of table number num.
func TableFileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// userKeyCompare orders two internal keys by their user-key portion only.
// Range-overlap decisions MUST use this, not ikey.Compare: two tables that
// hold different versions of the same user key overlap logically even
// though their internal-key ranges are disjoint, and excluding one from a
// compaction would let dropped tombstones resurrect its older versions.
func userKeyCompare(a, b []byte) int {
	return bytes.Compare(ikey.UserKey(a), ikey.UserKey(b))
}

// overlaps reports whether the table's user-key range intersects that of
// [smallest, largest] (bounds given as internal keys).
func (t *TableMeta) overlaps(smallest, largest []byte) bool {
	if smallest != nil && userKeyCompare(t.Largest, smallest) < 0 {
		return false
	}
	if largest != nil && userKeyCompare(t.Smallest, largest) > 0 {
		return false
	}
	return true
}

// Version is an immutable snapshot of the table layout across levels.
type Version struct {
	Levels [NumLevels][]*TableMeta
}

// clone copies the version's level slices (table pointers are shared;
// TableMeta is immutable once installed).
func (v *Version) clone() *Version {
	nv := &Version{}
	for l := range v.Levels {
		nv.Levels[l] = append([]*TableMeta(nil), v.Levels[l]...)
	}
	return nv
}

// LevelSize returns the total byte size of a level.
func (v *Version) LevelSize(level int) int64 {
	var s int64
	for _, t := range v.Levels[level] {
		s += t.Size
	}
	return s
}

// NumTables returns the total table count.
func (v *Version) NumTables() int {
	n := 0
	for l := range v.Levels {
		n += len(v.Levels[l])
	}
	return n
}

// overlapping returns the tables of level whose ranges intersect
// [smallest, largest].
func (v *Version) overlapping(level int, smallest, largest []byte) []*TableMeta {
	var out []*TableMeta
	for _, t := range v.Levels[level] {
		if t.overlaps(smallest, largest) {
			out = append(out, t)
		}
	}
	return out
}

// VersionEdit describes an atomic change of the table layout.
type VersionEdit struct {
	Added   map[int][]*TableMeta // level -> new tables
	Deleted map[int][]uint64     // level -> removed table numbers
}

// NewVersionEdit returns an empty edit.
func NewVersionEdit() *VersionEdit {
	return &VersionEdit{Added: map[int][]*TableMeta{}, Deleted: map[int][]uint64{}}
}

// AddTable records a table addition.
func (e *VersionEdit) AddTable(level int, t *TableMeta) {
	e.Added[level] = append(e.Added[level], t)
}

// DeleteTable records a table removal.
func (e *VersionEdit) DeleteTable(level int, num uint64) {
	e.Deleted[level] = append(e.Deleted[level], num)
}

// versionSet tracks the current version and applies edits.
type versionSet struct {
	mu      sync.Mutex
	current *Version
	nextNum uint64
}

func newVersionSet() *versionSet {
	return &versionSet{current: &Version{}, nextNum: 1}
}

// Current returns the current immutable version.
func (vs *versionSet) Current() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.current
}

// NewFileNum allocates a fresh table file number.
func (vs *versionSet) NewFileNum() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	n := vs.nextNum
	vs.nextNum++
	return n
}

// bumpFileNum ensures future allocations are > num (used during recovery).
func (vs *versionSet) bumpFileNum(num uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if num >= vs.nextNum {
		vs.nextNum = num + 1
	}
}

// Apply installs an edit, producing a new current version. Levels ≥ 1 are
// kept sorted by smallest key; level 0 is kept in insertion (age) order,
// oldest first.
func (vs *versionSet) Apply(edit *VersionEdit) *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	nv := vs.current.clone()
	for level, nums := range edit.Deleted {
		dead := map[uint64]bool{}
		for _, n := range nums {
			dead[n] = true
		}
		var keep []*TableMeta
		for _, t := range nv.Levels[level] {
			if !dead[t.Num] {
				keep = append(keep, t)
			}
		}
		nv.Levels[level] = keep
	}
	for level, tables := range edit.Added {
		nv.Levels[level] = append(nv.Levels[level], tables...)
		if level > 0 {
			sort.Slice(nv.Levels[level], func(i, j int) bool {
				return ikey.Compare(nv.Levels[level][i].Smallest, nv.Levels[level][j].Smallest) < 0
			})
		}
	}
	vs.current = nv
	return nv
}

// checkInvariants verifies the level invariants of v (levels ≥ 1 sorted and
// disjoint). It is used by tests and debug assertions.
func (v *Version) checkInvariants() error {
	for l := 1; l < NumLevels; l++ {
		tables := v.Levels[l]
		for i := 1; i < len(tables); i++ {
			if ikey.Compare(tables[i-1].Largest, tables[i].Smallest) >= 0 {
				return fmt.Errorf("lsm: level %d tables %d and %d overlap: %s vs %s",
					l, tables[i-1].Num, tables[i].Num,
					ikey.String(tables[i-1].Largest), ikey.String(tables[i].Smallest))
			}
		}
	}
	return nil
}

// tableCache opens table readers on demand and caches them. Tables are
// immutable, so entries never invalidate — they are only dropped when the
// table is deleted. An optional shared block cache is attached to every
// reader it opens.
type tableCache struct {
	fs     storage.FS
	blocks *cache.Cache // nil = no block cache
	mu     sync.Mutex
	m      map[uint64]*sstable.Reader
}

func newTableCache(fs storage.FS, blocks *cache.Cache) *tableCache {
	return &tableCache{fs: fs, blocks: blocks, m: map[uint64]*sstable.Reader{}}
}

// Get returns a reader for table num, opening it if needed.
func (c *tableCache) Get(num uint64) (*sstable.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.m[num]; ok {
		return r, nil
	}
	f, err := c.fs.Open(TableFileName(num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.NewReader(f, ikey.Compare)
	if err != nil {
		f.Close()
		return nil, err
	}
	if c.blocks != nil {
		r.SetBlockCache(c.blocks, num)
	}
	c.m[num] = r
	return r, nil
}

// Evict closes and forgets the reader for a deleted table, dropping its
// cached blocks.
func (c *tableCache) Evict(num uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.m[num]; ok {
		r.Close()
		delete(c.m, num)
	}
	if c.blocks != nil {
		c.blocks.EvictID(num)
	}
}

// Close releases all cached readers.
func (c *tableCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for num, r := range c.m {
		r.Close()
		delete(c.m, num)
	}
}
