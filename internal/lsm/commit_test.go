package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"pcplsm/internal/storage"
)

// walGateFS wraps an FS and intercepts writes to .log files: arm() blocks
// the next one until release() (holding a commit group's leader mid-append
// at a known point), and failNext() makes the next one return
// storage.ErrInjected. The block/fail decision is captured before blocking,
// so a write armed to block and then released proceeds normally even if a
// failure was armed while it was blocked.
type walGateFS struct {
	storage.FS
	mu      sync.Mutex
	blocked bool
	failed  bool
	entered chan struct{}
	release chan struct{}
}

func newWALGateFS(inner storage.FS) *walGateFS {
	return &walGateFS{
		FS:      inner,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
}

func (g *walGateFS) arm()      { g.mu.Lock(); g.blocked = true; g.mu.Unlock() }
func (g *walGateFS) failNext() { g.mu.Lock(); g.failed = true; g.mu.Unlock() }

func (g *walGateFS) Create(name string) (storage.File, error) {
	f, err := g.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".log") {
		return &walGateFile{File: f, g: g}, nil
	}
	return f, nil
}

type walGateFile struct {
	storage.File
	g *walGateFS
}

func (f *walGateFile) Write(p []byte) (int, error) {
	g := f.g
	g.mu.Lock()
	block, fail := g.blocked, g.failed
	if block {
		g.blocked = false
	}
	if fail {
		g.failed = false
	}
	g.mu.Unlock()
	if block {
		g.entered <- struct{}{}
		<-g.release
	}
	if fail {
		return 0, storage.ErrInjected
	}
	return f.File.Write(p)
}

// gateOpts is smallOpts without auto-compaction and with a memtable large
// enough that the gate tests never rotate the WAL.
func gateOpts(fs storage.FS) Options {
	opts := smallOpts(fs)
	opts.MemtableSize = 4 << 20
	opts.DisableAutoCompaction = true
	return opts
}

// holdLeaderAndQueue blocks one Put mid-WAL-append and queues followers
// writers behind it, returning the leader's result channel and the
// followers' error channel. It fails the test if the queue never fills.
func holdLeaderAndQueue(t *testing.T, db *DB, gate *walGateFS, followers int) (chan error, chan error) {
	t.Helper()
	gate.arm()
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- db.Put([]byte("leader-key"), []byte("leader-val")) }()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached its WAL write")
	}

	followerDone := make(chan error, followers)
	for i := 0; i < followers; i++ {
		i := i
		go func() {
			followerDone <- db.Put([]byte(fmt.Sprintf("follower-%02d", i)), []byte("v"))
		}()
	}
	// The leader occupies the queue front; wait for all followers to line
	// up behind it so the next group deterministically contains them all.
	deadline := time.Now().Add(10 * time.Second)
	for {
		db.writeMu.Lock()
		n := len(db.writers)
		db.writeMu.Unlock()
		if n == followers+1 {
			return leaderDone, followerDone
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer queue has %d entries, want %d", n, followers+1)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitMergesQueuedWriters holds a leader in its WAL append,
// queues 8 writers behind it, and proves they commit as one group: one
// additional WAL record, one group of size 8.
func TestGroupCommitMergesQueuedWriters(t *testing.T) {
	gate := newWALGateFS(storage.NewMemFS())
	db := mustOpen(t, gateOpts(gate))
	defer db.Close()

	const followers = 8
	leaderDone, followerDone := holdLeaderAndQueue(t, db, gate, followers)
	close(gate.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader put: %v", err)
	}
	for i := 0; i < followers; i++ {
		if err := <-followerDone; err != nil {
			t.Fatalf("follower put: %v", err)
		}
	}

	s := db.Stats()
	if s.WriteGroups != 2 {
		t.Errorf("WriteGroups = %d, want 2 (leader alone + merged followers)", s.WriteGroups)
	}
	if s.GroupedWrites != followers+1 {
		t.Errorf("GroupedWrites = %d, want %d", s.GroupedWrites, followers+1)
	}
	if s.MaxWriteGroup != followers {
		t.Errorf("MaxWriteGroup = %d, want %d", s.MaxWriteGroup, followers)
	}
	if got := db.Seq(); got != followers+1 {
		t.Errorf("Seq = %d, want %d", got, followers+1)
	}
	for i := 0; i < followers; i++ {
		k := fmt.Sprintf("follower-%02d", i)
		if v, err := db.Get([]byte(k)); err != nil || string(v) != "v" {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

// TestGroupAppendFailureFailsAllWriters arms a WAL-write fault for the
// merged followers' record: every writer in the failed group must get the
// injected error, no sequence may be allocated, and the DB must refuse
// further writes (the WAL writer's position is no longer trustworthy).
func TestGroupAppendFailureFailsAllWriters(t *testing.T) {
	gate := newWALGateFS(storage.NewMemFS())
	db := mustOpen(t, gateOpts(gate))
	defer db.Close()

	const followers = 8
	leaderDone, followerDone := holdLeaderAndQueue(t, db, gate, followers)
	gate.failNext() // the released leader's write was already cleared to pass
	close(gate.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader put: %v", err)
	}
	seqAfterLeader := db.Seq()

	for i := 0; i < followers; i++ {
		err := <-followerDone
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("follower %d error = %v, want the injected fault", i, err)
		}
	}
	if got := db.Seq(); got != seqAfterLeader {
		t.Errorf("failed group allocated sequences: Seq %d -> %d", seqAfterLeader, got)
	}
	// The group's entries must not be readable.
	if _, err := db.Get([]byte("follower-00")); !errors.Is(err, ErrNotFound) {
		t.Errorf("entry of failed group visible: %v", err)
	}
	// The failure poisons the commit path: the WAL position is unknown.
	if err := db.Put([]byte("after"), []byte("v")); err == nil {
		t.Error("write after WAL append failure succeeded")
	}
}

// TestWriteFailureNoSeqGap is the regression test for the sequence-gap bug:
// the pre-pipeline Write advanced db.seq before wal.Append and left it
// advanced on failure, so the WAL and the sequence counter disagreed. Both
// commit modes must now allocate sequences only for durably appended
// groups, keeping recovery gap-free.
func TestWriteFailureNoSeqGap(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "grouped"
		if serial {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			fault := storage.NewFaultFS(storage.NewMemFS())
			opts := gateOpts(fault)
			opts.DisableGroupCommit = serial
			db := mustOpen(t, opts)

			if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			seqBefore := db.Seq()

			fault.Arm(storage.FaultWrite, 1, true)
			if err := db.Put([]byte("k2"), []byte("v2")); !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("write with failing WAL = %v, want injected fault", err)
			}
			if got := db.Seq(); got != seqBefore {
				t.Fatalf("failed write advanced Seq: %d -> %d", seqBefore, got)
			}
			if err := db.Put([]byte("k3"), []byte("v3")); err == nil {
				t.Fatal("write after WAL failure succeeded")
			}
			fault.Disarm(storage.FaultWrite)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery: k1 present, the failed writes absent, and the next
			// allocation continues exactly where the WAL ends — no gap.
			db = mustOpen(t, opts)
			defer db.Close()
			if v, err := db.Get([]byte("k1")); err != nil || string(v) != "v1" {
				t.Fatalf("Get(k1) after reopen = %q, %v", v, err)
			}
			if _, err := db.Get([]byte("k2")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("failed write resurrected: %v", err)
			}
			if got := db.Seq(); got != seqBefore {
				t.Fatalf("recovered Seq = %d, want %d", got, seqBefore)
			}
			if err := db.Put([]byte("k4"), []byte("v4")); err != nil {
				t.Fatal(err)
			}
			if got := db.Seq(); got != seqBefore+1 {
				t.Fatalf("post-recovery Seq = %d, want contiguous %d", got, seqBefore+1)
			}
		})
	}
}

// TestSerialFallbackWALBitForBit drives the same single-writer operation
// sequence through the grouped and the serial commit paths and requires the
// resulting WAL files to be byte-identical (the serial fallback IS the
// pre-pipeline baseline, and single-writer groups must encode identically),
// and both to recover to the same state.
func TestSerialFallbackWALBitForBit(t *testing.T) {
	type result struct {
		wal  []byte
		seq  uint64
		dump map[string]string
	}
	run := func(serial bool) result {
		t.Helper()
		fs := storage.NewMemFS()
		opts := gateOpts(fs)
		opts.DisableGroupCommit = serial
		db := mustOpen(t, opts)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				var b Batch
				for j := 0; j < 1+rng.Intn(5); j++ {
					b.Put([]byte(fmt.Sprintf("b%04d-%d", i, j)), []byte(fmt.Sprintf("bv%d", rng.Intn(1000))))
				}
				b.Delete([]byte(fmt.Sprintf("b%04d-0", i-1)))
				if err := db.Write(&b); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := db.Delete([]byte(fmt.Sprintf("k%04d", rng.Intn(300)))); err != nil {
					t.Fatal(err)
				}
			default:
				if err := db.Put([]byte(fmt.Sprintf("k%04d", rng.Intn(300))), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		walName := walFileName(db.walNum)
		seq := db.Seq()
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := storage.ReadAll(fs, walName)
		if err != nil {
			t.Fatal(err)
		}

		db = mustOpen(t, opts)
		defer db.Close()
		if got := db.Seq(); got != seq {
			t.Fatalf("recovered seq %d, want %d", got, seq)
		}
		dump := map[string]string{}
		it, err := db.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		for ok := it.First(); ok; ok = it.Next() {
			dump[string(it.Key())] = string(it.Value())
		}
		return result{wal: data, seq: seq, dump: dump}
	}

	grouped, serial := run(false), run(true)
	if string(grouped.wal) != string(serial.wal) {
		t.Errorf("WAL bytes differ: grouped %d bytes, serial %d bytes", len(grouped.wal), len(serial.wal))
	}
	if grouped.seq != serial.seq {
		t.Errorf("sequence counters differ: grouped %d, serial %d", grouped.seq, serial.seq)
	}
	if len(grouped.dump) != len(serial.dump) {
		t.Fatalf("recovered states differ: %d vs %d keys", len(grouped.dump), len(serial.dump))
	}
	for k, v := range grouped.dump {
		if serial.dump[k] != v {
			t.Fatalf("recovered value differs at %q: %q vs %q", k, v, serial.dump[k])
		}
	}
}

// TestGroupCommitStressRandom hammers the commit pipeline with concurrent
// writers using mixed batch sizes while point readers and snapshot readers
// run (run under -race). Snapshot re-reads must be stable — the visibility
// watermark must never expose a half-applied group — and the final state
// must match every writer's last acknowledged value.
func TestGroupCommitStressRandom(t *testing.T) {
	for _, syncWAL := range []bool{false, true} {
		t.Run(fmt.Sprintf("sync=%v", syncWAL), func(t *testing.T) {
			fs := storage.NewMemFS()
			opts := smallOpts(fs)
			opts.SyncWAL = syncWAL
			opts.MemtableSize = 16 << 10
			db := mustOpen(t, opts)

			const writers = 6
			opsPerWriter := 800
			if testing.Short() {
				opsPerWriter = 200
			}
			finals := make([]map[string]string, writers)
			totalWrites := int64(0)
			var totalMu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				finals[w] = map[string]string{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(500 + w)))
					writes := int64(0)
					for i := 0; i < opsPerWriter; {
						var b Batch
						n := 1 + rng.Intn(6)
						for j := 0; j < n && i < opsPerWriter; j++ {
							k := fmt.Sprintf("w%d-%04d", w, rng.Intn(300))
							if rng.Intn(10) == 0 {
								b.Delete([]byte(k))
								delete(finals[w], k)
							} else {
								v := fmt.Sprintf("v%d-%d", w, i)
								b.Put([]byte(k), []byte(v))
								finals[w][k] = v
							}
							i++
						}
						if err := db.Write(&b); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
						writes++
					}
					totalMu.Lock()
					totalWrites += writes
					totalMu.Unlock()
				}()
			}

			stop := make(chan struct{})
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(17))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("w%d-%04d", rng.Intn(writers), rng.Intn(300))
					if _, err := db.Get([]byte(k)); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("reader: Get(%s): %v", k, err)
						return
					}
				}
			}()
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(18))
				for {
					select {
					case <-stop:
						return
					default:
					}
					seqBefore := db.Seq()
					snap, err := db.GetSnapshot()
					if err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
					if snap.Seq() < seqBefore {
						t.Errorf("watermark regressed: snapshot %d < earlier Seq %d", snap.Seq(), seqBefore)
					}
					k := []byte(fmt.Sprintf("w%d-%04d", rng.Intn(writers), rng.Intn(300)))
					v1, err1 := snap.Get(k)
					v2, err2 := snap.Get(k)
					if (err1 == nil) != (err2 == nil) || string(v1) != string(v2) {
						t.Errorf("snapshot unstable at seq %d: %q,%v then %q,%v", snap.Seq(), v1, err1, v2, err2)
					}
					snap.Release()
				}
			}()

			wg.Wait()
			close(stop)
			rwg.Wait()
			if t.Failed() {
				db.Close()
				return
			}

			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			s := db.Stats()
			if s.GroupedWrites != totalWrites {
				t.Errorf("GroupedWrites = %d, want %d (every Write in exactly one group)", s.GroupedWrites, totalWrites)
			}
			if s.WriteGroups > s.GroupedWrites || s.WriteGroups <= 0 {
				t.Errorf("WriteGroups = %d out of range (GroupedWrites %d)", s.WriteGroups, s.GroupedWrites)
			}
			if syncWAL && s.WALSyncs != s.WriteGroups {
				t.Errorf("WALSyncs = %d, want one per group (%d)", s.WALSyncs, s.WriteGroups)
			}
			if !syncWAL && s.WALSyncs != 0 {
				t.Errorf("WALSyncs = %d with SyncWAL off", s.WALSyncs)
			}
			verify := func() {
				t.Helper()
				for w := 0; w < writers; w++ {
					for k, want := range finals[w] {
						got, err := db.Get([]byte(k))
						if err != nil || string(got) != want {
							t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, want)
						}
					}
				}
			}
			verify()

			// Merged WAL records must recover to the same acknowledged state.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = mustOpen(t, opts)
			defer db.Close()
			verify()
		})
	}
}
