package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(rawKeys [][]byte) bool {
		filter := Build(rawKeys, 10)
		for _, k := range rawKeys {
			if !MayContain(filter, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member%08d", i))
	}
	filter := Build(keys, 10)

	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if MayContain(filter, []byte(fmt.Sprintf("absent%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Theory: ~0.8% at 10 bits/key. Allow generous slack.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
	if rate == 0 {
		t.Log("zero false positives (unusual but legal)")
	}
}

func TestBitsPerKeyTradeoff(t *testing.T) {
	const n = 5000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%07d", i))
	}
	rate := func(bpk int) float64 {
		filter := Build(keys, bpk)
		fp := 0
		for i := 0; i < 10000; i++ {
			if MayContain(filter, []byte(fmt.Sprintf("no%07d", i))) {
				fp++
			}
		}
		return float64(fp) / 10000
	}
	loose := rate(4)
	tight := rate(16)
	if tight >= loose {
		t.Fatalf("16 bits/key FPR %.4f should beat 4 bits/key %.4f", tight, loose)
	}
}

func TestEmptyFilter(t *testing.T) {
	filter := Build(nil, 10)
	if MayContain(filter, []byte("anything")) {
		// An empty filter has all bits clear, so nothing matches; both
		// outcomes are legal per the contract, but all-clear must not match.
		t.Fatal("empty filter matched a key")
	}
}

func TestMalformedFiltersFailOpen(t *testing.T) {
	for _, f := range [][]byte{nil, {}, {1}, {0xff, 31}, {0xff, 0}} {
		if !MayContain(f, []byte("k")) {
			t.Fatalf("malformed filter %v should fail open", f)
		}
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if Hash([]byte("abc")) != Hash([]byte("abc")) {
		t.Fatal("hash not deterministic")
	}
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		seen[Hash([]byte(fmt.Sprintf("k%d", i)))] = true
	}
	if len(seen) < 995 {
		t.Fatalf("too many hash collisions: %d distinct of 1000", len(seen))
	}
	// All tail lengths exercise the switch.
	for n := 0; n <= 9; n++ {
		b := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(b)
		_ = Hash(b)
	}
}

func TestBuildFromHashesMatchesBuild(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	hashes := make([]uint32, len(keys))
	for i, k := range keys {
		hashes[i] = Hash(k)
	}
	f1 := Build(keys, 10)
	f2 := BuildFromHashes(hashes, 10)
	if string(f1) != string(f2) {
		t.Fatal("Build and BuildFromHashes disagree")
	}
}

func BenchmarkMayContain(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	filter := Build(keys, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MayContain(filter, keys[i%len(keys)])
	}
}
