// Package bloom implements the Bloom filters that point reads use to skip
// tables that cannot contain a key — the optimization the paper's related
// work attributes to bLSM ("uses bloom filters to avoid unnecessary I/Os").
//
// The format follows LevelDB's filter policy: k probes derived from one
// 32-bit hash by double hashing (h, h>>17|h<<15), k stored in the final
// byte so readers handle filters built with any parameter.
package bloom

import "encoding/binary"

// Hash returns the 32-bit filter hash of a key (a Murmur-like hash, the
// same construction LevelDB uses). Collecting hashes instead of keys lets
// table writers defer filter construction until Finish.
func Hash(key []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(key))*m
	for len(key) >= 4 {
		h += binary.LittleEndian.Uint32(key)
		h *= m
		h ^= h >> 16
		key = key[4:]
	}
	switch len(key) {
	case 3:
		h += uint32(key[2]) << 16
		fallthrough
	case 2:
		h += uint32(key[1]) << 8
		fallthrough
	case 1:
		h += uint32(key[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// BuildFromHashes constructs a filter over the given key hashes with
// bitsPerKey bits of capacity per key. The classic analysis gives a false
// positive rate of ~0.8% at 10 bits/key.
func BuildFromHashes(hashes []uint32, bitsPerKey int) []byte {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln(2), clamped to a sane range.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(hashes) * bitsPerKey
	if bits < 64 {
		bits = 64 // tiny filters have terrible FPR; floor like LevelDB
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	filter := make([]byte, nBytes+1)
	filter[nBytes] = k
	for _, h := range hashes {
		delta := h>>17 | h<<15
		for i := uint8(0); i < k; i++ {
			pos := h % uint32(bits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// Build constructs a filter directly from keys.
func Build(keys [][]byte, bitsPerKey int) []byte {
	hashes := make([]uint32, len(keys))
	for i, k := range keys {
		hashes[i] = Hash(k)
	}
	return BuildFromHashes(hashes, bitsPerKey)
}

// MayContain reports whether the filter possibly contains key. It returns
// true for malformed filters (fail open — correctness never depends on the
// filter).
func MayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true
	}
	bits := uint32((len(filter) - 1) * 8)
	k := filter[len(filter)-1]
	if k > 30 || k == 0 {
		// Reserved / corrupt: treat as a match.
		return true
	}
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := uint8(0); i < k; i++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
