package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"pcplsm/internal/storage"
)

func writeLog(t testing.TB, fs storage.FS, name string, recs [][]byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripSmallRecords(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{[]byte("one"), []byte(""), []byte("three"), bytes.Repeat([]byte{7}, 100)}
	writeLog(t, fs, "log", recs)
	got, err := ReadAllRecords(fs, "log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRoundTripFragmentedRecords(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{
		bytes.Repeat([]byte{'a'}, BlockSize-headerSize), // exactly one block
		bytes.Repeat([]byte{'b'}, BlockSize),            // spans two blocks
		bytes.Repeat([]byte{'c'}, 3*BlockSize+12345),    // first/middle/middle/last
		[]byte("small after big"),
	}
	writeLog(t, fs, "log", recs)
	got, err := ReadAllRecords(fs, "log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch: %d vs %d bytes", i, len(got[i]), len(recs[i]))
		}
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	// Force the writer to leave < headerSize bytes at a block tail.
	fs := storage.NewMemFS()
	first := bytes.Repeat([]byte{'x'}, BlockSize-headerSize-headerSize-3) // leaves 3 bytes after next header... craft below
	recs := [][]byte{first, []byte("yy"), []byte("after pad")}
	writeLog(t, fs, "log", recs)
	got, err := ReadAllRecords(fs, "log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[2], []byte("after pad")) {
		t.Fatalf("padding handling broken: %d records", len(got))
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := storage.NewMemFS()
		var recs [][]byte
		for _, s := range sizes {
			r := make([]byte, int(s)%(2*BlockSize))
			rng.Read(r)
			recs = append(recs, r)
		}
		fh, _ := fs.Create("log")
		w := NewWriter(fh)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		w.Close()
		got, err := ReadAllRecords(fs, "log")
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyLog(t *testing.T) {
	fs := storage.NewMemFS()
	writeLog(t, fs, "log", nil)
	got, err := ReadAllRecords(fs, "log")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty log: %d records, %v", len(got), err)
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{'g'}, 50000)}
	writeLog(t, fs, "log", recs)
	data, _ := storage.ReadAll(fs, "log")

	// Truncate mid-way through the last (fragmented) record: a torn write.
	torn := data[:len(data)-1000]
	r := NewReaderBytes(torn)
	var got [][]byte
	var lastErr error
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			lastErr = err
			break
		}
		got = append(got, append([]byte(nil), rec...))
	}
	if lastErr == nil {
		t.Fatal("expected corruption error on torn tail")
	}
	if !errors.Is(lastErr, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", lastErr)
	}
	if len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
		t.Fatalf("prefix not recovered: %d records", len(got))
	}
}

func TestBitFlipDetected(t *testing.T) {
	fs := storage.NewMemFS()
	writeLog(t, fs, "log", [][]byte{[]byte("record-one-payload"), []byte("record-two-payload")})
	data, _ := storage.ReadAll(fs, "log")

	// Flip a payload byte of the first record.
	mut := append([]byte{}, data...)
	mut[headerSize+2] ^= 0x01
	r := NewReaderBytes(mut)
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
}

func TestCorruptionSkipsToNextBlock(t *testing.T) {
	// Two blocks: damage block 0, expect records in block 1 to be salvageable.
	fs := storage.NewMemFS()
	recs := [][]byte{
		bytes.Repeat([]byte{'a'}, BlockSize-headerSize), // fills block 0 exactly
		[]byte("salvage-me"),                            // lives in block 1
	}
	writeLog(t, fs, "log", recs)
	data, _ := storage.ReadAll(fs, "log")
	mut := append([]byte{}, data...)
	mut[100] ^= 0xff // corrupt record in block 0

	r := NewReaderBytes(mut)
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected corruption, got %v", err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("salvage failed: %v", err)
	}
	if string(rec) != "salvage-me" {
		t.Fatalf("salvaged %q", rec)
	}
}

func TestZeroedTailIsCleanEOF(t *testing.T) {
	fs := storage.NewMemFS()
	writeLog(t, fs, "log", [][]byte{[]byte("only")})
	data, _ := storage.ReadAll(fs, "log")
	// Simulate preallocated zeroed space after the records.
	data = append(data, make([]byte, 2048)...)
	r := NewReaderBytes(data)
	rec, err := r.Next()
	if err != nil || string(rec) != "only" {
		t.Fatalf("first record: %q, %v", rec, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("zeroed tail should be clean EOF, got %v", err)
	}
}

func TestLargeRecordStress(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(9))
	var recs [][]byte
	for i := 0; i < 20; i++ {
		r := make([]byte, rng.Intn(5*BlockSize))
		rng.Read(r)
		recs = append(recs, r)
	}
	writeLog(t, fs, "log", recs)
	got, err := ReadAllRecords(fs, "log")
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadMissingLog(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := ReadAllRecords(fs, "nope"); err == nil {
		t.Fatal("missing log should error")
	}
}

func BenchmarkAppend100B(b *testing.B) {
	fs := storage.NewMemFS()
	f, _ := fs.Create(fmt.Sprintf("log-%d", b.N))
	w := NewWriter(f)
	rec := bytes.Repeat([]byte{'r'}, 100)
	b.SetBytes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
