// Package wal implements the write-ahead log that makes memtable writes
// durable before they are acknowledged.
//
// The format follows LevelDB's log format: the file is a sequence of 32 KiB
// blocks; each block holds records with a 7-byte header
//
//	checksum uint32 LE — masked CRC32-C of type byte + payload
//	length   uint16 LE — payload length
//	type     byte      — full / first / middle / last
//
// Payloads that do not fit in the current block are fragmented
// (first/middle.../last); a block tail smaller than a header is zero-padded.
// This bounds the damage of a torn write to one record and lets recovery
// resynchronize on block boundaries.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pcplsm/internal/checksum"
	"pcplsm/internal/storage"
)

// BlockSize is the log block size.
const BlockSize = 32 << 10

// headerSize is the per-record (or per-fragment) header size.
const headerSize = 7

// Record types.
const (
	typeZero   = 0 // padding / preallocated area
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

// ErrCorrupt reports a damaged log region.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends records to a log file.
type Writer struct {
	f        storage.File
	blockOff int // offset within the current block
	buf      []byte
}

// NewWriter returns a Writer that appends to f, which must be empty or
// freshly created (the writer tracks block alignment from zero).
func NewWriter(f storage.File) *Writer {
	return &Writer{f: f}
}

// zeroPad is the static source for block-tail padding (always shorter than
// a header), so Append never allocates for it.
var zeroPad [headerSize]byte

// Append writes one record. The record is durable only after a successful
// Sync; unsynced records live in the file system's write cache, like
// LevelDB's non-sync writes.
func (w *Writer) Append(rec []byte) error {
	// Pre-size the scratch buffer for the whole framed record (payload plus
	// one header per fragment plus at most one padded tail) so commit-path
	// appends reuse a single allocation instead of growing piecemeal.
	frags := len(rec)/(BlockSize-headerSize) + 1
	if need := len(rec) + frags*headerSize + headerSize; cap(w.buf) < need {
		w.buf = make([]byte, 0, need)
	}
	w.buf = w.buf[:0]
	begin := true
	for {
		leftover := BlockSize - w.blockOff
		if leftover < headerSize {
			// Zero-pad the block tail.
			w.buf = append(w.buf, zeroPad[:leftover]...)
			w.blockOff = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := len(rec)
		if frag > avail {
			frag = avail
		}
		end := frag == len(rec)
		var t byte
		switch {
		case begin && end:
			t = typeFull
		case begin:
			t = typeFirst
		case end:
			t = typeLast
		default:
			t = typeMiddle
		}
		w.buf = appendFragment(w.buf, t, rec[:frag])
		w.blockOff += headerSize + frag
		rec = rec[frag:]
		begin = false
		if end {
			break
		}
	}
	_, err := w.f.Write(w.buf)
	return err
}

// appendFragment serializes one fragment with its header.
func appendFragment(dst []byte, t byte, payload []byte) []byte {
	crc := checksum.SumWithSeed(checksum.Sum([]byte{t}), payload)
	dst = binary.LittleEndian.AppendUint32(dst, checksum.Mask(crc))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(payload)))
	dst = append(dst, t)
	return append(dst, payload...)
}

// Sync flushes the log to durable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close syncs and closes the underlying file.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader replays records from a log file.
type Reader struct {
	data []byte // entire log; WALs are bounded by the memtable size
	off  int
	rec  []byte
}

// NewReader reads the whole log into memory and returns a Reader positioned
// at the first record. Recovery-time logs are at most one memtable large, so
// slurping is fine and keeps resynchronization logic simple.
func NewReader(fs storage.FS, name string) (*Reader, error) {
	data, err := storage.ReadAll(fs, name)
	if err != nil {
		return nil, err
	}
	return &Reader{data: data}, nil
}

// NewReaderBytes returns a Reader over an in-memory log image.
func NewReaderBytes(data []byte) *Reader { return &Reader{data: data} }

// Next returns the next complete record, io.EOF at the clean end of the log,
// or an error wrapping ErrCorrupt at a damaged region. After a corruption
// error the reader skips to the next block boundary, so callers may choose
// to continue (salvaging later records) or stop (conservative recovery).
func (r *Reader) Next() ([]byte, error) {
	r.rec = r.rec[:0]
	inFragmented := false
	for {
		blockLeft := BlockSize - r.off%BlockSize
		if blockLeft < headerSize {
			// Padding; skip to next block.
			r.off += blockLeft
			continue
		}
		if r.off+headerSize > len(r.data) {
			if inFragmented {
				return nil, fmt.Errorf("%w: log ends inside a fragmented record", ErrCorrupt)
			}
			return nil, io.EOF
		}
		hdr := r.data[r.off:]
		stored := binary.LittleEndian.Uint32(hdr)
		length := int(binary.LittleEndian.Uint16(hdr[4:]))
		t := hdr[6]
		if t == typeZero && length == 0 && stored == 0 {
			// Preallocated/zeroed space marks the end of the log.
			if inFragmented {
				return nil, fmt.Errorf("%w: zeroed region inside a fragmented record", ErrCorrupt)
			}
			return nil, io.EOF
		}
		if headerSize+length > blockLeft || r.off+headerSize+length > len(r.data) {
			r.skipToNextBlock()
			return nil, fmt.Errorf("%w: fragment length %d overflows block", ErrCorrupt, length)
		}
		payload := r.data[r.off+headerSize : r.off+headerSize+length]
		crc := checksum.SumWithSeed(checksum.Sum([]byte{t}), payload)
		if checksum.Unmask(stored) != crc {
			r.skipToNextBlock()
			return nil, fmt.Errorf("%w: fragment checksum mismatch at offset %d", ErrCorrupt, r.off)
		}
		r.off += headerSize + length

		switch t {
		case typeFull:
			if inFragmented {
				return nil, fmt.Errorf("%w: full record inside a fragmented record", ErrCorrupt)
			}
			return append(r.rec, payload...), nil
		case typeFirst:
			if inFragmented {
				return nil, fmt.Errorf("%w: nested first fragment", ErrCorrupt)
			}
			inFragmented = true
			r.rec = append(r.rec, payload...)
		case typeMiddle:
			if !inFragmented {
				return nil, fmt.Errorf("%w: middle fragment without first", ErrCorrupt)
			}
			r.rec = append(r.rec, payload...)
		case typeLast:
			if !inFragmented {
				return nil, fmt.Errorf("%w: last fragment without first", ErrCorrupt)
			}
			return append(r.rec, payload...), nil
		default:
			r.skipToNextBlock()
			return nil, fmt.Errorf("%w: unknown fragment type %d", ErrCorrupt, t)
		}
	}
}

// skipToNextBlock advances past the current block after corruption.
func (r *Reader) skipToNextBlock() {
	r.off += BlockSize - r.off%BlockSize
}

// ReadAllRecords replays every record until the clean end of the log. If the
// tail is corrupt (torn write at crash), it returns the records recovered so
// far together with the error.
func ReadAllRecords(fs storage.FS, name string) ([][]byte, error) {
	r, err := NewReader(fs, name)
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, append([]byte(nil), rec...))
	}
}
