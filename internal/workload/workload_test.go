package workload

import (
	"bytes"
	"testing"

	"pcplsm/internal/compress"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Entries: 1000, Seed: 7}
	a, b := New(cfg), New(cfg)
	for {
		k1, v1, ok1 := a.Next()
		k2, v2, ok2 := b.Next()
		if ok1 != ok2 {
			t.Fatal("streams diverge in length")
		}
		if !ok1 {
			break
		}
		if !bytes.Equal(k1, k2) || !bytes.Equal(v1, v2) {
			t.Fatal("streams diverge in content")
		}
	}
}

func TestSizesRespected(t *testing.T) {
	for _, ks := range []int{8, 16, 64} {
		for _, vs := range []int{1, 100, 1024} {
			g := New(Config{Entries: 50, KeySize: ks, ValueSize: vs, Seed: 1})
			for {
				k, v, ok := g.Next()
				if !ok {
					break
				}
				if len(k) != ks || len(v) != vs {
					t.Fatalf("key/value sizes %d/%d, want %d/%d", len(k), len(v), ks, vs)
				}
			}
		}
	}
}

func TestEntryCount(t *testing.T) {
	g := New(Config{Entries: 123, Seed: 1})
	n := 0
	for {
		if _, _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 123 {
		t.Fatalf("generated %d entries, want 123", n)
	}
	if g.Remaining() != 0 {
		t.Fatal("Remaining should be 0")
	}
}

func TestSequentialKeysAscend(t *testing.T) {
	g := New(Config{Entries: 500, Dist: Sequential, Seed: 1})
	var prev []byte
	for {
		k, _, ok := g.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			t.Fatalf("sequential keys not ascending: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
	}
}

func TestUniformSpreads(t *testing.T) {
	g := New(Config{Entries: 5000, KeySpace: 1000, Seed: 3})
	seen := map[string]bool{}
	for {
		k, _, ok := g.Next()
		if !ok {
			break
		}
		seen[string(k)] = true
	}
	if len(seen) < 900 {
		t.Fatalf("uniform over 1000 keys hit only %d distinct", len(seen))
	}
}

func TestZipfianSkews(t *testing.T) {
	g := New(Config{Entries: 10000, KeySpace: 10000, Dist: Zipfian, Seed: 4})
	counts := map[string]int{}
	for {
		k, _, ok := g.Next()
		if !ok {
			break
		}
		counts[string(k)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("zipfian hottest key only %d hits; not skewed", max)
	}
	if len(counts) < 100 {
		t.Fatalf("zipfian produced only %d distinct keys", len(counts))
	}
}

func TestValueCompressibility(t *testing.T) {
	ratio := func(comp float64) float64 {
		g := New(Config{Entries: 1, ValueSize: 4096, ValueCompressibility: comp, Seed: 5})
		_, v, _ := g.Next()
		enc := compress.SnappyEncode(nil, v)
		return float64(len(enc)) / float64(len(v))
	}
	rHigh := ratio(0.9) // mostly zeros → compresses hard
	rLow := ratio(0.1)  // mostly random → barely compresses
	if rHigh > 0.4 {
		t.Fatalf("0.9-compressible value compressed only to %.2f", rHigh)
	}
	if rLow < 0.8 {
		t.Fatalf("0.1-compressible value compressed to %.2f; too easy", rLow)
	}
}

func TestKeyWidthOverflowKeepsWidth(t *testing.T) {
	g := New(Config{Entries: 10, KeySize: 8, KeySpace: 1 << 30, Seed: 6})
	for {
		k, _, ok := g.Next()
		if !ok {
			break
		}
		if len(k) != 8 {
			t.Fatalf("key %q has %d bytes", k, len(k))
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]Distribution{
		"uniform": Uniform, "": Uniform, "sequential": Sequential,
		"seq": Sequential, "zipfian": Zipfian, "zipf": Zipfian,
	} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Fatalf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("latest"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if Uniform.String() != "uniform" || Sequential.String() != "sequential" || Zipfian.String() != "zipfian" {
		t.Fatal("distribution names")
	}
}

func TestTotalBytes(t *testing.T) {
	cfg := Config{Entries: 100, KeySize: 16, ValueSize: 100}
	if cfg.EntryBytes() != 116 || cfg.TotalBytes() != 11600 {
		t.Fatalf("EntryBytes=%d TotalBytes=%d", cfg.EntryBytes(), cfg.TotalBytes())
	}
}
