// Package workload generates the deterministic key-value workloads the
// experiments run: insert-only streams with configurable key/value sizes
// and key distributions, matching the paper's methodology (16-byte keys,
// 100-byte values, fifty million inserts — scaled down by default).
package workload

import (
	"fmt"
	"math/rand"
)

// Distribution selects how keys are drawn.
type Distribution int

const (
	// Uniform draws keys uniformly from the key space (the paper's
	// insert-only random load).
	Uniform Distribution = iota
	// Sequential emits strictly increasing keys (no overlap between
	// flushed tables — the LSM best case).
	Sequential
	// Zipfian skews accesses toward a hot set (YCSB-style).
	Zipfian
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Sequential:
		return "sequential"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// ParseDistribution maps a name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform", "":
		return Uniform, nil
	case "sequential", "seq":
		return Sequential, nil
	case "zipfian", "zipf":
		return Zipfian, nil
	default:
		return Uniform, fmt.Errorf("workload: unknown distribution %q", s)
	}
}

// Config describes a workload.
type Config struct {
	// Entries is the number of operations to generate.
	Entries int
	// KeySize is the key length in bytes (minimum 8; default 16, the
	// paper's setting).
	KeySize int
	// ValueSize is the value length in bytes (default 100).
	ValueSize int
	// KeySpace bounds distinct keys (default 4 × Entries: mostly-unique
	// inserts with occasional overwrites, like the paper's load).
	KeySpace int
	// Dist selects the key distribution.
	Dist Distribution
	// Seed makes the stream reproducible.
	Seed int64
	// ValueCompressibility in [0,1]: fraction of each value that is
	// zero-filled (compressible). 0.5 gives snappy roughly the ~2× ratio
	// seen on real key-value payloads.
	ValueCompressibility float64
}

func (c Config) withDefaults() Config {
	if c.KeySize < 8 {
		if c.KeySize == 0 {
			c.KeySize = 16
		} else {
			c.KeySize = 8
		}
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 4 * c.Entries
		if c.KeySpace == 0 {
			c.KeySpace = 1 << 20
		}
	}
	if c.ValueCompressibility == 0 {
		c.ValueCompressibility = 0.5
	}
	return c
}

// Generator produces a deterministic stream of key-value pairs. Not safe
// for concurrent use; create one per goroutine with distinct seeds.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	i    int
	key  []byte
	val  []byte
}

// New returns a generator for cfg.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		key: make([]byte, cfg.KeySize),
		val: make([]byte, cfg.ValueSize),
	}
	if cfg.Dist == Zipfian {
		g.zipf = rand.NewZipf(g.rng, 1.1, 1, uint64(cfg.KeySpace-1))
	}
	return g
}

// Remaining returns how many operations are left.
func (g *Generator) Remaining() int { return g.cfg.Entries - g.i }

// Next returns the next key/value pair, or ok=false when the stream ends.
// The returned slices are reused by the next call.
func (g *Generator) Next() (key, value []byte, ok bool) {
	if g.i >= g.cfg.Entries {
		return nil, nil, false
	}
	var n uint64
	switch g.cfg.Dist {
	case Sequential:
		n = uint64(g.i)
	case Zipfian:
		n = g.zipf.Uint64()
	default:
		n = uint64(g.rng.Intn(g.cfg.KeySpace))
	}
	g.fillKey(n)
	g.fillValue()
	g.i++
	return g.key, g.val, true
}

// fillKey renders n as a fixed-width decimal key, zero-padded to KeySize.
// Fixed-width decimal keeps keys ordered and realistic ("user0000001234").
func (g *Generator) fillKey(n uint64) {
	g.key = appendKey(g.key[:0], n, g.cfg.KeySize)
}

// FormatKey renders key number n exactly as a Generator with the same
// KeySize would — read benchmarks use it to target keys a load generator
// wrote without replaying the whole stream.
func FormatKey(n uint64, keySize int) []byte {
	if keySize < 8 {
		keySize = 16
	}
	return appendKey(nil, n, keySize)
}

func appendKey(dst []byte, n uint64, keySize int) []byte {
	const prefix = "user"
	dst = append(dst, prefix...)
	digits := keySize - len(prefix)
	s := fmt.Sprintf("%0*d", digits, n)
	// If n overflows the width, keep the least-significant digits: still
	// deterministic and fixed-width.
	if len(s) > digits {
		s = s[len(s)-digits:]
	}
	return append(dst, s...)
}

// fillValue produces a value that compresses according to the configured
// ratio: a random head and a zero tail.
func (g *Generator) fillValue() {
	randomLen := int(float64(len(g.val)) * (1 - g.cfg.ValueCompressibility))
	g.rng.Read(g.val[:randomLen])
	for i := randomLen; i < len(g.val); i++ {
		g.val[i] = 0
	}
}

// EntryBytes returns the logical size of one entry.
func (c Config) EntryBytes() int {
	c = c.withDefaults()
	return c.KeySize + c.ValueSize
}

// TotalBytes returns the logical volume of the whole stream.
func (c Config) TotalBytes() int64 {
	c = c.withDefaults()
	return int64(c.Entries) * int64(c.EntryBytes())
}
