package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Fatalf("Mean = %v, want ~500µs", mean)
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Fatalf("P50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Fatalf("P99 = %v, want ~990µs", p99)
	}
	if h.Quantile(0.5) > h.Quantile(0.95) || h.Quantile(0.95) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHistogramRelativeError(t *testing.T) {
	var h Histogram
	val := 3 * time.Millisecond
	for i := 0; i < 100; i++ {
		h.Observe(val)
	}
	got := h.Quantile(0.5)
	err := float64(got-val) / float64(val)
	if err < -0.08 || err > 0.08 {
		t.Fatalf("relative error %.3f exceeds bucket resolution", err)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(10 * time.Minute) // beyond the last bucket
	if h.Count() != 3 {
		t.Fatal("count")
	}
	if h.Quantile(1.0) < h.Quantile(0.0) {
		t.Fatal("extreme quantiles inverted")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(rng.Intn(1000000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(100)
	m.Add(50)
	if m.Total() != 150 {
		t.Fatalf("Total = %d", m.Total())
	}
	time.Sleep(10 * time.Millisecond)
	if r := m.Rate(); r <= 0 || r > 150/0.009 {
		t.Fatalf("Rate = %f", r)
	}
	// Window resets.
	if r := m.WindowRate(); r <= 0 {
		t.Fatalf("WindowRate = %f", r)
	}
	time.Sleep(5 * time.Millisecond)
	if r := m.WindowRate(); r != 0 {
		t.Fatalf("empty window rate = %f, want 0", r)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(1)
			}
		}()
	}
	wg.Wait()
	if m.Total() != 8000 {
		t.Fatalf("Total = %d", m.Total())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatal("zero gauge should read 0")
	}
	g.Set(42)
	g.Add(-2)
	if got := g.Load(); got != 40 {
		t.Fatalf("Load = %d, want 40", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty registry snapshot = %v", snap)
	}
	a := r.Gauge("a")
	a.Set(7)
	if r.Gauge("a") != a {
		t.Fatal("Gauge must return the same instance for a name")
	}
	r.Gauge("b").Add(3)
	snap := r.Snapshot()
	if len(snap) != 2 || snap["a"] != 7 || snap["b"] != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Snapshot is a copy, not a live view.
	a.Set(100)
	if snap["a"] != 7 {
		t.Fatal("snapshot mutated after the fact")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Gauge("shared").Add(1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Gauge("shared").Load(); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
