// Package metrics provides the small measurement toolkit the experiment
// harness uses: latency histograms with percentile queries and windowed
// throughput meters.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmic buckets (~7% relative error)
// and answers percentile queries. It is safe for concurrent use.
type Histogram struct {
	counts [bucketCount]atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

const (
	// Buckets span 100ns … ~100s with 16 buckets per octave.
	bucketCount      = 480
	bucketsPerOctave = 16
	minNs            = 100
)

// bucketFor maps a duration to a bucket index.
func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns < minNs {
		return 0
	}
	b := int(math.Log2(ns/minNs) * bucketsPerOctave)
	if b >= bucketCount {
		return bucketCount - 1
	}
	return b
}

// bucketValue returns a representative duration for bucket b.
func bucketValue(b int) time.Duration {
	ns := minNs * math.Pow(2, (float64(b)+0.5)/bucketsPerOctave)
	return time.Duration(ns)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		cur := h.maxNs.Load()
		if d.Nanoseconds() <= cur || h.maxNs.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the duration at quantile q in [0,1].
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen int64
	for b := 0; b < bucketCount; b++ {
		seen += h.counts[b].Load()
		if seen > target {
			return bucketValue(b)
		}
	}
	return h.Max()
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Meter measures operation throughput: total rate and a recent-window rate.
type Meter struct {
	mu      sync.Mutex
	start   time.Time
	ops     int64
	winOps  int64
	winFrom time.Time
}

// NewMeter starts a meter now.
func NewMeter() *Meter {
	now := time.Now()
	return &Meter{start: now, winFrom: now}
}

// Add records n completed operations.
func (m *Meter) Add(n int64) {
	m.mu.Lock()
	m.ops += n
	m.winOps += n
	m.mu.Unlock()
}

// Rate returns overall operations per second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.ops) / el
}

// Total returns the operation count.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// WindowRate returns operations per second since the last WindowRate call
// and resets the window — the per-interval IOPS series of Figure 10/12.
func (m *Meter) WindowRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	el := now.Sub(m.winFrom).Seconds()
	rate := 0.0
	if el > 0 {
		rate = float64(m.winOps) / el
	}
	m.winOps = 0
	m.winFrom = now
	return rate
}

// Gauge is a named atomic integer instrument. Subsystems update gauges on
// their own schedule; readers snapshot them through a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of gauges, the export surface subsystems
// (like the LSM background scheduler) publish live state through. Gauges
// are created on first use and live forever; lookups after creation are
// lock-free on the Gauge itself.
type Registry struct {
	mu     sync.Mutex
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: map[string]*Gauge{}}
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns the current value of every registered gauge.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	return out
}
