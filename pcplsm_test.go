package pcplsm

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenDefaultsInMemory(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); !IsNotFound(err) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOpenOnDiskAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("data directory missing")
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 1000; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("key k%05d lost across reopen: %v", i, err)
		}
	}
}

func TestSimulatedStorageModes(t *testing.T) {
	for _, sim := range []*SimulatedStorage{
		{Device: "ssd", TimeScale: 0},
		{Device: "hdd", Disks: 2, RAID0: true, TimeScale: 0},
		{Device: "nvme", Disks: 3, TimeScale: 0},
	} {
		db, err := Open(Options{
			Simulate:      sim,
			MemtableBytes: 32 << 10,
			TableBytes:    16 << 10,
			BlockBytes:    1 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			db.Put([]byte(fmt.Sprintf("sk%06d", i)), []byte("someval"))
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		ds := db.DeviceStats()
		if len(ds) == 0 {
			t.Fatal("no device stats for simulated store")
		}
		var bytes int64
		for _, s := range ds {
			bytes += s.WriteBytes
		}
		if bytes == 0 {
			t.Fatal("simulated devices saw no writes")
		}
		db.ResetDeviceStats()
		if db.DeviceStats()[0].WriteBytes != 0 {
			t.Fatal("ResetDeviceStats did not clear")
		}
		db.Close()
	}
}

func TestCompactionModesWork(t *testing.T) {
	for _, c := range []Compaction{
		{Mode: "scp"},
		{Mode: "pcp"},
		{Mode: "pcp", ComputeWorkers: 3},
		{Mode: "pcp", IOWorkers: 3},
	} {
		db, err := Open(Options{
			Compaction:    c,
			MemtableBytes: 32 << 10,
			TableBytes:    16 << 10,
			BlockBytes:    1 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			db.Put([]byte(fmt.Sprintf("mk%06d", i%1500)), []byte("modeval"))
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		st := db.Stats()
		if st.Compactions == 0 {
			t.Fatalf("%+v: no compactions ran", c)
		}
		for i := 0; i < 1500; i++ {
			if _, err := db.Get([]byte(fmt.Sprintf("mk%06d", i))); err != nil {
				t.Fatalf("%+v: key lost: %v", c, err)
			}
		}
		db.Close()
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open(Options{Compaction: Compaction{Mode: "warp"}}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := Open(Options{Compression: "lz77"}); err == nil {
		t.Fatal("bad codec accepted")
	}
	if _, err := Open(Options{Simulate: &SimulatedStorage{Device: "tape"}}); err == nil {
		t.Fatal("bad device accepted")
	}
}

func TestBatchAndIterator(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	if len(got) != 1 || got[0] != "b=2" {
		t.Fatalf("scan = %v", got)
	}
}

func TestManualFlushAndCompact(t *testing.T) {
	db, err := Open(Options{
		DisableAutoCompaction: true,
		MemtableBytes:         32 << 10,
		TableBytes:            16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("fk%05d", i)), []byte("flushval"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	levels := db.Levels()
	if levels[0] == 0 {
		t.Fatal("flush did not create an L0 table")
	}
	if err := db.Compact(0); err != nil {
		t.Fatal(err)
	}
	levels = db.Levels()
	if levels[0] != 0 || levels[1] == 0 {
		t.Fatalf("compaction did not move data down: %v", levels)
	}
	if st := db.Stats(); st.LastCompaction.Bandwidth() <= 0 {
		t.Fatal("no compaction bandwidth recorded")
	}
}

func TestSnapshotPublicAPI(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("before"))
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("after"))
	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "before" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	snap.Release()
	if _, err := snap.Get([]byte("k")); err != ErrSnapshotReleased {
		t.Fatalf("released read = %v", err)
	}
	if v, _ := db.Get([]byte("k")); string(v) != "after" {
		t.Fatalf("live read = %q", v)
	}
}

func TestMetricsPublicAPI(t *testing.T) {
	db, err := Open(Options{
		BackgroundWorkers: 2,
		MemtableBytes:     32 << 10,
		TableBytes:        16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("gm%06d", i)), []byte("metricval"))
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m["lsm_puts"] != 3000 {
		t.Fatalf("lsm_puts = %d, want 3000", m["lsm_puts"])
	}
	if m["lsm_flushes"] == 0 {
		t.Fatal("lsm_flushes missing from metrics")
	}
	if m["lsm_compactions_inflight"] != 0 || m["lsm_flushes_inflight"] != 0 {
		t.Fatalf("idle store reports in-flight work: %v", m)
	}
	if _, ok := m["lsm_compactions_inflight_l1"]; !ok {
		t.Fatal("per-level compaction gauges missing")
	}
	if m["lsm_max_concurrent_background"] < 1 {
		t.Fatal("no background concurrency recorded")
	}
}

func TestCompactRangePublicAPI(t *testing.T) {
	db, err := Open(Options{MemtableBytes: 32 << 10, TableBytes: 16 << 10, DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("cr%05d", i)), []byte("v"))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	levels := db.Levels()
	if levels[0] != 0 {
		t.Fatalf("major compaction left L0 tables: %v", levels)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("cr%05d", i))); err != nil {
			t.Fatalf("key lost: %v", err)
		}
	}
}
