// Command pcpbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	pcpbench -fig 5            # one figure: 5, 8, 9, 10, 11, 12, model
//	pcpbench -fig all          # everything
//	pcpbench -fig sched        # background-scheduler comparison (workers=1 vs 2)
//	pcpbench -fig write        # group-commit comparison (grouped vs serial writers)
//	pcpbench -scale quick      # quick (default) or full
//	pcpbench -timescale 0.5    # speed up the simulated devices
//	pcpbench -schedjson f.json # write the scheduler comparison as JSON and exit
//	pcpbench -writejson f.json # write the group-commit comparison as JSON and exit
//	pcpbench -crashjson f.json # run the crash-consistency matrix, write the summary, exit
//	pcpbench -scrubjson f.json # run the bit-rot/scrub/quarantine matrix, write the summary, exit
//	pcpbench -readjson f.json  # write the read-under-compaction comparison as JSON and exit
//	pcpbench -memjson f.json   # write the sharded-memtable/allocation comparison as JSON and exit
//	pcpbench -pipejson f.json  # write the live-pipeline comparison (scp/pcp-fixed/pcp-adaptive) as JSON and exit
//	pcpbench -policyjson f.json # write the compaction-policy comparison (leveling/lazy-leveling/coldest-range/auto + trivial-move ablation) as JSON and exit
//
// Output is the same rows/series the paper plots, as aligned text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pcplsm/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 8, 9, 10, 11, 11b, 12, 12s, 12c, model, sched, write, read, mem, pipe, policy, all")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	timeScale := flag.Float64("timescale", -1, "override simulated-device time scale (1.0 = faithful)")
	schedJSON := flag.String("schedjson", "", "run the background-scheduler comparison and write it to this file as JSON")
	writeJSON := flag.String("writejson", "", "run the group-commit comparison and write it to this file as JSON")
	crashJSON := flag.String("crashjson", "", "run the crash-consistency matrix and write the summary to this file as JSON")
	readJSON := flag.String("readjson", "", "run the read-under-compaction comparison and write it to this file as JSON")
	memJSON := flag.String("memjson", "", "run the sharded-memtable/allocation comparison and write it to this file as JSON")
	pipeJSON := flag.String("pipejson", "", "run the live-pipeline comparison (scp vs pcp-fixed vs pcp-adaptive) and write it to this file as JSON")
	policyJSON := flag.String("policyjson", "", "run the compaction-policy comparison (incl. trivial-move ablation) and write it to this file as JSON")
	crashSeed := flag.Int64("crashseed", 1, "base seed for -crashjson cycles")
	crashSeeds := flag.Int("crashseeds", 200, "number of seeded power-cut cycles for -crashjson")
	scrubJSON := flag.String("scrubjson", "", "run the bit-rot/scrub/quarantine matrix and write the summary to this file as JSON")
	scrubSeed := flag.Int64("scrubseed", 1, "base seed for -scrubjson cycles")
	scrubSeeds := flag.Int("scrubseeds", 24, "number of seeded bit-rot cycles for -scrubjson")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "quick":
		sc = harness.Quick()
	case "full":
		sc = harness.Full()
	default:
		fmt.Fprintf(os.Stderr, "pcpbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *timeScale >= 0 {
		sc.TimeScale = *timeScale
	}

	writeArtifact := func(path string, v any) {
		out, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		os.Stdout.Write(out)
	}
	if *schedJSON != "" {
		cmp, err := harness.RunSchedComparison(sc, "ssd", sc.Fig12Entries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: scheduler comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*schedJSON, cmp)
		return
	}
	if *writeJSON != "" {
		cmp, err := harness.RunWriteComparison(sc, "ssd", sc.Fig12Entries/2, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: group-commit comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*writeJSON, cmp)
		return
	}
	if *readJSON != "" {
		cmp, err := harness.RunReadComparison(sc, "ssd", sc.Fig12Entries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: read comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*readJSON, cmp)
		return
	}
	if *memJSON != "" {
		ops := 200_000
		if sc.Name == "full" {
			ops = 1_000_000
		}
		cmp, err := harness.RunMemComparison(ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: memtable comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*memJSON, cmp)
		return
	}
	if *pipeJSON != "" {
		cmp, err := harness.RunPipelineComparison(sc, sc.Fig12Entries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: pipeline comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*pipeJSON, cmp)
		return
	}
	if *policyJSON != "" {
		cmp, err := harness.RunPolicyComparison(sc, sc.Fig12Entries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: policy comparison: %v\n", err)
			os.Exit(1)
		}
		writeArtifact(*policyJSON, cmp)
		return
	}
	if *crashJSON != "" {
		sum := harness.RunCrashMatrix(*crashSeed, *crashSeeds)
		writeArtifact(*crashJSON, sum)
		if sum.Failed > 0 {
			fmt.Fprintf(os.Stderr, "pcpbench: %d of %d crash cycles failed (seeds %v)\n",
				sum.Failed, sum.Cycles, sum.FailedSeeds)
			os.Exit(1)
		}
		return
	}
	if *scrubJSON != "" {
		sum := harness.RunScrubMatrix(*scrubSeed, *scrubSeeds)
		writeArtifact(*scrubJSON, sum)
		if sum.Failed > 0 {
			fmt.Fprintf(os.Stderr, "pcpbench: %d of %d scrub cycles failed (seeds %v)\n",
				sum.Failed, sum.Cycles, sum.FailedSeeds)
			os.Exit(1)
		}
		return
	}

	type figure struct {
		name string
		run  func(harness.Scale) (*harness.Table, error)
	}
	figures := map[string][]figure{
		"5":      {{"5", harness.Fig5}},
		"8":      {{"8", harness.Fig8}},
		"9":      {{"9", harness.Fig9}},
		"10":     {{"10", harness.Fig10}},
		"11":     {{"11a", harness.Fig11}, {"11b", harness.Fig11b}},
		"11b":    {{"11b", harness.Fig11b}},
		"12":     {{"12a-c", harness.Fig12SPPCP}, {"12d-f", harness.Fig12CPPCP}},
		"12s":    {{"12a-c", harness.Fig12SPPCP}},
		"12c":    {{"12d-f", harness.Fig12CPPCP}},
		"model":  {{"model", harness.FigModel}},
		"sched":  {{"sched", harness.FigSched}},
		"write":  {{"write", harness.FigWrite}},
		"read":   {{"read", harness.FigRead}},
		"mem":    {{"mem", harness.FigMem}},
		"pipe":   {{"pipe", harness.FigPipe}},
		"policy": {{"policy", harness.FigPolicy}},
	}
	var runs []figure
	if *fig == "all" {
		for _, key := range []string{"5", "8", "9", "10", "11", "12", "model"} {
			runs = append(runs, figures[key]...)
		}
	} else {
		fs, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "pcpbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		runs = fs
	}

	for _, f := range runs {
		fmt.Printf("running figure %s (scale %s, timescale %.2f)...\n", f.name, sc.Name, sc.TimeScale)
		tb, err := f.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpbench: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		tb.Print(os.Stdout)
	}
}
