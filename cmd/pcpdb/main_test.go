package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles pcpdb once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pcpdb")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pcpdb: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIEndToEnd(t *testing.T) {
	bin := buildBinary(t)
	dir := filepath.Join(t.TempDir(), "db")

	if out, err := run(t, bin, "-dir", dir, "put", "alpha", "one"); err != nil {
		t.Fatalf("put: %v\n%s", err, out)
	}
	out, err := run(t, bin, "-dir", dir, "get", "alpha")
	if err != nil || strings.TrimSpace(out) != "one" {
		t.Fatalf("get: %q, %v", out, err)
	}
	if out, err := run(t, bin, "-dir", dir, "del", "alpha"); err != nil {
		t.Fatalf("del: %v\n%s", err, out)
	}
	if _, err := run(t, bin, "-dir", dir, "get", "alpha"); err == nil {
		t.Fatal("get after del should exit nonzero")
	}

	// Load a small workload on a simulated device (timescale 0 = fast) and
	// inspect stats; then scan a prefix.
	out, err = run(t, bin, "-dir", dir, "-sim", "ssd", "-timescale", "0",
		"-n", "2000", "-vsize", "50", "load")
	if err != nil || !strings.Contains(out, "loaded 2000 entries") {
		t.Fatalf("load: %v\n%s", err, out)
	}
	out, err = run(t, bin, "-dir", dir, "scan", "user")
	if err != nil {
		t.Fatalf("scan: %v\n%s", err, out)
	}
	if !strings.Contains(out, "user") {
		t.Fatalf("scan produced no keys:\n%s", out)
	}
	out, err = run(t, bin, "-dir", dir, "stats")
	if err != nil || !strings.Contains(out, "levels:") {
		t.Fatalf("stats: %v\n%s", err, out)
	}
	if out, err = run(t, bin, "-dir", dir, "compact"); err != nil {
		t.Fatalf("compact: %v\n%s", err, out)
	}
}

func TestCLIBadUsage(t *testing.T) {
	bin := buildBinary(t)
	if _, err := run(t, bin); err == nil {
		t.Fatal("no command should exit nonzero")
	}
	if _, err := run(t, bin, "frobnicate"); err == nil {
		t.Fatal("unknown command should exit nonzero")
	}
	if _, err := run(t, bin, "put", "only-key"); err == nil {
		t.Fatal("missing args should exit nonzero")
	}
}
