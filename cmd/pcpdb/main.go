// Command pcpdb is a command-line client for the pcplsm store.
//
// Usage:
//
//	pcpdb -dir /tmp/db put <key> <value>
//	pcpdb -dir /tmp/db get <key>
//	pcpdb -dir /tmp/db del <key>
//	pcpdb -dir /tmp/db scan [prefix]
//	pcpdb -dir /tmp/db -n 100000 -vsize 100 -dist uniform load
//	pcpdb -dir /tmp/db stats
//	pcpdb -dir /tmp/db compact
//	pcpdb -dir /tmp/db scrub   (alias: verify)
//
// All flags come before the command (standard Go flag parsing). The
// -mode/-compute/-io flags select the compaction procedure; -sim runs on a
// simulated device instead of the real file system.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pcplsm"
	"pcplsm/internal/workload"
)

func main() {
	var (
		dir     = flag.String("dir", "", "data directory (empty = in-memory, useful only for load benchmarks)")
		mode    = flag.String("mode", "pcp", "compaction mode: scp or pcp")
		compute = flag.Int("compute", 0, "compute-stage workers (C-PPCP when > 1)")
		ioPar   = flag.Int("io", 0, "I/O-stage workers (S-PPCP when > 1)")
		subtask = flag.Int("subtask", 0, "sub-task size in bytes (0 = 512KiB default)")
		codec   = flag.String("codec", "snappy", "block compression: snappy, flate, none")
		sim     = flag.String("sim", "", "simulate a device: hdd, ssd, nvme (empty = real storage)")
		disks   = flag.Int("disks", 1, "simulated disk count")
		raid0   = flag.Bool("raid0", false, "stripe simulated disks as RAID0")
		tscale  = flag.Float64("timescale", 1.0, "simulated device time scale")
		n       = flag.Int("n", 100000, "load: number of entries")
		vsize   = flag.Int("vsize", 100, "load: value size in bytes")
		dist    = flag.String("dist", "uniform", "load: key distribution (uniform, sequential, zipfian)")
		verbose = flag.Bool("v", false, "log flushes and compactions")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pcpdb: missing command (put|get|del|scan|load|stats|compact|scrub)")
		os.Exit(2)
	}

	opts := pcplsm.Options{
		Dir:         *dir,
		Compression: *codec,
		Compaction: pcplsm.Compaction{
			Mode:           *mode,
			SubtaskBytes:   *subtask,
			ComputeWorkers: *compute,
			IOWorkers:      *ioPar,
		},
	}
	if *sim != "" {
		opts.Simulate = &pcplsm.SimulatedStorage{
			Device: *sim, Disks: *disks, RAID0: *raid0, TimeScale: *tscale,
		}
	}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	db, err := pcplsm.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	switch args[0] {
	case "put":
		need(args, 3, "put <key> <value>")
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2, "get <key>")
		v, err := db.Get([]byte(args[1]))
		if pcplsm.IsNotFound(err) {
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(args, 2, "del <key>")
		if err := db.Delete([]byte(args[1])); err != nil {
			fatal(err)
		}
	case "scan":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		it, err := db.NewIterator()
		if err != nil {
			fatal(err)
		}
		defer it.Close()
		count := 0
		for ok := it.Seek([]byte(prefix)); ok; ok = it.Next() {
			k := string(it.Key())
			if prefix != "" && (len(k) < len(prefix) || k[:len(prefix)] != prefix) {
				break
			}
			fmt.Printf("%s\t%s\n", k, it.Value())
			count++
		}
		if err := it.Err(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "(%d entries)\n", count)
	case "load":
		d, err := workload.ParseDistribution(*dist)
		if err != nil {
			fatal(err)
		}
		gen := workload.New(workload.Config{
			Entries: *n, ValueSize: *vsize, Dist: d, Seed: 1,
		})
		start := time.Now()
		for {
			k, v, ok := gen.Next()
			if !ok {
				break
			}
			if err := db.Put(k, v); err != nil {
				fatal(err)
			}
		}
		insertTime := time.Since(start)
		if err := db.WaitIdle(); err != nil {
			fatal(err)
		}
		total := time.Since(start)
		st := db.Stats()
		fmt.Printf("loaded %d entries in %v (%.0f inserts/s; %v incl. background)\n",
			*n, insertTime.Round(time.Millisecond),
			float64(*n)/insertTime.Seconds(), total.Round(time.Millisecond))
		fmt.Printf("flushes=%d compactions=%d compaction-bandwidth=%.1f MiB/s\n",
			st.Flushes, st.Compactions, st.CompactionBandwidth()/(1<<20))
		fmt.Printf("compaction breakdown: %v\n", st.CompactionSteps.Breakdown())
		fmt.Printf("levels: %v\n", db.Levels())
	case "stats":
		st := db.Stats()
		fmt.Println(st.String())
		fmt.Printf("levels: %v\n", db.Levels())
		for i, ds := range db.DeviceStats() {
			fmt.Printf("device %d: reads=%d (%.1f MiB) writes=%d (%.1f MiB) busy=%v\n",
				i, ds.Reads, float64(ds.ReadBytes)/(1<<20),
				ds.Writes, float64(ds.WriteBytes)/(1<<20), ds.Busy())
		}
	case "scrub", "verify":
		rep, err := db.Scrub()
		if err != nil {
			fatal(err)
		}
		for _, tr := range rep.Tables {
			switch {
			case tr.Skipped:
				fmt.Printf("L%d %06d.sst  SKIP  %s\n", tr.Level, tr.Num, tr.Err)
			case tr.OK:
				fmt.Printf("L%d %06d.sst  OK    %d entries, %d bytes\n",
					tr.Level, tr.Num, tr.Entries, tr.BytesVerified)
			case tr.Quarantined:
				fmt.Printf("L%d %06d.sst  CORRUPT (quarantined)  %s\n", tr.Level, tr.Num, tr.Err)
			default:
				fmt.Printf("L%d %06d.sst  ERROR  %s\n", tr.Level, tr.Num, tr.Err)
			}
		}
		fmt.Printf("scrubbed %d tables (%.1f MiB): %d corrupt, %d skipped\n",
			rep.Verified, float64(rep.Bytes)/(1<<20), rep.Corruptions, rep.Skipped)
		if rep.Corruptions > 0 || rep.Skipped > 0 {
			os.Exit(1)
		}
	case "compact":
		levels := db.Levels()
		for l := 0; l < len(levels)-1; l++ {
			if levels[l] > 0 {
				if err := db.Compact(l); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("levels after compaction: %v\n", db.Levels())
	default:
		fmt.Fprintf(os.Stderr, "pcpdb: unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "pcpdb: usage: %s\n", usage)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pcpdb: %v\n", err)
	os.Exit(1)
}
