package pcplsm

// This file regenerates every figure in the paper's evaluation as Go
// benchmarks, plus the ablations DESIGN.md calls out. Custom metrics carry
// the paper's units:
//
//	MiB/s     — compaction bandwidth (the paper's primary metric)
//	inserts/s — store throughput ("IOPS" in the paper's figures)
//	%read/%compute/%write — the step-breakdown shares of Figures 5/8/9
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute values depend on the host CPU and the simulated device models;
// the shapes (who wins, by what factor, where curves bend) reproduce the
// paper. See EXPERIMENTS.md for the recorded comparison.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/harness"
)

// benchScale keeps each benchmark iteration around a second.
func benchScale() harness.Scale {
	return harness.Scale{
		Name:            "bench",
		TimeScale:       2.0,
		CPUDilation:     2,
		CompactionBytes: 2 << 20,
		Fig10Entries:    []int{40_000},
		Fig12Entries:    20_000,
		MaxDisks:        4,
		MaxWorkers:      4,
	}
}

// isolated runs one isolated compaction per iteration and reports the
// paper's metrics.
func isolated(b *testing.B, cfg harness.IsolatedConfig) core.Stats {
	b.Helper()
	var st core.Stats
	var err error
	for i := 0; i < b.N; i++ {
		st, err = harness.RunIsolated(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(st.InputBytes)
	b.ReportMetric(st.Bandwidth()/(1<<20), "MiB/s")
	return st
}

// reportBreakdown attaches the read/compute/write shares.
func reportBreakdown(b *testing.B, st core.Stats) {
	r, c, w := st.Steps.Breakdown().Fractions()
	b.ReportMetric(r*100, "%read")
	b.ReportMetric(c*100, "%compute")
	b.ReportMetric(w*100, "%write")
}

// scpCfg builds an isolated SCP configuration at bench scale.
func scpCfg(sc harness.Scale, dev string, valueSize int, subtask int64) harness.IsolatedConfig {
	return harness.IsolatedConfig{
		Device:     dev,
		TimeScale:  sc.TimeScale,
		UpperBytes: sc.CompactionBytes,
		ValueSize:  valueSize,
		Engine:     core.Config{Mode: core.ModeSCP, SubtaskSize: subtask, CPUDilation: sc.CPUDilation},
	}
}

// BenchmarkFig5_Breakdown regenerates Figure 5: the SCP step breakdown on
// HDD (I/O-bound) and SSD (CPU-bound).
func BenchmarkFig5_Breakdown(b *testing.B) {
	sc := benchScale()
	for _, dev := range []string{"hdd", "ssd"} {
		b.Run(dev, func(b *testing.B) {
			st := isolated(b, scpCfg(sc, dev, 100, 512<<10))
			reportBreakdown(b, st)
		})
	}
}

// BenchmarkFig8_KVSize regenerates Figure 8: the SCP breakdown versus
// key-value size (sort share shrinks as values grow).
func BenchmarkFig8_KVSize(b *testing.B) {
	sc := benchScale()
	for _, dev := range []string{"hdd", "ssd"} {
		for _, vs := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/v%d", dev, vs), func(b *testing.B) {
				st := isolated(b, scpCfg(sc, dev, vs, 512<<10))
				reportBreakdown(b, st)
			})
		}
	}
}

// BenchmarkFig9_SubtaskSize regenerates Figure 9: the SCP breakdown versus
// sub-task size (write share falls as I/O grows).
func BenchmarkFig9_SubtaskSize(b *testing.B) {
	sc := benchScale()
	for _, dev := range []string{"hdd", "ssd"} {
		for _, sub := range []int64{64 << 10, 512 << 10, 2 << 20} {
			b.Run(fmt.Sprintf("%s/%dKB", dev, sub>>10), func(b *testing.B) {
				st := isolated(b, scpCfg(sc, dev, 100, sub))
				reportBreakdown(b, st)
			})
		}
	}
}

// loadOnce runs one full-store load per iteration and reports IOPS and
// compaction bandwidth.
func loadOnce(b *testing.B, cfg harness.LoadConfig) {
	b.Helper()
	var res harness.LoadResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IOPS, "inserts/s")
	b.ReportMetric(res.CompactionBandwidth/(1<<20), "MiB/s")
}

// BenchmarkFig10_ScpVsPcp regenerates Figure 10: insert throughput and
// compaction bandwidth under SCP vs PCP on HDD and SSD.
func BenchmarkFig10_ScpVsPcp(b *testing.B) {
	sc := benchScale()
	for _, dev := range []string{"hdd", "ssd"} {
		for _, mode := range []core.Mode{core.ModeSCP, core.ModePCP} {
			b.Run(fmt.Sprintf("%s/%v", dev, mode), func(b *testing.B) {
				loadOnce(b, harness.LoadConfig{
					Device:    dev,
					TimeScale: sc.TimeScale,
					Entries:   sc.Fig10Entries[0],
					Engine:    core.Config{Mode: mode, CPUDilation: sc.CPUDilation},
				})
			})
		}
	}
}

// BenchmarkFig11a_SubtaskSweep regenerates Figure 11(a): PCP bandwidth
// versus sub-task size (rises, peaks, falls).
func BenchmarkFig11a_SubtaskSweep(b *testing.B) {
	sc := benchScale()
	for _, sub := range []int64{64 << 10, 256 << 10, 512 << 10, 2 << 20} {
		b.Run(fmt.Sprintf("%dKB", sub>>10), func(b *testing.B) {
			cfg := scpCfg(sc, "ssd", 100, sub)
			cfg.Engine.Mode = core.ModePCP
			isolated(b, cfg)
		})
	}
}

// BenchmarkFig11b_CompactionSweep regenerates Figure 11(b): PCP bandwidth
// versus compaction size at fixed sub-task size (rises until enough
// sub-tasks exist, then saturates).
func BenchmarkFig11b_CompactionSweep(b *testing.B) {
	sc := benchScale()
	for _, mb := range []int64{1, 4, 8} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			cfg := scpCfg(sc, "ssd", 100, 512<<10)
			cfg.UpperBytes = mb << 20
			cfg.Engine.Mode = core.ModePCP
			isolated(b, cfg)
		})
	}
}

// BenchmarkFig12_SPPCP regenerates Figure 12(a–c): S-PPCP bandwidth versus
// disk count (RAID0 HDDs; flattens once CPU-bound).
func BenchmarkFig12_SPPCP(b *testing.B) {
	sc := benchScale()
	for _, disks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("disks%d", disks), func(b *testing.B) {
			isolated(b, harness.IsolatedConfig{
				Device: "hdd", Disks: disks, RAID0: true,
				TimeScale:  sc.TimeScale,
				UpperBytes: sc.CompactionBytes,
				Engine: core.Config{Mode: core.ModePCP, SubtaskSize: 256 << 10,
					IOParallel: disks, CPUDilation: sc.CPUDilation},
			})
		})
	}
}

// BenchmarkFig12_CPPCP regenerates Figure 12(d–f): C-PPCP bandwidth versus
// compute-worker count (flattens once I/O-bound).
func BenchmarkFig12_CPPCP(b *testing.B) {
	sc := benchScale()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			isolated(b, harness.IsolatedConfig{
				Device:     "ssd",
				TimeScale:  sc.TimeScale,
				UpperBytes: sc.CompactionBytes,
				Engine: core.Config{Mode: core.ModePCP, SubtaskSize: 512 << 10,
					ComputeParallel: workers, CPUDilation: sc.CPUDilation},
			})
		})
	}
}

// BenchmarkAblation_DeepPipeline compares the paper's 3-stage design
// against the rejected 5-stage split (§III-B) and against C-PPCP with the
// same total worker count: the deep pipeline's uneven stages leave it
// behind C-PPCP, which is exactly the paper's load-imbalance argument.
func BenchmarkAblation_DeepPipeline(b *testing.B) {
	sc := benchScale()
	cases := map[string]core.Config{
		"pcp3":   {Mode: core.ModePCP, SubtaskSize: 512 << 10},
		"deep5":  {Mode: core.ModeDeepPCP, SubtaskSize: 512 << 10},
		"cppcp3": {Mode: core.ModePCP, SubtaskSize: 512 << 10, ComputeParallel: 3},
	}
	for name, cfg := range cases {
		cfg.CPUDilation = sc.CPUDilation
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			isolated(b, harness.IsolatedConfig{
				Device: "ssd", TimeScale: sc.TimeScale,
				UpperBytes: sc.CompactionBytes, Engine: cfg,
			})
		})
	}
}

// BenchmarkAblation_QueueDepth varies the bounded queue depth between
// pipeline stages.
func BenchmarkAblation_QueueDepth(b *testing.B) {
	sc := benchScale()
	for _, qd := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("depth%d", qd), func(b *testing.B) {
			isolated(b, harness.IsolatedConfig{
				Device: "ssd", TimeScale: sc.TimeScale,
				UpperBytes: sc.CompactionBytes,
				Engine: core.Config{Mode: core.ModePCP, SubtaskSize: 256 << 10,
					QueueDepth: qd, CPUDilation: sc.CPUDilation},
			})
		})
	}
}

// BenchmarkAblation_Codec shows how the block codec moves the pipeline
// between regimes: none (I/O-heavy), snappy (the paper's balance), flate
// (deeply CPU-bound).
func BenchmarkAblation_Codec(b *testing.B) {
	sc := benchScale()
	for _, name := range []string{"none", "snappy", "flate"} {
		b.Run(name, func(b *testing.B) {
			kind, err := compress.ParseKind(name)
			if err != nil {
				b.Fatal(err)
			}
			st := isolated(b, harness.IsolatedConfig{
				Device: "ssd", TimeScale: sc.TimeScale,
				UpperBytes: sc.CompactionBytes,
				Engine: core.Config{Mode: core.ModeSCP, SubtaskSize: 512 << 10,
					Codec: compress.MustByKind(kind), CPUDilation: sc.CPUDilation},
			})
			reportBreakdown(b, st)
		})
	}
}

// BenchmarkSchedulerWorkers runs the mixed flush+compaction workload under
// the strictly-serial scheduler (workers=1) and the concurrent one
// (workers=2); the reported stall seconds and inserts/s are the BENCH_PR1
// comparison (regenerate the committed artifact with
// `go run ./cmd/pcpbench -schedjson BENCH_PR1.json`).
func BenchmarkSchedulerWorkers(b *testing.B) {
	sc := benchScale()
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var res harness.SchedResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = harness.RunSched(harness.SchedConfig{
					Device:    "ssd",
					TimeScale: sc.TimeScale,
					Entries:   sc.Fig12Entries,
					Workers:   workers,
					Engine:    core.Config{Mode: core.ModePCP, CPUDilation: sc.CPUDilation},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.InsertsPerSec, "inserts/s")
			b.ReportMetric(res.StallSeconds*1000, "stall_ms")
			b.ReportMetric(float64(res.MaxConcurrentBackground), "max_conc")
		})
	}
}

// BenchmarkParallelWriters measures the group-commit pipeline: N goroutines
// issuing synchronous Puts against an in-memory store with background work
// disabled, so only the commit path (WAL append + optional fsync + memtable
// insert) is on the clock. With SyncWAL on, syncs/commit shows the
// amortization group commit buys; compare against DisableGroupCommit for
// the serial baseline (the recorded comparison on the simulated SSD is
// BENCH_PR2.json, regenerated with `go run ./cmd/pcpbench -writejson
// BENCH_PR2.json`).
func BenchmarkParallelWriters(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		for _, syncWAL := range []bool{false, true} {
			b.Run(fmt.Sprintf("writers%d/sync=%v", writers, syncWAL), func(b *testing.B) {
				db, err := Open(Options{
					MemtableBytes:         256 << 20,
					SyncWrites:            syncWAL,
					DisableAutoCompaction: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				val := make([]byte, 100)
				b.SetBytes(116)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / writers
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						key := make([]byte, 16)
						for i := 0; i < per; i++ {
							copy(key, fmt.Sprintf("w%03d%08d", w, i))
							if err := db.Put(key, val); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				st := db.Stats()
				if st.GroupedWrites > 0 {
					b.ReportMetric(float64(st.WALSyncs)/float64(st.GroupedWrites), "syncs/commit")
					b.ReportMetric(float64(st.GroupedWrites)/float64(st.WriteGroups), "writes/group")
				}
			})
		}
	}
}

// BenchmarkParallelWritersShards adds the memtable-shards dimension to the
// group-commit benchmark: concurrent writers form commit groups whose
// entries hash across shards, so the leader's memtable apply fans out to
// parallel per-shard appliers. shards=1 is the single-skiplist baseline (the
// pre-sharding behavior); the recorded comparison is BENCH_PR7.json,
// regenerated with `go run ./cmd/pcpbench -memjson BENCH_PR7.json`.
func BenchmarkParallelWritersShards(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("writers%d/shards%d", writers, shards), func(b *testing.B) {
				db, err := Open(Options{
					MemtableBytes:         256 << 20,
					MemtableShards:        shards,
					DisableAutoCompaction: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				val := make([]byte, 100)
				b.SetBytes(116)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / writers
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						key := make([]byte, 16)
						for i := 0; i < per; i++ {
							copy(key, fmt.Sprintf("w%03d%08d", w, i))
							if err := db.Put(key, val); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				st := db.Stats()
				if st.WriteGroups > 0 {
					b.ReportMetric(float64(st.ApplyShardRuns)/float64(st.WriteGroups), "shards/group")
					b.ReportMetric(float64(st.ParallelApplies)/float64(st.WriteGroups), "parallel-share")
				}
			})
		}
	}
}

// BenchmarkPutThroughput measures the raw foreground write path (memtable
// + WAL, no simulated devices).
func BenchmarkPutThroughput(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	key := make([]byte, 16)
	val := make([]byte, 100)
	b.SetBytes(116)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("user%012d", i))
		if err := db.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHit measures point reads across a multi-level tree.
func BenchmarkGetHit(b *testing.B) {
	db, err := Open(Options{MemtableBytes: 256 << 10, TableBytes: 128 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 20000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("user%012d", i)), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("user%012d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	nowFunc   = time.Now
	sinceFunc = time.Since
)

// BenchmarkAblation_PipelinedFlush measures the flush-path extension: the
// paper's §IV-C notes unpipelined operations (like memtable dumps) eat into
// the end-to-end throughput gain; overlapping flush compute with its writes
// recovers part of it.
func BenchmarkAblation_PipelinedFlush(b *testing.B) {
	for _, pipelined := range []bool{false, true} {
		name := "sequential"
		if pipelined {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				db, err := Open(Options{
					Simulate:       &SimulatedStorage{Device: "ssd", TimeScale: 1.0},
					MemtableBytes:  512 << 10,
					TableBytes:     512 << 10,
					PipelinedFlush: pipelined,
					// Isolate the flush path: no background compactions.
					DisableAutoCompaction: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				const n = 30_000
				key := make([]byte, 16)
				val := make([]byte, 100)
				start := nowFunc()
				for j := 0; j < n; j++ {
					copy(key, fmt.Sprintf("user%012d", j))
					if err := db.Put(key, val); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				rate = float64(n) / sinceFunc(start).Seconds()
				db.Close()
			}
			b.ReportMetric(rate, "inserts/s")
		})
	}
}
