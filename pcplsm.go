// Package pcplsm is an LSM-tree key-value store with pipelined compaction,
// reproducing "Pipelined Compaction for the LSM-tree" (Zhang et al.,
// IPDPS 2014).
//
// The store is a LevelDB-style tree (memtable + WAL + leveled SSTables)
// whose background compaction engine is pluggable:
//
//   - SCP    — the conventional Sequential Compaction Procedure;
//   - PCP    — the paper's three-stage pipeline (read / compute / write);
//   - C-PPCP — PCP with a parallel compute stage (k cores);
//   - S-PPCP — PCP with parallel I/O stages (k disks).
//
// Storage can be a directory on the real file system, plain memory, or a
// simulated device (HDD/SSD/NVMe models with seek costs, bandwidth curves
// and per-device queueing) so the paper's I/O-bound vs CPU-bound regimes
// are reproducible on any machine.
//
// Quick start:
//
//	db, err := pcplsm.Open(pcplsm.Options{})            // in-memory
//	db, err := pcplsm.Open(pcplsm.Options{Dir: "/data"}) // on disk
//	err = db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
package pcplsm

import (
	"errors"
	"fmt"
	"time"

	"pcplsm/internal/compress"
	"pcplsm/internal/core"
	"pcplsm/internal/device"
	"pcplsm/internal/lsm"
	"pcplsm/internal/storage"
)

// Errors re-exported from the engine.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = lsm.ErrNotFound
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = lsm.ErrClosed
	// ErrSnapshotReleased is returned by reads on a released Snapshot.
	ErrSnapshotReleased = lsm.ErrSnapshotReleased
	// ErrBackgroundError marks a sticky background failure: the store has
	// degraded to read-only (Get and iterators keep working).
	ErrBackgroundError = lsm.ErrBackgroundError
	// ErrCorruption marks detected on-disk corruption; it implies
	// ErrBackgroundError.
	ErrCorruption = lsm.ErrCorruption
	// ErrQuarantined marks reads whose key range is covered by a table that
	// failed an integrity verification and was quarantined in scope. It
	// implies ErrCorruption but NOT ErrBackgroundError: the rest of the key
	// space keeps serving and the store stays writable.
	ErrQuarantined = lsm.ErrQuarantined
)

// BackgroundRetryPolicy bounds background retries of transient flush and
// compaction I/O errors.
type BackgroundRetryPolicy = lsm.BackgroundRetryPolicy

// Re-exported engine types. Batch collects atomic multi-key writes;
// Iterator scans a snapshot in key order; Stats carries cumulative
// counters including the compaction step breakdown; Snapshot is a pinned
// point-in-time read view (Release it when done).
type (
	Batch    = lsm.Batch
	Iterator = lsm.Iterator
	Stats    = lsm.Stats
	Snapshot = lsm.Snapshot
	// ScrubReport summarizes one manual integrity pass (DB.Scrub);
	// TableScrubResult is its per-table outcome.
	ScrubReport      = lsm.ScrubReport
	TableScrubResult = lsm.TableScrubResult
)

// Compaction selects and tunes the compaction procedure.
type Compaction struct {
	// Mode is "scp" or "pcp" (default "pcp").
	Mode string
	// SubtaskBytes is the target input size per pipeline sub-task
	// (default 512 KiB, the paper's sweet spot).
	SubtaskBytes int
	// QueueDepth bounds the inter-stage queues (default 2).
	QueueDepth int
	// ComputeWorkers parallelizes the compute stage (C-PPCP when > 1).
	ComputeWorkers int
	// IOWorkers parallelizes the read and write stages (S-PPCP when > 1).
	IOWorkers int
}

// SimulatedStorage configures device emulation.
type SimulatedStorage struct {
	// Device is "hdd", "ssd", "nvme" or "null".
	Device string
	// Disks is the number of simulated devices (default 1).
	Disks int
	// RAID0 stripes all files across the disks (like the paper's md
	// setup); otherwise whole files are placed round-robin.
	RAID0 bool
	// TimeScale multiplies simulated service times: 1.0 is real-time
	// fidelity, 0.1 runs 10× faster, 0 disables timing (functional only).
	TimeScale float64
}

// Options configure Open. The zero value opens an in-memory store with
// PCP compaction and the paper's size parameters.
type Options struct {
	// Dir, when set, stores data in this directory on the real file
	// system; otherwise everything lives in memory.
	Dir string
	// Simulate, when non-nil, interposes simulated devices between the
	// store and its backing memory.
	Simulate *SimulatedStorage

	// Compaction selects the procedure.
	Compaction Compaction

	// MemtableBytes (default 4 MiB), TableBytes (default 2 MiB) and
	// BlockBytes (default 4 KiB) set the tree geometry.
	MemtableBytes int
	TableBytes    int
	BlockBytes    int
	// MemtableShards partitions the memtable into independent arena-backed
	// skiplists by user-key hash so commit groups apply with parallel shard
	// writers. 0 selects the default of 4; 1 restores the single-skiplist
	// layout. Contents, scan order and WAL bytes are identical at any
	// setting. Values are clamped to [1, 64] and rounded up to a power of
	// two.
	MemtableShards int
	// MemtableArenaBytes is the chunk size of each memtable shard's arena
	// allocator (default 64 KiB, clamped to [4 KiB, 8 MiB]).
	MemtableArenaBytes int
	// Compression is "snappy" (default), "flate" or "none".
	Compression string
	// BloomBitsPerKey sizes per-table Bloom filters (0 = default 10 bits
	// per key, negative disables).
	BloomBitsPerKey int
	// BlockCacheBytes caps the decompressed-block read cache (0 = default
	// 8 MiB, negative disables).
	BlockCacheBytes int
	// DisableCachePreWarm turns off the compaction-surviving cache: by
	// default compactions re-insert output blocks whose key ranges were
	// hot in the inputs, so the working set stays cached across file
	// renumbering.
	DisableCachePreWarm bool
	// ScanReadahead is how many blocks ahead an iterator prefetches and
	// decodes while a scan consumes the current one (0 = default 2,
	// negative disables).
	ScanReadahead int

	// BackgroundWorkers sizes the background scheduler's worker pool
	// (default 2). With two or more workers a memtable flush overlaps
	// in-flight compactions, and compactions on disjoint level pairs run in
	// parallel. 1 restores the strictly-serial pre-scheduler behavior.
	BackgroundWorkers int

	// PipelinedFlush overlaps memtable-flush computation with its writes
	// (an extension of the paper's pipelining to the flush path).
	PipelinedFlush bool
	// SyncWrites fsyncs the WAL on every commit group.
	SyncWrites bool

	// DisableGroupCommit restores the serial commit path (every Write
	// holds the DB lock across its own WAL append and fsync). By default
	// concurrent writers are batched by a leader into one WAL record and
	// one fsync, and reads never queue behind commit I/O.
	DisableGroupCommit bool
	// WriteGroupMaxCount caps the writers merged into one commit group
	// (default 64).
	WriteGroupMaxCount int
	// WriteGroupMaxBytes caps one commit group's summed batch payload
	// (default 1 MiB).
	WriteGroupMaxBytes int
	// DisableAutoCompaction turns the background scheduler off.
	DisableAutoCompaction bool
	// CompactionPolicy pins the picker: "leveling", "lazy-leveling" or
	// "coldest-range". Empty enables the metrics-driven self-tuner, which
	// switches between them as the workload shifts.
	CompactionPolicy string
	// PolicyTunerWindow is the self-tuner's sliding sample window in
	// completed background units (0 = default 8, clamped to [2, 64]).
	PolicyTunerWindow int
	// DisableTrivialMove forces full rewrites even when a compaction input
	// overlaps nothing in the target level (by default such tables move by
	// metadata edit alone, with no table I/O).
	DisableTrivialMove bool
	// BackgroundRetry bounds the retries of transient background I/O
	// errors before the store degrades to read-only. Detected corruption
	// and WAL-append failures are never retried.
	BackgroundRetry BackgroundRetryPolicy

	// ParanoidChecks re-reads and verifies every flush and compaction
	// output against its just-written metadata (block checksums, key order,
	// entry count, whole-file digest) before the manifest references it. A
	// failing output is discarded and rebuilt; the extra read pass roughly
	// doubles the read cost of producing a table.
	ParanoidChecks bool
	// ScrubInterval enables the background integrity scrubber: every
	// interval it verifies one live table (yielding to compaction I/O) and
	// quarantines any that fail, cycling over the whole tree and resuming
	// across restarts. 0 disables background scrubbing; DB.Scrub still
	// works either way.
	ScrubInterval time.Duration
	// ScrubBytesPerSec rate-limits background scrub reads (0 = default
	// 8 MiB/s, negative = unlimited).
	ScrubBytesPerSec int64
	// Logf receives progress lines when set.
	Logf func(format string, args ...any)
}

// DB is a key-value store. All methods are safe for concurrent use.
type DB struct {
	inner *lsm.DB
	sim   *storage.SimFS
}

// Open creates or reopens a store.
func Open(opts Options) (*DB, error) {
	var fs storage.FS
	if opts.Dir != "" {
		osfs, err := storage.NewOSFS(opts.Dir)
		if err != nil {
			return nil, err
		}
		fs = osfs
	} else {
		fs = storage.NewMemFS()
	}

	var sim *storage.SimFS
	if opts.Simulate != nil {
		s := *opts.Simulate
		if s.Disks <= 0 {
			s.Disks = 1
		}
		model, err := device.ByName(s.Device)
		if err != nil {
			return nil, err
		}
		devs := make([]*device.Device, s.Disks)
		for i := range devs {
			devs[i] = device.New(model, s.TimeScale)
		}
		placement := storage.PlaceByFile
		if s.RAID0 {
			placement = storage.PlaceStripe
		}
		sim = storage.NewSimFS(fs, devs, placement, 0)
		fs = sim
	}

	kind, err := compress.ParseKind(opts.Compression)
	if err != nil {
		return nil, err
	}
	mode := core.ModePCP
	switch opts.Compaction.Mode {
	case "", "pcp":
	case "scp":
		mode = core.ModeSCP
	default:
		return nil, fmt.Errorf("pcplsm: unknown compaction mode %q", opts.Compaction.Mode)
	}

	inner, err := lsm.Open(lsm.Options{
		FS:                  fs,
		MemtableSize:        int64(opts.MemtableBytes),
		MemtableShards:      opts.MemtableShards,
		MemtableArenaChunk:  opts.MemtableArenaBytes,
		TableSize:           int64(opts.TableBytes),
		BlockSize:           opts.BlockBytes,
		BloomBitsPerKey:     opts.BloomBitsPerKey,
		BlockCacheBytes:     int64(opts.BlockCacheBytes),
		DisableCachePreWarm: opts.DisableCachePreWarm,
		ScanReadahead:       opts.ScanReadahead,
		Codec:               compress.MustByKind(kind),
		Compaction: core.Config{
			Mode:            mode,
			SubtaskSize:     int64(opts.Compaction.SubtaskBytes),
			QueueDepth:      opts.Compaction.QueueDepth,
			ComputeParallel: opts.Compaction.ComputeWorkers,
			IOParallel:      opts.Compaction.IOWorkers,
		},
		BackgroundWorkers:     opts.BackgroundWorkers,
		PipelinedFlush:        opts.PipelinedFlush,
		SyncWAL:               opts.SyncWrites,
		DisableGroupCommit:    opts.DisableGroupCommit,
		WriteGroupMaxCount:    opts.WriteGroupMaxCount,
		WriteGroupMaxBytes:    int64(opts.WriteGroupMaxBytes),
		DisableAutoCompaction: opts.DisableAutoCompaction,
		CompactionPolicy:      opts.CompactionPolicy,
		PolicyTunerWindow:     opts.PolicyTunerWindow,
		DisableTrivialMove:    opts.DisableTrivialMove,
		BackgroundRetry:       opts.BackgroundRetry,
		ParanoidChecks:        opts.ParanoidChecks,
		ScrubInterval:         opts.ScrubInterval,
		ScrubBytesPerSec:      opts.ScrubBytesPerSec,
		Logf:                  opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, sim: sim}, nil
}

// Put stores a key/value pair.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.inner.Get(key) }

// Delete removes a key.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// Write commits a batch atomically.
func (db *DB) Write(b *Batch) error { return db.inner.Write(b) }

// NewIterator returns a snapshot scan; callers must Close it.
func (db *DB) NewIterator() (*Iterator, error) { return db.inner.NewIterator() }

// GetSnapshot pins a point-in-time read view. Compactions retain every
// version the snapshot can read until it is Released.
func (db *DB) GetSnapshot() (*Snapshot, error) { return db.inner.GetSnapshot() }

// Flush forces the memtable to disk.
func (db *DB) Flush() error { return db.inner.Flush() }

// Scrub synchronously verifies every live table against its manifest
// record — block checksums, key order, bounds, entry count, whole-file
// digest — quarantining any table that fails, and returns the per-table
// report. Unlike the background scrubber it does not rate-limit or yield
// to compaction I/O.
func (db *DB) Scrub() (ScrubReport, error) { return db.inner.Scrub() }

// Compact synchronously runs one compaction from the given level.
func (db *DB) Compact(level int) error { return db.inner.CompactLevel(level) }

// CompactRange rewrites every table intersecting [begin, end] down the
// tree (nil bounds are open; CompactRange(nil, nil) is a major compaction).
func (db *DB) CompactRange(begin, end []byte) error { return db.inner.CompactRange(begin, end) }

// WaitIdle blocks until all scheduled background work has drained.
func (db *DB) WaitIdle() error { return db.inner.WaitIdle() }

// Stats returns cumulative counters, including the compaction step
// breakdown and bandwidth (the paper's metrics).
func (db *DB) Stats() Stats { return db.inner.Stats() }

// Metrics returns a point-in-time snapshot of the store's gauge registry:
// the scheduler's live state (lsm_flushes_inflight, lsm_compactions_inflight
// and its per-level lsm_compactions_inflight_l* breakdown, lsm_claimed_bytes)
// plus cumulative counters mirrored from Stats under lsm_* names.
func (db *DB) Metrics() map[string]int64 { return db.inner.Metrics().Snapshot() }

// Levels returns the table count per level (diagnostics).
func (db *DB) Levels() []int {
	v := db.inner.Version()
	out := make([]int, len(v.Levels))
	for i := range v.Levels {
		out[i] = len(v.Levels[i])
	}
	return out
}

// DeviceStats returns per-simulated-device counters, or nil when the store
// is not simulated.
func (db *DB) DeviceStats() []device.Stats {
	if db.sim == nil {
		return nil
	}
	devs := db.sim.Devices()
	out := make([]device.Stats, len(devs))
	for i, d := range devs {
		out[i] = d.Stats()
	}
	return out
}

// ResetDeviceStats zeroes simulated device counters.
func (db *DB) ResetDeviceStats() {
	if db.sim != nil {
		db.sim.ResetDeviceStats()
	}
}

// Close releases the store. Acknowledged writes survive via WAL replay.
func (db *DB) Close() error { return db.inner.Close() }

// IsNotFound reports whether err is a missing-key error.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
